//! `Instantiation(Se)`: from a specification to instance constraints Ω(Se).
//!
//! The hot loops — active-domain construction, base-order instantiation and
//! the per-constraint projection grouping and pair instantiation — run on
//! the entity's **instance-local dense value ids**
//! (`EntityInstance::dense_id`, contiguous `u32` rows): equality and null
//! tests are single integer compares, and dense → space-local id
//! translation is one load from a flat `attr × id` table sized by the
//! entity's own distinct-value count. Full [`Value`]s are only touched
//! where semantics require them (comparison predicates, canonical sorting
//! of each value space, CFD constants).

use std::collections::HashMap;

use cr_constraints::Predicate;
use cr_types::{AttrValueSpace, TupleId, Value, ValueId, NULL_VALUE_ID};

use crate::spec::Specification;

/// A strict value-order atom `lo ≺v_attr hi` (distinct interned values of
/// one attribute).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OrderAtom {
    /// Attribute whose order is referenced.
    pub attr: cr_types::AttrId,
    /// Less-current value.
    pub lo: ValueId,
    /// More-current value.
    pub hi: ValueId,
}

/// Right-hand side of an instance constraint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Conclusion {
    /// The premise implies this order atom.
    Atom(OrderAtom),
    /// The premise is contradictory (e.g. a CFD forcing a value outside the
    /// active domain): at least one premise atom must be false.
    False,
}

/// Where an instance constraint came from — used by `TrueDer` to derive
/// rules only from currency orders and constraints (plus CFDs, handled
/// separately).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Origin {
    /// A pair of the base partial currency order of `It`.
    BaseOrder,
    /// Null-bottom axiom (`null ≺v a`).
    NullBottom,
    /// Instantiated from `sigma[i]` on a tuple-projection pair.
    Currency(usize),
    /// Instantiated from `gamma[i]`.
    Cfd(usize),
}

/// One instance constraint `premise → conclusion` of Ω(Se). An empty premise
/// denotes `true →` (a unit).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct InstanceConstraint {
    /// Conjunction of value-order atoms.
    pub premise: Vec<OrderAtom>,
    /// Implied atom or `False`.
    pub conclusion: Conclusion,
    /// Provenance.
    pub origin: Origin,
}

/// Output of instantiation: the interned value spaces plus Ω(Se).
pub(crate) struct Instantiated {
    pub space: AttrValueSpace,
    pub omega: Vec<InstanceConstraint>,
}

/// Core of `ins(ω, s1, s2)` (Section V-A), shared by the Value-based and
/// dense-id pair instantiators so the vacuity/canonicalisation rules can
/// never diverge between the scratch and incremental paths:
///
/// * `pair(attr)` yields the `(lo, hi)` space-local ids of the two tuples'
///   values on `attr`, or `None` when the atom is **vacuous** — the values
///   are equal (they satisfy only ⪯) or either side is null. A premise
///   instantiated on *missing* data is vacuous: were "null ≺ a" premises
///   counted true, the user-input tuple `to` (null everywhere but the
///   answered attributes) would fire rules like ϕ8 and claim the user's
///   answers are stale; a null conclusion carries no strict obligation
///   (`to` must not force "value ≺ null"). See DESIGN.md §4.
/// * `cmp(p)` evaluates a comparison predicate on the pair.
///
/// Returns `None` when a comparison fails or any atom is vacuous; the
/// premise is canonicalised (sorted, deduplicated).
fn build_instance(
    constraint: &cr_constraints::CurrencyConstraint,
    ci: usize,
    mut pair: impl FnMut(cr_types::AttrId) -> Option<(ValueId, ValueId)>,
    mut cmp: impl FnMut(&Predicate) -> bool,
) -> Option<InstanceConstraint> {
    // Data half of ins(ω, s1, s2): comparison conjuncts.
    let mut premise: Vec<OrderAtom> = Vec::new();
    for p in constraint.premises() {
        match p {
            Predicate::Order { attr } => {
                let (lo, hi) = pair(*attr)?;
                premise.push(OrderAtom { attr: *attr, lo, hi });
            }
            other => {
                if !cmp(other) {
                    return None;
                }
            }
        }
    }
    // Conclusion t1 ≺_Ar t2 on values.
    let ar = constraint.conclusion_attr();
    let (lo, hi) = pair(ar)?;
    premise.sort_unstable_by_key(|a| (a.attr, a.lo, a.hi));
    premise.dedup();
    Some(InstanceConstraint {
        premise,
        conclusion: Conclusion::Atom(OrderAtom { attr: ar, lo, hi }),
        origin: Origin::Currency(ci),
    })
}

/// Instantiates currency constraint `sigma[ci]` on the ordered tuple pair
/// `(t1, t2)` — [`build_instance`] over the tuples' actual values. Used by
/// [`EncodedSpec::extend_with_input`](super::EncodedSpec::extend_with_input)
/// for the pairs involving a freshly appended user-input tuple (which has
/// no dense row in the entity).
pub(crate) fn instantiate_pair(
    space: &AttrValueSpace,
    constraint: &cr_constraints::CurrencyConstraint,
    ci: usize,
    t1: &cr_types::Tuple,
    t2: &cr_types::Tuple,
) -> Option<InstanceConstraint> {
    build_instance(
        constraint,
        ci,
        |attr| {
            let v1 = t1.get(attr);
            let v2 = t2.get(attr);
            if v1 == v2 || v1.is_null() || v2.is_null() {
                return None;
            }
            Some((
                space.get(attr, v1).expect("interned"),
                space.get(attr, v2).expect("interned"),
            ))
        },
        |p| p.eval_comparison(t1, t2).expect("comparison predicate"),
    )
}

/// Sentinel in the global → local translation table: value not in this
/// attribute's space.
const G2L_UNSEEN: u32 = u32::MAX;
/// Transient marker between the distinct-scan and canonical interning.
const G2L_SEEN: u32 = u32::MAX - 1;

/// Flat global → local value-id translation, one row per attribute. Local
/// lookup of an already-validated global id is a single indexed load.
pub(crate) struct GlobalToLocal {
    table: Vec<u32>,
    bound: usize,
}

impl GlobalToLocal {
    #[inline]
    fn slot(&mut self, attr: cr_types::AttrId, gid: u32) -> &mut u32 {
        &mut self.table[attr.index() * self.bound + gid as usize]
    }

    /// Local id of a global id known to be in `attr`'s space.
    #[inline]
    pub(crate) fn local(&self, attr: cr_types::AttrId, gid: u32) -> ValueId {
        let raw = self.table[attr.index() * self.bound + gid as usize];
        debug_assert!(raw < G2L_SEEN, "gid not interned for this attribute");
        ValueId(raw)
    }
}

/// Runs `Instantiation(Se)` (Section V-A).
pub(crate) fn instantiate(spec: &Specification) -> Instantiated {
    let schema = spec.schema();
    let entity = spec.entity();
    let arity = schema.arity();
    let mut space = AttrValueSpace::new(arity);

    // 1. Value spaces: active domain (canonical order) plus null if present.
    // One contiguous pass over the dense id matrix per attribute marks the
    // distinct values; only the distinct ones are materialised and sorted.
    // Dense ids are instance-local, so the translation table is sized by
    // the entity's own distinct-value count, never by the dataset.
    let id_bound = entity.dense_id_bound();
    let mut g2l = GlobalToLocal {
        table: vec![G2L_UNSEEN; arity * id_bound],
        bound: id_bound,
    };
    for attr in schema.attr_ids() {
        let mut distinct: Vec<u32> = Vec::new();
        let mut has_null = false;
        for tid in entity.tuple_ids() {
            let gid = entity.dense_id(tid, attr);
            if gid == NULL_VALUE_ID {
                has_null = true;
                continue;
            }
            let slot = g2l.slot(attr, gid);
            if *slot == G2L_UNSEEN {
                *slot = G2L_SEEN;
                distinct.push(gid);
            }
        }
        distinct.sort_unstable_by(|&a, &b| entity.dense_value(a).cmp(entity.dense_value(b)));
        for gid in distinct {
            let local = space.intern(attr, entity.dense_value(gid));
            *g2l.slot(attr, gid) = local.0;
        }
        if has_null {
            let local = space.intern(attr, &Value::Null);
            *g2l.slot(attr, NULL_VALUE_ID) = local.0;
        }
    }

    let mut omega: Vec<InstanceConstraint> = Vec::new();

    // 2. Null-bottom axioms: null ≺v a for every non-null a.
    for attr in schema.attr_ids() {
        if let Some(null_id) = space.get(attr, &Value::Null) {
            for (vid, v) in space.attr(attr).iter() {
                if !v.is_null() {
                    omega.push(InstanceConstraint {
                        premise: Vec::new(),
                        conclusion: Conclusion::Atom(OrderAtom { attr, lo: null_id, hi: vid }),
                        origin: Origin::NullBottom,
                    });
                }
            }
        }
    }

    // 3. Base currency orders: (true → t1[Ai] ≺v t2[Ai]) for t1 ≺_Ai t2 with
    //    differing values.
    for attr in schema.attr_ids() {
        for (t1, t2) in spec.orders().pairs(attr) {
            let g1 = entity.dense_id(t1, attr);
            let g2 = entity.dense_id(t2, attr);
            if g1 == g2 || g1 == NULL_VALUE_ID || g2 == NULL_VALUE_ID {
                // Equal values are the reflexive part of ⪯; null-side pairs
                // carry no strict information (missing is ranked lowest).
                continue;
            }
            omega.push(InstanceConstraint {
                premise: Vec::new(),
                conclusion: Conclusion::Atom(OrderAtom {
                    attr,
                    lo: g2l.local(attr, g1),
                    hi: g2l.local(attr, g2),
                }),
                origin: Origin::BaseOrder,
            });
        }
    }

    // 4. Currency constraints, instantiated over distinct *projections*.
    //
    // Every predicate of ω references only the values of t1/t2 on the
    // constraint's attributes, so tuples sharing a projection on those
    // attributes produce identical instance constraints. Grouping tuples by
    // projection turns the paper's O(|Σ||It|²) instantiation into
    // O(Σ_ϕ #proj²) — the worst case is unchanged, but real entity
    // instances have few distinct projections (many near-duplicate tuples).
    for (ci, constraint) in spec.sigma().iter().enumerate() {
        // Referenced attributes: premise attrs + conclusion.
        let mut attrs: Vec<cr_types::AttrId> = constraint
            .premises()
            .iter()
            .map(|p| p.attr())
            .chain(std::iter::once(constraint.conclusion_attr()))
            .collect();
        attrs.sort_unstable();
        attrs.dedup();

        // Distinct projections with a representative tuple, grouped by the
        // dense global ids (no `Value` hashing). Sorted so Ω(Se) is
        // deterministic (rule derivation is order sensitive).
        let mut reps: Vec<TupleId> = {
            let mut map: HashMap<Vec<u32>, TupleId> = HashMap::new();
            for tid in entity.tuple_ids() {
                let key: Vec<u32> = attrs.iter().map(|&a| entity.dense_id(tid, a)).collect();
                map.entry(key).or_insert(tid);
            }
            map.into_values().collect()
        };
        reps.sort_unstable();

        for &r1 in &reps {
            for &r2 in &reps {
                if r1 == r2 {
                    continue;
                }
                if let Some(c) = instantiate_pair_dense(&g2l, constraint, ci, entity, r1, r2) {
                    omega.push(c);
                }
            }
        }
    }

    // 5. Constant CFDs.
    for (gi, cfd) in spec.gamma().iter().enumerate() {
        omega.extend(cfd_instances(&space, gi, cfd));
    }

    Instantiated { space, omega }
}

/// [`instantiate_pair`] on a tuple pair *inside* the entity —
/// [`build_instance`] over the dense id rows: equality/null checks are
/// integer compares and space-local ids come from the flat translation
/// table. Comparison predicates still evaluate on the actual values.
fn instantiate_pair_dense(
    g2l: &GlobalToLocal,
    constraint: &cr_constraints::CurrencyConstraint,
    ci: usize,
    entity: &cr_types::EntityInstance,
    t1: TupleId,
    t2: TupleId,
) -> Option<InstanceConstraint> {
    build_instance(
        constraint,
        ci,
        |attr| {
            let g1 = entity.dense_id(t1, attr);
            let g2 = entity.dense_id(t2, attr);
            if g1 == g2 || g1 == NULL_VALUE_ID || g2 == NULL_VALUE_ID {
                return None;
            }
            Some((g2l.local(attr, g1), g2l.local(attr, g2)))
        },
        |p| {
            p.eval_comparison(entity.tuple(t1), entity.tuple(t2))
                .expect("comparison predicate")
        },
    )
}

/// The instance constraints of one constant CFD over the given value
/// spaces — the ωX-premise/domination emission of `Instantiation(Se)` step
/// 5, factored out so [`EncodedSpec::extend_with_input`] can *re-emit* a
/// CFD under a fresh guard group after a new value grows a referenced
/// attribute's space.
///
/// Returns an empty vector when an LHS pattern constant is outside the
/// active domain (the CFD can never fire); a missing RHS constant yields
/// the single `Conclusion::False` instance.
pub(crate) fn cfd_instances(
    space: &AttrValueSpace,
    gi: usize,
    cfd: &cr_constraints::ConstantCfd,
) -> Vec<InstanceConstraint> {
    // ωX: every other value of each LHS attribute sits below the pattern
    // constant.
    let mut premise: Vec<OrderAtom> = Vec::new();
    for (attr, c) in cfd.lhs() {
        let Some(cid) = space.get(*attr, c) else {
            return Vec::new();
        };
        for (vid, v) in space.attr(*attr).iter() {
            if vid != cid && !v.is_null() {
                premise.push(OrderAtom { attr: *attr, lo: vid, hi: cid });
            }
        }
    }
    let (battr, bval) = cfd.rhs();
    let mut out = Vec::new();
    match space.get(*battr, bval) {
        Some(bid) => {
            for (vid, v) in space.attr(*battr).iter() {
                if vid != bid && !v.is_null() {
                    out.push(InstanceConstraint {
                        premise: premise.clone(),
                        conclusion: Conclusion::Atom(OrderAtom {
                            attr: *battr,
                            lo: vid,
                            hi: bid,
                        }),
                        origin: Origin::Cfd(gi),
                    });
                }
            }
        }
        None => {
            // The pattern's B-value cannot be the current one: premise
            // must fail. (With an empty premise the spec is invalid.)
            out.push(InstanceConstraint {
                premise,
                conclusion: Conclusion::False,
                origin: Origin::Cfd(gi),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orders::PartialOrders;
    use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
    use cr_types::{EntityInstance, Schema, Tuple, TupleId};

    fn edith_like() -> Specification {
        let s = Schema::new("p", ["status", "job", "kids"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::str("nurse"), Value::int(0)]),
                Tuple::of([Value::str("retired"), Value::str("n/a"), Value::int(3)]),
                Tuple::of([Value::str("deceased"), Value::str("n/a"), Value::Null]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[job] t2").unwrap(),
            parse_currency_constraint(&s, "t1[kids] < t2[kids] -> t1 <[kids] t2").unwrap(),
        ];
        Specification::without_orders(e, sigma, vec![])
    }

    #[test]
    fn null_becomes_strict_bottom() {
        let spec = edith_like();
        let inst = instantiate(&spec);
        let kids = spec.schema().attr_id("kids").unwrap();
        let nulls: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::NullBottom)
            .collect();
        // kids has null + {0, 3}: two bottom units.
        assert_eq!(nulls.len(), 2);
        assert!(nulls.iter().all(|c| c.premise.is_empty()));
        assert!(nulls.iter().all(|c| match c.conclusion {
            Conclusion::Atom(a) => a.attr == kids,
            Conclusion::False => false,
        }));
    }

    #[test]
    fn comparison_premises_prefilter_pairs() {
        let spec = edith_like();
        let inst = instantiate(&spec);
        // phi1 applies only to the (working, retired) ordered pair: exactly
        // one instance with empty premise concluding working ≺ retired.
        let status = spec.schema().attr_id("status").unwrap();
        let phi1: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::Currency(0))
            .collect();
        assert_eq!(phi1.len(), 1);
        assert!(phi1[0].premise.is_empty());
        match phi1[0].conclusion {
            Conclusion::Atom(a) => {
                assert_eq!(a.attr, status);
                assert_eq!(inst.space.value(status, a.lo), &Value::str("working"));
                assert_eq!(inst.space.value(status, a.hi), &Value::str("retired"));
            }
            Conclusion::False => panic!(),
        }
    }

    #[test]
    fn equal_value_conclusions_are_skipped() {
        let spec = edith_like();
        let inst = instantiate(&spec);
        // phi5 = order premise on status, conclusion job. The pair
        // (retired, deceased) has equal jobs (n/a) → skipped; pairs touching
        // "working" (job nurse) survive.
        let phi5: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::Currency(1))
            .collect();
        // Projections on (status, job): 3 distinct; ordered pairs 6; the two
        // (r2, r3)-style pairs with equal jobs are dropped → 4.
        assert_eq!(phi5.len(), 4);
        assert!(phi5.iter().all(|c| c.premise.len() == 1));
    }

    #[test]
    fn null_comparison_fires_phi4() {
        let spec = edith_like();
        let inst = instantiate(&spec);
        let kids = spec.schema().attr_id("kids").unwrap();
        // phi4 with null < k semantics: the pairs (null,0) and (null,3) fire
        // but their conclusions `null ≺ k` are already the null-bottom
        // axioms (skipped); only (0,3) yields an instance constraint.
        let phi4: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::Currency(2))
            .collect();
        assert_eq!(phi4.len(), 1);
        match phi4[0].conclusion {
            Conclusion::Atom(a) => {
                assert_eq!(a.attr, kids);
                assert_eq!(inst.space.value(kids, a.lo), &Value::int(0));
                assert_eq!(inst.space.value(kids, a.hi), &Value::int(3));
            }
            Conclusion::False => panic!(),
        }
        // The null-bottom axioms cover the null pairs.
        let bottoms = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::NullBottom)
            .filter(|c| matches!(c.conclusion, Conclusion::Atom(a) if a.attr == kids))
            .count();
        assert_eq!(bottoms, 2);
    }

    #[test]
    fn base_orders_become_units() {
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![Tuple::of([Value::int(1)]), Tuple::of([Value::int(2)])],
        )
        .unwrap();
        let mut orders = PartialOrders::empty(1);
        orders.add(cr_types::AttrId(0), TupleId(0), TupleId(1));
        let spec = Specification::new(e, orders, vec![], vec![]);
        let inst = instantiate(&spec);
        let base: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::BaseOrder)
            .collect();
        assert_eq!(base.len(), 1);
        assert!(base[0].premise.is_empty());
    }

    #[test]
    fn cfd_with_missing_lhs_constant_is_vacuous() {
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![Tuple::of([Value::int(212), Value::str("NY")])],
        )
        .unwrap();
        let gamma = parse_cfds(&s, "AC = 999 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        let inst = instantiate(&spec);
        assert!(inst.omega.iter().all(|c| c.origin != Origin::Cfd(0)));
    }

    #[test]
    fn cfd_with_missing_rhs_constant_forces_negated_premise() {
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("NY")]),
            ],
        )
        .unwrap();
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        let inst = instantiate(&spec);
        let cfd: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::Cfd(0))
            .collect();
        assert_eq!(cfd.len(), 1);
        assert_eq!(cfd[0].conclusion, Conclusion::False);
        assert_eq!(cfd[0].premise.len(), 1); // 212 ≺ 213
    }

    #[test]
    fn cfd_in_domain_emits_domination_clauses() {
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("LA")]),
                Tuple::of([Value::int(415), Value::str("SFC")]),
            ],
        )
        .unwrap();
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        let inst = instantiate(&spec);
        let cfd: Vec<_> = inst
            .omega
            .iter()
            .filter(|c| c.origin == Origin::Cfd(0))
            .collect();
        // Two non-LA cities, each must sit below LA when AC=213 tops.
        assert_eq!(cfd.len(), 2);
        assert!(cfd.iter().all(|c| c.premise.len() == 2)); // 212≺213, 415≺213
    }
}
