/root/repo/target/release/deps/fig8b_deduce-cbd12a27e4ffe48a.d: crates/cr-bench/src/bin/fig8b_deduce.rs

/root/repo/target/release/deps/fig8b_deduce-cbd12a27e4ffe48a: crates/cr-bench/src/bin/fig8b_deduce.rs

crates/cr-bench/src/bin/fig8b_deduce.rs:
