/root/repo/target/debug/deps/cr_bench-72ea10dd005c8c87.d: crates/cr-bench/src/lib.rs

/root/repo/target/debug/deps/libcr_bench-72ea10dd005c8c87.rlib: crates/cr-bench/src/lib.rs

/root/repo/target/debug/deps/libcr_bench-72ea10dd005c8c87.rmeta: crates/cr-bench/src/lib.rs

crates/cr-bench/src/lib.rs:
