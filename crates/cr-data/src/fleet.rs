//! A simulated client fleet driving the `cr-server` serving layer through
//! a fault-injecting channel.
//!
//! N seeded clients issue mixed traffic (reads, user-input rounds, causal
//! correction batches, plain revision batches, snapshots) against **one
//! shared durable session**, each client behind its own tenant and its own
//! causal source. Every message crosses a lossy wire — both directions can
//! [drop](ChannelFaults::drop), [duplicate](ChannelFaults::duplicate) and
//! [delay](ChannelFaults::delay) (unequal delays reorder), and a client
//! sending a causal batch can [disconnect](ChannelFaults::disconnect)
//! mid-batch, going deaf for a while and losing any replies in flight.
//! Clients retry with exponential backoff plus jitter, **reusing the same
//! request id and idempotency key** per logical operation, and honour the
//! `retry_after` hint carried by `ServeError::Overloaded`.
//!
//! [`run_fleet`] is a self-verifying harness. At teardown it checks the
//! serving layer's exactly-once-under-retry contract:
//!
//! 1. every client finished every scripted operation (no retry budget
//!    exhausted, no fatal serve error);
//! 2. the durable log scans cleanly, and every acknowledged mutation
//!    appears in it **exactly once** — user inputs by content, causal
//!    events by `(source, hlc)` dedup key, plain revisions by content —
//!    with no unacknowledged extras;
//! 3. the final server-side session state is equivalent to a canonical
//!    single-client replay of the surviving log
//!    (`cr_store::harness::verify_recovery`).
//!
//! The fleet is fully deterministic: equal [`FleetConfig`]s replay the
//! same traffic, faults and outcome, which is what lets `serve_soak`
//! print a reproducing seed on failure.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use cr_core::framework::DeductionMethod;
use cr_core::ingest::Revision;
use cr_core::spec::UserInput;
use cr_server::admission::AdmissionConfig;
use cr_server::proto::{decode_message, encode_message, Message, Reply, Request, ServeError};
use cr_server::server::{ServeTelemetry, Server};
use cr_store::{
    decode_log, reference_of, verify_recovery, LogRecord, MemoryBackend, RecoveryTelemetry,
    SessionId, SessionStore, StorageBackend, StoreConfig,
};
use cr_types::wire::{Envelope, IdemKey, RequestId, TenantId};
use cr_types::{AttrId, Hlc, SourceId, TupleId, Value};

use crate::gen::{causal_timeline, scenario_from_raw, CausalTimelineConfig};
use crate::gen_util::rng;

/// The single shared session every fleet client targets.
const SESSION: u64 = 0;

/// Fault probabilities of the simulated wire, applied per message in both
/// directions (except `disconnect`, which only strikes a client sending a
/// causal batch). All probabilities are independent; reordering is
/// emergent from unequal delays.
#[derive(Clone, Copy, Debug)]
pub struct ChannelFaults {
    /// Probability a message is silently lost.
    pub drop: f64,
    /// Probability a message is delivered twice (the copy arrives later).
    pub duplicate: f64,
    /// Probability a message is delayed by `1..=max_delay` extra ticks.
    pub delay: f64,
    /// Maximum extra delay in ticks (`0` disables delays entirely).
    pub max_delay: u64,
    /// Probability a client *sending a causal batch* disconnects instead:
    /// the request is lost and the client is deaf for
    /// `disconnect_ticks` — replies delivered meanwhile are gone.
    pub disconnect: f64,
    /// How long a disconnected client stays deaf, in ticks.
    pub disconnect_ticks: u64,
}

impl ChannelFaults {
    /// A perfect wire: nothing dropped, duplicated, delayed or severed.
    pub fn clean() -> Self {
        ChannelFaults {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay: 0,
            disconnect: 0.0,
            disconnect_ticks: 0,
        }
    }

    /// The standard hostile wire used by the fleet tests and `serve_soak`:
    /// every fault mode armed at once.
    pub fn faulty() -> Self {
        ChannelFaults {
            drop: 0.08,
            duplicate: 0.08,
            delay: 0.25,
            max_delay: 6,
            disconnect: 0.06,
            disconnect_ticks: 8,
        }
    }
}

/// Knobs of one fleet run. Equal configs produce identical runs.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Seed for the scenario, the traffic scripts, the wire faults and
    /// every client's jitter.
    pub seed: u64,
    /// Number of simulated clients (each is one causal source).
    pub clients: usize,
    /// Tenants the clients are folded onto (`client % tenants`); `0`
    /// gives every client its own tenant. Folding many clients onto few
    /// tenants is how the overload profile provokes load-shedding.
    pub tenants: usize,
    /// User-input rounds scripted per client (each content-unique).
    pub inputs_per_client: usize,
    /// Read requests scripted per client (validity / deduction /
    /// true-values / suggestion, round-robin).
    pub reads_per_client: usize,
    /// Plain-revision batches scripted per client (each content-unique).
    pub batches_per_client: usize,
    /// Causally-stamped correction events generated across the whole
    /// fleet (sliced per client by source, sent in 1–3 event batches).
    pub causal_events: usize,
    /// Abort the run if it has not converged after this many ticks.
    pub max_ticks: u64,
    /// Ticks a client waits for a reply before resending.
    pub resend_timeout: u64,
    /// Attempts per operation before a client gives up (a failure).
    pub max_attempts: u32,
    /// The wire's fault profile.
    pub faults: ChannelFaults,
    /// The server's admission-control knobs.
    pub admission: AdmissionConfig,
    /// The durable store's knobs.
    pub store: StoreConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0,
            clients: 4,
            tenants: 0,
            inputs_per_client: 3,
            reads_per_client: 4,
            batches_per_client: 2,
            causal_events: 12,
            max_ticks: 6_000,
            resend_timeout: 24,
            max_attempts: 16,
            faults: ChannelFaults::clean(),
            admission: AdmissionConfig::default(),
            store: StoreConfig { idempotency_cap: 1024, ..StoreConfig::default() },
        }
    }
}

/// What one fleet run did, for soak output and bench percentiles.
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Ticks until the fleet converged.
    pub ticks: u64,
    /// Operations scripted across all clients.
    pub ops: u64,
    /// Operations acknowledged (equals `ops` on success).
    pub acked: u64,
    /// Mutations among the acknowledged operations.
    pub mutations_acked: u64,
    /// Client resends (timeouts, overload backoff, deadline retries).
    pub retries: u64,
    /// Messages the wire dropped.
    pub dropped: u64,
    /// Messages the wire duplicated.
    pub duplicated: u64,
    /// Messages the wire delayed beyond the base latency.
    pub delayed: u64,
    /// Mid-batch client disconnections.
    pub disconnects: u64,
    /// `Overloaded` replies clients backed off from.
    pub overloaded_replies: u64,
    /// `DeadlineExceeded` replies clients retried after.
    pub deadline_replies: u64,
    /// The server's serving telemetry at teardown.
    pub serve: ServeTelemetry,
    /// The store's recovery telemetry at teardown.
    pub recovery: RecoveryTelemetry,
    /// Submit-to-acknowledge latency of every completed operation, in
    /// ticks (first attempt to accepted reply — retries included).
    pub latencies: Vec<u64>,
}

impl std::fmt::Display for FleetReport {
    /// One human-readable row per run, for soak and bench output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fleet: {}/{} ops acked ({} mutations) in {} ticks, {} retries, wire \
             {}/{}/{} drop/dup/delay, {} disconnects, {} overloaded, {} deadline",
            self.acked,
            self.ops,
            self.mutations_acked,
            self.ticks,
            self.retries,
            self.dropped,
            self.duplicated,
            self.delayed,
            self.disconnects,
            self.overloaded_replies,
            self.deadline_replies,
        )
    }
}

/// What an acknowledged mutation must have left in the durable log.
enum Expected {
    /// Reads leave nothing.
    Read,
    /// A content-unique user-input round → exactly one `Input` record.
    Input(UserInput),
    /// A causal batch → exactly one `Causal` record per dedup key.
    Causal(Vec<(SourceId, Hlc)>),
    /// A content-unique revision batch → exactly one `Revision` record
    /// per revision.
    Revs(Vec<Revision>),
    /// Snapshots are derived state (the store also writes its own).
    Snapshot,
}

/// One scripted client operation: its pre-encoded wire frame (identical
/// bytes on every retry — same request id, same idempotency key) plus
/// what it must leave in the log once acknowledged.
struct Op {
    bytes: Vec<u8>,
    ingest: bool,
    expect: Expected,
}

/// One simulated client: a script of operations, at most one outstanding.
struct Client {
    tenant: u32,
    ops: Vec<Op>,
    next_op: usize,
    /// Attempts spent on the current operation (1 = first send).
    attempts: u32,
    /// An outstanding request awaits a reply (or its resend timer).
    waiting: bool,
    resend_at: u64,
    ready_at: u64,
    first_sent: u64,
    offline_until: u64,
    gave_up: bool,
    rng: ChaCha8Rng,
}

impl Client {
    fn done(&self) -> bool {
        !self.waiting && self.next_op == self.ops.len()
    }

    fn jitter(&mut self) -> u64 {
        self.rng.gen_range(0..=3)
    }
}

/// Exponential backoff for the given attempt number, capped at 32 ticks.
fn backoff(attempt: u32) -> u64 {
    1u64 << attempt.min(5)
}

/// A message in flight: delivery tick, FIFO tiebreak, destination client
/// (for server→client frames) and the encoded bytes.
struct Entry {
    at: u64,
    seq: u64,
    client: usize,
    bytes: Vec<u8>,
}

/// One direction of the simulated wire.
#[derive(Default)]
struct Wire {
    queue: Vec<Entry>,
    seq: u64,
}

impl Wire {
    /// Enqueues `bytes` through the fault profile: maybe dropped, maybe
    /// delayed, maybe duplicated (the copy always lags the original).
    fn send(
        &mut self,
        r: &mut ChaCha8Rng,
        f: &ChannelFaults,
        now: u64,
        client: usize,
        bytes: Vec<u8>,
        report: &mut FleetReport,
    ) {
        if f.drop > 0.0 && r.gen_bool(f.drop) {
            report.dropped += 1;
            return;
        }
        let mut at = now + 1;
        if f.max_delay > 0 && f.delay > 0.0 && r.gen_bool(f.delay) {
            at += r.gen_range(1..=f.max_delay);
            report.delayed += 1;
        }
        self.push(at, client, bytes.clone());
        if f.duplicate > 0.0 && r.gen_bool(f.duplicate) {
            report.duplicated += 1;
            self.push(at + r.gen_range(1..=f.max_delay.max(2)), client, bytes);
        }
    }

    fn push(&mut self, at: u64, client: usize, bytes: Vec<u8>) {
        self.seq += 1;
        self.queue.push(Entry { at, seq: self.seq, client, bytes });
    }

    /// Removes and returns every message due at `now`, in arrival order.
    fn take_due(&mut self, now: u64) -> Vec<Entry> {
        let mut due = Vec::new();
        self.queue.retain_mut(|e| {
            if e.at <= now {
                due.push(Entry {
                    at: e.at,
                    seq: e.seq,
                    client: e.client,
                    bytes: std::mem::take(&mut e.bytes),
                });
                false
            } else {
                true
            }
        });
        due.sort_by_key(|e| (e.at, e.seq));
        due
    }
}

/// The request id of client `c`'s operation `op`: reused verbatim on
/// every retry, and doubling as the idempotency key for mutations.
fn rid(c: usize, op: usize) -> u64 {
    ((c as u64 + 1) << 32) | op as u64
}

/// The destination client of a reply, recovered from its request id.
fn client_of(id: RequestId) -> usize {
    (id.0 >> 32) as usize - 1
}

/// Builds client `c`'s script: its causal slice (in source order, batched
/// 1–3 events), content-unique inputs and revision batches, and reads,
/// interleaved by the script RNG. Client 0 appends a snapshot request.
fn script(
    c: usize,
    tenant: u32,
    cfg: &FleetConfig,
    arity: usize,
    tuples: usize,
    causal: &[cr_core::causal::CausalRevision],
    r: &mut ChaCha8Rng,
) -> Vec<Op> {
    let reads = [
        Request::IsValid,
        Request::Deduce { method: DeductionMethod::UnitPropagation },
        Request::TrueValues { method: DeductionMethod::UnitPropagation },
        Request::Suggest { method: DeductionMethod::UnitPropagation },
    ];
    // Pools drained in-order per category, interleaved at random.
    let mut pools: Vec<Vec<(Request, Expected)>> =
        (0..4).map(|_| Vec::new()).collect();
    let mut rest = causal;
    while !rest.is_empty() {
        let take = r.gen_range(1..=3usize.min(rest.len()));
        let (batch, tail) = rest.split_at(take);
        rest = tail;
        let keys = batch.iter().map(|ev| ev.stamp.dedup_key()).collect();
        pools[0].push((Request::IngestCausal { events: batch.to_vec() }, Expected::Causal(keys)));
    }
    for k in 0..cfg.inputs_per_client {
        let mut input = UserInput::empty();
        // Attribute 0 is numeric; 1.. are strings — a per-(client, op)
        // label makes every input content-unique for the log check.
        let attr = AttrId((1 + k % (arity - 1)) as u16);
        input.values.insert(attr, Value::str(format!("f{c}_{k}")));
        pools[1].push((Request::ApplyInput { input: input.clone() }, Expected::Input(input)));
    }
    for k in 0..cfg.batches_per_client {
        let rev = Revision::ReplaceValue {
            tuple: TupleId((k % tuples) as u32),
            attr: AttrId((1 + k % (arity - 1)) as u16),
            value: Value::str(format!("r{c}_{k}")),
        };
        pools[2].push((
            Request::AbsorbBatch { revs: vec![rev.clone()] },
            Expected::Revs(vec![rev]),
        ));
    }
    for k in 0..cfg.reads_per_client {
        pools[3].push((reads[k % reads.len()].clone(), Expected::Read));
    }

    let mut ops = Vec::new();
    while pools.iter().any(|p| !p.is_empty()) {
        let live: Vec<usize> =
            (0..pools.len()).filter(|&i| !pools[i].is_empty()).collect();
        let pool = live[r.gen_range(0..live.len())];
        let (req, expect) = pools[pool].remove(0);
        ops.push((req, expect));
    }
    if c == 0 {
        ops.push((Request::Snapshot, Expected::Snapshot));
    }

    ops.into_iter()
        .enumerate()
        .map(|(i, (req, expect))| {
            let raw = rid(c, i);
            let env = Envelope {
                request_id: RequestId(raw),
                tenant: TenantId(tenant),
                session: SESSION,
                deadline: None,
                idempotency: req.is_mutation().then_some(IdemKey(raw)),
            };
            Op {
                ingest: matches!(req, Request::IngestCausal { .. }),
                bytes: encode_message(&Message::Request { env, req }),
                expect,
            }
        })
        .collect()
}

/// Checks the exactly-once contract for one record category: every
/// acknowledged item appears in the log exactly once, and nothing extra
/// of that category was logged.
fn exactly_once<T: PartialEq + std::fmt::Debug>(
    what: &str,
    want: &[T],
    got: &[T],
) -> Result<(), String> {
    if want.len() != got.len() {
        return Err(format!(
            "{what}: {} acknowledged but {} durably logged",
            want.len(),
            got.len()
        ));
    }
    for w in want {
        let n = got.iter().filter(|g| *g == w).count();
        if n != 1 {
            return Err(format!("{what}: {w:?} logged {n} times, want exactly once"));
        }
    }
    Ok(())
}

/// Runs one simulated fleet to convergence and verifies the serving
/// layer's contract at teardown (see the module docs). `Err` carries the
/// violated invariant plus the run's telemetry rows.
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetReport, String> {
    let scenario = scenario_from_raw(cfg.seed ^ 0x5EED_F1EE, 5, 4, 55, false);
    let spec = scenario.spec;
    let arity = spec.schema().arity();
    let tuples = spec.entity().len().max(1);

    let store = SessionStore::new(MemoryBackend::new(), cfg.store)
        .map_err(|e| format!("store open failed: {e}"))?;
    let mut server = Server::new(store, cfg.admission);
    server.open(SESSION, &spec);

    // One causal source per client; client c owns SourceId(c + 1).
    let clients_n = cfg.clients.max(1);
    let timeline = causal_timeline(
        &spec,
        &CausalTimelineConfig {
            seed: cfg.seed ^ 0xF1EE_7CA5,
            sources: clients_n,
            events: cfg.causal_events,
            rounds: clients_n.max(2),
            burst: 2,
            sync_density: 0.2,
            ..CausalTimelineConfig::default()
        },
    );

    let mut script_rng = rng(cfg.seed ^ 0x5C12_19B7);
    let mut clients: Vec<Client> = (0..clients_n)
        .map(|c| {
            let tenant =
                if cfg.tenants == 0 { c as u32 } else { (c % cfg.tenants) as u32 };
            let slice: Vec<_> = timeline
                .iter()
                .filter(|(_, ev)| ev.stamp.source == SourceId(c as u32 + 1))
                .map(|(_, ev)| ev.clone())
                .collect();
            Client {
                tenant,
                ops: script(c, tenant, cfg, arity, tuples, &slice, &mut script_rng),
                next_op: 0,
                attempts: 0,
                waiting: false,
                resend_at: 0,
                ready_at: 0,
                first_sent: 0,
                offline_until: 0,
                gave_up: false,
                rng: rng(cfg.seed ^ 0xC11E_4700 ^ (c as u64)),
            }
        })
        .collect();

    let mut report = FleetReport {
        ops: clients.iter().map(|c| c.ops.len() as u64).sum(),
        ..FleetReport::default()
    };
    let mut net_rng = rng(cfg.seed ^ 0x0C4A_77E1);
    let mut up = Wire::default();
    let mut down = Wire::default();
    let telemetry_rows = |server: &Server<MemoryBackend>, report: &FleetReport| {
        format!("\n  {report}\n  {}\n  {}", server.telemetry(), server.store().recovery())
    };

    let mut now = 0u64;
    loop {
        // 1. Deliver client → server frames; immediate rejections (shed,
        //    unknown session) travel back as replies.
        for e in up.take_due(now) {
            let msg = decode_message(&e.bytes)
                .map_err(|err| format!("client->server frame failed to decode: {err}"))?;
            let Message::Request { env, req } = msg else {
                return Err("client->server wire carried a non-request".into());
            };
            if let Some(reply) = server.submit(now, env, req) {
                let dest = client_of(reply.request_id);
                let bytes = encode_message(&Message::Reply(reply));
                down.send(&mut net_rng, &cfg.faults, now, dest, bytes, &mut report);
            }
        }

        // 2. Dispatch queued work fairly; replies cross the faulty wire.
        for reply in server.dispatch(now) {
            let dest = client_of(reply.request_id);
            let bytes = encode_message(&Message::Reply(reply));
            down.send(&mut net_rng, &cfg.faults, now, dest, bytes, &mut report);
        }

        // 3. Deliver server → client replies (deaf clients lose theirs).
        for e in down.take_due(now) {
            let client = &mut clients[e.client];
            if client.offline_until > now {
                continue;
            }
            let msg = decode_message(&e.bytes)
                .map_err(|err| format!("server->client frame failed to decode: {err}"))?;
            let Message::Reply(reply) = msg else {
                return Err("server->client wire carried a non-reply".into());
            };
            on_reply(client, reply, now, &mut report)?;
        }

        // 4. Clients act: first sends, timeout resends, backoff wakeups.
        for c in clients.iter_mut() {
            if c.gave_up || c.offline_until > now {
                continue;
            }
            if c.waiting {
                if now >= c.resend_at {
                    if c.attempts >= cfg.max_attempts {
                        c.gave_up = true;
                        continue;
                    }
                    c.attempts += 1;
                    report.retries += 1;
                    send_current(c, cfg, now, &mut up, &mut net_rng, &mut report);
                }
            } else if c.next_op < c.ops.len() && now >= c.ready_at {
                c.attempts = 1;
                c.first_sent = now;
                c.waiting = true;
                send_current(c, cfg, now, &mut up, &mut net_rng, &mut report);
            }
        }

        if let Some(c) = clients.iter().find(|c| c.gave_up) {
            return Err(format!(
                "client of tenant {} exhausted its {} attempts on op {}{}",
                c.tenant,
                cfg.max_attempts,
                c.next_op,
                telemetry_rows(&server, &report)
            ));
        }
        if clients.iter().all(Client::done) && up.queue.is_empty() && server.queued() == 0 {
            break;
        }
        now += 1;
        if now >= cfg.max_ticks {
            let stuck: Vec<u32> =
                clients.iter().filter(|c| !c.done()).map(|c| c.tenant).collect();
            return Err(format!(
                "fleet did not converge within {} ticks (stuck tenants {stuck:?}){}",
                cfg.max_ticks,
                telemetry_rows(&server, &report)
            ));
        }
    }
    report.ticks = now;
    report.acked = report.ops;
    report.serve = server.telemetry();
    report.recovery = server.store().recovery();

    verify_teardown(&mut server, &spec, &clients, &mut report)
        .map_err(|e| format!("{e}{}", telemetry_rows(&server, &report)))?;
    Ok(report)
}

/// Routes one reply into its client's state machine.
fn on_reply(
    c: &mut Client,
    reply: Reply,
    now: u64,
    report: &mut FleetReport,
) -> Result<(), String> {
    let op_idx = (reply.request_id.0 & 0xFFFF_FFFF) as usize;
    if !c.waiting || op_idx != c.next_op {
        // A duplicate or straggler reply for an already-settled op.
        return Ok(());
    }
    match reply.outcome {
        Ok(_) => {
            report.latencies.push(now - c.first_sent + 1);
            if !matches!(c.ops[c.next_op].expect, Expected::Read) {
                report.mutations_acked += 1;
            }
            c.waiting = false;
            c.next_op += 1;
            c.ready_at = now + c.rng.gen_range(0..=1u64);
        }
        Err(ServeError::Overloaded { retry_after }) => {
            report.overloaded_replies += 1;
            c.resend_at = now + retry_after.max(backoff(c.attempts)) + c.jitter();
        }
        Err(ServeError::DeadlineExceeded { .. }) => {
            report.deadline_replies += 1;
            c.resend_at = now + backoff(c.attempts) + c.jitter();
        }
        Err(e) => {
            return Err(format!("client of tenant {} got a fatal serve error: {e}", c.tenant));
        }
    }
    Ok(())
}

/// Puts the client's current frame on the wire (or severs the connection,
/// for a causal batch under the disconnect fault) and arms the resend
/// timer with exponential backoff plus jitter.
fn send_current(
    c: &mut Client,
    cfg: &FleetConfig,
    now: u64,
    up: &mut Wire,
    net_rng: &mut ChaCha8Rng,
    report: &mut FleetReport,
) {
    let op = &c.ops[c.next_op];
    let f = &cfg.faults;
    if op.ingest && f.disconnect > 0.0 && c.rng.gen_bool(f.disconnect) {
        // Disconnect mid-batch: the request is lost with the link, and
        // the client hears nothing until it comes back.
        report.disconnects += 1;
        c.offline_until = now + f.disconnect_ticks.max(1);
    } else {
        up.send(net_rng, f, now, 0, op.bytes.clone(), report);
    }
    c.resend_at = now + cfg.resend_timeout + backoff(c.attempts) + c.jitter();
}

/// The teardown differential: a clean log scan, the exactly-once check
/// per mutation category, and state equivalence against a canonical
/// single-client replay of the surviving records.
fn verify_teardown(
    server: &mut Server<MemoryBackend>,
    spec: &cr_core::Specification,
    clients: &[Client],
    report: &mut FleetReport,
) -> Result<(), String> {
    let bytes = server
        .store()
        .backend()
        .read_log(SessionId(SESSION))
        .map_err(|e| format!("reading the durable log failed: {e}"))?;
    let (records, _, scan_err) = decode_log(&bytes);
    if let Some(e) = scan_err {
        return Err(format!("the durable log has a corrupt tail: {e}"));
    }

    let mut want_inputs = Vec::new();
    let mut want_keys = Vec::new();
    let mut want_revs = Vec::new();
    for c in clients {
        for op in &c.ops {
            match &op.expect {
                Expected::Read | Expected::Snapshot => {}
                Expected::Input(input) => want_inputs.push(input.clone()),
                Expected::Causal(keys) => want_keys.extend(keys.iter().copied()),
                Expected::Revs(revs) => want_revs.extend(revs.iter().cloned()),
            }
        }
    }
    let mut got_inputs = Vec::new();
    let mut got_keys = Vec::new();
    let mut got_revs = Vec::new();
    for r in &records {
        match r {
            LogRecord::Input(i) => got_inputs.push(i.clone()),
            LogRecord::Causal(ev) => got_keys.push(ev.stamp.dedup_key()),
            LogRecord::Revision(rev) => got_revs.push(rev.clone()),
            LogRecord::BatchMark { .. } | LogRecord::Snapshot(_) => {}
        }
    }
    exactly_once("user inputs", &want_inputs, &got_inputs)?;
    exactly_once("causal events", &want_keys, &got_keys)?;
    exactly_once("plain revisions", &want_revs, &got_revs)?;

    let store_cfg = *server.store().config();
    let mut reference =
        reference_of(&store_cfg.resolution, store_cfg.policy, spec, &records);
    let session = server
        .store_mut()
        .session(SessionId(SESSION))
        .map_err(|e| format!("touching the served session failed: {e}"))?;
    verify_recovery(session, &mut reference)
        .map_err(|e| format!("final state diverged from the canonical single-client replay: {e}"))?;
    report.recovery = server.store().recovery();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rid_roundtrips_client() {
        for c in 0..9 {
            assert_eq!(client_of(RequestId(rid(c, 7))), c);
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let cfg = FleetConfig { faults: ChannelFaults::faulty(), ..FleetConfig::default() };
        let a = run_fleet(&cfg).expect("fleet converges");
        let b = run_fleet(&cfg).expect("fleet converges");
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.serve, b.serve);
    }
}
