/root/repo/target/debug/deps/conflict_resolution-bf6df65a2750d094.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconflict_resolution-bf6df65a2750d094.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
