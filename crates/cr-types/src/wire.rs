//! Wire-protocol envelope records for the serving layer.
//!
//! `cr-server` speaks a message-based request/response protocol over the
//! same hand-rolled binary codec the durable log uses
//! ([`crate::codec`]). This module holds the *transport-agnostic* half of
//! that protocol — the pieces that reference only `cr-types`: tenant and
//! request identities, deadlines measured in server ticks, idempotency
//! keys, and the versioned [`Envelope`] every request travels in. The
//! request/response *payloads* (which reference `cr-core` types) and the
//! full message codec live in `cr-server::proto`; both layers share the
//! decode-totality guarantee of the primitive codec: every byte string
//! decodes to a value or a typed [`CodecError`], never a panic.
//!
//! Time is a logical **tick** counter supplied by the serving harness, not
//! wall clock: deadlines and retry-after hints are absolute/relative tick
//! counts, which keeps every admission-control and timeout decision
//! deterministic and replayable under test.

use crate::codec::{CodecError, Dec, Enc};

/// A tenant — the unit admission control isolates. Each tenant owns a
/// token bucket and a bounded request queue on the server; one hot tenant
/// exhausts *its own* budget, never its neighbours'.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// A per-tenant request identity, chosen by the client. Replies echo it;
/// cancellation targets it. Distinct in-flight requests of one tenant must
/// use distinct ids (a retry of the *same* logical request reuses the id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// An idempotency key for mutating requests. A client retrying a mutation
/// (because its reply was lost) sends the same key; the server's ledger
/// replays the recorded reply instead of applying the mutation twice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdemKey(pub u64);

/// The versioned envelope every request travels in: who is asking
/// (tenant), what session they target, which logical request this is, by
/// when it must be answered, and — for mutations — the idempotency key
/// retries are deduplicated under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Client-chosen request identity, echoed in the reply.
    pub request_id: RequestId,
    /// The tenant whose admission budget this request spends.
    pub tenant: TenantId,
    /// The durable session the request targets (a `cr-store` session id).
    pub session: u64,
    /// Absolute server tick after which the request is dead: a request
    /// still queued at its deadline is cancelled at dequeue time, and a
    /// multi-phase read that crosses it mid-request stops early. `None`
    /// lets the server stamp its configured default.
    pub deadline: Option<u64>,
    /// Idempotency key for mutating requests (`None` for reads).
    pub idempotency: Option<IdemKey>,
}

/// Encodes an [`Envelope`] body (no version byte — the enclosing message
/// carries the protocol version).
pub fn encode_envelope(e: &mut Enc, env: &Envelope) {
    e.put_varint(env.request_id.0);
    e.put_varint(u64::from(env.tenant.0));
    e.put_varint(env.session);
    match env.deadline {
        None => e.put_u8(0),
        Some(at) => {
            e.put_u8(1);
            e.put_varint(at);
        }
    }
    match env.idempotency {
        None => e.put_u8(0),
        Some(key) => {
            e.put_u8(1);
            e.put_varint(key.0);
        }
    }
}

fn get_opt_varint(d: &mut Dec<'_>, what: &'static str) -> Result<Option<u64>, CodecError> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(d.varint()?)),
        tag => Err(CodecError::BadTag { what, tag }),
    }
}

/// Decodes an [`Envelope`] body.
pub fn decode_envelope(d: &mut Dec<'_>) -> Result<Envelope, CodecError> {
    let request_id = RequestId(d.varint()?);
    let tenant =
        TenantId(u32::try_from(d.varint()?).map_err(|_| CodecError::BadVarint)?);
    let session = d.varint()?;
    let deadline = get_opt_varint(d, "Envelope::deadline")?;
    let idempotency = get_opt_varint(d, "Envelope::idempotency")?.map(IdemKey);
    Ok(Envelope { request_id, tenant, session, deadline, idempotency })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrips() {
        let cases = [
            Envelope {
                request_id: RequestId(0),
                tenant: TenantId(0),
                session: 0,
                deadline: None,
                idempotency: None,
            },
            Envelope {
                request_id: RequestId(u64::MAX),
                tenant: TenantId(u32::MAX),
                session: 981,
                deadline: Some(1 << 40),
                idempotency: Some(IdemKey(7)),
            },
        ];
        for env in &cases {
            let mut e = Enc::new();
            encode_envelope(&mut e, env);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(&decode_envelope(&mut d).unwrap(), env);
            d.finish().unwrap();
        }
    }

    #[test]
    fn envelope_truncation_is_typed() {
        let env = Envelope {
            request_id: RequestId(300),
            tenant: TenantId(2),
            session: 5,
            deadline: Some(129),
            idempotency: Some(IdemKey(1 << 50)),
        };
        let mut e = Enc::new();
        encode_envelope(&mut e, &env);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(
                matches!(decode_envelope(&mut d), Err(CodecError::Truncated { .. })),
                "cut at {cut} must be a typed truncation"
            );
        }
    }

    #[test]
    fn bad_option_tag_is_typed() {
        let mut e = Enc::new();
        e.put_varint(1); // request id
        e.put_varint(1); // tenant
        e.put_varint(1); // session
        e.put_u8(7); // bogus option tag
        let bytes = e.into_bytes();
        assert!(matches!(
            decode_envelope(&mut Dec::new(&bytes)),
            Err(CodecError::BadTag { what: "Envelope::deadline", .. })
        ));
    }
}
