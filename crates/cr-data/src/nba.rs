//! Simulated NBA player-statistics dataset (Section VI, "(1) NBA player
//! statistics").
//!
//! The original data joined databasebasketball.com player/stat tables with a
//! Wikipedia arena table: 19 573 tuples for 760 players (2–136 tuples each,
//! ≈27 on average) over schema `(pid, name, true_name, team, league, tname,
//! points, poss, allpoints, min, arena, opened, capacity, city)`, with 54
//! currency constraints — 15 team-rename chains (ϕ1-form), 32 arena moves
//! (ϕ2-form), 4 `allpoints`-monotone propagation rules (ϕ3-form, for
//! `points`, `poss`, `min`, `tname`) and 3 arena-propagation rules (ϕ4-form,
//! for `opened`, `capacity`, `city`) — plus 58 `arena → city` constant CFDs.
//!
//! This generator reproduces those shape statistics over a synthetic league
//! (see DESIGN.md §3 for the substitution argument). The ϕ3/ϕ4 premises use
//! `t1[B] != t2[B]` (the PDF's `t1[B] = t2[B]` is a typographic loss of the
//! negation — with equality the conclusion would be vacuous).

use std::sync::Arc;

use rand::prelude::*;

use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
use cr_constraints::{ConstantCfd, CurrencyConstraint};
use cr_types::{EntityInstance, Schema, Tuple, Value};

use crate::gen_util::{rng, skewed_size};
use crate::Dataset;

/// Number of teams in the synthetic league.
const TEAMS: usize = 30;
/// Arena pool size — every arena has an `arena → city` CFD (58 in the paper).
const ARENAS: usize = 58;
/// Seasons covered (2005/06 – 2010/11 in the paper).
const SEASONS: usize = 6;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct NbaConfig {
    /// Number of players (entities). The paper's table has 760.
    pub entities: usize,
    /// Minimum tuples per entity (paper: 2).
    pub min_tuples: usize,
    /// Maximum tuples per entity (paper: 136).
    pub max_tuples: usize,
    /// Mean target (paper: ≈27).
    pub mean_tuples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NbaConfig {
    fn default() -> Self {
        NbaConfig { entities: 760, min_tuples: 2, max_tuples: 136, mean_tuples: 27, seed: 0x2005 }
    }
}

/// The NBA schema.
pub fn schema() -> Arc<Schema> {
    Schema::new(
        "nba",
        [
            "pid", "name", "true_name", "team", "league", "tname", "points", "poss",
            "allpoints", "min", "arena", "opened", "capacity", "city",
        ],
    )
    .expect("static schema")
}

/// The league's static structure: teams, renames, arena histories.
struct League {
    /// Per team: tname history (1–2 names) and arena history (1–3 arenas,
    /// indices into the arena pool).
    team_tnames: Vec<Vec<String>>,
    team_arenas: Vec<Vec<usize>>,
    /// Per arena: (opened year, capacity, city label).
    arena_info: Vec<(i64, i64, String)>,
}

fn build_league(seed: u64) -> League {
    let mut r = rng(seed ^ 0xA12EA);
    // Arena info: opened years and capacities strictly increase with the
    // global arena index so that per-team move chains (which always move to
    // a higher index) can never create cross-chain value cycles.
    let arena_info: Vec<(i64, i64, String)> = (0..ARENAS)
        .map(|i| {
            (
                1950 + i as i64, // opened
                10_000 + 250 * i as i64,
                format!("city_{i}"),
            )
        })
        .collect();

    // 15 renamed teams (one rename each) → 15 ϕ1-style constraints.
    let team_tnames: Vec<Vec<String>> = (0..TEAMS)
        .map(|t| {
            if t < 15 {
                vec![format!("tname_{t}_old"), format!("tname_{t}_new")]
            } else {
                vec![format!("tname_{t}")]
            }
        })
        .collect();

    // Arena histories: 32 moves in total. Teams 0..2 move twice (2 moves
    // each = 6), teams 3..28 move once (26) → 32 pairs. Chains use strictly
    // increasing arena indices.
    let mut team_arenas = Vec::with_capacity(TEAMS);
    let mut next_arena = 0usize;
    for t in 0..TEAMS {
        let moves = if t < 3 {
            2
        } else if t < 29 {
            1
        } else {
            0
        };
        let mut chain = Vec::with_capacity(moves + 1);
        for _ in 0..=moves {
            chain.push(next_arena % ARENAS);
            next_arena += 1;
        }
        // Ensure increasing order within the chain even after wrap-around.
        chain.sort_unstable();
        chain.dedup();
        if chain.len() < moves + 1 {
            // Wrap-around collision: extend deterministically.
            while chain.len() < moves + 1 {
                let last = *chain.last().expect("non-empty");
                chain.push((last + 1) % ARENAS);
                chain.sort_unstable();
                chain.dedup();
            }
        }
        team_arenas.push(chain);
    }
    let _ = r.gen::<u64>(); // keep the RNG stream position stable for future use
    League { team_tnames, team_arenas, arena_info }
}

/// Builds the 54 currency constraints.
pub fn sigma(schema: &Arc<Schema>) -> Vec<CurrencyConstraint> {
    let league = build_league(0);
    let mut out = Vec::with_capacity(54);
    // 15 tname renames (ϕ1-form).
    for names in league.team_tnames.iter().filter(|n| n.len() == 2) {
        out.push(
            parse_currency_constraint(
                schema,
                &format!(
                    r#"t1[tname] = "{}" && t2[tname] = "{}" -> t1 <[tname] t2"#,
                    names[0], names[1]
                ),
            )
            .expect("static"),
        );
    }
    // 32 arena moves (ϕ2-form).
    for chain in &league.team_arenas {
        for w in chain.windows(2) {
            out.push(
                parse_currency_constraint(
                    schema,
                    &format!(
                        r#"t1[arena] = "arena_{}" && t2[arena] = "arena_{}" -> t1 <[arena] t2"#,
                        w[0], w[1]
                    ),
                )
                .expect("static"),
            );
        }
    }
    // 4 allpoints-monotone propagation rules (ϕ3-form).
    for b in ["points", "poss", "min", "tname"] {
        out.push(
            parse_currency_constraint(
                schema,
                &format!("t1[allpoints] < t2[allpoints] && t1[{b}] != t2[{b}] -> t1 <[{b}] t2"),
            )
            .expect("static"),
        );
    }
    // 3 arena propagation rules (ϕ4-form). The paper's B-list is "opened,
    // capacity and years"; `city` is deliberately NOT propagated by currency
    // constraints — pinning it is the CFDs' job, which is what makes Γ
    // matter for NBA (Fig. 8(f) vs 8(g)). `team` substitutes for the
    // schema-less "years".
    for b in ["opened", "capacity", "team"] {
        out.push(
            parse_currency_constraint(
                schema,
                &format!("t1 <[arena] t2 && t1[{b}] != t2[{b}] -> t1 <[{b}] t2"),
            )
            .expect("static"),
        );
    }
    debug_assert_eq!(out.len(), 54);
    out
}

/// Builds the 58 `arena → city` constant CFDs.
pub fn gamma(schema: &Arc<Schema>) -> Vec<ConstantCfd> {
    let league = build_league(0);
    (0..ARENAS)
        .flat_map(|i| {
            parse_cfds(
                schema,
                &format!(
                    "arena = \"arena_{i}\" -> city = \"{}\"",
                    league.arena_info[i].2
                ),
            )
            .expect("static")
        })
        .collect()
}

/// Generates an NBA dataset.
pub fn generate(config: NbaConfig) -> Dataset {
    let sizes: Vec<usize> = {
        let mut r = rng(config.seed);
        (0..config.entities)
            .map(|_| skewed_size(&mut r, config.min_tuples, config.max_tuples, config.mean_tuples))
            .collect()
    };
    generate_with_sizes(&sizes, config.seed)
}

/// Generates one player per requested instance size (used by the Fig. 8
/// size-bin sweeps). Sizes are approximate: the occasional staleness filter
/// may remove a few rows.
pub fn generate_with_sizes(sizes: &[usize], seed: u64) -> Dataset {
    let s = schema();
    let league = build_league(0);
    let mut r = rng(seed ^ 0x5EA50);
    let mut entities = Vec::with_capacity(sizes.len());
    for (pid, &size) in sizes.iter().enumerate() {
        entities.push(generate_player(&s, &league, pid, size.max(2), &mut r));
    }
    Dataset {
        name: "NBA".to_string(),
        schema: s.clone(),
        sigma: sigma(&s),
        gamma: gamma(&s),
        entities,
        table: None,
        program: std::sync::OnceLock::new(),
    }
    .share_value_table()
}

/// One season snapshot of a player.
struct SeasonRow {
    team: usize,
    tname: String,
    points: i64,
    poss: i64,
    min: i64,
    allpoints: i64,
    arena: usize,
}

fn generate_player(
    schema: &Arc<Schema>,
    league: &League,
    pid: usize,
    size: usize,
    r: &mut rand_chacha::ChaCha8Rng,
) -> (EntityInstance, Tuple) {
    let name = format!("player_{pid}");
    let seasons = r.gen_range(2..=SEASONS);

    // Career: 1–3 team stints (the paper notes players carry multiple teams
    // after the joins). Within a stint the arena advances through the
    // team's move chain; per-season stats are globally distinct so ϕ3
    // cannot cycle, and teams are never revisited so tname cannot either.
    let stints = r.gen_range(1..=3usize.min(seasons));
    let mut teams: Vec<usize> = Vec::new();
    while teams.len() < stints {
        let t = r.gen_range(0..TEAMS);
        if !teams.contains(&t) {
            teams.push(t);
        }
    }
    let mut allpoints = 0i64;
    let mut rows: Vec<SeasonRow> = Vec::with_capacity(seasons);
    for s_idx in 0..seasons {
        let stint = (s_idx * stints) / seasons;
        let team = teams[stint];
        let tnames = &league.team_tnames[team];
        let arenas = &league.team_arenas[team];
        let points = r.gen_range(200..2500i64) * 10 + s_idx as i64; // distinct per season
        let poss = r.gen_range(500..4000i64) * 10 + s_idx as i64;
        let minutes = r.gen_range(500..3000i64) * 10 + s_idx as i64;
        allpoints += points;
        // Season position within the stint drives renames and arena moves.
        let stint_start = (stint * seasons).div_ceil(stints);
        let stint_end = ((stint + 1) * seasons).div_ceil(stints); // exclusive
        let stint_len = (stint_end - stint_start).max(1);
        let pos = s_idx - stint_start;
        let tname = if tnames.len() == 2 && pos + 1 >= stint_len {
            tnames[1].clone()
        } else {
            tnames[0].clone()
        };
        let arena_pos = (pos * arenas.len()) / stint_len;
        rows.push(SeasonRow {
            team,
            tname,
            points,
            poss,
            min: minutes,
            allpoints,
            arena: arenas[arena_pos.min(arenas.len() - 1)],
        });
    }

    let to_tuple = |row: &SeasonRow, variant: bool, allow_null: bool, r: &mut rand_chacha::ChaCha8Rng| {
        let (opened, capacity, city) = &league.arena_info[row.arena];
        let mut vals = vec![
            Value::int(pid as i64),
            Value::str(&name),
            Value::str(format!("Player {pid}")),
            Value::str(format!("TEAM_{}", row.team)),
            Value::str("NBA"),
            Value::str(&row.tname),
            Value::int(row.points),
            Value::int(row.poss),
            Value::int(row.allpoints),
            Value::int(row.min),
            Value::str(format!("arena_{}", row.arena)),
            Value::int(*opened),
            Value::int(*capacity),
            Value::str(city),
        ];
        if variant {
            // Source variation, as in the paper's three overlapping
            // scrapes: occasionally a stat is missing or disagrees by a
            // little. Jitter stays within the ±4 band around the base value
            // (bases are spaced 10 apart per season), and `allpoints` is
            // untouched, so the ϕ3 rules cannot cycle; same-season variants
            // share `allpoints` and are therefore simply *unordered* —
            // genuine ambiguity only user input settles.
            for slot in [7usize, 9] {
                if r.gen_bool(0.08) {
                    if let Value::Int(v) = vals[slot] {
                        vals[slot] = Value::int(v + [-2i64, 2, 4][r.gen_range(0..3usize)]);
                    }
                }
            }
            if allow_null && r.gen_bool(0.3) {
                let slot = [7usize, 9, 11, 12][r.gen_range(0..4usize)];
                vals[slot] = Value::Null;
            }
        }
        Tuple::from_values(vals)
    };

    let truth = to_tuple(rows.last().expect("season"), false, false, r);

    // Instance: `size` rows sampled over the seasons (duplicates model the
    // three overlapping sources), always containing the oldest season and
    // (usually) the latest. Missing stats only occur in oldest-season rows:
    // the ϕ3/ϕ4 propagation rules order stat values along the allpoints /
    // arena timelines, and a null ranked above a present value would make
    // the specification unsatisfiable under the null-lowest semantics.
    let mut tuples = Vec::with_capacity(size);
    tuples.push(to_tuple(&rows[0], false, false, r));
    for _ in 1..size {
        let season = r.gen_range(0..rows.len());
        let row = &rows[season];
        tuples.push(to_tuple(row, true, season == 0, r));
    }
    // With probability 0.10 remove every latest-season row, making the
    // truth partially unreachable without user input.
    if r.gen_bool(0.10) && rows.len() >= 2 {
        let last_ap = rows.last().expect("season").allpoints;
        let ap_attr = schema.attr_id("allpoints").expect("attr");
        let filtered: Vec<Tuple> = tuples
            .iter()
            .filter(|t| t.get(ap_attr) != &Value::int(last_ap))
            .cloned()
            .collect();
        if filtered.len() >= 2 {
            tuples = filtered;
        }
    }
    let entity = EntityInstance::new(schema.clone(), tuples).expect("arity");
    (entity, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::isvalid::is_valid;

    #[test]
    fn constraint_counts_match_the_paper() {
        let s = schema();
        assert_eq!(sigma(&s).len(), 54);
        assert_eq!(gamma(&s).len(), 58);
        assert_eq!(s.arity(), 14);
    }

    #[test]
    fn generated_specs_are_valid() {
        let ds = generate(NbaConfig { entities: 15, seed: 3, ..Default::default() });
        for i in 0..ds.len() {
            assert!(is_valid(&ds.spec(i)).valid, "player {i} must be valid");
        }
    }

    #[test]
    fn shape_statistics_are_close_to_the_paper() {
        let ds = generate(NbaConfig::default());
        let stats = ds.stats();
        assert_eq!(stats.entities, 760);
        assert!(stats.min_tuples >= 2);
        assert!(stats.max_tuples <= 136);
        assert!(
            (15.0..45.0).contains(&stats.avg_tuples),
            "avg {} should be near the paper's 27",
            stats.avg_tuples
        );
        assert_eq!(stats.sigma, 54);
        assert_eq!(stats.gamma, 58);
    }

    #[test]
    fn allpoints_is_monotone_with_seasons() {
        let ds = generate(NbaConfig { entities: 5, seed: 1, ..Default::default() });
        let ap = ds.schema.attr_id("allpoints").unwrap();
        let pts = ds.schema.attr_id("points").unwrap();
        for (e, truth) in &ds.entities {
            let truth_ap = match truth.get(ap) {
                Value::Int(v) => *v,
                _ => panic!("allpoints is an int"),
            };
            for t in e.tuples() {
                if let Value::Int(v) = t.get(ap) {
                    assert!(*v <= truth_ap, "no instance row can outscore the truth");
                }
                let _ = t.get(pts);
            }
        }
    }
}
