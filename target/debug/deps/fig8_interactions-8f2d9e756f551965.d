/root/repo/target/debug/deps/fig8_interactions-8f2d9e756f551965.d: crates/cr-bench/src/bin/fig8_interactions.rs

/root/repo/target/debug/deps/libfig8_interactions-8f2d9e756f551965.rmeta: crates/cr-bench/src/bin/fig8_interactions.rs

crates/cr-bench/src/bin/fig8_interactions.rs:
