//! Fig. 8(c)/(d): overall conflict-resolution time, broken into validity
//! checking, true-value deducing and suggestion generation.
//!
//! Paper shape: validity checking (the SAT call) dominates; deducing takes
//! the least; one full interaction round on NBA ≈ 380 ms, Person entities
//! of 8k–10k tuples ≈ 7 s in total.
//!
//! Run: `cargo run --release -p cr-bench --bin fig8cd_overall [--full]`.

use std::time::Duration;

use cr_bench::{arg_flag, arg_seed, bin_sizes, ms, nba_bins, person_bins, print_table};
use cr_core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use cr_data::{nba, person, Dataset};

fn measure(ds: &Dataset) -> (Duration, Duration, Duration) {
    let resolver = Resolver::new(ResolutionConfig { max_rounds: 3, ..Default::default() });
    let (mut v, mut d, mut s) = (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    for i in 0..ds.len() {
        let mut oracle = GroundTruthOracle::with_cap(ds.truth(i).clone(), 1);
        let outcome = resolver.resolve(&ds.spec(i), &mut oracle);
        for round in &outcome.rounds {
            v += round.validity;
            d += round.deduce;
            s += round.suggest;
        }
    }
    let n = ds.len() as u32;
    (v / n, d / n, s / n)
}

fn main() {
    let seed = arg_seed(8);
    let full = arg_flag("full");
    let reps = 3;

    let mut rows = Vec::new();
    for (label, lo, hi) in nba_bins() {
        let ds = nba::generate_with_sizes(&bin_sizes(lo.max(2), hi, reps), seed);
        let (v, d, s) = measure(&ds);
        rows.push(vec!["NBA".into(), label, ms(v), ms(d), ms(s), ms(v + d + s)]);
    }
    for (label, lo, hi) in person_bins(full) {
        let ds = person::generate_with_sizes(&bin_sizes(lo, hi, reps), seed);
        let (v, d, s) = measure(&ds);
        rows.push(vec!["Person".into(), label, ms(v), ms(d), ms(s), ms(v + d + s)]);
    }
    print_table(
        "Fig. 8(c)/(d) — overall time per entity (all interaction rounds)",
        &["dataset", "bin", "validity (ms)", "deduce (ms)", "suggest (ms)", "total (ms)"],
        &rows,
    );
    println!("\npaper shape: validity dominates, deduce is the cheapest phase");
    println!("paper reference: one NBA round ≈ 380 ms; Person [8001,10000] ≈ 7 s total");
}
