//! Fig. 8(a): validity-checking time vs entity-instance size.
//!
//! Paper series: NBA bins \[1,27\]…\[109,135\] with |Σ|=54, |Γ|=58 (≈220 ms at
//! the top bin on 2013 hardware); Person bins \[1,2000\]…\[8001,10000\] with
//! |Σ|=983, |Γ|=1000 (≈4.7 s at the top bin). The *shape* to reproduce:
//! time grows superlinearly with instance size and is dominated by the SAT
//! check; absolute numbers differ with hardware.
//!
//! Run: `cargo run --release -p cr-bench --bin fig8a_validity [--full]`.

use cr_bench::{arg_flag, arg_seed, bin_sizes, ms, nba_bins, person_bins, print_table, time_phases};
use cr_data::{nba, person};

fn main() {
    let seed = arg_seed(8);
    let full = arg_flag("full");
    let reps = 3;

    let mut rows = Vec::new();
    for (label, lo, hi) in nba_bins() {
        let sizes = bin_sizes(lo.max(2), hi, reps);
        let ds = nba::generate_with_sizes(&sizes, seed);
        let mut total = std::time::Duration::ZERO;
        for i in 0..ds.len() {
            total += time_phases(&ds.spec(i)).validity;
        }
        rows.push(vec![
            "NBA".into(),
            label,
            format!("{}", ds.stats().avg_tuples as usize),
            ms(total / ds.len() as u32),
        ]);
    }
    for (label, lo, hi) in person_bins(full) {
        let sizes = bin_sizes(lo, hi, reps);
        let ds = person::generate_with_sizes(&sizes, seed);
        let mut total = std::time::Duration::ZERO;
        for i in 0..ds.len() {
            total += time_phases(&ds.spec(i)).validity;
        }
        rows.push(vec![
            "Person".into(),
            label,
            format!("{}", ds.stats().avg_tuples as usize),
            ms(total / ds.len() as u32),
        ]);
    }
    print_table(
        "Fig. 8(a) — validity checking (IsValid = encode + SAT), avg per entity",
        &["dataset", "bin", "avg tuples", "time (ms)"],
        &rows,
    );
    println!(
        "\npaper reference: NBA [109,135] ≈ 220 ms; Person [8001,10000] ≈ 4700 ms (2013 hardware)"
    );
    if !full {
        println!("note: Person bins at 1/10 scale; pass --full for paper-scale sizes");
    }
}
