/root/repo/target/debug/deps/cr_bench-0299443365a9fff1.d: crates/cr-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcr_bench-0299443365a9fff1.rmeta: crates/cr-bench/src/lib.rs Cargo.toml

crates/cr-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
