/root/repo/target/debug/deps/fig8cd_overall-f7225361d0f6c1d4.d: crates/cr-bench/src/bin/fig8cd_overall.rs

/root/repo/target/debug/deps/fig8cd_overall-f7225361d0f6c1d4: crates/cr-bench/src/bin/fig8cd_overall.rs

crates/cr-bench/src/bin/fig8cd_overall.rs:
