/root/repo/target/debug/deps/cr_bench-f5f88d5ee94d814a.d: crates/cr-bench/src/lib.rs

/root/repo/target/debug/deps/cr_bench-f5f88d5ee94d814a: crates/cr-bench/src/lib.rs

crates/cr-bench/src/lib.rs:
