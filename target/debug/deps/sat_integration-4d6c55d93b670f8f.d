/root/repo/target/debug/deps/sat_integration-4d6c55d93b670f8f.d: tests/sat_integration.rs

/root/repo/target/debug/deps/sat_integration-4d6c55d93b670f8f: tests/sat_integration.rs

tests/sat_integration.rs:
