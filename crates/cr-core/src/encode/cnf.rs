//! `ConvertToCNF`: from instance constraints to the CNF Φ(Se).

use std::collections::HashMap;

use cr_sat::{Cnf, Lit, Var};
use cr_types::{AttrId, AttrValueSpace, Value, ValueId};

use super::omega::{instantiate, Conclusion, InstanceConstraint, OrderAtom};
use super::EncodeOptions;
use crate::spec::Specification;

/// The encoded form of a specification: the CNF `Φ(Se)`, the value spaces,
/// the variable table for order atoms and the instance constraints Ω(Se)
/// they came from. All downstream algorithms (`IsValid`, `DeduceOrder`,
/// `Suggest`, the exact true-value queries) run off this struct.
pub struct EncodedSpec {
    space: AttrValueSpace,
    vars: HashMap<OrderAtom, Var>,
    atoms: Vec<OrderAtom>,
    cnf: Cnf,
    omega: Vec<InstanceConstraint>,
}

impl EncodedSpec {
    /// Encodes `spec` with default options.
    pub fn encode(spec: &Specification) -> Self {
        Self::encode_with(spec, EncodeOptions::default())
    }

    /// Encodes `spec` with explicit [`EncodeOptions`].
    pub fn encode_with(spec: &Specification, options: EncodeOptions) -> Self {
        let inst = instantiate(spec);
        let mut enc = EncodedSpec {
            space: inst.space,
            vars: HashMap::new(),
            atoms: Vec::new(),
            cnf: Cnf::new(),
            omega: inst.omega,
        };

        // Variables for every ordered pair of distinct values — either over
        // the whole space (paper encoding) or lazily over the values that
        // occur in Ω(Se).
        if options.full_transitivity {
            for attr in (0..enc.space.arity() as u16).map(AttrId) {
                let n = enc.space.attr(attr).len() as u32;
                for a in 0..n {
                    for b in 0..n {
                        if a != b {
                            enc.var(OrderAtom { attr, lo: ValueId(a), hi: ValueId(b) });
                        }
                    }
                }
            }
        } else {
            let omega = std::mem::take(&mut enc.omega);
            for c in &omega {
                for atom in &c.premise {
                    enc.var(*atom);
                    enc.var(OrderAtom { attr: atom.attr, lo: atom.hi, hi: atom.lo });
                }
                if let Conclusion::Atom(atom) = c.conclusion {
                    enc.var(atom);
                    enc.var(OrderAtom { attr: atom.attr, lo: atom.hi, hi: atom.lo });
                }
            }
            enc.omega = omega;
        }

        // Ω(Se) clauses.
        let omega = std::mem::take(&mut enc.omega);
        for c in &omega {
            let premise: Vec<Lit> = c.premise.iter().map(|a| enc.var(*a).positive()).collect();
            match c.conclusion {
                Conclusion::Atom(atom) => {
                    let concl = enc.var(atom).positive();
                    enc.cnf.add_implication(&premise, concl);
                }
                Conclusion::False => enc.cnf.add_negated_conjunction(&premise),
            }
        }
        enc.omega = omega;

        // Transitivity and asymmetry per attribute, over the realised
        // variable set.
        let mut per_attr: Vec<Vec<ValueId>> = vec![Vec::new(); enc.space.arity()];
        for atom in &enc.atoms {
            per_attr[atom.attr.index()].push(atom.lo);
            per_attr[atom.attr.index()].push(atom.hi);
        }
        for (ai, vals) in per_attr.iter_mut().enumerate() {
            vals.sort_unstable();
            vals.dedup();
            let attr = AttrId(ai as u16);
            // Asymmetry: ¬x_ab ∨ ¬x_ba for unordered pairs; optionally
            // totality: x_ab ∨ x_ba (see EncodeOptions::totality).
            for (i, &a) in vals.iter().enumerate() {
                for &b in &vals[i + 1..] {
                    if let (Some(&xab), Some(&xba)) = (
                        enc.vars.get(&OrderAtom { attr, lo: a, hi: b }),
                        enc.vars.get(&OrderAtom { attr, lo: b, hi: a }),
                    ) {
                        enc.cnf.add_clause([xab.negative(), xba.negative()]);
                        if options.totality {
                            enc.cnf.add_clause([xab.positive(), xba.positive()]);
                        }
                    }
                }
            }
            // Transitivity over realised triples.
            for &a in vals.iter() {
                for &b in vals.iter() {
                    if a == b {
                        continue;
                    }
                    let Some(&xab) = enc.vars.get(&OrderAtom { attr, lo: a, hi: b }) else {
                        continue;
                    };
                    for &c in vals.iter() {
                        if c == a || c == b {
                            continue;
                        }
                        let (Some(&xbc), Some(&xac)) = (
                            enc.vars.get(&OrderAtom { attr, lo: b, hi: c }),
                            enc.vars.get(&OrderAtom { attr, lo: a, hi: c }),
                        ) else {
                            continue;
                        };
                        enc.cnf
                            .add_clause([xab.negative(), xbc.negative(), xac.positive()]);
                    }
                }
            }
        }
        enc
    }

    /// Allocates (or returns) the variable for an order atom.
    fn var(&mut self, atom: OrderAtom) -> Var {
        if let Some(&v) = self.vars.get(&atom) {
            return v;
        }
        let v = self.cnf.new_var();
        debug_assert_eq!(v.index(), self.atoms.len());
        self.vars.insert(atom, v);
        self.atoms.push(atom);
        v
    }

    /// The CNF `Φ(Se)`.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// The instance constraints Ω(Se).
    pub fn omega(&self) -> &[InstanceConstraint] {
        &self.omega
    }

    /// The per-attribute value spaces (active domain + null).
    pub fn space(&self) -> &AttrValueSpace {
        &self.space
    }

    /// The variable encoding `lo ≺v_attr hi`, if allocated.
    pub fn var_of(&self, attr: AttrId, lo: ValueId, hi: ValueId) -> Option<Var> {
        self.vars.get(&OrderAtom { attr, lo, hi }).copied()
    }

    /// The order atom behind a variable.
    pub fn atom_of(&self, var: Var) -> OrderAtom {
        self.atoms[var.index()]
    }

    /// Number of order variables.
    pub fn num_order_vars(&self) -> usize {
        self.atoms.len()
    }

    /// Interned id of `value` in `attr`'s space.
    pub fn value_id(&self, attr: AttrId, value: &Value) -> Option<ValueId> {
        self.space.get(attr, value)
    }

    /// The value behind `(attr, id)`.
    pub fn value(&self, attr: AttrId, id: ValueId) -> &Value {
        self.space.value(attr, id)
    }

    /// Assumption literals asserting "`v` is the most current value of
    /// `attr`": every other value of the space sits strictly below `v`.
    /// Returns `None` if some required variable was not allocated (lazy
    /// encoding) — callers should fall back to the full encoding.
    pub fn top_assumptions(&self, attr: AttrId, v: ValueId) -> Option<Vec<Lit>> {
        let n = self.space.attr(attr).len() as u32;
        let mut lits = Vec::with_capacity(n as usize - 1);
        for o in 0..n {
            let o = ValueId(o);
            if o == v {
                continue;
            }
            lits.push(self.var_of(attr, o, v)?.positive());
        }
        Some(lits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
    use cr_sat::{SolveResult, Solver};
    use cr_types::{EntityInstance, Schema, Tuple};

    fn tiny_spec() -> Specification {
        let s = Schema::new("p", ["status", "job"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::str("nurse")]),
                Tuple::of([Value::str("retired"), Value::str("n/a")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[job] t2").unwrap(),
        ];
        Specification::without_orders(e, sigma, vec![])
    }

    #[test]
    fn full_encoding_allocates_all_pairs() {
        let spec = tiny_spec();
        let enc = EncodedSpec::encode(&spec);
        // Two attributes, two values each → 2·2·1 = 4 order vars.
        assert_eq!(enc.num_order_vars(), 4);
        // Sat: the chain working≺retired, nurse≺n/a is consistent.
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_derives_the_chain() {
        let spec = tiny_spec();
        let enc = EncodedSpec::encode(&spec);
        let mut up = cr_sat::UnitPropagator::new(enc.cnf());
        let implied = match up.run() {
            cr_sat::UpOutcome::Fixpoint { implied } => implied,
            cr_sat::UpOutcome::Conflict => panic!("valid spec"),
        };
        let status = spec.schema().attr_id("status").unwrap();
        let job = spec.schema().attr_id("job").unwrap();
        let sid = |v: &str| enc.value_id(status, &Value::str(v)).unwrap();
        let jid = |v: &str| enc.value_id(job, &Value::str(v)).unwrap();
        let x_status = enc.var_of(status, sid("working"), sid("retired")).unwrap();
        let x_job = enc.var_of(job, jid("nurse"), jid("n/a")).unwrap();
        assert!(implied.contains(&x_status.positive()));
        assert!(implied.contains(&x_job.positive()));
    }

    #[test]
    fn contradictory_base_orders_are_unsat() {
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![Tuple::of([Value::int(1)]), Tuple::of([Value::int(2)])],
        )
        .unwrap();
        let mut orders = crate::orders::PartialOrders::empty(1);
        orders.add(AttrId(0), cr_types::TupleId(0), cr_types::TupleId(1));
        orders.add(AttrId(0), cr_types::TupleId(1), cr_types::TupleId(0));
        let spec = Specification::new(e, orders, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn transitivity_closes_chains() {
        // a<b, b<c base orders; check a<c is implied (Φ ∧ ¬x_ac unsat).
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::int(1)]),
                Tuple::of([Value::int(2)]),
                Tuple::of([Value::int(3)]),
            ],
        )
        .unwrap();
        let mut orders = crate::orders::PartialOrders::empty(1);
        orders.add(AttrId(0), cr_types::TupleId(0), cr_types::TupleId(1));
        orders.add(AttrId(0), cr_types::TupleId(1), cr_types::TupleId(2));
        let spec = Specification::new(e, orders, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let a = AttrId(0);
        let id = |v: i64| enc.value_id(a, &Value::int(v)).unwrap();
        let x_ac = enc.var_of(a, id(1), id(3)).unwrap();
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(
            solver.solve_with_assumptions(&[x_ac.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn lazy_encoding_matches_full_on_validity() {
        let spec = tiny_spec();
        let full = EncodedSpec::encode(&spec);
        let lazy = EncodedSpec::encode_with(&spec, EncodeOptions { full_transitivity: false, ..Default::default() });
        assert!(lazy.cnf().num_clauses() <= full.cnf().num_clauses());
        let mut s1 = Solver::from_cnf(full.cnf());
        let mut s2 = Solver::from_cnf(lazy.cnf());
        assert_eq!(s1.solve(), s2.solve());
    }

    #[test]
    fn cfd_plus_currency_derives_cross_attribute_values() {
        // Miniature of Example 2 steps (c)-(d): status chain forces the AC,
        // then the CFD forces the city.
        let s = Schema::new("p", ["status", "AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::int(212), Value::str("NY")]),
                Tuple::of([Value::str("retired"), Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[AC] t2").unwrap(),
        ];
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, sigma, gamma);
        let enc = EncodedSpec::encode(&spec);
        let city = spec.schema().attr_id("city").unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        let x = enc.var_of(city, ny, la).unwrap();
        // NY ≺ LA must be implied.
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(
            solver.solve_with_assumptions(&[x.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(solver.solve(), SolveResult::Sat);
    }
}
