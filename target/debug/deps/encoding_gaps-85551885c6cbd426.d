/root/repo/target/debug/deps/encoding_gaps-85551885c6cbd426.d: crates/cr-core/tests/encoding_gaps.rs

/root/repo/target/debug/deps/encoding_gaps-85551885c6cbd426: crates/cr-core/tests/encoding_gaps.rs

crates/cr-core/tests/encoding_gaps.rs:
