/root/repo/target/debug/deps/bench_incremental-881d2cf17fe6b23d.d: crates/cr-bench/src/bin/bench_incremental.rs

/root/repo/target/debug/deps/bench_incremental-881d2cf17fe6b23d: crates/cr-bench/src/bin/bench_incremental.rs

crates/cr-bench/src/bin/bench_incremental.rs:
