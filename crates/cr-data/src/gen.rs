//! Seeded randomized scenario generator for differential testing.
//!
//! Unlike the shape-faithful dataset emulators ([`nba`](crate::nba),
//! [`person`](crate::person), [`career`](crate::career)), this module
//! produces *adversarial* single-entity specifications with controllable
//! knobs — attribute count, instance width, value-space width, conflict
//! density, base-order density, constraint/CFD counts, nulls, and whether
//! the ground truth carries values outside the active domain ("new
//! values") — for property tests that compare resolution paths (lazy vs
//! eager axiom instantiation, incremental vs from-scratch) on inputs no
//! curated dataset would cover.
//!
//! Generation follows the paper's history model: every entity evolves along
//! a hidden timeline, each attribute stepping monotonically through a
//! ranked value pool (`conflict_density` controls how many states the
//! timeline visits, i.e. how wide the realised value space is). Currency
//! constraints are drawn consistent with that timeline — pattern
//! constraints order two ranked values, propagation constraints transfer
//! the order of one evolving attribute to another, the numeric attribute
//! gets the ϕ4-style comparison rule — so generated specifications are
//! almost always valid; CFDs sample attribute snapshots at random
//! timestamps and may genuinely conflict, which is part of the coverage
//! (both resolution paths must agree on invalid specifications too).

use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
use cr_core::causal::CausalRevision;
use cr_core::ingest::{Revision, RevisionSource, ScriptedRevisions};
use cr_core::{PartialOrders, Specification};
use cr_types::{AttrId, CausalStamp, EntityInstance, Schema, SourceClock, SourceId, Tuple, TupleId, Value};
use rand::prelude::*;

use crate::gen_util::rng;

/// Knobs of one randomized scenario (see the module docs).
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// RNG seed; equal configs generate identical scenarios.
    pub seed: u64,
    /// Total attributes (≥ 2): attribute 0 is numeric ("seq"), the rest are
    /// labelled string attributes.
    pub attrs: usize,
    /// Tuples in the entity instance (the history length).
    pub tuples: usize,
    /// Value-pool size per attribute — the width ceiling of the realised
    /// value space (wide domains are what lazy transitivity targets).
    pub domain: usize,
    /// Currency constraints to generate.
    pub sigma: usize,
    /// Constant CFDs to generate.
    pub gamma: usize,
    /// Fraction of (attribute, tuple-pair) combinations given a base
    /// currency order (consistent with the hidden timeline).
    pub order_density: f64,
    /// Fraction of the value pool the timeline actually visits per
    /// attribute (≥ 2 states ⇒ the attribute genuinely conflicts).
    pub conflict_density: f64,
    /// Per-cell probability of a missing (null) value.
    pub null_density: f64,
    /// When true, roughly half the attributes get a ground-truth value
    /// outside the active domain, so oracle answers exercise the
    /// out-of-domain extension (and CFD retraction) paths.
    pub new_value_answers: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0,
            attrs: 4,
            tuples: 8,
            domain: 6,
            sigma: 6,
            gamma: 2,
            order_density: 0.15,
            conflict_density: 0.6,
            null_density: 0.05,
            new_value_answers: false,
        }
    }
}

/// A generated scenario: the specification plus the simulated user's ground
/// truth (feed it to `GroundTruthOracle`).
pub struct Scenario {
    /// The single-entity specification.
    pub spec: Specification,
    /// Ground-truth current tuple (its values top the hidden timeline; with
    /// [`ScenarioConfig::new_value_answers`] some lie outside the active
    /// domain).
    pub truth: Tuple,
}

/// Generates one scenario from `cfg` (deterministic in `cfg`).
pub fn scenario(cfg: &ScenarioConfig) -> Scenario {
    let attrs = cfg.attrs.max(2);
    let tuples = cfg.tuples.max(1);
    let domain = cfg.domain.max(2);
    let mut r = rng(cfg.seed);

    let names: Vec<String> = std::iter::once("seq".to_string())
        .chain((1..attrs).map(|i| format!("a{i}")))
        .collect();
    let schema = Schema::new("scenario", names.iter().map(String::as_str)).unwrap();

    // Hidden timeline: each attribute visits `states[i]` of its `domain`
    // pool slots, stepping monotonically with the tuple timestamp.
    let states: Vec<usize> = (0..attrs)
        .map(|_| {
            let width = ((domain as f64) * cfg.conflict_density).round() as usize;
            width.clamp(2, domain).min(tuples.max(2))
        })
        .collect();
    let rank_at = |attr: usize, t: usize| -> usize {
        if tuples <= 1 {
            states[attr] - 1
        } else {
            states[attr].saturating_sub(1).min(states[attr] * t / tuples)
        }
    };
    let value_of = |attr: usize, rank: usize| -> Value {
        if attr == 0 {
            Value::int(rank as i64)
        } else {
            Value::str(format!("a{attr}_v{rank}"))
        }
    };

    // Entity instance: one tuple per timestamp, shuffled, with nulls mixed
    // in. Timestamp order is hidden from the instance (conflicts!).
    let mut stamps: Vec<usize> = (0..tuples).collect();
    stamps.shuffle(&mut r);
    let mut rows: Vec<Tuple> = Vec::with_capacity(tuples);
    for &t in &stamps {
        let values: Vec<Value> = (0..attrs)
            .map(|a| {
                if cfg.null_density > 0.0 && r.gen_bool(cfg.null_density.clamp(0.0, 1.0)) {
                    Value::Null
                } else {
                    value_of(a, rank_at(a, t))
                }
            })
            .collect();
        rows.push(Tuple::from_values(values));
    }
    // A scenario is a single-entity "dataset": intern its values into a
    // private table and (below) compile Σ/Γ against it once, so scenarios
    // exercise the compiled-program projection with dense-id constants
    // exactly like the shape-faithful dataset generators.
    let mut table = cr_types::ValueTable::new();
    table.intern_tuples(rows.iter());
    let entity = EntityInstance::with_table(schema.clone(), rows, &table).unwrap();

    // Base currency orders, consistent with the timeline: for a sampled
    // (attr, pair) the strictly older-ranked tuple sits below the newer.
    let mut orders = PartialOrders::empty(attrs);
    for a in 0..attrs {
        for i in 0..tuples {
            for j in 0..tuples {
                if i == j || !r.gen_bool(cfg.order_density.clamp(0.0, 1.0)) {
                    continue;
                }
                let (ri, rj) = (rank_at(a, stamps[i]), rank_at(a, stamps[j]));
                let attr = AttrId(a as u16);
                let (vi, vj) = (
                    entity.tuple(TupleId(i as u32)).get(attr),
                    entity.tuple(TupleId(j as u32)).get(attr),
                );
                if vi.is_null() || vj.is_null() {
                    continue;
                }
                if ri < rj {
                    orders.add(attr, TupleId(i as u32), TupleId(j as u32));
                } else if rj < ri {
                    orders.add(attr, TupleId(j as u32), TupleId(i as u32));
                }
            }
        }
    }

    // Currency constraints: pattern / propagation / numeric-comparison mix.
    let mut sigma = Vec::with_capacity(cfg.sigma);
    let mut numeric_done = false;
    for _ in 0..cfg.sigma {
        let form = r.gen_range(0..3u32);
        let text = match form {
            0 if !numeric_done => {
                numeric_done = true;
                "t1[seq] < t2[seq] -> t1 <[seq] t2".to_string()
            }
            1 if attrs > 1 => {
                // Pattern: two ranked values of one string attribute.
                let a = r.gen_range(1..attrs);
                if states[a] < 2 {
                    continue;
                }
                let lo = r.gen_range(0..states[a] - 1);
                let hi = r.gen_range(lo + 1..states[a]);
                format!(
                    "t1[{n}] = \"a{a}_v{lo}\" && t2[{n}] = \"a{a}_v{hi}\" -> t1 <[{n}] t2",
                    n = names[a]
                )
            }
            _ => {
                // Propagation between two distinct attributes.
                let a = r.gen_range(0..attrs);
                let mut b = r.gen_range(0..attrs);
                if a == b {
                    b = (b + 1) % attrs;
                }
                format!("t1 <[{}] t2 -> t1 <[{}] t2", names[a], names[b])
            }
        };
        sigma.push(parse_currency_constraint(&schema, &text).unwrap());
    }

    // CFDs: snapshot two attributes at a random timestamp. Snapshots at the
    // end of the timeline are truth-consistent derivation rules; earlier
    // ones may be dead (LHS dominated) or genuinely conflicting.
    let mut gamma = Vec::with_capacity(cfg.gamma);
    for _ in 0..cfg.gamma {
        if attrs < 2 {
            break;
        }
        let a = r.gen_range(1..attrs);
        let mut b = r.gen_range(1..attrs);
        if a == b {
            b = 1 + (b % (attrs - 1));
        }
        let t = r.gen_range(0..tuples);
        let text = format!(
            "{} = \"a{a}_v{}\" -> {} = \"a{b}_v{}\"",
            names[a],
            rank_at(a, t),
            names[b],
            rank_at(b, t),
        );
        gamma.extend(parse_cfds(&schema, &text).unwrap());
    }

    // Ground truth: the timeline's final state per attribute — or a value
    // beyond the pool when new-value answers are requested.
    let truth = Tuple::from_values(
        (0..attrs)
            .map(|a| {
                if cfg.new_value_answers && r.gen_bool(0.5) {
                    if a == 0 {
                        Value::int(domain as i64 + 1)
                    } else {
                        Value::str(format!("a{a}_new"))
                    }
                } else {
                    value_of(a, states[a] - 1)
                }
            })
            .collect(),
    );

    let spec = Specification::new(entity, orders, sigma, gamma);
    spec.set_compiled_program(std::sync::Arc::new(cr_core::CompiledProgram::compile(
        spec.sigma(),
        spec.gamma(),
        Some(&table),
    )));
    Scenario { spec, truth }
}

/// Knobs of a seeded **revision timeline**: a stream of upstream correction
/// events (CFD retractions, order withdrawals, value replacements, user
/// answer withdrawals) generated against a specification and spread over
/// the interaction rounds — the push-based ingestion counterpart of
/// [`ScenarioConfig`]. Feed the resulting source to
/// `Resolver::resolve_with_revisions` or the checked differential harness
/// (`cr_core::ingest::resolve_with_revisions_checked`).
#[derive(Clone, Debug)]
pub struct RevisionTimelineConfig {
    /// RNG seed; equal configs generate identical timelines.
    pub seed: u64,
    /// Scripted events to generate (the actually generated count can be
    /// lower when the specification has too few CFDs/orders to revise).
    pub events: usize,
    /// Rounds `0..rounds` over which the events are spread.
    pub rounds: usize,
    /// Batch-size knob: consecutive events are assigned to the *same*
    /// round in runs of `1..=burst`, so each poll hands the session a
    /// multi-event batch of roughly this size. `0`/`1` draw every event's
    /// round independently (the legacy per-event shape).
    pub burst: usize,
    /// Generate `RetractCfd` events (each CFD at most once).
    pub retract_cfds: bool,
    /// Generate `WithdrawOrder` events on the initial base orders.
    pub withdraw_orders: bool,
    /// Generate `ReplaceValue` events (shared, brand-new and null
    /// replacement values — exercising value revival, domain growth and
    /// retirement).
    pub replace_values: bool,
    /// Additionally withdraw one previously-given user answer per listed
    /// round (resolved dynamically at poll time — answer tuples only exist
    /// mid-resolution).
    pub withdraw_answer_rounds: Vec<usize>,
}

impl Default for RevisionTimelineConfig {
    fn default() -> Self {
        RevisionTimelineConfig {
            seed: 0,
            events: 4,
            rounds: 4,
            burst: 1,
            retract_cfds: true,
            withdraw_orders: true,
            replace_values: true,
            withdraw_answer_rounds: Vec::new(),
        }
    }
}

/// A seeded revision stream: a scripted timeline generated against the
/// initial specification, plus (optionally) dynamically-resolved user
/// answer withdrawals. Deterministic in its config.
pub struct GeneratedRevisions {
    script: ScriptedRevisions,
    withdraw_answer_rounds: Vec<usize>,
    initial_tuples: usize,
}

impl RevisionSource for GeneratedRevisions {
    fn poll(&mut self, round: usize, current: &Specification) -> Vec<Revision> {
        let mut out = self.script.poll(round, current);
        if self.withdraw_answer_rounds.contains(&round) {
            // Withdraw the earliest still-standing answer: the first
            // user-input tuple (ids beyond the initial instance) with a
            // non-null cell.
            'search: for t in self.initial_tuples..current.entity().len() {
                let tid = TupleId(t as u32);
                for attr in current.schema().attr_ids() {
                    if !current.entity().tuple(tid).get(attr).is_null() {
                        out.push(Revision::WithdrawAnswer { attr, tuple: tid });
                        break 'search;
                    }
                }
            }
        }
        out
    }
}

/// Generates a seeded revision timeline for `spec` (see
/// [`RevisionTimelineConfig`]). Event targets are drawn from the
/// specification's own structure: CFD retractions hit existing Γ indices
/// (each at most once), order withdrawals hit recorded base-order pairs
/// (each at most once), and value replacements pick an initial tuple and
/// attribute and rotate its value to a *shared* value (another tuple's),
/// a *brand-new* one, or null — covering revival, domain growth and
/// retirement of interned values.
pub fn revision_timeline(
    spec: &Specification,
    cfg: &RevisionTimelineConfig,
) -> GeneratedRevisions {
    let mut r = rng(cfg.seed ^ 0xC0FF_EE00_D00D_F00Du64);
    let entity = spec.entity();
    let arity = spec.schema().arity();

    let mut cfds: Vec<usize> = (0..spec.gamma().len()).collect();
    cfds.shuffle(&mut r);
    let mut orders: Vec<(AttrId, TupleId, TupleId)> = spec
        .schema()
        .attr_ids()
        .flat_map(|a| spec.orders().pairs(a).map(move |(t1, t2)| (a, t1, t2)))
        .collect();
    orders.shuffle(&mut r);

    let mut events: Vec<(usize, Revision)> = Vec::new();
    let mut fresh = 0usize;
    let rounds = cfg.rounds.max(1);
    // Burst state: `run_left` events still owed to `run_round` before the
    // next round draw — this is what makes polls multi-event batches.
    let burst = cfg.burst.max(1);
    let mut run_round = 0usize;
    let mut run_left = 0usize;
    for _ in 0..cfg.events {
        if run_left == 0 {
            run_round = r.gen_range(0..rounds);
            run_left = if burst > 1 { 1 + r.gen_range(0..burst) } else { 1 };
        }
        run_left -= 1;
        let round = run_round;
        // Pick an event kind with remaining candidates; replacement is
        // always available on non-empty entities.
        let kind = r.gen_range(0..3u32);
        let rev = match kind {
            0 if cfg.retract_cfds && !cfds.is_empty() => {
                Revision::RetractCfd { cfd: cfds.pop().expect("non-empty") }
            }
            1 if cfg.withdraw_orders && !orders.is_empty() => {
                let (attr, lo, hi) = orders.pop().expect("non-empty");
                Revision::WithdrawOrder { attr, lo, hi }
            }
            _ if cfg.replace_values && !entity.is_empty() => {
                let tuple = TupleId(r.gen_range(0..entity.len()) as u32);
                let attr = AttrId(r.gen_range(0..arity) as u16);
                let old = entity.tuple(tuple).get(attr);
                let value = match r.gen_range(0..4u32) {
                    // A value another tuple already carries (sharing or
                    // revival after an earlier replacement).
                    0 | 1 => {
                        let donor = TupleId(r.gen_range(0..entity.len()) as u32);
                        entity.tuple(donor).get(attr).clone()
                    }
                    // A brand-new value: grows the space mid-resolution.
                    2 => {
                        fresh += 1;
                        match old {
                            Value::Int(_) => Value::int(9_000 + fresh as i64),
                            _ => Value::str(format!("rev_{fresh}")),
                        }
                    }
                    // The source withdraws the cell entirely.
                    _ => Value::Null,
                };
                Revision::ReplaceValue { tuple, attr, value }
            }
            _ => continue,
        };
        events.push((round, rev));
    }

    GeneratedRevisions {
        script: ScriptedRevisions::new(events),
        withdraw_answer_rounds: cfg.withdraw_answer_rounds.clone(),
        initial_tuples: entity.len(),
    }
}

/// Knobs of a seeded **causal timeline**: a multi-source, causally-stamped
/// revision stream (the chaos-robust counterpart of
/// [`RevisionTimelineConfig`]). Every event carries a
/// `cr_types::CausalStamp` from its emitting source's `SourceClock`;
/// sources occasionally *sync* (observe another source's latest stamp),
/// creating genuine cross-source causal dependencies the delivery frontier
/// must respect. Event targets are globally unique for CFD retractions and
/// order withdrawals, so the canonical delivery of a clean timeline never
/// quarantines; value replacements deliberately revisit cells across
/// sources, producing causally-concurrent branch tips.
#[derive(Clone, Debug)]
pub struct CausalTimelineConfig {
    /// RNG seed; equal configs generate identical timelines.
    pub seed: u64,
    /// Remote correction sources (`SourceId(1)..=SourceId(sources)`;
    /// `SourceId(0)` is the local session).
    pub sources: usize,
    /// Events to generate (the actual count can be lower when the
    /// specification has too few CFDs/orders to revise).
    pub events: usize,
    /// Rounds `0..rounds` over which the canonical schedule is spread
    /// (nondecreasing with generation order, so canonical delivery is
    /// causally clean — zero buffering, zero duplicates).
    pub rounds: usize,
    /// Batch-size knob: round slots are drawn in runs of `1..=burst`
    /// events sharing one round, so each poll delivers a multi-event
    /// batch of roughly this size. `0`/`1` draw every slot independently
    /// (the legacy per-event shape).
    pub burst: usize,
    /// Per-event probability that the emitting source first observes
    /// another source's latest stamp (a causal dependency).
    pub sync_density: f64,
    /// Generate `RetractCfd` events (each CFD at most once, globally).
    pub retract_cfds: bool,
    /// Generate `WithdrawOrder` events (each base pair at most once,
    /// globally).
    pub withdraw_orders: bool,
    /// Generate `ReplaceValue` events (shared / brand-new / null values;
    /// repeated cells across sources are deliberate concurrency coverage).
    pub replace_values: bool,
}

impl Default for CausalTimelineConfig {
    fn default() -> Self {
        CausalTimelineConfig {
            seed: 0,
            sources: 3,
            events: 6,
            rounds: 3,
            burst: 1,
            sync_density: 0.35,
            retract_cfds: true,
            withdraw_orders: true,
            replace_values: true,
        }
    }
}

/// Generates a seeded causal timeline for `spec`: `(round, event)` pairs in
/// canonical order (generation order; rounds nondecreasing). Feed it to
/// `cr_core::causal::ScriptedCausalRevisions` for canonical delivery, or
/// through [`crate::chaos`] for adversarial delivery.
pub fn causal_timeline(
    spec: &Specification,
    cfg: &CausalTimelineConfig,
) -> Vec<(usize, CausalRevision)> {
    let mut r = rng(cfg.seed ^ 0xCA05_A117_BEEF_0001u64);
    let entity = spec.entity();
    let arity = spec.schema().arity();
    let sources = cfg.sources.max(1);

    let mut cfds: Vec<usize> = (0..spec.gamma().len()).collect();
    cfds.shuffle(&mut r);
    let mut orders: Vec<(AttrId, TupleId, TupleId)> = spec
        .schema()
        .attr_ids()
        .flat_map(|a| spec.orders().pairs(a).map(move |(t1, t2)| (a, t1, t2)))
        .collect();
    orders.shuffle(&mut r);

    // Emitter clocks plus each source's latest stamp (sync targets).
    let mut clocks: Vec<SourceClock> =
        (1..=sources).map(|s| SourceClock::new(SourceId(s as u32))).collect();
    let mut latest: Vec<Option<CausalStamp>> = vec![None; sources];

    // Canonical rounds: draw then sort, so generation order (= causal
    // order) is nondecreasing in rounds and delivers without buffering.
    // Bursts draw one round for a run of up to `burst` events, so polls
    // carry multi-event batches (sorting keeps runs contiguous).
    let rounds = cfg.rounds.max(1);
    let burst = cfg.burst.max(1);
    let mut slots: Vec<usize> = Vec::with_capacity(cfg.events);
    while slots.len() < cfg.events {
        let round = r.gen_range(0..rounds);
        let run = if burst > 1 { 1 + r.gen_range(0..burst) } else { 1 };
        for _ in 0..run.min(cfg.events - slots.len()) {
            slots.push(round);
        }
    }
    slots.sort_unstable();

    let mut events: Vec<(usize, CausalRevision)> = Vec::new();
    let mut fresh = 0usize;
    for tick in 0..cfg.events {
        let kind = r.gen_range(0..3u32);
        let rev = match kind {
            0 if cfg.retract_cfds && !cfds.is_empty() => {
                Revision::RetractCfd { cfd: cfds.pop().expect("non-empty") }
            }
            1 if cfg.withdraw_orders && !orders.is_empty() => {
                let (attr, lo, hi) = orders.pop().expect("non-empty");
                Revision::WithdrawOrder { attr, lo, hi }
            }
            _ if cfg.replace_values && !entity.is_empty() => {
                let tuple = TupleId(r.gen_range(0..entity.len()) as u32);
                let attr = AttrId(r.gen_range(0..arity) as u16);
                let old = entity.tuple(tuple).get(attr);
                let value = match r.gen_range(0..4u32) {
                    0 | 1 => {
                        let donor = TupleId(r.gen_range(0..entity.len()) as u32);
                        entity.tuple(donor).get(attr).clone()
                    }
                    2 => {
                        fresh += 1;
                        match old {
                            Value::Int(_) => Value::int(9_000 + fresh as i64),
                            _ => Value::str(format!("rev_{fresh}")),
                        }
                    }
                    _ => Value::Null,
                };
                Revision::ReplaceValue { tuple, attr, value }
            }
            _ => continue,
        };
        let src = r.gen_range(0..sources);
        // Occasional cross-source sync: the emitter observes another
        // source's latest stamp, so this event causally depends on it.
        if sources > 1 && r.gen_bool(cfg.sync_density.clamp(0.0, 1.0)) {
            let other = (src + 1 + r.gen_range(0..sources - 1)) % sources;
            if let Some(stamp) = &latest[other] {
                clocks[src].observe(stamp);
            }
        }
        let stamp = clocks[src].stamp(tick as u64 + 1);
        latest[src] = Some(stamp.clone());
        events.push((slots[events.len()], CausalRevision { stamp, rev }));
    }
    events
}

/// Knobs of a seeded **power-law dataset**: many independent entities
/// whose sizes follow a heavy-tailed (Pareto) distribution — the shape
/// the work-stealing scheduler (`cr_core::sched`) is built for. Most
/// entities are a few tuples (batched), a few are hundreds (split).
///
/// Unlike [`ScenarioConfig`] (one adversarial entity per call, private
/// value table, private Σ/Γ), a power-law dataset shares one value pool,
/// one Σ/Γ set and one [`cr_core::CompiledProgram`] across every entity,
/// like a real dataset would: entities differ only in their instance and
/// base orders. Every attribute steps through the *same* global rank
/// timeline, so the shared CFDs (`aᵢ = v_k → aⱼ = v_k`) are consistent
/// with each entity's hidden history and generated specifications are
/// valid.
#[derive(Clone, Debug)]
pub struct PowerLawConfig {
    /// RNG seed; equal configs generate identical datasets.
    pub seed: u64,
    /// Entity count.
    pub entities: usize,
    /// Total attributes (≥ 2): attribute 0 is numeric ("seq").
    pub attrs: usize,
    /// Smallest entity (the Pareto scale parameter).
    pub min_tuples: usize,
    /// Size cap — the tail is clamped here.
    pub max_tuples: usize,
    /// Pareto shape α (> 0): smaller ⇒ heavier tail. Sizes are
    /// `min_tuples · u^(−1/α)` clamped to `max_tuples`.
    pub alpha: f64,
    /// Ranks in the global per-attribute value pool (the timeline length
    /// every attribute steps through).
    pub domain: usize,
    /// Currency constraints shared by all entities.
    pub sigma: usize,
    /// Constant CFDs shared by all entities.
    pub gamma: usize,
    /// Base-order edges per entity ≈ `order_density · tuples · attrs`
    /// (sampled linearly, consistent with the timeline).
    pub order_density: f64,
    /// The first `giants` entities are pinned to `max_tuples` — a
    /// deterministic way for tests to guarantee split-worthy entities.
    pub giants: usize,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        PowerLawConfig {
            seed: 0,
            entities: 1_000,
            attrs: 4,
            min_tuples: 2,
            max_tuples: 384,
            alpha: 1.1,
            domain: 8,
            sigma: 5,
            gamma: 2,
            order_density: 0.5,
            giants: 0,
        }
    }
}

/// A seeded power-law dataset. Construction draws only the per-entity
/// *sizes* and the shared structure (schema, value pool, Σ/Γ, compiled
/// program); entities themselves are built on demand — [`Self::spec`]
/// for random access, [`Self::stream`] for a memory-bounded pass — so a
/// 10⁵-entity dataset can be resolved without ever materialising it.
pub struct PowerLawDataset {
    seed: u64,
    attrs: usize,
    states: usize,
    order_density: f64,
    sizes: Vec<usize>,
    schema: std::sync::Arc<Schema>,
    sigma: Vec<cr_constraints::currency::CurrencyConstraint>,
    gamma: Vec<cr_constraints::cfd::ConstantCfd>,
    table: cr_types::ValueTable,
    program: std::sync::Arc<cr_core::CompiledProgram>,
}

impl PowerLawDataset {
    /// Builds the shared structure and draws the size distribution
    /// (deterministic in `cfg`).
    pub fn new(cfg: &PowerLawConfig) -> Self {
        let attrs = cfg.attrs.max(2);
        let states = cfg.domain.max(2);
        let min_t = cfg.min_tuples.max(1);
        let max_t = cfg.max_tuples.max(min_t);
        let alpha = if cfg.alpha > 0.0 { cfg.alpha } else { 1.0 };

        let names: Vec<String> = std::iter::once("seq".to_string())
            .chain((1..attrs).map(|i| format!("a{i}")))
            .collect();
        let schema = Schema::new("powerlaw", names.iter().map(String::as_str)).unwrap();

        // Shared value pool: the full rank timeline of every attribute.
        let mut table = cr_types::ValueTable::new();
        for rank in 0..states {
            table.intern(&Value::int(rank as i64));
            for a in 1..attrs {
                table.intern(&Value::str(format!("a{a}_v{rank}")));
            }
        }

        // Pareto sizes (heavy tail, clamped), with optional pinned giants.
        let mut r = rng(cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64);
        let sizes: Vec<usize> = (0..cfg.entities)
            .map(|i| {
                if i < cfg.giants {
                    return max_t;
                }
                let u: f64 = r.gen::<f64>().max(1e-9);
                let n = (min_t as f64) * u.powf(-1.0 / alpha);
                (n as usize).clamp(min_t, max_t)
            })
            .collect();

        // Shared Σ: the ϕ4-style numeric rule, then alternating pattern
        // and propagation constraints over the string attributes.
        let mut r = rng(cfg.seed ^ 0x5151_5151_0000_0001u64);
        let mut sigma = Vec::with_capacity(cfg.sigma.max(1));
        sigma.push(
            parse_currency_constraint(&schema, "t1[seq] < t2[seq] -> t1 <[seq] t2").unwrap(),
        );
        while sigma.len() < cfg.sigma.max(1) {
            let text = if r.gen_bool(0.5) && attrs > 1 {
                let a = r.gen_range(1..attrs);
                let lo = r.gen_range(0..states - 1);
                let hi = r.gen_range(lo + 1..states);
                format!(
                    "t1[{n}] = \"a{a}_v{lo}\" && t2[{n}] = \"a{a}_v{hi}\" -> t1 <[{n}] t2",
                    n = names[a]
                )
            } else {
                let a = r.gen_range(0..attrs);
                let b = (a + 1 + r.gen_range(0..attrs - 1)) % attrs;
                format!("t1 <[{}] t2 -> t1 <[{}] t2", names[a], names[b])
            };
            sigma.push(parse_currency_constraint(&schema, &text).unwrap());
        }

        // Shared Γ: same-rank snapshots. All attributes advance through
        // ranks in lockstep, so `aᵢ = v_k → aⱼ = v_k` holds on every
        // entity's timeline.
        let mut gamma = Vec::with_capacity(cfg.gamma);
        for _ in 0..cfg.gamma {
            if attrs < 3 {
                break;
            }
            let a = r.gen_range(1..attrs);
            let b = 1 + ((a - 1 + 1 + r.gen_range(0..attrs - 2)) % (attrs - 1));
            let k = r.gen_range(0..states);
            let text = format!("{} = \"a{a}_v{k}\" -> {} = \"a{b}_v{k}\"", names[a], names[b]);
            gamma.extend(parse_cfds(&schema, &text).unwrap());
        }

        let program = std::sync::Arc::new(cr_core::CompiledProgram::compile(
            &sigma,
            &gamma,
            Some(&table),
        ));
        PowerLawDataset {
            seed: cfg.seed,
            attrs,
            states,
            order_density: cfg.order_density.clamp(0.0, 1.0),
            sizes,
            schema,
            sigma,
            gamma,
            table,
            program,
        }
    }

    /// Entity count.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the dataset has no entities.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// The drawn per-entity sizes (tuples).
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Timeline rank of time `t` in an `n`-tuple entity (shared by all
    /// attributes — ranks advance in lockstep).
    fn rank_at(&self, t: usize, n: usize) -> usize {
        if n <= 1 {
            self.states - 1
        } else {
            (self.states - 1).min(self.states * t / n)
        }
    }

    fn value_of(&self, attr: usize, rank: usize) -> Value {
        if attr == 0 {
            Value::int(rank as i64)
        } else {
            Value::str(format!("a{attr}_v{rank}"))
        }
    }

    /// Builds entity `i` on demand (deterministic in `(seed, i)`): its
    /// shuffled history rows, timeline-consistent sampled base orders,
    /// shared Σ/Γ clones and the shared compiled program.
    pub fn spec(&self, i: usize) -> Specification {
        let n = self.sizes[i];
        let mut r = rng(self.seed ^ (i as u64).wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(1));
        let mut stamps: Vec<usize> = (0..n).collect();
        stamps.shuffle(&mut r);
        let rows: Vec<Tuple> = stamps
            .iter()
            .map(|&t| {
                Tuple::from_values(
                    (0..self.attrs)
                        .map(|a| self.value_of(a, self.rank_at(t, n)))
                        .collect(),
                )
            })
            .collect();
        let entity = EntityInstance::with_table(self.schema.clone(), rows, &self.table).unwrap();

        // Linear order sampling (quadratic sweeps would dwarf resolution
        // itself on the tail entities): `density · n · attrs` random
        // (attr, row-pair) draws, each edged consistently with the
        // timeline when the ranks differ.
        let mut orders = PartialOrders::empty(self.attrs);
        let draws = (self.order_density * n as f64 * self.attrs as f64) as usize;
        for _ in 0..draws {
            if n < 2 {
                break;
            }
            let a = AttrId(r.gen_range(0..self.attrs) as u16);
            let i1 = r.gen_range(0..n);
            let mut i2 = r.gen_range(0..n);
            if i1 == i2 {
                i2 = (i2 + 1) % n;
            }
            let (r1, r2) = (self.rank_at(stamps[i1], n), self.rank_at(stamps[i2], n));
            if r1 < r2 {
                orders.add(a, TupleId(i1 as u32), TupleId(i2 as u32));
            } else if r2 < r1 {
                orders.add(a, TupleId(i2 as u32), TupleId(i1 as u32));
            }
        }

        let spec = Specification::new(entity, orders, self.sigma.clone(), self.gamma.clone());
        spec.set_compiled_program(self.program.clone());
        spec
    }

    /// Ground truth of entity `i`: the top rank its timeline visits, per
    /// attribute. O(attrs) — usable without building the entity.
    pub fn truth(&self, i: usize) -> Tuple {
        let n = self.sizes[i];
        let top = self.rank_at(n.saturating_sub(1), n);
        Tuple::from_values((0..self.attrs).map(|a| self.value_of(a, top)).collect())
    }

    /// All specifications, materialised (small datasets / batch tests).
    pub fn specs(&self) -> Vec<Specification> {
        (0..self.len()).map(|i| self.spec(i)).collect()
    }

    /// A lazy pass over all entities in index order — the producer side
    /// of `cr_core::sched::resolve_stream`.
    pub fn stream(&self) -> impl Iterator<Item = Specification> + '_ {
        (0..self.len()).map(move |i| self.spec(i))
    }
}

/// Convenience: a scenario drawn from raw proptest-style integers, mapping
/// them onto the interesting ranges (used by the differential proptests).
pub fn scenario_from_raw(
    seed: u64,
    tuples: usize,
    domain: usize,
    density_pct: u32,
    new_values: bool,
) -> Scenario {
    scenario(&ScenarioConfig {
        seed,
        attrs: 3 + (seed % 3) as usize,
        tuples: tuples.clamp(2, 40),
        domain: domain.clamp(2, 24),
        sigma: 3 + (seed % 5) as usize,
        gamma: (seed % 4) as usize,
        order_density: f64::from(density_pct % 30) / 100.0,
        conflict_density: 0.3 + f64::from(density_pct % 70) / 100.0,
        null_density: f64::from(density_pct % 12) / 100.0,
        new_value_answers: new_values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::is_valid;

    #[test]
    fn scenarios_are_deterministic() {
        let cfg = ScenarioConfig { seed: 42, ..Default::default() };
        let a = scenario(&cfg);
        let b = scenario(&cfg);
        assert_eq!(a.truth.values(), b.truth.values());
        assert_eq!(a.spec.entity().len(), b.spec.entity().len());
        assert_eq!(a.spec.sigma().len(), b.spec.sigma().len());
        for (x, y) in a.spec.sigma().iter().zip(b.spec.sigma()) {
            assert_eq!(x.to_string(), y.to_string());
        }
    }

    #[test]
    fn scenarios_are_mostly_valid_and_conflicting() {
        let mut valid = 0;
        let mut with_conflicts = 0;
        for seed in 0..40 {
            let s = scenario(&ScenarioConfig { seed, gamma: 0, ..Default::default() });
            if is_valid(&s.spec).valid {
                valid += 1;
            }
            // At least one attribute realises ≥ 2 values.
            let e = s.spec.entity();
            if s
                .spec
                .schema()
                .attr_ids()
                .any(|a| e.active_domain(a).len() >= 2)
            {
                with_conflicts += 1;
            }
        }
        assert!(valid >= 38, "CFD-free timeline scenarios must be valid ({valid}/40)");
        assert_eq!(with_conflicts, 40, "every scenario must have conflicts");
    }

    #[test]
    fn new_value_truths_leave_the_active_domain() {
        let mut saw_new = false;
        for seed in 0..20 {
            let s = scenario(&ScenarioConfig {
                seed,
                new_value_answers: true,
                null_density: 0.0,
                ..Default::default()
            });
            let e = s.spec.entity();
            for attr in s.spec.schema().attr_ids() {
                let v = s.truth.get(attr);
                if !v.is_null() && !e.active_domain(attr).contains(v) {
                    saw_new = true;
                }
            }
        }
        assert!(saw_new, "new-value truths must actually be out of domain");
    }

    #[test]
    fn revision_timelines_are_deterministic_and_well_targeted() {
        let s = scenario(&ScenarioConfig { seed: 11, gamma: 3, order_density: 0.3, ..Default::default() });
        let cfg = RevisionTimelineConfig { seed: 5, events: 8, rounds: 3, ..Default::default() };
        let drain = |mut src: GeneratedRevisions| -> Vec<Revision> {
            (0..4).flat_map(|r| src.poll(r, &s.spec)).collect()
        };
        let a = drain(revision_timeline(&s.spec, &cfg));
        let b = drain(revision_timeline(&s.spec, &cfg));
        assert_eq!(a, b, "equal configs must generate identical timelines");
        assert!(!a.is_empty());
        for rev in &a {
            match rev {
                Revision::RetractCfd { cfd } => assert!(*cfd < s.spec.gamma().len()),
                Revision::WithdrawOrder { attr, lo, hi } => {
                    assert!(s.spec.orders().contains(*attr, *lo, *hi), "withdraws real pairs");
                }
                Revision::ReplaceValue { tuple, .. } => {
                    assert!(tuple.index() < s.spec.entity().len());
                }
                Revision::WithdrawAnswer { .. } => panic!("not scripted statically"),
            }
        }
        // CFD retractions never repeat an index.
        let mut cfds: Vec<usize> = a
            .iter()
            .filter_map(|r| match r {
                Revision::RetractCfd { cfd } => Some(*cfd),
                _ => None,
            })
            .collect();
        let before = cfds.len();
        cfds.sort_unstable();
        cfds.dedup();
        assert_eq!(cfds.len(), before, "each CFD retracted at most once");
    }

    #[test]
    fn power_law_datasets_are_deterministic_heavy_tailed_and_shared() {
        let cfg = PowerLawConfig {
            seed: 3,
            entities: 400,
            max_tuples: 200,
            giants: 1,
            ..Default::default()
        };
        let a = PowerLawDataset::new(&cfg);
        let b = PowerLawDataset::new(&cfg);
        assert_eq!(a.sizes(), b.sizes(), "equal configs draw equal sizes");
        assert_eq!(a.sizes()[0], 200, "pinned giant");
        let small = a.sizes().iter().filter(|&&n| n <= 4).count();
        let large = a.sizes().iter().filter(|&&n| n >= 64).count();
        assert!(small > 200, "most entities are small ({small}/400)");
        assert!(large >= 1, "the tail reaches large entities");

        // On-demand builds are deterministic and share structure.
        let s1 = a.spec(7);
        let s2 = b.spec(7);
        assert_eq!(s1.entity().len(), s2.entity().len());
        for ((_, t1), (_, t2)) in s1.entity().iter().zip(s2.entity().iter()) {
            assert_eq!(t1.values(), t2.values());
        }
        assert_eq!(a.truth(7).values(), b.truth(7).values());
        assert!(
            std::sync::Arc::ptr_eq(s1.compiled_program(), a.spec(8).compiled_program()),
            "all entities share one compiled program"
        );

        // Timeline-consistent generation: entities are valid.
        let mut valid = 0;
        for i in 0..40 {
            if is_valid(&a.spec(i)).valid {
                valid += 1;
            }
        }
        assert_eq!(valid, 40, "lockstep timelines keep Σ/Γ consistent");
    }

    #[test]
    fn power_law_stream_matches_random_access() {
        let ds = PowerLawDataset::new(&PowerLawConfig {
            seed: 9,
            entities: 25,
            ..Default::default()
        });
        for (i, spec) in ds.stream().enumerate() {
            let direct = ds.spec(i);
            assert_eq!(spec.entity().len(), direct.entity().len());
            for ((_, t1), (_, t2)) in spec.entity().iter().zip(direct.entity().iter()) {
                assert_eq!(t1.values(), t2.values());
            }
        }
    }

    #[test]
    fn knobs_scale_the_scenario() {
        let wide = scenario(&ScenarioConfig {
            seed: 7,
            tuples: 30,
            domain: 20,
            conflict_density: 1.0,
            null_density: 0.0,
            ..Default::default()
        });
        let e = wide.spec.entity();
        let max_width = wide
            .spec
            .schema()
            .attr_ids()
            .map(|a| e.active_domain(a).len())
            .max()
            .unwrap();
        assert!(max_width >= 10, "wide config must realise wide domains, got {max_width}");
        let narrow = scenario(&ScenarioConfig {
            seed: 7,
            tuples: 30,
            domain: 20,
            conflict_density: 0.1,
            null_density: 0.0,
            ..Default::default()
        });
        let e = narrow.spec.entity();
        let narrow_width = narrow
            .spec
            .schema()
            .attr_ids()
            .map(|a| e.active_domain(a).len())
            .max()
            .unwrap();
        assert!(narrow_width <= 3, "narrow config stays narrow, got {narrow_width}");
    }
}
