//! Randomised cross-check: CDCL answers must match brute-force enumeration
//! on small random k-SAT instances, and reported models must satisfy the
//! formula.

use cr_sat::{Cnf, SolveResult, Solver, UnitPropagator, UpOutcome};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Brute-force satisfiability by enumerating all assignments.
fn brute_force_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars();
    assert!(n <= 20, "brute force capped at 20 vars");
    (0..(1u64 << n)).any(|bits| {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        cnf.eval(&assignment)
    })
}

fn random_cnf(rng: &mut impl Rng, num_vars: u32, num_clauses: usize, max_len: usize) -> Cnf {
    let mut cnf = Cnf::new();
    cnf.ensure_vars(num_vars);
    for _ in 0..num_clauses {
        let len = rng.gen_range(1..=max_len);
        let clause: Vec<_> = (0..len)
            .map(|_| cr_sat::Var(rng.gen_range(0..num_vars)).lit(rng.gen_bool(0.5)))
            .collect();
        cnf.add_clause(clause);
    }
    cnf
}

#[test]
fn cdcl_agrees_with_brute_force_on_random_instances() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
    for round in 0..300 {
        let num_vars = rng.gen_range(3..=10);
        // Around the 4.26 clause/var hard region and beyond.
        let num_clauses = rng.gen_range(1..=(num_vars as usize * 6));
        let cnf = random_cnf(&mut rng, num_vars, num_clauses, 3);
        let expected = brute_force_sat(&cnf);
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            SolveResult::Sat => {
                assert!(expected, "round {round}: solver said SAT, brute force says UNSAT");
                let model = solver.model();
                assert!(cnf.eval(&model), "round {round}: model does not satisfy formula");
            }
            SolveResult::Unsat => {
                assert!(!expected, "round {round}: solver said UNSAT, brute force says SAT");
            }
        }
    }
}

#[test]
fn assumptions_agree_with_clause_addition() {
    // solve_with_assumptions([l]) must match solving cnf + unit clause l.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    for _ in 0..150 {
        let num_vars = rng.gen_range(3..=8);
        let num_clauses = rng.gen_range(1..=num_vars as usize * 5);
        let cnf = random_cnf(&mut rng, num_vars, num_clauses, 3);
        let lit = cr_sat::Var(rng.gen_range(0..num_vars)).lit(rng.gen_bool(0.5));

        let mut augmented = cnf.clone();
        augmented.add_clause([lit]);
        let expected = brute_force_sat(&augmented);

        let mut solver = Solver::from_cnf(&cnf);
        let got = solver.solve_with_assumptions(&[lit]);
        assert_eq!(got == SolveResult::Sat, expected);

        // The solver must remain reusable and consistent afterwards.
        let base = brute_force_sat(&cnf);
        assert_eq!(solver.solve() == SolveResult::Sat, base);
    }
}

#[test]
fn unit_propagation_literals_are_implied() {
    // Every literal DeduceOrder-style propagation derives must hold in every
    // model of the formula.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..150 {
        let num_vars = rng.gen_range(3..=8);
        let num_clauses = rng.gen_range(1..=num_vars as usize * 4);
        let cnf = random_cnf(&mut rng, num_vars, num_clauses, 3);
        let mut up = UnitPropagator::new(&cnf);
        match up.run() {
            UpOutcome::Conflict => {
                assert!(!brute_force_sat(&cnf), "UP conflict on satisfiable formula");
            }
            UpOutcome::Fixpoint { implied } => {
                let n = cnf.num_vars();
                for bits in 0..(1u64 << n) {
                    let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                    if cnf.eval(&assignment) {
                        for l in &implied {
                            assert_eq!(
                                assignment[l.var().index()],
                                l.is_positive(),
                                "UP-implied literal violated by a model"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn repeated_assumption_probes_stay_consistent() {
    // NaiveDeduce-style usage: many single-literal assumption probes on one
    // solver instance.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let cnf = random_cnf(&mut rng, 9, 25, 3);
    let mut solver = Solver::from_cnf(&cnf);
    for var in 0..9 {
        for sign in [true, false] {
            let lit = cr_sat::Var(var).lit(sign);
            let mut augmented = cnf.clone();
            augmented.add_clause([lit]);
            let expected = brute_force_sat(&augmented);
            let got = solver.solve_with_assumptions(&[lit]) == SolveResult::Sat;
            assert_eq!(got, expected, "probe {lit:?}");
        }
    }
}
