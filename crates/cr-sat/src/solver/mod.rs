//! The CDCL solver: state, clause arena, public API and the main search loop.
//!
//! Submodules hold the algorithmic pieces: `propagate` (two-watched-literal
//! BCP), `analyze` (1UIP learning and minimisation), `decide` (VSIDS
//! order heap), `reduce` (learnt-clause DB management) and `restart`
//! (Luby sequence).

mod analyze;
mod decide;
mod propagate;
mod reduce;
mod restart;

use crate::cnf::Cnf;
use crate::lit::{LBool, Lit, Var};
use crate::stats::SolverStats;
use decide::VarOrder;

/// Index of a clause in the solver's arena.
pub(crate) type ClauseRef = u32;

/// A clause stored in the arena. The first two literals are the watched ones.
#[derive(Debug)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    pub(crate) activity: f32,
    pub(crate) learnt: bool,
    pub(crate) deleted: bool,
}

/// A watcher entry: the clause plus a *blocker* literal whose truth lets the
/// propagator skip the clause without touching its memory.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Watcher {
    pub(crate) cref: ClauseRef,
    pub(crate) blocker: Lit,
}

/// Outcome of [`Solver::solve`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions, if any) is unsatisfiable.
    Unsat,
}

/// A CDCL SAT solver. See the crate docs for the feature list.
pub struct Solver {
    // Clause storage.
    pub(crate) clauses: Vec<Clause>,
    pub(crate) learnt_refs: Vec<ClauseRef>,
    pub(crate) watches: Vec<Vec<Watcher>>,

    // Assignment trail.
    pub(crate) assigns: Vec<LBool>,
    pub(crate) polarity: Vec<bool>,
    pub(crate) reason: Vec<Option<ClauseRef>>,
    pub(crate) level: Vec<u32>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,

    // Decision heuristic.
    pub(crate) activity: Vec<f64>,
    pub(crate) var_inc: f64,
    pub(crate) var_decay: f64,
    pub(crate) order: VarOrder,

    // Learnt-clause management.
    pub(crate) cla_inc: f32,
    pub(crate) cla_decay: f32,
    pub(crate) max_learnts: f64,

    // Analyze scratch space.
    pub(crate) seen: Vec<bool>,

    /// False once a top-level conflict has been derived: the formula is
    /// unsatisfiable regardless of assumptions.
    pub(crate) ok: bool,

    /// Literals implicitly assumed by every solve — the *activation guards*
    /// of the clause groups currently alive (see
    /// [`Solver::set_persistent_assumptions`]).
    pub(crate) persistent: Vec<Lit>,

    pub(crate) model: Vec<LBool>,
    pub(crate) stats: SolverStats,

    /// Recycled clause-literal buffers harvested by [`Solver::into_scratch`]
    /// and consumed by [`Solver::add_clause`] — the per-clause `Vec<Lit>`
    /// allocations of the arena are the bulk of a solver's heap churn when
    /// many short-lived solvers run back to back (shard-local entity
    /// resolutions), so the pool keeps them alive across instances.
    pub(crate) spare_lits: Vec<Vec<Lit>>,
}

/// Recycled allocation capacity of a torn-down [`Solver`]: every buffer is
/// logically empty but keeps its heap reservation, so the next
/// [`Solver::from_cnf_with_scratch`] loads a formula of similar size with
/// near-zero allocator traffic. Obtained from [`Solver::into_scratch`];
/// behaviourally inert — a solver built from scratch capacity is
/// state-identical to one built by [`Solver::from_cnf`] (capacities never
/// influence search), which is what keeps pooled and unpooled resolutions
/// outcome-equal.
pub struct SolverScratch {
    solver: Solver,
}

impl Default for SolverScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SolverScratch {
    /// Empty scratch (no recycled capacity); useful as a pool seed.
    pub fn new() -> Self {
        SolverScratch { solver: Solver::new() }
    }
}

/// Recycled clause-literal buffers retained at most this many; beyond it
/// the remainder is dropped (bounds pool memory between entities of wildly
/// different sizes).
const SPARE_LITS_CAP: usize = 1 << 14;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// An empty solver with no variables or clauses.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            learnt_refs: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            var_decay: 0.95,
            order: VarOrder::new(),
            cla_inc: 1.0,
            cla_decay: 0.999,
            max_learnts: 0.0,
            seen: Vec::new(),
            ok: true,
            persistent: Vec::new(),
            model: Vec::new(),
            stats: SolverStats::default(),
            spare_lits: Vec::new(),
        }
    }

    /// Builds a solver preloaded with every clause of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = Solver::new();
        s.extend_from_cnf(cnf, 0);
        s
    }

    /// [`Solver::from_cnf`] reusing the recycled buffers of a previous
    /// solver (see [`SolverScratch`]). State-identical to `from_cnf`.
    pub fn from_cnf_with_scratch(cnf: &Cnf, scratch: SolverScratch) -> Self {
        let mut s = scratch.solver;
        s.extend_from_cnf(cnf, 0);
        s
    }

    /// Tears the solver down to recyclable allocation capacity: all state
    /// is reset exactly as [`Solver::new`] leaves it, but every buffer —
    /// including the per-clause literal `Vec`s of the arena — keeps its
    /// heap reservation for the next [`Solver::from_cnf_with_scratch`].
    pub fn into_scratch(mut self) -> SolverScratch {
        // Harvest clause literal buffers (original and learnt alike).
        let mut spare = std::mem::take(&mut self.spare_lits);
        for c in self.clauses.drain(..) {
            if spare.len() >= SPARE_LITS_CAP {
                break;
            }
            let mut lits = c.lits;
            lits.clear();
            spare.push(lits);
        }
        self.clauses.clear();
        self.spare_lits = spare;
        self.learnt_refs.clear();
        // Keep the outer watcher vec (its slots hold inner capacity);
        // `new_var` re-extends it only past the recycled length.
        for w in &mut self.watches {
            w.clear();
        }
        self.assigns.clear();
        self.polarity.clear();
        self.reason.clear();
        self.level.clear();
        self.trail.clear();
        self.trail_lim.clear();
        self.qhead = 0;
        self.activity.clear();
        self.var_inc = 1.0;
        self.order.clear();
        self.cla_inc = 1.0;
        self.max_learnts = 0.0;
        self.seen.clear();
        self.ok = true;
        self.persistent.clear();
        self.model.clear();
        self.stats = SolverStats::default();
        SolverScratch { solver: self }
    }

    /// A recycled literal buffer if one is pooled, else a fresh `Vec`.
    fn take_spare_lits(&mut self) -> Vec<Lit> {
        self.spare_lits.pop().unwrap_or_default()
    }

    /// Appends the clauses of `cnf` starting at clause index `from`,
    /// allocating any missing variables. May be called between solves; all
    /// learnt clauses and variable activities are retained, which is what
    /// makes the resolution framework's per-round extension cheap.
    ///
    /// Returns `false` if the formula became trivially unsatisfiable.
    pub fn extend_from_cnf(&mut self, cnf: &Cnf, from: usize) -> bool {
        while self.num_vars() < cnf.num_vars() {
            self.new_var();
        }
        for clause in cnf.clauses_from(from) {
            self.add_clause(clause.iter().copied());
        }
        self.ok
    }

    /// Root-level value of `v`: `Some(b)` iff the variable is already fixed
    /// by top-level propagation (original clauses, learnt units and their
    /// consequences). Such variables are implied by the formula, so callers
    /// like `NaiveDeduce` can skip SAT probes on them. Only meaningful
    /// between solves (at decision level zero).
    pub fn root_value(&self, v: Var) -> Option<bool> {
        debug_assert_eq!(self.decision_level(), 0);
        self.assigns[v.index()].to_option()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.assigns.len() as u32
    }

    /// Number of original (problem) clauses currently alive.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted && !c.learnt).count()
    }

    /// Number of learnt clauses currently alive.
    pub fn num_learnts(&self) -> usize {
        self.learnt_refs.len()
    }

    /// Search statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        // Recycled solvers keep their (cleared) watcher slots; only grow
        // past the recycled length.
        let want = self.assigns.len() * 2;
        if self.watches.len() < want {
            self.watches.resize_with(want, Vec::new);
        }
        self.seen.push(false);
        self.order.insert(v, &self.activity);
        v
    }

    /// Current assignment of a variable (search state, not the model).
    pub fn value(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    /// Current assignment of a literal.
    pub(crate) fn value_lit(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Value of `v` in the model of the last successful [`Solver::solve`].
    pub fn model_value(&self, v: Var) -> Option<bool> {
        self.model.get(v.index()).and_then(|b| b.to_option())
    }

    /// The full model of the last successful solve (one `bool` per variable;
    /// unconstrained variables default to `false`).
    pub fn model(&self) -> Vec<bool> {
        self.model
            .iter()
            .map(|b| b.to_option().unwrap_or(false))
            .collect()
    }

    /// Current decision level.
    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. May only be called at decision level zero (i.e. before
    /// or between solves). Returns `false` if the clause makes the formula
    /// trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        let mut clause: Vec<Lit> = self.take_spare_lits();
        clause.extend(lits);
        for l in &clause {
            while self.num_vars() <= l.var().0 {
                self.new_var();
            }
        }
        clause.sort_unstable();
        clause.dedup();
        // Drop tautologies and root-false literals; detect root-satisfied
        // clauses.
        let mut write = 0;
        for i in 0..clause.len() {
            let l = clause[i];
            if i + 1 < clause.len() && clause[i + 1] == l.negate() {
                self.return_spare_lits(clause);
                return true; // tautology: p before ¬p after sorting
            }
            match self.value_lit(l) {
                LBool::True => {
                    self.return_spare_lits(clause);
                    return true;
                }
                LBool::False => {}
                LBool::Undef => {
                    clause[write] = l;
                    write += 1;
                }
            }
        }
        clause.truncate(write);
        match clause.len() {
            0 => {
                self.return_spare_lits(clause);
                self.ok = false;
                false
            }
            1 => {
                let unit = clause[0];
                self.return_spare_lits(clause);
                self.unchecked_enqueue(unit, None);
                // Propagate eagerly so later add_clause calls see the
                // consequences.
                if self.propagate().is_some() {
                    self.ok = false;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_new_clause(clause, false);
                true
            }
        }
    }

    /// Returns a literal buffer to the recycling pool (bounded).
    fn return_spare_lits(&mut self, mut v: Vec<Lit>) {
        if self.spare_lits.len() < SPARE_LITS_CAP && v.capacity() > 0 {
            v.clear();
            self.spare_lits.push(v);
        }
    }

    /// Stores and watches a (≥ 2 literal) clause; returns its reference.
    pub(crate) fn attach_new_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as ClauseRef;
        let w0 = Watcher { cref, blocker: lits[1] };
        let w1 = Watcher { cref, blocker: lits[0] };
        self.watches[lits[0].index()].push(w0);
        self.watches[lits[1].index()].push(w1);
        self.clauses.push(Clause { lits, activity: 0.0, learnt, deleted: false });
        if learnt {
            self.learnt_refs.push(cref);
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    /// Removes a clause from the watcher lists and tombstones it.
    pub(crate) fn detach_clause(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = &self.clauses[cref as usize];
            (c.lits[0], c.lits[1])
        };
        self.watches[l0.index()].retain(|w| w.cref != cref);
        self.watches[l1.index()].retain(|w| w.cref != cref);
        self.clauses[cref as usize].deleted = true;
    }

    /// Asserts `lit` with the given reason clause, pushing it on the trail.
    pub(crate) fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value_lit(lit), LBool::Undef);
        let v = lit.var();
        self.assigns[v.index()] = LBool::from_bool(lit.is_positive());
        self.reason[v.index()] = reason;
        self.level[v.index()] = self.decision_level();
        self.trail.push(lit);
    }

    /// Opens a new decision level.
    pub(crate) fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    /// Backtracks to `target` decision level, unassigning and saving phases.
    pub(crate) fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            self.polarity[v.index()] = lit.is_positive();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Registers literals assumed by **every** subsequent solve, prepended
    /// to whatever per-call assumptions the caller passes.
    ///
    /// This is the solver half of retractable clause groups: group clauses
    /// carry a guard literal `¬g`, the persistent assumption `g` activates
    /// them, and retraction adds the root unit `¬g` (after *removing* `g`
    /// from this set), which permanently satisfies the group's clauses and
    /// every learnt clause derived from them (such learnt clauses contain
    /// `¬g` by construction of conflict analysis).
    pub fn set_persistent_assumptions(&mut self, lits: Vec<Lit>) {
        self.persistent = lits;
    }

    /// The currently registered persistent assumptions.
    pub fn persistent_assumptions(&self) -> &[Lit] {
        &self.persistent
    }

    /// Solves under the given assumption literals (plus any persistent
    /// assumptions). The solver state is reusable afterwards (learnt clauses
    /// are kept across calls), which is what `NaiveDeduce` relies on for its
    /// `|It|²` SAT probes.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.persistent.is_empty() {
            return self.solve_with_all_assumptions(assumptions);
        }
        let mut all = Vec::with_capacity(self.persistent.len() + assumptions.len());
        all.extend_from_slice(&self.persistent);
        all.extend_from_slice(assumptions);
        self.solve_with_all_assumptions(&all)
    }

    /// [`Solver::solve_lazy_with_assumptions`] with no assumptions.
    pub fn solve_lazy(&mut self, source: &mut dyn crate::LazyAxiomSource) -> SolveResult {
        self.solve_lazy_with_assumptions(&[], source)
    }

    /// Solves under lazily instantiated axioms: the counterexample-guided
    /// loop of the [`lazy`](crate::lazy) module. Each satisfying candidate
    /// model is shown to `source`; the axiom clauses it returns are added
    /// (as permanent problem clauses) and the solve repeats, until the model
    /// satisfies the full theory or the formula becomes unsatisfiable.
    ///
    /// `Unsat` is sound because injected clauses are theory-valid; `Sat` is
    /// exact because the final model provoked no further instantiation.
    /// Injected clauses persist, so later calls (with any assumptions)
    /// converge faster — `NaiveDeduce`'s probe loop relies on this.
    pub fn solve_lazy_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        source: &mut dyn crate::LazyAxiomSource,
    ) -> SolveResult {
        loop {
            if self.solve_with_assumptions(assumptions) == SolveResult::Unsat {
                return SolveResult::Unsat;
            }
            // Hand the model to the source without aliasing `self` (clauses
            // are added right after); the model buffer is moved out and back.
            let model = std::mem::take(&mut self.model);
            let clauses =
                source.instantiate(&|v| model.get(v.index()).and_then(|b| b.to_option()), None);
            self.model = model;
            if clauses.is_empty() {
                return SolveResult::Sat;
            }
            for clause in clauses {
                self.add_clause(clause);
            }
        }
    }

    fn solve_with_all_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.cancel_until(0);
        if !self.ok {
            return SolveResult::Unsat;
        }
        for a in assumptions {
            debug_assert!(a.var().0 < self.num_vars(), "assumption over unknown var");
        }
        if self.max_learnts == 0.0 {
            self.max_learnts = (self.clauses.len() as f64 / 3.0).max(2000.0);
        }
        let mut restarts = 0u64;
        let result = loop {
            let conflict_budget = restart::luby(2.0, restarts) * 100.0;
            match self.search(conflict_budget as u64, assumptions) {
                Some(res) => break res,
                None => {
                    restarts += 1;
                    self.stats.restarts += 1;
                }
            }
        };
        if result == SolveResult::Sat {
            self.model = self.assigns.clone();
        }
        self.cancel_until(0);
        result
    }

    /// Runs CDCL search until a result is known or `conflict_budget`
    /// conflicts have occurred (then returns `None` to signal a restart).
    fn search(&mut self, conflict_budget: u64, assumptions: &[Lit]) -> Option<SolveResult> {
        let mut conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt_level) = self.analyze(confl);
                self.cancel_until(bt_level);
                match learnt.len() {
                    1 => self.unchecked_enqueue(learnt[0], None),
                    _ => {
                        let asserting = learnt[0];
                        let cref = self.attach_new_clause(learnt, true);
                        self.bump_clause_activity(cref);
                        self.unchecked_enqueue(asserting, Some(cref));
                    }
                }
                self.decay_var_activity();
                self.decay_clause_activity();
            } else {
                if conflicts >= conflict_budget {
                    self.cancel_until(0);
                    return None;
                }
                if self.learnt_refs.len() as f64 >= self.max_learnts + self.trail.len() as f64 {
                    self.reduce_db();
                }
                // Assumptions are replayed as pseudo-decisions at the lowest
                // levels; restarts re-assert them automatically.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value_lit(a) {
                        LBool::True => self.new_decision_level(),
                        LBool::False => return Some(SolveResult::Unsat),
                        LBool::Undef => {
                            self.new_decision_level();
                            self.unchecked_enqueue(a, None);
                        }
                    }
                } else {
                    match self.pick_branch_lit() {
                        None => return Some(SolveResult::Sat),
                        Some(lit) => {
                            self.stats.decisions += 1;
                            self.new_decision_level();
                            self.unchecked_enqueue(lit, None);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver_vars: &[Var], codes: &[i64]) -> Vec<Lit> {
        codes
            .iter()
            .map(|&c| solver_vars[(c.unsigned_abs() - 1) as usize].lit(c > 0))
            .collect()
    }

    fn nvars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 2);
        s.add_clause(lits(&v, &[1, 2]));
        s.add_clause(lits(&v, &[-1]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(false));
        assert_eq!(s.model_value(v[1]), Some(true));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 1);
        s.add_clause(lits(&v, &[1]));
        assert!(!s.add_clause(lits(&v, &[-1])));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unsat_needs_learning() {
        // Classic: (a∨b) (a∨¬b) (¬a∨b) (¬a∨¬b)
        let mut s = Solver::new();
        let v = nvars(&mut s, 2);
        for c in [[1, 2], [1, -2], [-1, 2], [-1, -2]] {
            s.add_clause(lits(&v, &c));
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 2);
        s.add_clause(lits(&v, &[1, -1]));
        s.add_clause(lits(&v, &[2, 2, -1]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn implication_chain_propagates() {
        // x1 ∧ (x1→x2) ∧ ... ∧ (x9→x10): all true.
        let mut s = Solver::new();
        let v = nvars(&mut s, 10);
        s.add_clause(lits(&v, &[1]));
        for i in 1..10i64 {
            s.add_clause(lits(&v, &[-i, i + 1]));
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for var in &v {
            assert_eq!(s.model_value(*var), Some(true));
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 2);
        s.add_clause(lits(&v, &[1, 2]));
        assert_eq!(s.solve_with_assumptions(&lits(&v, &[-1])), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&lits(&v, &[-1, -2])),
            SolveResult::Unsat
        );
        // Solver remains usable: formula itself is still satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumption_of_root_implied_literal() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 1);
        s.add_clause(lits(&v, &[1]));
        assert_eq!(s.solve_with_assumptions(&lits(&v, &[1])), SolveResult::Sat);
        assert_eq!(s.solve_with_assumptions(&lits(&v, &[-1])), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j; i in 0..3, j in 0..2.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| (0..2).map(|_| s.new_var()).collect()).collect();
        for i in 0..3 {
            s.add_clause([p[i][0].positive(), p[i][1].positive()]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn extend_from_cnf_between_solves_keeps_state() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), b.positive()]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Extend the same Cnf and sync only the tail.
        let synced = cnf.num_clauses();
        cnf.add_clause([a.negative()]);
        cnf.add_clause([b.negative()]);
        assert!(!s.extend_from_cnf(&cnf, synced));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn extend_from_cnf_grows_variables() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause([a.positive()]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Sat);
        let synced = cnf.num_clauses();
        let b = cnf.new_var();
        cnf.add_clause([a.negative(), b.positive()]);
        assert!(s.extend_from_cnf(&cnf, synced));
        assert_eq!(s.num_vars(), 2);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(b), Some(true));
    }

    #[test]
    fn root_value_reflects_top_level_propagation() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        s.add_clause(lits(&v, &[1]));
        s.add_clause(lits(&v, &[-1, 2]));
        assert_eq!(s.root_value(v[0]), Some(true));
        assert_eq!(s.root_value(v[1]), Some(true));
        assert_eq!(s.root_value(v[2]), None);
        // Still None for free variables after a solve (model is separate).
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.root_value(v[2]), None);
    }

    #[test]
    fn guarded_group_activates_and_retracts() {
        // Group clauses carry ¬g; g is a persistent assumption while the
        // group is alive. Retracting = dropping the assumption and adding
        // the root unit ¬g.
        let mut s = Solver::new();
        let x = s.new_var();
        let g = s.new_var();
        // Guarded unit: g → x.
        s.add_clause([g.negative(), x.positive()]);
        s.set_persistent_assumptions(vec![g.positive()]);
        // Active: ¬x contradicts the group.
        assert_eq!(s.solve_with_assumptions(&[x.negative()]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(x), Some(true));
        // Retract: the group no longer constrains x.
        s.set_persistent_assumptions(Vec::new());
        s.add_clause([g.negative()]);
        assert_eq!(s.solve_with_assumptions(&[x.negative()]), SolveResult::Sat);
        assert_eq!(s.model_value(x), Some(false));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn retraction_neutralises_learnt_clauses() {
        // A conflict-rich guarded pigeonhole fragment forces learning under
        // the guard; after retraction the formula must be satisfiable and
        // none of the learnt clauses may constrain the pigeon variables.
        let mut s = Solver::new();
        let g = s.new_var();
        let p: Vec<Vec<Var>> =
            (0..4).map(|_| (0..3).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            let mut lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            lits.push(g.negative());
            s.add_clause(lits);
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause([p[i1][j].negative(), p[i2][j].negative(), g.negative()]);
                }
            }
        }
        s.set_persistent_assumptions(vec![g.positive()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        s.set_persistent_assumptions(Vec::new());
        s.add_clause([g.negative()]);
        // All pigeons in the first hole: violates the retracted group only.
        let all_first: Vec<Lit> = p.iter().map(|row| row[0].positive()).collect();
        assert_eq!(s.solve_with_assumptions(&all_first), SolveResult::Sat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn compact_learnts_bounds_the_database() {
        let mut s = Solver::new();
        let n = 7;
        let p: Vec<Vec<Var>> =
            (0..n).map(|_| (0..n).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.positive()));
        }
        for j in 0..n {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let cap = 8;
        s.compact_learnts(cap);
        // Binary and locked clauses are exempt, but long unlocked learnts
        // must be gone down to the cap.
        let long_learnts = s
            .learnt_refs
            .iter()
            .filter(|&&r| s.clauses[r as usize].lits.len() > 2)
            .count();
        assert!(long_learnts <= cap, "{long_learnts} > {cap}");
        // Still correct afterwards.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn from_cnf_matches_manual_build() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative(), b.negative()]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Sat);
        let ma = s.model_value(a).unwrap();
        let mb = s.model_value(b).unwrap();
        assert_ne!(ma, mb);
    }
}
