//! Batched ingestion and epoch-snapshot reads: deterministic differentials.
//!
//! The staged batch path (`begin_batch` / `batch_push` / `seal_batch`)
//! promises that a reader mid-flight **never observes a half-applied
//! batch**: `is_valid`, `deduce`, `true_values` and `take_competing`
//! answer at the last sealed epoch until the seal, and the epoch advances
//! exactly once per applied batch. These tests pin that down one scenario
//! at a time, next to the duplicate-redelivery idempotence of re-opening
//! corrections (the double-count regression). Randomized batch-partition
//! equivalence lives in `tests/causal_proptest.rs` and
//! `tests/revision_proptest.rs` at the workspace level.

use cr_constraints::parser::{parse_cfd_file, parse_currency_file};
use cr_core::causal::{
    resolve_causal_checked, CausalReplayConfig, CausalRevision, ScriptedCausalRevisions,
};
use cr_core::framework::{DeductionMethod, GroundTruthOracle, ResolutionConfig};
use cr_core::ingest::{
    check_session_against_scratch, diff_logical_states, ResolutionSession, Revision, SpecMirror,
};
use cr_core::Specification;
use cr_data::chaos::{chaos, ChaosConfig};
use cr_types::{EntityInstance, Schema, SourceClock, SourceId, Tuple, TupleId, Value};

/// The PR 5 fixture: the CFD fires automatically (AC resolves to 2 through
/// the currency constraints, so `city` resolves to "LA") while `job` stays
/// ambiguous.
fn firing_cfd_spec() -> (Specification, Tuple) {
    let s = Schema::new("p", ["status", "AC", "city", "job"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([
                Value::str("working"),
                Value::int(1),
                Value::str("NY"),
                Value::str("nurse"),
            ]),
            Tuple::of([
                Value::str("retired"),
                Value::int(2),
                Value::str("LA"),
                Value::str("n/a"),
            ]),
        ],
    )
    .unwrap();
    let sigma = parse_currency_file(
        &s,
        r#"
        phi1: t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2
        phi2: t1 <[status] t2 -> t1 <[AC] t2
        "#,
    )
    .unwrap();
    let gamma = parse_cfd_file(&s, "psi1: AC = 2 -> city = \"LA\"").unwrap();
    let truth = Tuple::of([
        Value::str("retired"),
        Value::int(2),
        Value::str("LA"),
        Value::str("n/a"),
    ]);
    (Specification::without_orders(e, sigma, gamma), truth)
}

/// A minimal unconstrained spec for manual causal driving.
fn two_city_spec() -> Specification {
    let s = Schema::new("p", ["name", "city"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([Value::str("X"), Value::str("NY")]),
            Tuple::of([Value::str("X"), Value::str("LA")]),
        ],
    )
    .unwrap();
    Specification::without_orders(e, vec![], vec![])
}

fn config() -> ResolutionConfig {
    ResolutionConfig::default()
}

/// The acceptance case for epoch reads: while a staged batch is mid-flight,
/// every read answers at the sealed epoch — bit-identical to the pre-batch
/// answers — even though the pushed events have already mutated the
/// underlying engine. The seal advances the epoch exactly once and flips
/// reads to the new state, which must equal an atomic
/// `apply_revision_batch` twin.
#[test]
fn mid_batch_reads_answer_at_the_sealed_epoch() {
    let (spec, _) = firing_cfd_spec();
    let city = spec.schema().attr_id("city").unwrap();
    let mut session = ResolutionSession::new_revisable(&config(), &spec);
    let mut twin = ResolutionSession::new_revisable(&config(), &spec);

    // Settled pre-batch reads: the CFD fires, so `city` resolves.
    let pre_epoch = session.epoch();
    assert!(session.is_valid());
    let pre_od = session.deduce(DeductionMethod::UnitPropagation).expect("valid spec");
    let pre_tv = session.true_values(&pre_od);
    assert_eq!(pre_tv.get(city), Some(&Value::str("LA")), "psi1 resolves city");

    // Retracting the CFD un-resolves `city` — but not until the seal.
    let batch = [
        Revision::RetractCfd { cfd: 0 },
        Revision::ReplaceValue {
            tuple: TupleId(0),
            attr: city,
            value: Value::str("Boston"),
        },
    ];
    session.begin_batch();
    assert_eq!(session.sealed_epoch(), Some(pre_epoch), "snapshot pins the sealed epoch");
    for rev in &batch {
        assert_eq!(session.batch_push(rev), Ok(true));
        // Mid-flight, after every push: all four reads still answer the
        // sealed epoch, never the half-applied batch.
        assert_eq!(session.epoch(), pre_epoch, "the epoch advances only at the seal");
        assert!(session.is_valid());
        let mid_od = session.deduce(DeductionMethod::UnitPropagation).expect("sealed orders");
        for attr in spec.schema().attr_ids() {
            let mut mid: Vec<_> = mid_od.pairs(attr).collect();
            let mut pre: Vec<_> = pre_od.pairs(attr).collect();
            mid.sort_unstable();
            pre.sort_unstable();
            assert_eq!(mid, pre, "mid-batch deduce answers the sealed epoch ({attr:?})");
        }
        let mid_tv = session.true_values(&mid_od);
        assert_eq!(
            mid_tv.get(city),
            Some(&Value::str("LA")),
            "mid-batch true values answer the sealed epoch"
        );
        assert!(session.take_competing().is_empty());
    }

    let report = session.seal_batch();
    assert_eq!(report.applied, 2);
    assert_eq!(report.epoch, session.epoch());
    assert_eq!(session.epoch().0, pre_epoch.0 + 1, "one batch, one epoch bump");
    assert_eq!(session.sealed_epoch(), None, "the seal drops the read snapshot");

    // Post-seal reads see the batch: the retraction un-resolved `city`.
    assert!(session.is_valid());
    let post_od = session.deduce(DeductionMethod::UnitPropagation).expect("still valid");
    let post_tv = session.true_values(&post_od);
    assert_eq!(post_tv.get(city), None, "the CFD retraction un-resolves city");

    // The staged path lands on the exact state of an atomic batch apply.
    let twin_report = twin.apply_revision_batch(&batch).expect("atomic batch applies");
    assert_eq!(twin_report.applied, 2);
    assert_eq!(twin_report.epoch, report.epoch);
    diff_logical_states(&session.state(), &twin.state())
        .expect("staged and atomic batches land on the same state");

    let mut mirror = SpecMirror::new(&spec);
    for rev in &batch {
        mirror.apply(rev);
    }
    check_session_against_scratch(&mut session, &mirror).expect("sealed state ≡ scratch");
}

/// Mid-batch `take_competing` is a non-destructive snapshot read: it
/// returns the sealed epoch's undrained cells without consuming them, and
/// the post-seal drain yields everything (sealed + batch-recorded) exactly
/// once.
#[test]
fn mid_batch_take_competing_is_a_nondestructive_snapshot() {
    let spec = two_city_spec();
    let city = spec.schema().attr_id("city").unwrap();
    let mut s1 = SourceClock::new(SourceId(1));
    let mut s2 = SourceClock::new(SourceId(2));
    let a = CausalRevision {
        stamp: s1.stamp(1),
        rev: Revision::ReplaceValue { tuple: TupleId(0), attr: city, value: Value::str("SF") },
    };
    let b = CausalRevision {
        stamp: s2.stamp(2),
        rev: Revision::ReplaceValue {
            tuple: TupleId(0),
            attr: city,
            value: Value::str("Boston"),
        },
    };

    // Concurrent writes leave one undrained competing cell.
    let mut session = ResolutionSession::new_revisable(&config(), &spec);
    session.ingest_causal(vec![a, b]).unwrap();
    let sealed_before = session.epoch();

    session.begin_batch();
    let mid = session.take_competing();
    assert_eq!(mid.len(), 1, "the sealed epoch's cell is visible mid-batch");
    assert_eq!((mid[0].tuple, mid[0].attr), (TupleId(0), city));
    assert_eq!(
        session.take_competing(),
        mid,
        "mid-batch reads are snapshots: nothing drains"
    );
    let report = session.seal_batch();
    assert_eq!(report.applied, 0, "an empty batch applies nothing");
    assert_eq!(session.epoch(), sealed_before, "an empty batch does not advance the epoch");

    // The quiescent drain still yields the cell exactly once.
    let drained = session.take_competing();
    assert_eq!(drained, mid, "the sealed cell survives the snapshot reads");
    assert!(session.take_competing().is_empty(), "drained exactly once");
}

/// The double-count regression: redelivering the correction that re-opened
/// an accepted answer — in the same poll and again in a later poll — is
/// dropped by `(source, hlc)` dedup. It must neither re-open the attribute
/// again nor double-bump `reopened`/the competing-cell buffer, and the
/// final resolution must match the duplicate-free run.
#[test]
fn duplicate_redelivery_of_a_reopening_correction_is_idempotent() {
    let (spec, truth) = firing_cfd_spec();
    let job = spec.schema().attr_id("job").unwrap();
    let make_correction = || {
        let mut s1 = SourceClock::new(SourceId(1));
        CausalRevision {
            stamp: s1.stamp(1),
            rev: Revision::ReplaceValue {
                tuple: TupleId(0),
                attr: job,
                value: Value::str("vet"), // contradicts the accepted "n/a"
            },
        }
    };
    let run = |timeline: Vec<(usize, CausalRevision)>| {
        let mut oracle = GroundTruthOracle::new(truth.clone());
        let mut source = ScriptedCausalRevisions::new(timeline);
        resolve_causal_checked(
            &config(),
            &spec,
            &mut oracle,
            &mut source,
            &CausalReplayConfig::default(),
        )
        .expect("causal replay must match scratch")
    };

    let base = run(vec![(1, make_correction())]);
    assert_eq!(base.revisions.reopened, 1);

    // Same-poll duplicate and later-poll redelivery.
    for (what, timeline) in [
        ("same poll", vec![(1, make_correction()), (1, make_correction())]),
        ("later poll", vec![(1, make_correction()), (2, make_correction())]),
    ] {
        let dup = run(timeline);
        assert_eq!(dup.revisions.reopened, 1, "{what}: re-open must not double-count");
        assert_eq!(dup.revisions.duplicates_dropped, 1, "{what}: the copy is dropped");
        assert_eq!(
            dup.interactions, base.interactions,
            "{what}: no extra re-ask from the duplicate"
        );
        let cells: Vec<_> =
            dup.round_reports.iter().flat_map(|r| r.competing.iter()).collect();
        assert_eq!(cells.len(), 1, "{what}: exactly one competing cell surfaces");
        assert_eq!(dup.resolved, base.resolved, "{what}: same final resolution");
        assert_eq!(dup.valid, base.valid);
        assert_eq!(dup.complete, base.complete);
    }
}

/// The chaos-harness regression case for the same bug: the chaos adapter
/// redelivers the single re-opening correction of the timeline, and the
/// chaotic run must still re-open exactly once and converge to the
/// canonical outcome.
#[test]
fn chaos_duplicated_reopening_correction_reopens_once() {
    let (spec, truth) = firing_cfd_spec();
    let job = spec.schema().attr_id("job").unwrap();
    let mut s1 = SourceClock::new(SourceId(1));
    let timeline = vec![(1usize, CausalRevision {
        stamp: s1.stamp(1),
        rev: Revision::ReplaceValue {
            tuple: TupleId(0),
            attr: job,
            value: Value::str("vet"),
        },
    })];

    let mut oracle = GroundTruthOracle::new(truth.clone());
    let mut canonical = ScriptedCausalRevisions::new(timeline.clone());
    let base = resolve_causal_checked(
        &config(),
        &spec,
        &mut oracle,
        &mut canonical,
        &CausalReplayConfig::default(),
    )
    .expect("canonical replay must match scratch");
    assert_eq!(base.revisions.reopened, 1);

    // With a single-event timeline every duplicate the chaos adapter
    // injects is a redelivery of the re-opening correction itself.
    let cfg = ChaosConfig { duplicates: 2, ..ChaosConfig::schedule_preserving(0xD0D0) };
    let mut oracle2 = GroundTruthOracle::new(truth);
    let mut chaotic = chaos(&timeline, &spec, &cfg);
    let run = resolve_causal_checked(
        &config(),
        &spec,
        &mut oracle2,
        &mut chaotic,
        &CausalReplayConfig::default(),
    )
    .expect("chaotic replay must match scratch");

    assert_eq!(run.revisions.duplicates_dropped, 2, "both copies are dropped");
    assert_eq!(run.revisions.reopened, 1, "redelivery must not re-open again");
    assert_eq!(run.interactions, base.interactions);
    assert_eq!(run.resolved, base.resolved);
    assert_eq!(run.valid, base.valid);
}
