/root/repo/target/release/deps/cr_bench-5c0c2e2d16034593.d: crates/cr-bench/src/lib.rs

/root/repo/target/release/deps/libcr_bench-5c0c2e2d16034593.rlib: crates/cr-bench/src/lib.rs

/root/repo/target/release/deps/libcr_bench-5c0c2e2d16034593.rmeta: crates/cr-bench/src/lib.rs

crates/cr-bench/src/lib.rs:
