/root/repo/target/debug/deps/summary-a06573db3c30f84c.d: crates/cr-bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-a06573db3c30f84c: crates/cr-bench/src/bin/summary.rs

crates/cr-bench/src/bin/summary.rs:
