/root/repo/target/release/deps/fig8cd_overall-98553e46b80c37c6.d: crates/cr-bench/src/bin/fig8cd_overall.rs

/root/repo/target/release/deps/fig8cd_overall-98553e46b80c37c6: crates/cr-bench/src/bin/fig8cd_overall.rs

crates/cr-bench/src/bin/fig8cd_overall.rs:
