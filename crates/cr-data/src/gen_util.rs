//! Shared generator utilities.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Seeded RNG used by all generators (reproducible across runs/platforms).
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A pool of synthetic labelled values: `prefix_0 … prefix_{n-1}`.
pub fn label_pool(prefix: &str, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}_{i}")).collect()
}

/// Draws an instance size from `[lo, hi]` with a distribution skewed toward
/// the low end (matching the paper's entity-size distributions, where the
/// mean sits well below the maximum).
pub fn skewed_size(rng: &mut ChaCha8Rng, lo: usize, hi: usize, mean: usize) -> usize {
    debug_assert!(lo <= mean && mean <= hi);
    // Mixture: mostly near the mean (geometric-ish), occasionally large.
    if rng.gen_bool(0.08) {
        rng.gen_range(mean..=hi)
    } else {
        let spread = (mean - lo).max(1);
        lo + rng.gen_range(0..=spread) + rng.gen_range(0..=spread) / 2
    }
}

/// Splits `total` into `parts` positive integers (for spreading constraint
/// budgets across chains).
pub fn split_budget(total: usize, parts: usize) -> Vec<usize> {
    if parts == 0 {
        return Vec::new();
    }
    let base = total / parts;
    let extra = total % parts;
    (0..parts)
        .map(|i| base + usize::from(i < extra))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_pool_is_distinct() {
        let pool = label_pool("x", 100);
        let set: std::collections::HashSet<&String> = pool.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn skewed_size_respects_bounds() {
        let mut r = rng(1);
        for _ in 0..1000 {
            let s = skewed_size(&mut r, 2, 136, 27);
            assert!((2..=136).contains(&s));
        }
    }

    #[test]
    fn split_budget_sums() {
        assert_eq!(split_budget(10, 3), vec![4, 3, 3]);
        assert_eq!(split_budget(10, 3).iter().sum::<usize>(), 10);
        assert!(split_budget(5, 0).is_empty());
    }

    #[test]
    fn rng_is_deterministic() {
        let a: u64 = rng(42).gen();
        let b: u64 = rng(42).gen();
        assert_eq!(a, b);
    }
}
