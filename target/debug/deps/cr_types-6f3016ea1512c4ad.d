/root/repo/target/debug/deps/cr_types-6f3016ea1512c4ad.d: crates/cr-types/src/lib.rs crates/cr-types/src/csv.rs crates/cr-types/src/entity.rs crates/cr-types/src/error.rs crates/cr-types/src/interner.rs crates/cr-types/src/schema.rs crates/cr-types/src/tuple.rs crates/cr-types/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libcr_types-6f3016ea1512c4ad.rmeta: crates/cr-types/src/lib.rs crates/cr-types/src/csv.rs crates/cr-types/src/entity.rs crates/cr-types/src/error.rs crates/cr-types/src/interner.rs crates/cr-types/src/schema.rs crates/cr-types/src/tuple.rs crates/cr-types/src/value.rs Cargo.toml

crates/cr-types/src/lib.rs:
crates/cr-types/src/csv.rs:
crates/cr-types/src/entity.rs:
crates/cr-types/src/error.rs:
crates/cr-types/src/interner.rs:
crates/cr-types/src/schema.rs:
crates/cr-types/src/tuple.rs:
crates/cr-types/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
