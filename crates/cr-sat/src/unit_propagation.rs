//! Root-level unit propagation over a [`Cnf`].
//!
//! This is the engine behind the paper's `DeduceOrder` (Fig. 5): repeatedly
//! find a one-literal clause `C`, record it, and reduce the formula by `C`
//! and `¬C` — clauses containing `C` are removed, occurrences of `¬C` are
//! deleted from their clauses. Every literal found this way is implied by the
//! formula, which is what makes `DeduceOrder` sound (Lemma 6).
//!
//! The implementation uses occurrence lists and false-literal counters
//! instead of physically rewriting clauses, giving the same
//! `O(|Φ(Se)|)` total reduction cost the paper reports.

use crate::cnf::Cnf;
use crate::lit::{LBool, Lit};

/// Result of running unit propagation to fixpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpOutcome {
    /// Fixpoint reached; `implied` lists every literal fixed by propagation,
    /// in derivation order.
    Fixpoint {
        /// Implied literals in the order they were derived.
        implied: Vec<Lit>,
    },
    /// Propagation derived a contradiction: the formula is unsatisfiable.
    Conflict,
}

/// Reusable root-level unit propagation engine.
///
/// The propagator is **incremental**: [`UnitPropagator::add_clause`] (or
/// [`UnitPropagator::extend_from_cnf`]) may be called after a
/// [`UnitPropagator::run`] has reached a fixpoint, and the next `run`
/// resumes from that fixpoint — only the consequences of the new clauses
/// are propagated, and `implied` keeps accumulating across runs. This is
/// what lets the resolution framework keep one propagator alive across all
/// user-interaction rounds instead of re-reducing `Φ(Se)` from scratch.
pub struct UnitPropagator {
    /// Deduplicated clauses; tautologies marked satisfied at ingestion.
    clauses: Vec<Vec<Lit>>,
    satisfied: Vec<bool>,
    false_count: Vec<u32>,
    /// For each literal index, the clauses containing it.
    occurs: Vec<Vec<u32>>,
    assign: Vec<LBool>,
    queue: Vec<Lit>,
    implied: Vec<Lit>,
    conflict: bool,
    /// Clause group tags ([`NO_GROUP`] = permanent) and retraction flags.
    group_of: Vec<u32>,
    dead: Vec<bool>,
    /// Prefix of `implied` already shown to a [`crate::LazyAxiomSource`]
    /// (see [`UnitPropagator::propagate_to_fixpoint_lazy`]); reset together
    /// with the assignment on retraction so re-derived fixpoints are
    /// re-delivered from scratch.
    lazy_cursor: usize,
}

/// Group tag of a permanent (non-retractable) clause.
pub const NO_GROUP: u32 = u32::MAX;

impl UnitPropagator {
    /// Builds a propagator over the clauses of `cnf`.
    pub fn new(cnf: &Cnf) -> Self {
        let num_vars = cnf.num_vars() as usize;
        let mut up = UnitPropagator {
            clauses: Vec::with_capacity(cnf.num_clauses()),
            satisfied: Vec::with_capacity(cnf.num_clauses()),
            false_count: Vec::with_capacity(cnf.num_clauses()),
            occurs: vec![Vec::new(); num_vars * 2],
            assign: vec![LBool::Undef; num_vars],
            queue: Vec::new(),
            implied: Vec::new(),
            conflict: false,
            group_of: Vec::with_capacity(cnf.num_clauses()),
            dead: Vec::with_capacity(cnf.num_clauses()),
            lazy_cursor: 0,
        };
        for clause in cnf.clauses() {
            up.add_clause(clause);
        }
        up
    }

    /// Grows the variable tables to hold at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        if self.assign.len() < n {
            self.assign.resize(n, LBool::Undef);
            self.occurs.resize(n * 2, Vec::new());
        }
    }

    /// Appends the clauses of `cnf` starting at clause index `from`,
    /// growing the variable tables as needed. Used to sync the propagator
    /// with a [`Cnf`] that was extended since the last call.
    pub fn extend_from_cnf(&mut self, cnf: &Cnf, from: usize) {
        self.ensure_vars(cnf.num_vars() as usize);
        for clause in &cnf.clauses()[from..] {
            self.add_clause(clause);
        }
    }

    /// Adds one clause (used for incremental extension with user input).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.add_clause_grouped(lits, NO_GROUP);
    }

    /// Adds one clause tagged with a *retractable group*. All clauses of a
    /// group can later be withdrawn with [`UnitPropagator::retract_group`] —
    /// the mechanism behind the guard-literal clause groups of the
    /// incremental resolution engine (the engine strips the guard literal
    /// and passes the group tag instead, so the propagator's hot path never
    /// sees guard variables).
    pub fn add_clause_grouped(&mut self, lits: &[Lit], group: u32) {
        let mut clause: Vec<Lit> = lits.to_vec();
        clause.sort_unstable();
        clause.dedup();
        let tautology = clause.windows(2).any(|w| w[0] == w[1].negate());
        if let Some(max_var) = clause.iter().map(|l| l.var().index()).max() {
            self.ensure_vars(max_var + 1);
        }
        let idx = self.clauses.len() as u32;
        // Account for already-assigned literals.
        let mut sat = tautology;
        let mut n_false = 0;
        for &l in &clause {
            match self.value(l) {
                LBool::True => sat = true,
                LBool::False => n_false += 1,
                LBool::Undef => {}
            }
        }
        for &l in &clause {
            self.occurs[l.index()].push(idx);
        }
        if clause.is_empty() {
            self.conflict = true;
        } else if !sat {
            if n_false == clause.len() as u32 {
                self.conflict = true;
            } else if n_false == clause.len() as u32 - 1 {
                if let Some(unit) = clause.iter().find(|&&l| self.value(l) == LBool::Undef) {
                    self.queue.push(*unit);
                }
            }
        }
        self.clauses.push(clause);
        self.satisfied.push(sat);
        self.false_count.push(n_false);
        self.group_of.push(group);
        self.dead.push(false);
    }

    /// Withdraws every clause of `group` and resets the propagation state.
    ///
    /// Root-level assignments are irreversible *within* a fixpoint run, so
    /// retraction cannot surgically undo the consequences of the retracted
    /// clauses; instead the propagator clears its assignment, marks the
    /// group's clauses dead and re-queues the remaining unit clauses. The
    /// next [`UnitPropagator::propagate_to_fixpoint`] then re-derives the
    /// fixpoint of the surviving formula from scratch — `O(|Φ|)`, paid only
    /// on retraction (≈ once per out-of-domain user answer), with no
    /// re-encoding or clause re-ingestion.
    pub fn retract_group(&mut self, group: u32) {
        self.retract_groups(&[group]);
    }

    /// [`UnitPropagator::retract_group`] for a batch: all groups are marked
    /// dead first, then the state is reset **once** — a round that retracts
    /// `k` CFD groups pays one `O(|Φ|)` re-derivation, not `k`.
    pub fn retract_groups(&mut self, groups: &[u32]) {
        if groups.is_empty() {
            return;
        }
        debug_assert!(groups.iter().all(|&g| g != NO_GROUP), "cannot retract permanent clauses");
        for (ci, g) in self.group_of.iter().enumerate() {
            if groups.contains(g) {
                self.dead[ci] = true;
            }
        }
        self.reset_and_requeue();
    }

    /// Clears all derived state and re-queues the units of the surviving
    /// clauses, as if the alive clauses had just been ingested fresh.
    fn reset_and_requeue(&mut self) {
        self.assign.fill(LBool::Undef);
        self.implied.clear();
        self.queue.clear();
        self.conflict = false;
        self.lazy_cursor = 0;
        for ci in 0..self.clauses.len() {
            let clause = &self.clauses[ci];
            // Clauses are sorted and deduplicated at ingestion, so a
            // tautology shows up as adjacent complementary literals.
            let tautology = clause.windows(2).any(|w| w[0] == w[1].negate());
            self.satisfied[ci] = self.dead[ci] || tautology;
            self.false_count[ci] = 0;
            if !self.satisfied[ci] {
                match clause.len() {
                    0 => self.conflict = true,
                    1 => self.queue.push(clause[0]),
                    _ => {}
                }
            }
        }
    }

    fn value(&self, l: Lit) -> LBool {
        let v = self.assign[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Runs propagation to fixpoint and reports **all** implied literals
    /// accumulated so far (including those of earlier runs).
    ///
    /// Clones the accumulated set; resumed callers on a hot path should
    /// prefer [`UnitPropagator::propagate_to_fixpoint`], which borrows it.
    pub fn run(&mut self) -> UpOutcome {
        match self.propagate_to_fixpoint() {
            None => UpOutcome::Conflict,
            Some(implied) => UpOutcome::Fixpoint { implied: implied.to_vec() },
        }
    }

    /// Runs propagation to fixpoint, borrowing the accumulated implied set
    /// (all runs so far, in derivation order); `None` on contradiction.
    ///
    /// Unit clauses are queued at [`UnitPropagator::add_clause`] time, so a
    /// resumed run only performs work proportional to the consequences of
    /// the clauses added since the previous fixpoint.
    pub fn propagate_to_fixpoint(&mut self) -> Option<&[Lit]> {
        if self.conflict {
            return None;
        }
        while let Some(lit) = self.queue.pop() {
            match self.value(lit) {
                LBool::True => continue,
                LBool::False => {
                    self.conflict = true;
                    return None;
                }
                LBool::Undef => {}
            }
            self.assign[lit.var().index()] = LBool::from_bool(lit.is_positive());
            self.implied.push(lit);

            // Clauses containing `lit` become satisfied (removed).
            let sat_list = std::mem::take(&mut self.occurs[lit.index()]);
            for &ci in &sat_list {
                self.satisfied[ci as usize] = true;
            }
            self.occurs[lit.index()] = sat_list;

            // Clauses containing `¬lit` shrink by one literal.
            let neg = lit.negate();
            let shrink_list = std::mem::take(&mut self.occurs[neg.index()]);
            for &ci in &shrink_list {
                let ci = ci as usize;
                if self.satisfied[ci] {
                    continue;
                }
                self.false_count[ci] += 1;
                let remaining = self.clauses[ci].len() as u32 - self.false_count[ci];
                if remaining == 0 {
                    self.conflict = true;
                    return None;
                }
                if remaining == 1 {
                    // Locate the lone non-false literal.
                    let unit = self.clauses[ci]
                        .iter()
                        .copied()
                        .find(|&l| self.value(l) != LBool::False)
                        .expect("remaining == 1 guarantees a non-false literal");
                    match self.value(unit) {
                        LBool::True => self.satisfied[ci] = true,
                        _ => self.queue.push(unit),
                    }
                }
            }
            self.occurs[neg.index()] = shrink_list;
        }
        Some(&self.implied)
    }

    /// [`UnitPropagator::propagate_to_fixpoint`] interleaved with lazy
    /// axiom instantiation: after each fixpoint, `source` is shown the
    /// literals assigned since it was last consulted (the `delta`) and every
    /// axiom clause it returns is added; propagation then resumes. The loop
    /// ends when a fixpoint provokes no further instantiation — at which
    /// point the accumulated implied set equals what unit propagation over
    /// the fully materialised axiom scheme would have derived (an eager
    /// propagation step needs a clause that is unit under the current
    /// assignment, and exactly those clauses are requested on demand).
    ///
    /// The delta cursor survives across calls (the engine re-enters this
    /// per interaction round) and is reset by group retraction together
    /// with the assignment, so re-derived fixpoints are re-delivered.
    pub fn propagate_to_fixpoint_lazy(
        &mut self,
        source: &mut dyn crate::LazyAxiomSource,
    ) -> Option<&[Lit]> {
        loop {
            self.propagate_to_fixpoint()?;
            let clauses = {
                let assign = &self.assign;
                let delta = &self.implied[self.lazy_cursor..];
                source.instantiate(
                    &|v| assign.get(v.index()).and_then(|b| b.to_option()),
                    Some(delta),
                )
            };
            self.lazy_cursor = self.implied.len();
            if clauses.is_empty() {
                return Some(&self.implied);
            }
            for clause in &clauses {
                self.add_clause(clause);
            }
        }
    }

    /// The current truth value of a literal after [`UnitPropagator::run`].
    pub fn literal_value(&self, l: Lit) -> Option<bool> {
        self.value(l).to_option()
    }
}

/// Convenience: one-shot unit propagation over `cnf`.
pub fn propagate_units(cnf: &Cnf) -> UpOutcome {
    UnitPropagator::new(cnf).run_owned()
}

impl UnitPropagator {
    fn run_owned(mut self) -> UpOutcome {
        self.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    #[test]
    fn derives_chain() {
        let mut cnf = Cnf::new();
        let v: Vec<Var> = (0..4).map(|_| cnf.new_var()).collect();
        cnf.add_clause([v[0].positive()]);
        cnf.add_clause([v[0].negative(), v[1].positive()]);
        cnf.add_clause([v[1].negative(), v[2].positive()]);
        cnf.add_clause([v[2].negative(), v[3].negative()]);
        match propagate_units(&cnf) {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(
                    implied,
                    vec![v[0].positive(), v[1].positive(), v[2].positive(), v[3].negative()]
                );
            }
            UpOutcome::Conflict => panic!("unexpected conflict"),
        }
    }

    #[test]
    fn no_units_no_implications() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative(), b.negative()]);
        match propagate_units(&cnf) {
            UpOutcome::Fixpoint { implied } => assert!(implied.is_empty()),
            UpOutcome::Conflict => panic!(),
        }
    }

    #[test]
    fn detects_conflict() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive()]);
        cnf.add_clause([a.negative(), b.positive()]);
        cnf.add_clause([b.negative()]);
        assert_eq!(propagate_units(&cnf), UpOutcome::Conflict);
    }

    #[test]
    fn duplicate_literals_counted_once() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), a.positive(), b.positive()]);
        cnf.add_clause([a.negative()]);
        match propagate_units(&cnf) {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(implied, vec![a.negative(), b.positive()]);
            }
            UpOutcome::Conflict => panic!(),
        }
    }

    #[test]
    fn tautology_never_produces_units() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), a.negative()]);
        cnf.add_clause([b.negative(), b.positive()]);
        match propagate_units(&cnf) {
            UpOutcome::Fixpoint { implied } => assert!(implied.is_empty()),
            UpOutcome::Conflict => panic!(),
        }
    }

    #[test]
    fn retracted_groups_never_propagate() {
        // Group 1: a → b. Permanent: a. After retraction, b must no longer
        // be implied — including implications *already derived* before the
        // retraction.
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let c = cnf.new_var();
        cnf.add_clause([a.positive()]);
        let mut up = UnitPropagator::new(&cnf);
        up.add_clause_grouped(&[a.negative(), b.positive()], 1);
        up.add_clause_grouped(&[b.negative(), c.positive()], 1);
        match up.run() {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(implied, vec![a.positive(), b.positive(), c.positive()]);
            }
            UpOutcome::Conflict => panic!(),
        }
        up.retract_group(1);
        match up.run() {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(implied, vec![a.positive()], "group consequences must vanish");
            }
            UpOutcome::Conflict => panic!(),
        }
        assert_eq!(up.literal_value(b.positive()), None);
        assert_eq!(up.literal_value(c.positive()), None);
    }

    #[test]
    fn retraction_clears_group_conflicts() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause([a.positive()]);
        let mut up = UnitPropagator::new(&cnf);
        up.add_clause_grouped(&[a.negative()], 7);
        assert_eq!(up.run(), UpOutcome::Conflict);
        up.retract_group(7);
        match up.run() {
            UpOutcome::Fixpoint { implied } => assert_eq!(implied, vec![a.positive()]),
            UpOutcome::Conflict => panic!("conflict must die with its group"),
        }
    }

    #[test]
    fn clauses_added_after_retraction_propagate() {
        let mut up = UnitPropagator::new(&Cnf::new());
        let a = crate::lit::Var(0);
        let b = crate::lit::Var(1);
        up.add_clause_grouped(&[a.positive()], 1);
        assert!(matches!(up.run(), UpOutcome::Fixpoint { .. }));
        up.retract_group(1);
        up.add_clause_grouped(&[a.negative()], 2);
        up.add_clause(&[a.positive(), b.positive()]);
        match up.run() {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(implied, vec![a.negative(), b.positive()]);
            }
            UpOutcome::Conflict => panic!(),
        }
    }

    #[test]
    fn incremental_addition_reuses_state() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.negative(), b.positive()]);
        let mut up = UnitPropagator::new(&cnf);
        match up.run() {
            UpOutcome::Fixpoint { implied } => assert!(implied.is_empty()),
            UpOutcome::Conflict => panic!(),
        }
        up.add_clause(&[a.positive()]);
        match up.run() {
            UpOutcome::Fixpoint { implied } => {
                assert_eq!(implied, vec![a.positive(), b.positive()])
            }
            UpOutcome::Conflict => panic!(),
        }
        assert_eq!(up.literal_value(b.positive()), Some(true));
    }
}
