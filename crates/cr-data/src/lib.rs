//! Dataset substrate for the experimental study (Section VI).
//!
//! Provides the paper's running example as an exact fixture ([`vjday`]) and
//! three generators emulating the evaluation datasets:
//!
//! * [`person`] — the synthetic Person data, implemented as the paper
//!   describes (generate a true tuple, then a conflicting-but-consistent
//!   history; the entity instance is `E \ {tc}`);
//! * [`nba`] — a simulated NBA player-statistics dataset matching the
//!   published shape statistics (760 entities, 2–136 tuples each, 54
//!   currency constraints, 58 constant CFDs of the documented forms);
//! * [`career`] — a simulated CAREER/citeseer dataset (65 entities, 2–175
//!   tuples, citation-derived currency constraints, an
//!   `affiliation → city, country` CFD with ~347 patterns).
//!
//! The real NBA and CAREER scrapes are not redistributable/available
//! offline; DESIGN.md §3 documents why these generators preserve the
//! behaviour the experiments measure.

pub mod career;
pub mod chaos;
pub mod fleet;
pub mod gen;
pub mod gen_util;
pub mod nba;
pub mod person;
pub mod vjday;

use std::sync::{Arc, OnceLock};

use cr_constraints::{ConstantCfd, CurrencyConstraint};
use cr_core::{CompiledProgram, Specification};
use cr_types::{EntityInstance, Schema, Tuple, ValueTable};

/// A dataset: shared schema and constraints plus per-entity instances with
/// their ground-truth current tuples.
///
/// All entities share one [`ValueTable`] (see
/// `Dataset::share_value_table`) and one [`CompiledProgram`]
/// ([`Dataset::program`]): Σ/Γ are compiled against the table **once per
/// dataset**, and [`Dataset::spec`] stamps the shared program onto every
/// entity specification so per-entity encoding only *projects* through it.
pub struct Dataset {
    /// Dataset name (for reports).
    pub name: String,
    /// The relation schema.
    pub schema: Arc<Schema>,
    /// Currency constraints `Σ` shared by all entities.
    pub sigma: Vec<CurrencyConstraint>,
    /// Constant CFDs `Γ` shared by all entities.
    pub gamma: Vec<ConstantCfd>,
    /// `(entity instance, ground-truth tuple)` pairs.
    pub entities: Vec<(EntityInstance, Tuple)>,
    /// Dataset-wide value table (filled by `share_value_table`).
    pub(crate) table: Option<Arc<ValueTable>>,
    /// Σ/Γ compiled against the shared table, once per dataset.
    pub(crate) program: OnceLock<Arc<CompiledProgram>>,
}

impl Dataset {
    /// Builds the specification (with empty currency orders, as in all the
    /// paper's experiments) for entity `i`, carrying the dataset-shared
    /// compiled constraint program.
    pub fn spec(&self, i: usize) -> Specification {
        let spec = Specification::without_orders(
            self.entities[i].0.clone(),
            self.sigma.clone(),
            self.gamma.clone(),
        );
        spec.set_compiled_program(self.program().clone());
        spec
    }

    /// The dataset's compiled constraint program, compiled on first use
    /// against the shared value table.
    pub fn program(&self) -> &Arc<CompiledProgram> {
        self.program.get_or_init(|| {
            Arc::new(CompiledProgram::compile(
                &self.sigma,
                &self.gamma,
                self.table.as_deref(),
            ))
        })
    }

    /// The dataset-wide value table, if the entities were re-interned over
    /// one (`Dataset::share_value_table`). Consumers re-deriving
    /// constraint subsets (benchmark subsampling) compile their programs
    /// against this table.
    pub fn value_table(&self) -> Option<&Arc<ValueTable>> {
        self.table.as_ref()
    }

    /// The ground truth of entity `i`.
    pub fn truth(&self, i: usize) -> &Tuple {
        &self.entities[i].1
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True iff the dataset has no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Re-interns every entity instance over **one dataset-wide
    /// [`ValueTable`]**: all values are interned exactly once, every
    /// entity's dense id rows reference the shared table (via `Arc`), and
    /// equal values are deduplicated across entities. Generators call this
    /// as their final step; the SAT encoder's instantiation then runs on
    /// dense ids whose interning cost was paid once per dataset rather than
    /// once per specification.
    pub(crate) fn share_value_table(mut self) -> Self {
        let mut table = ValueTable::new();
        for (e, truth) in &self.entities {
            table.intern_tuples(e.tuples());
            table.intern_tuples(std::iter::once(truth));
        }
        self.entities = self
            .entities
            .into_iter()
            .map(|(e, truth)| {
                let tuples = e.tuples().to_vec();
                let schema = e.schema().clone();
                (
                    EntityInstance::with_table(schema, tuples, &table)
                        .expect("arity already validated"),
                    truth,
                )
            })
            .collect();
        self.table = Some(Arc::new(table));
        self
    }

    /// Summary statistics: `(entities, min/avg/max instance size, |Σ|, |Γ|)`.
    pub fn stats(&self) -> DatasetStats {
        let sizes: Vec<usize> = self.entities.iter().map(|(e, _)| e.len()).collect();
        let total: usize = sizes.iter().sum();
        DatasetStats {
            entities: self.entities.len(),
            min_tuples: sizes.iter().copied().min().unwrap_or(0),
            avg_tuples: if sizes.is_empty() { 0.0 } else { total as f64 / sizes.len() as f64 },
            max_tuples: sizes.iter().copied().max().unwrap_or(0),
            total_tuples: total,
            sigma: self.sigma.len(),
            gamma: self.gamma.len(),
        }
    }
}

/// Shape statistics of a dataset (compared against the paper's in tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of entities.
    pub entities: usize,
    /// Smallest entity instance.
    pub min_tuples: usize,
    /// Mean entity instance size.
    pub avg_tuples: f64,
    /// Largest entity instance.
    pub max_tuples: usize,
    /// Total tuples across entities.
    pub total_tuples: usize,
    /// Currency constraint count.
    pub sigma: usize,
    /// Constant CFD count.
    pub gamma: usize,
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entities, {} tuples ({}..{} per entity, avg {:.1}), |Sigma|={}, |Gamma|={}",
            self.entities,
            self.total_tuples,
            self.min_tuples,
            self.max_tuples,
            self.avg_tuples,
            self.sigma,
            self.gamma
        )
    }
}
