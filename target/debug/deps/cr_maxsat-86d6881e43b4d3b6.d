/root/repo/target/debug/deps/cr_maxsat-86d6881e43b4d3b6.d: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs

/root/repo/target/debug/deps/cr_maxsat-86d6881e43b4d3b6: crates/cr-maxsat/src/lib.rs crates/cr-maxsat/src/exact.rs crates/cr-maxsat/src/instance.rs crates/cr-maxsat/src/walksat.rs

crates/cr-maxsat/src/lib.rs:
crates/cr-maxsat/src/exact.rs:
crates/cr-maxsat/src/instance.rs:
crates/cr-maxsat/src/walksat.rs:
