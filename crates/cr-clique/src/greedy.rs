//! Greedy maximal-clique heuristic for graphs too large for exact search.

use crate::graph::{Graph, VertexSet};

/// Builds a maximal clique greedily from every vertex seed and keeps the
/// best. Within a run, the candidate with the highest degree *inside the
/// remaining candidate set* is added next — the classic sequential greedy
/// bound used as the base case of approximation schemes like Feige's.
///
/// O(n · m / 64) overall; deterministic.
pub fn greedy_clique(g: &Graph) -> Vec<usize> {
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let mut best: Vec<usize> = Vec::new();
    for seed in 0..n {
        if g.degree(seed) < best.len() {
            continue; // cannot possibly beat the incumbent
        }
        let mut clique = vec![seed];
        let mut candidates = VertexSet::full(n).intersect_row(g.row(seed));
        while !candidates.is_empty() {
            // Pick the candidate with the most neighbours among candidates.
            let mut best_v = usize::MAX;
            let mut best_deg = 0usize;
            for v in candidates.iter() {
                let deg = candidates
                    .intersect_row(g.row(v))
                    .count();
                if best_v == usize::MAX || deg > best_deg {
                    best_v = v;
                    best_deg = deg;
                }
            }
            clique.push(best_v);
            candidates = candidates.intersect_row(g.row(best_v));
        }
        if clique.len() > best.len() {
            best = clique;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::max_clique;

    #[test]
    fn greedy_finds_planted_clique() {
        // Sparse background + planted K6 on vertices 10..16.
        let mut g = Graph::new(40);
        for i in 0..39 {
            g.add_edge(i, i + 1);
        }
        for a in 10..16 {
            for b in (a + 1)..16 {
                g.add_edge(a, b);
            }
        }
        let c = greedy_clique(&g);
        assert!(g.is_clique(&c));
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn greedy_result_is_always_a_clique_and_maximal() {
        let mut g = Graph::new(25);
        for a in 0..25usize {
            for b in a + 1..25 {
                if (a * 7 + b * 13) % 3 == 0 {
                    g.add_edge(a, b);
                }
            }
        }
        let c = greedy_clique(&g);
        assert!(g.is_clique(&c));
        // Maximality: no vertex can extend it.
        for v in 0..25 {
            if c.contains(&v) {
                continue;
            }
            assert!(
                !c.iter().all(|&u| g.has_edge(u, v)),
                "clique not maximal: {v} extends it"
            );
        }
        // Sanity against exact.
        assert!(c.len() <= max_clique(&g).len());
    }

    #[test]
    fn empty_graph() {
        assert!(greedy_clique(&Graph::new(0)).is_empty());
        assert_eq!(greedy_clique(&Graph::new(3)).len(), 1);
    }
}
