//! Fig. 8(e)/(i)/(m): fraction of true attribute values found vs the number
//! of user-interaction rounds.
//!
//! Paper reference: with Σ+Γ and no interaction, 35% (NBA), 78% (CAREER)
//! and 22% (Person) of true values are deduced automatically; all true
//! values are found within 2, 2 and 3 rounds respectively.
//!
//! Run: `cargo run --release -p cr-bench --bin fig8_interactions [--entities N]`.

use cr_bench::{arg_entities, arg_seed, print_table, run_dataset, ConstraintMode};

fn main() {
    let n = arg_entities(50);
    let seed = arg_seed(0xE1);
    let datasets = [
        cr_bench::quick::nba(n, seed),
        cr_bench::quick::career(n.min(65), seed),
        cr_bench::quick::person(n, seed),
    ];

    let mut rows = Vec::new();
    for ds in &datasets {
        for k in 0..=3usize {
            let (acc, _) = run_dataset(ds, ConstraintMode::Both, 1.0, k, seed);
            rows.push(vec![
                ds.name.clone(),
                k.to_string(),
                format!("{:.3}", acc.true_value_fraction()),
                format!("{:.3}", acc.fully_resolved_fraction()),
            ]);
        }
    }
    print_table(
        "Fig. 8(e)/(i)/(m) — true values found vs interaction rounds (Σ+Γ)",
        &["dataset", "rounds", "% true values", "% entities fully resolved"],
        &rows,
    );
    println!("\npaper reference: 0-interaction 35% (NBA) / 78% (CAREER) / 22% (Person);");
    println!("all values found within 2 / 2 / 3 rounds");
}
