/root/repo/target/debug/deps/fig8b_deduce-f176f4965096511f.d: crates/cr-bench/src/bin/fig8b_deduce.rs

/root/repo/target/debug/deps/libfig8b_deduce-f176f4965096511f.rmeta: crates/cr-bench/src/bin/fig8b_deduce.rs

crates/cr-bench/src/bin/fig8b_deduce.rs:
