//! Currency constraints `∀t1,t2 (ω → t1 ≺_Ar t2)`.

use std::fmt;
use std::sync::Arc;

use cr_types::{AttrId, Schema, Tuple};

use crate::error::ConstraintError;
use crate::predicate::Predicate;

/// A currency constraint (Section II-A): whenever the premise `ω` holds for
/// a tuple pair `(t1, t2)`, `t2`'s value of the conclusion attribute is more
/// current than `t1`'s.
///
/// Unlike the denial constraints of the earlier currency model, these are
/// two-tuple constraints, which is what brings the inference problems down
/// from `Σp2`/`Πp2` to NP/coNP (Section IV).
#[derive(Clone, Debug)]
pub struct CurrencyConstraint {
    schema: Arc<Schema>,
    name: Option<String>,
    premises: Vec<Predicate>,
    conclusion_attr: AttrId,
}

impl CurrencyConstraint {
    /// Builds a constraint after validating every attribute id against
    /// `schema`.
    pub fn new(
        schema: Arc<Schema>,
        name: Option<String>,
        premises: Vec<Predicate>,
        conclusion_attr: AttrId,
    ) -> Result<Self, ConstraintError> {
        let check = |attr: AttrId| -> Result<(), ConstraintError> {
            if attr.index() >= schema.arity() {
                Err(ConstraintError::AttrOutOfRange(attr.0))
            } else {
                Ok(())
            }
        };
        check(conclusion_attr)?;
        for p in &premises {
            check(p.attr())?;
        }
        Ok(CurrencyConstraint { schema, name, premises, conclusion_attr })
    }

    /// The schema the constraint is defined over.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Optional constraint name (e.g. `phi1`).
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The premise conjuncts `ω`.
    pub fn premises(&self) -> &[Predicate] {
        &self.premises
    }

    /// The conclusion attribute `Ar` of `t1 ≺_Ar t2`.
    pub fn conclusion_attr(&self) -> AttrId {
        self.conclusion_attr
    }

    /// Every attribute the constraint references — premise attributes plus
    /// the conclusion — sorted and deduplicated. This is the projection key
    /// of the encoder's instantiation: tuple pairs agreeing on these
    /// attributes produce identical instance constraints. Derived once per
    /// dataset by the compiled constraint program; per-entity encoding must
    /// not recompute it.
    pub fn referenced_attrs(&self) -> Vec<AttrId> {
        let mut attrs: Vec<AttrId> = self
            .premises
            .iter()
            .map(|p| p.attr())
            .chain(std::iter::once(self.conclusion_attr))
            .collect();
        attrs.sort_unstable();
        attrs.dedup();
        attrs
    }

    /// Attributes of the order predicates in the premise.
    pub fn order_premise_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.premises.iter().filter_map(|p| match p {
            Predicate::Order { attr } => Some(*attr),
            _ => None,
        })
    }

    /// True iff the premise contains no order predicates — i.e. `ω` is a
    /// conjunction of comparison predicates only. The `Pick` baseline of the
    /// experimental study is allowed to exploit exactly these constraints.
    pub fn is_comparison_only(&self) -> bool {
        self.premises.iter().all(|p| !p.is_order())
    }

    /// Evaluates every *comparison* conjunct of `ω` on the ordered pair
    /// `(t1, t2)`. `Some(false)` means the premise is false outright on this
    /// pair; `Some(true)` means all data conjuncts hold (any order conjuncts
    /// remain to be resolved symbolically); this is the data half of the
    /// paper's `ins(ω, s1, s2)` instantiation.
    pub fn comparisons_hold(&self, t1: &Tuple, t2: &Tuple) -> bool {
        self.premises
            .iter()
            .all(|p| p.eval_comparison(t1, t2).unwrap_or(true))
    }
}

impl fmt::Display for CurrencyConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            write!(f, "{n}: ")?;
        }
        write!(f, "forall t1,t2 (")?;
        for (i, p) in self.premises.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{}", p.display(&self.schema))?;
        }
        write!(
            f,
            " -> t1 <[{}] t2)",
            self.schema.attr_name(self.conclusion_attr)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::CompOp;
    use crate::predicate::TupleRef;
    use cr_types::Value;

    fn schema() -> Arc<Schema> {
        Schema::new("person", ["status", "job", "kids"]).unwrap()
    }

    fn phi1(s: &Arc<Schema>) -> CurrencyConstraint {
        let status = s.attr_id("status").unwrap();
        CurrencyConstraint::new(
            s.clone(),
            Some("phi1".into()),
            vec![
                Predicate::ConstCmp {
                    tuple: TupleRef::T1,
                    attr: status,
                    op: CompOp::Eq,
                    constant: Value::str("working"),
                },
                Predicate::ConstCmp {
                    tuple: TupleRef::T2,
                    attr: status,
                    op: CompOp::Eq,
                    constant: Value::str("retired"),
                },
            ],
            status,
        )
        .unwrap()
    }

    #[test]
    fn comparisons_hold_is_directional() {
        let s = schema();
        let c = phi1(&s);
        let working = Tuple::of([Value::str("working"), Value::str("nurse"), Value::int(0)]);
        let retired = Tuple::of([Value::str("retired"), Value::Null, Value::int(3)]);
        assert!(c.comparisons_hold(&working, &retired));
        assert!(!c.comparisons_hold(&retired, &working));
    }

    #[test]
    fn order_premises_are_listed() {
        let s = schema();
        let status = s.attr_id("status").unwrap();
        let job = s.attr_id("job").unwrap();
        let c = CurrencyConstraint::new(
            s.clone(),
            None,
            vec![Predicate::Order { attr: status }],
            job,
        )
        .unwrap();
        assert_eq!(c.order_premise_attrs().collect::<Vec<_>>(), vec![status]);
        assert!(!c.is_comparison_only());
        assert!(phi1(&s).is_comparison_only());
    }

    #[test]
    fn out_of_range_attr_rejected() {
        let s = schema();
        assert!(CurrencyConstraint::new(s.clone(), None, vec![], AttrId(99)).is_err());
    }

    #[test]
    fn display_is_paper_like() {
        let s = schema();
        assert_eq!(
            phi1(&s).to_string(),
            "phi1: forall t1,t2 (t1[status] = \"working\" && t2[status] = \"retired\" -> t1 <[status] t2)"
        );
    }
}
