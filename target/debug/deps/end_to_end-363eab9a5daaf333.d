/root/repo/target/debug/deps/end_to_end-363eab9a5daaf333.d: crates/cr-bench/benches/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-363eab9a5daaf333.rmeta: crates/cr-bench/benches/end_to_end.rs Cargo.toml

crates/cr-bench/benches/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
