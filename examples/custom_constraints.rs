//! Authoring your own specification: text syntax, the builder API, validity
//! checking and conflict detection.
//!
//! Models a small device-inventory scenario: firmware versions only move
//! forward, a device's port count never shrinks, and the firmware's major
//! series determines the config format.
//!
//! Run: `cargo run --example custom_constraints`

use conflict_resolution::constraints::parser::{parse_cfd_file, parse_currency_file};
use conflict_resolution::constraints::{CompOp, CurrencyConstraintBuilder};
use conflict_resolution::core::framework::render_resolved;
use conflict_resolution::core::{deduce_order, is_valid, true_values_from_orders, EncodedSpec, Specification};
use conflict_resolution::types::{EntityInstance, Schema, Tuple, Value};

fn main() {
    let schema = Schema::new("device", ["serial", "firmware", "ports", "config_format"])
        .expect("schema");

    // Three observations of the same switch from different scans.
    let entity = EntityInstance::new(
        schema.clone(),
        vec![
            Tuple::of([Value::str("SW-001"), Value::str("v1"), Value::int(24), Value::str("ini")]),
            Tuple::of([Value::str("SW-001"), Value::str("v2"), Value::int(48), Value::str("ini")]),
            Tuple::of([Value::str("SW-001"), Value::str("v3"), Value::int(48), Value::str("yaml")]),
        ],
    )
    .expect("entity");

    // Text syntax (see cr-constraints::parser docs for the grammar).
    let mut sigma = parse_currency_file(
        &schema,
        r#"
        # firmware series only move forward
        fw12: t1[firmware] = "v1" && t2[firmware] = "v2" -> t1 <[firmware] t2
        fw23: t1[firmware] = "v2" && t2[firmware] = "v3" -> t1 <[firmware] t2
        # newer firmware implies the port reading is newer too
        prop: t1 <[firmware] t2 -> t1 <[ports] t2
        "#,
    )
    .expect("parse sigma");

    // The same thing programmatically, via the builder.
    sigma.push(
        CurrencyConstraintBuilder::new(&schema, "ports")
            .expect("attr")
            .tuple_cmp("ports", CompOp::Lt)
            .expect("attr")
            .named("ports_monotone")
            .build()
            .expect("constraint"),
    );

    let gamma = parse_cfd_file(
        &schema,
        r#"
        cfg3: firmware = "v3" -> config_format = "yaml"
        "#,
    )
    .expect("parse gamma");

    let spec = Specification::without_orders(entity, sigma, gamma);
    let validity = is_valid(&spec);
    println!("specification valid: {}", validity.valid);

    let enc = EncodedSpec::encode(&spec);
    let od = deduce_order(&enc).expect("valid");
    let values = true_values_from_orders(&enc, &od);
    println!("resolved: {}", render_resolved(&schema, &values));
    assert!(values.complete());

    // Now poison the constraint set with a contradictory rule: v3 → v1.
    let mut bad_sigma = spec.sigma().to_vec();
    bad_sigma.extend(parse_currency_file(
        &schema,
        r#"back: t1[firmware] = "v3" && t2[firmware] = "v1" -> t1 <[firmware] t2"#,
    )
    .expect("parse"));
    let bad = Specification::without_orders(spec.entity().clone(), bad_sigma, spec.gamma().to_vec());
    let bad_validity = is_valid(&bad);
    println!(
        "with the contradictory rule the specification is valid: {} (conflicts seen by SAT: {})",
        bad_validity.valid, bad_validity.conflicts
    );
    assert!(!bad_validity.valid, "cycle v1 -> v2 -> v3 -> v1 must be detected");
}
