/root/repo/target/debug/examples/interactive_george-7b6c6893058402bd.d: examples/interactive_george.rs Cargo.toml

/root/repo/target/debug/examples/libinteractive_george-7b6c6893058402bd.rmeta: examples/interactive_george.rs Cargo.toml

examples/interactive_george.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
