//! Two-watched-literal Boolean constraint propagation.

use super::{ClauseRef, Solver, Watcher};
use crate::lit::LBool;

impl Solver {
    /// Propagates all enqueued facts. Returns the conflicting clause if a
    /// clause became empty, `None` when a fixpoint is reached.
    ///
    /// Invariant maintained: for every alive clause, `lits[0]` and `lits[1]`
    /// are its watched literals and appear in the watcher lists of those
    /// literals.
    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while conflict.is_none() && self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.negate();

            // Take the watcher list for the falsified literal; entries are
            // either written back or migrated to a new watch.
            let mut watchers = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut keep = 0;
            let mut idx = 0;
            'watchers: while idx < watchers.len() {
                let w = watchers[idx];
                idx += 1;
                // Blocker short-circuit: clause already satisfied.
                if self.value_lit(w.blocker) == LBool::True {
                    watchers[keep] = w;
                    keep += 1;
                    continue;
                }
                let clause = &mut self.clauses[w.cref as usize];
                debug_assert!(!clause.deleted, "watcher on deleted clause");
                // Normalise so the falsified literal sits at lits[1].
                if clause.lits[0] == false_lit {
                    clause.lits.swap(0, 1);
                }
                debug_assert_eq!(clause.lits[1], false_lit);
                let first = clause.lits[0];
                let new_watcher = Watcher { cref: w.cref, blocker: first };
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    watchers[keep] = new_watcher;
                    keep += 1;
                    continue;
                }
                // Look for a replacement watch among the tail literals.
                for k in 2..self.clauses[w.cref as usize].lits.len() {
                    let cand = self.clauses[w.cref as usize].lits[k];
                    if self.value_lit(cand) != LBool::False {
                        let clause = &mut self.clauses[w.cref as usize];
                        clause.lits.swap(1, k);
                        self.watches[cand.index()].push(new_watcher);
                        continue 'watchers;
                    }
                }
                // No replacement: clause is unit or conflicting.
                watchers[keep] = new_watcher;
                keep += 1;
                if self.value_lit(first) == LBool::False {
                    // Conflict: flush remaining watchers back and stop.
                    while idx < watchers.len() {
                        watchers[keep] = watchers[idx];
                        keep += 1;
                        idx += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.cref);
                } else {
                    self.unchecked_enqueue(first, Some(w.cref));
                }
            }
            watchers.truncate(keep);
            self.watches[false_lit.index()] = watchers;
        }
        conflict
    }
}

#[cfg(test)]
mod tests {
    use crate::lit::LBool;
    use crate::solver::Solver;

    #[test]
    fn propagation_derives_unit_chain() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause([a.negative(), b.positive()]);
        s.add_clause([b.negative(), c.positive()]);
        s.add_clause([a.positive()]);
        assert!(s.propagate().is_none());
        assert_eq!(s.value(a), LBool::True);
        assert_eq!(s.value(b), LBool::True);
        assert_eq!(s.value(c), LBool::True);
    }

    #[test]
    fn conflict_detected_at_root() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.negative(), b.positive()]);
        s.add_clause([a.negative(), b.negative()]);
        s.add_clause([a.positive()]);
        assert!(s.propagate().is_some() || !s.ok);
    }

    #[test]
    fn watch_migration_keeps_clause_alive() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause([a.positive(), b.positive(), c.positive()]);
        // Kill the first two watched literals one at a time.
        s.new_decision_level();
        s.unchecked_enqueue(a.negative(), None);
        assert!(s.propagate().is_none());
        s.new_decision_level();
        s.unchecked_enqueue(b.negative(), None);
        assert!(s.propagate().is_none());
        // Clause is now unit: c must have been enqueued true.
        assert_eq!(s.value(c), LBool::True);
    }
}
