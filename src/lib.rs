//! Umbrella crate: conflict resolution by inferring data currency and
//! consistency (Fan, Geerts, Tang, Yu — ICDE 2013).
//!
//! Re-exports the public API of every workspace crate so applications can
//! depend on a single crate. See the README for a guided tour and
//! `examples/quickstart.rs` for the paper's running example.

pub use cr_clique as clique;
pub use cr_constraints as constraints;
pub use cr_core as core;
pub use cr_data as data;
pub use cr_maxsat as maxsat;
pub use cr_sat as sat;
pub use cr_types as types;
