//! Differential tests: the incremental resolution engine must produce
//! exactly the same [`ResolutionOutcome`] as the from-scratch Fig. 4 loop —
//! same resolved tuples, same interaction counts, same order-extension
//! sizes — on every workload, including rounds where user answers fall
//! outside the interned value space (the engine's rebuild fallback).

use cr_core::framework::{
    DeductionMethod, GroundTruthOracle, ResolutionConfig, Resolver, SilentOracle, UserOracle,
};
use cr_core::{ResolutionOutcome, Specification};
use cr_types::{EntityInstance, Schema, Tuple, Value};
use proptest::prelude::*;

fn resolve_both(
    spec: &Specification,
    make_oracle: impl Fn() -> Box<dyn UserOracle>,
    config: ResolutionConfig,
) -> (ResolutionOutcome, ResolutionOutcome) {
    let incremental = Resolver::new(ResolutionConfig { incremental: true, ..config });
    let scratch = Resolver::new(ResolutionConfig { incremental: false, ..config });
    let a = incremental.resolve(spec, &mut *make_oracle());
    let b = scratch.resolve(spec, &mut *make_oracle());
    (a, b)
}

fn assert_outcomes_match(spec: &Specification, truth: &Tuple, cap: usize, config: ResolutionConfig) {
    let (a, b) = resolve_both(
        spec,
        || Box::new(GroundTruthOracle::with_cap(truth.clone(), cap)),
        config,
    );
    assert_eq!(a.valid, b.valid, "validity diverged");
    assert_eq!(a.complete, b.complete, "completeness diverged");
    assert_eq!(a.resolved, b.resolved, "resolved tuples diverged");
    assert_eq!(a.interactions, b.interactions, "interaction counts diverged");
    assert_eq!(a.user_values, b.user_values, "answer counts diverged");
    assert_eq!(a.ot_size, b.ot_size, "|Ot| diverged");
    assert_eq!(a.rounds.len(), b.rounds.len(), "round counts diverged");
    if !config.rebuild_fallback {
        assert_eq!(a.rebuilds, 0, "guarded incremental engine must never rebuild");
    }
    assert_eq!(b.rebuilds, 0, "scratch path never counts rebuilds");
}

fn default_config(max_rounds: usize) -> ResolutionConfig {
    ResolutionConfig { max_rounds, ..Default::default() }
}

#[test]
fn vjday_examples_identical() {
    for (spec, truth) in [
        (cr_data::vjday::edith_spec(), cr_data::vjday::edith_truth()),
        (cr_data::vjday::george_spec(), cr_data::vjday::george_truth()),
    ] {
        assert_outcomes_match(&spec, &truth, 1, default_config(10));
    }
}

#[test]
fn nba_dataset_identical() {
    let ds = cr_data::nba::generate_with_sizes(&[27, 81, 135], 7);
    for i in 0..ds.len() {
        assert_outcomes_match(&ds.spec(i), ds.truth(i), 1, default_config(10));
    }
}

#[test]
fn person_dataset_identical() {
    let ds = cr_data::person::generate_with_sizes(&[40, 90, 140], 7);
    for i in 0..ds.len() {
        // Person truths routinely carry values outside the active domain,
        // exercising the engine's rebuild fallback.
        assert_outcomes_match(&ds.spec(i), ds.truth(i), 1, default_config(10));
    }
}

#[test]
fn sparse_constraints_force_many_rounds_and_agree() {
    let ds = cr_data::person::generate_with_sizes(&[120], 7);
    let spec = ds.spec(0).with_constraint_fraction(0.5, 0.5, 3);
    assert_outcomes_match(&spec, ds.truth(0), 1, default_config(10));
}

#[test]
fn naive_sat_deduction_agrees() {
    let ds = cr_data::nba::generate_with_sizes(&[27], 5);
    let config = ResolutionConfig {
        deduction: DeductionMethod::NaiveSat,
        ..default_config(5)
    };
    assert_outcomes_match(&ds.spec(0), ds.truth(0), 1, config);
}

#[test]
fn multi_attribute_answers_agree() {
    let ds = cr_data::nba::generate_with_sizes(&[54], 9);
    // Uncapped oracle: several attributes answered per round.
    assert_outcomes_match(&ds.spec(0), ds.truth(0), usize::MAX, default_config(10));
}

#[test]
fn silent_oracle_agrees() {
    let ds = cr_data::person::generate_with_sizes(&[60], 11);
    let (a, b) = resolve_both(&ds.spec(0), || Box::new(SilentOracle), default_config(10));
    assert_eq!(a.resolved, b.resolved);
    assert_eq!(a.complete, b.complete);
    assert_eq!(a.interactions, 0);
    assert_eq!(b.interactions, 0);
}

#[test]
fn out_of_domain_answer_extends_in_place_and_agrees() {
    // City has two conflicting values; the user asserts a third one that is
    // not in the active domain — the guarded incremental engine absorbs it
    // as a pure extension (zero rebuilds) and still matches the scratch
    // loop.
    let s = Schema::new("p", ["name", "city"]).unwrap();
    let e = EntityInstance::new(
        s,
        vec![
            Tuple::of([Value::str("X"), Value::str("NY")]),
            Tuple::of([Value::str("X"), Value::str("LA")]),
        ],
    )
    .unwrap();
    let spec = Specification::without_orders(e, vec![], vec![]);
    let truth = Tuple::of([Value::str("X"), Value::str("Chicago")]);
    assert_outcomes_match(&spec, &truth, 1, default_config(10));
    // And the resolution really adopts the new value, without rebuilding.
    let outcome = Resolver::new(default_config(10))
        .resolve(&spec, &mut GroundTruthOracle::new(truth.clone()));
    assert!(outcome.complete);
    assert_eq!(outcome.resolved.to_tuple().unwrap().values(), truth.values());
    assert_eq!(outcome.rebuilds, 0);
}

/// A conflict-heavy spec whose CFDs put `AC` on the LHS and `city` on the
/// RHS: the oracle's out-of-domain answers exercise guard-group retraction
/// and re-emission on both sides.
fn cfd_lhs_spec(n: usize, ac_new: bool, city_new: bool) -> (Specification, Tuple) {
    let s = Schema::new("p", ["name", "status", "AC", "city"]).unwrap();
    let tuples: Vec<Tuple> = (0..n)
        .map(|i| {
            Tuple::of([
                Value::str("X"),
                Value::str(format!("st_{i}")),
                Value::int(200 + i as i64),
                Value::str(format!("city_{i}")),
            ])
        })
        .collect();
    let e = EntityInstance::new(s.clone(), tuples).unwrap();
    let gamma: Vec<_> = (0..n)
        .flat_map(|i| {
            cr_constraints::parser::parse_cfds(
                &s,
                &format!("AC = {} -> city = \"city_{}\"", 200 + i, i),
            )
            .unwrap()
        })
        .collect();
    let spec = Specification::without_orders(e, vec![], gamma);
    let truth = Tuple::of([
        Value::str("X"),
        Value::str("st_new"),
        if ac_new { Value::int(999) } else { Value::int(200 + n as i64 - 1) },
        if city_new {
            Value::str("city_new")
        } else {
            Value::str(format!("city_{}", n - 1))
        },
    ]);
    (spec, truth)
}

#[test]
fn out_of_domain_cfd_lhs_answer_never_rebuilds_and_agrees() {
    // The new AC value invalidates every CFD's ωX premise: the guarded
    // engine retracts and re-emits them instead of rebuilding.
    let (spec, truth) = cfd_lhs_spec(3, true, true);
    assert_outcomes_match(&spec, &truth, 1, default_config(10));
    let outcome = Resolver::new(default_config(10))
        .resolve(&spec, &mut GroundTruthOracle::with_cap(truth.clone(), 1));
    assert_eq!(outcome.rebuilds, 0);
    assert!(outcome.complete);
    assert_eq!(outcome.resolved.to_tuple().unwrap().values(), truth.values());
}

#[test]
fn legacy_rebuild_fallback_still_agrees_and_counts() {
    // With the debug flag the engine encodes unguarded CFDs: out-of-domain
    // answers must take the (counted) rebuild path and still match scratch.
    let (spec, truth) = cfd_lhs_spec(3, true, true);
    let config = ResolutionConfig { rebuild_fallback: true, ..default_config(10) };
    assert_outcomes_match(&spec, &truth, 1, config);
    let outcome = Resolver::new(config)
        .resolve(&spec, &mut GroundTruthOracle::with_cap(truth.clone(), 1));
    assert!(outcome.rebuilds > 0, "fallback path must actually rebuild");
    // Same resolution either way.
    let guarded = Resolver::new(default_config(10))
        .resolve(&spec, &mut GroundTruthOracle::with_cap(truth.clone(), 1));
    assert_eq!(outcome.resolved, guarded.resolved);
    assert_eq!(outcome.interactions, guarded.interactions);
}

#[test]
fn invalid_specification_agrees() {
    let s = Schema::new("p", ["a"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![Tuple::of([Value::int(1)]), Tuple::of([Value::int(2)])],
    )
    .unwrap();
    let sigma = cr_constraints::parser::parse_currency_file(
        &s,
        "t1[a] = 1 && t2[a] = 2 -> t1 <[a] t2\nt1[a] = 2 && t2[a] = 1 -> t1 <[a] t2\n",
    )
    .unwrap();
    let spec = Specification::without_orders(e, sigma, vec![]);
    let (a, b) = resolve_both(&spec, || Box::new(SilentOracle), default_config(10));
    assert!(!a.valid && !b.valid);
    assert_eq!(a.rounds.len(), b.rounds.len());
}

#[test]
fn parallel_fan_out_matches_serial_resolution() {
    let ds = cr_data::nba::generate_with_sizes(&[27, 41, 67, 81], 13);
    let specs: Vec<Specification> = (0..ds.len()).map(|i| ds.spec(i)).collect();
    let resolver = Resolver::new(default_config(10));
    let parallel = resolver.resolve_all_parallel(&specs, |i| {
        GroundTruthOracle::with_cap(ds.truth(i).clone(), 1)
    });
    for (i, outcome) in parallel.iter().enumerate() {
        let mut oracle = GroundTruthOracle::with_cap(ds.truth(i).clone(), 1);
        let serial = resolver.resolve(&specs[i], &mut oracle);
        assert_eq!(outcome.resolved, serial.resolved, "entity {i} diverged");
        assert_eq!(outcome.interactions, serial.interactions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generated Person entities across sizes, seeds, constraint fractions
    /// and answer caps: both paths must agree on the full outcome.
    #[test]
    fn generated_person_specs_agree(
        size in 5usize..60,
        seed in 0u64..500,
        frac_pct in 30u32..=100,
        cap in 1usize..3,
    ) {
        let ds = cr_data::person::generate_with_sizes(&[size], seed);
        let frac = frac_pct as f64 / 100.0;
        let spec = ds.spec(0).with_constraint_fraction(frac, frac, seed);
        let config = default_config(10);
        let (a, b) = resolve_both(
            &spec,
            || Box::new(GroundTruthOracle::with_cap(ds.truth(0).clone(), cap)),
            config,
        );
        prop_assert_eq!(&a.resolved, &b.resolved, "resolved diverged (size {} seed {})", size, seed);
        prop_assert_eq!(a.valid, b.valid);
        prop_assert_eq!(a.complete, b.complete);
        prop_assert_eq!(a.interactions, b.interactions);
        prop_assert_eq!(a.user_values, b.user_values);
        prop_assert_eq!(a.ot_size, b.ot_size);
    }

    /// Guarded-extension resolution must equal from-scratch resolution (and
    /// the legacy rebuild fallback) on specs whose CFDs sit on attributes
    /// the user answers with out-of-domain values — the retraction path.
    #[test]
    fn out_of_domain_cfd_lhs_answers_agree(
        n in 2usize..6,
        ac_coin in 0u32..2,
        city_coin in 0u32..2,
        cap in 1usize..4,
    ) {
        let (spec, truth) = cfd_lhs_spec(n, ac_coin == 1, city_coin == 1);
        let config = default_config(10);
        let (a, b) = resolve_both(
            &spec,
            || Box::new(GroundTruthOracle::with_cap(truth.clone(), cap)),
            config,
        );
        prop_assert_eq!(&a.resolved, &b.resolved, "resolved diverged (n {})", n);
        prop_assert_eq!(a.valid, b.valid);
        prop_assert_eq!(a.complete, b.complete);
        prop_assert_eq!(a.interactions, b.interactions);
        prop_assert_eq!(a.user_values, b.user_values);
        prop_assert_eq!(a.ot_size, b.ot_size);
        prop_assert_eq!(a.rebuilds, 0, "guarded engine must never rebuild");
        // The legacy rebuild fallback resolves identically.
        let legacy = Resolver::new(ResolutionConfig { rebuild_fallback: true, ..config });
        let c = legacy.resolve(&spec, &mut GroundTruthOracle::with_cap(truth.clone(), cap));
        prop_assert_eq!(&c.resolved, &a.resolved, "legacy fallback diverged");
        prop_assert_eq!(c.interactions, a.interactions);
    }

    /// Same for NBA entities (deeper constraint chains, CFD-free).
    #[test]
    fn generated_nba_specs_agree(
        size in 3usize..40,
        seed in 0u64..500,
    ) {
        let ds = cr_data::nba::generate_with_sizes(&[size], seed);
        let config = default_config(10);
        let (a, b) = resolve_both(
            &ds.spec(0),
            || Box::new(GroundTruthOracle::with_cap(ds.truth(0).clone(), 1)),
            config,
        );
        prop_assert_eq!(&a.resolved, &b.resolved, "resolved diverged (size {} seed {})", size, seed);
        prop_assert_eq!(a.interactions, b.interactions);
        prop_assert_eq!(a.ot_size, b.ot_size);
    }
}
