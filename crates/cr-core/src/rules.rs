//! `TrueDer`: true-value derivation rules (Section V-C.1).
//!
//! A derivation rule `(X, P[X]) → (B, b)` asserts: *if `P[X]` are the true
//! values of the attributes `X`, then `b` is the true value of `B`*. Rules
//! are harvested from two sources:
//!
//! * constant CFDs whose pattern is compatible with the validated values and
//!   current candidate sets, and
//! * instance constraints `ω → bi ≺v b` of Ω(Se): interpreting each premise
//!   atom `a1 ≺v_Al a2` as "`a2` is `Al`'s true value" (sound because valid
//!   completions totally order each attribute's values, so a top value
//!   dominates everything), one covers every competing candidate `bi` of
//!   `U(B,b)` with compatible constraints.

use std::collections::HashMap;

use cr_types::{AttrId, Value, ValueId};

use crate::deduce::DeducedOrders;
use crate::encode::{Conclusion, EncodedSpec, OrderAtom, Origin};
use crate::spec::Specification;
use crate::truevalue::TrueValues;

/// A true-value derivation rule `(X, P[X]) → (B, b)` over interned values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DerivationRule {
    /// The premise: attribute → asserted true value, sorted by attribute.
    pub lhs: Vec<(AttrId, ValueId)>,
    /// The conclusion `(B, b)`.
    pub rhs: (AttrId, ValueId),
}

impl DerivationRule {
    /// The value this rule asserts for `attr`, looking at both sides.
    pub fn asserted(&self, attr: AttrId) -> Option<ValueId> {
        if self.rhs.0 == attr {
            return Some(self.rhs.1);
        }
        self.lhs
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, v)| *v)
    }

    /// Human-readable rendering using the encoding's value table.
    pub fn display(&self, enc: &EncodedSpec, schema: &cr_types::Schema) -> String {
        let side = |pairs: &[(AttrId, ValueId)]| {
            pairs
                .iter()
                .map(|(a, v)| format!("{}={}", schema.attr_name(*a), enc.value(*a, *v)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "({}) -> ({}={})",
            side(&self.lhs),
            schema.attr_name(self.rhs.0),
            enc.value(self.rhs.0, self.rhs.1)
        )
    }
}

/// Derives rules for every attribute whose true value is still unknown.
///
/// `known` carries the validated/deduced true values `VB`; `od` the deduced
/// orders (for candidate sets and for skipping already-implied premises).
pub fn true_der(
    spec: &Specification,
    enc: &EncodedSpec,
    od: &DeducedOrders,
    known: &TrueValues,
) -> Vec<DerivationRule> {
    true_der_impl(spec, enc, od, known, enc.options().retain_omega)
}

/// [`true_der`] forced onto the retained-Ω path. Requires an encoding
/// built with `EncodeOptions::retain_omega`; kept as the differential
/// baseline for the Ω-free clause scan (see
/// `cr-core/tests/omega_free_rules.rs`), not for production use.
#[doc(hidden)]
pub fn true_der_retained(
    spec: &Specification,
    enc: &EncodedSpec,
    od: &DeducedOrders,
    known: &TrueValues,
) -> Vec<DerivationRule> {
    debug_assert!(
        enc.options().retain_omega,
        "true_der_retained needs EncodeOptions::retain_omega"
    );
    true_der_impl(spec, enc, od, known, true)
}

fn true_der_impl(
    spec: &Specification,
    enc: &EncodedSpec,
    od: &DeducedOrders,
    known: &TrueValues,
    use_retained: bool,
) -> Vec<DerivationRule> {
    let mut rules = Vec::new();
    let arity = spec.schema().arity();

    // Candidate sets V(A) for unknown attributes.
    let candidates: Vec<Vec<ValueId>> = (0..arity as u16)
        .map(AttrId)
        .map(|a| {
            if known.get(a).is_some() {
                Vec::new()
            } else {
                od.candidates(enc, a)
            }
        })
        .collect();

    // Known true values as interned ids (new user values are in the space
    // after ⊕, so lookups succeed; unknown lookups are simply skipped).
    let known_ids: Vec<Option<ValueId>> = (0..arity as u16)
        .map(AttrId)
        .map(|a| known.get(a).and_then(|v| enc.value_id(a, v)))
        .collect();

    // (1) Rules from constant CFDs (paper: provided the pattern values do
    // not conflict with validated true values / candidate sets). CFDs
    // withdrawn by upstream corrections no longer license derivations
    // (revisable engine sessions keep Γ's indexing intact and flag retired
    // entries on the encoding instead — see the ingest module docs).
    for (gi, cfd) in spec.gamma().iter().enumerate() {
        if enc.is_cfd_retired(gi) {
            continue;
        }
        let (battr, bval) = cfd.rhs();
        if known.get(*battr).is_some() {
            continue; // conclusion already settled
        }
        let Some(bid) = enc.value_id(*battr, bval) else {
            continue; // RHS outside the domain can never be a true value
        };
        if !candidates[battr.index()].contains(&bid) {
            continue; // dominated value cannot be the most current
        }
        let mut lhs: Vec<(AttrId, ValueId)> = Vec::with_capacity(cfd.lhs().len());
        let mut compatible = true;
        for (a, v) in cfd.lhs() {
            let Some(vid) = enc.value_id(*a, v) else {
                compatible = false;
                break;
            };
            match known_ids[a.index()] {
                Some(k) if k != vid => {
                    compatible = false;
                    break;
                }
                Some(_) => {} // matches the validated value: no premise needed
                None => {
                    if !candidates[a.index()].contains(&vid) {
                        compatible = false;
                        break;
                    }
                    lhs.push((*a, vid));
                }
            }
        }
        if compatible {
            lhs.sort_unstable_by_key(|(a, _)| *a);
            rules.push(DerivationRule { lhs, rhs: (*battr, bid) });
        }
    }

    // (2) Rules from instance constraints representing currency constraints
    // and currency orders: partition the order-rule implications of Ω(Se)
    // by conclusion (B, b), then cover U(B,b). On the default memory diet
    // the implications are re-read straight from the CNF's clause arena
    // ([`EncodedSpec::for_each_order_rule`]) — Ω is not materialised; the
    // retained path survives as the differential baseline. Both visit the
    // same subsequence of the emission stream, and the premise pools are
    // canonicalised below, so the two paths derive identical rules.
    //
    // Index: (battr, b) → list of (premise) for constraints concluding
    // bi ≺v b, keyed further by bi.
    type Premise = Vec<(AttrId, ValueId)>; // asserted tops, from ω atoms
    let mut by_conclusion: HashMap<(AttrId, ValueId), HashMap<ValueId, Vec<Premise>>> =
        HashMap::new();
    {
        // Premise atoms a1 ≺ a2 become "a2 is the top of its attribute";
        // atoms already implied by Od need no assumption at all.
        let mut ingest = |premise_atoms: &[OrderAtom], atom: OrderAtom| {
            let mut premise: Premise = Vec::new();
            let mut usable = true;
            for p in premise_atoms {
                if od.contains(p.attr, p.lo, p.hi) {
                    continue;
                }
                // Conflicting instantiation within one constraint: the same
                // attribute asserted at two different tops.
                if let Some((_, prev)) = premise.iter().find(|(a, _)| *a == p.attr) {
                    if *prev != p.hi {
                        usable = false;
                        break;
                    }
                    continue;
                }
                // Incompatible with a validated value.
                if let Some(k) = known_ids[p.attr.index()] {
                    if k != p.hi {
                        usable = false;
                        break;
                    }
                    continue;
                }
                premise.push((p.attr, p.hi));
            }
            if usable {
                by_conclusion
                    .entry((atom.attr, atom.hi))
                    .or_default()
                    .entry(atom.lo)
                    .or_default()
                    .push(premise);
            }
        };
        if use_retained {
            for c in enc.omega() {
                if !matches!(c.origin, Origin::Currency(_) | Origin::BaseOrder) {
                    continue;
                }
                let Conclusion::Atom(atom) = c.conclusion else {
                    continue;
                };
                ingest(&c.premise, atom);
            }
        } else {
            enc.for_each_order_rule(|premise_atoms, atom| ingest(premise_atoms, atom));
        }
    }

    // Canonicalise the premise pools: shortest (weakest-assumption)
    // premises first, ties broken lexicographically, duplicates removed.
    // This makes the greedy cover below insensitive to the order in which
    // Ω(Se) was produced — in particular, the incremental engine appends
    // delta instances in a different order (and with different duplicates)
    // than a from-scratch instantiation of the extended specification.
    for pools in by_conclusion.values_mut() {
        for premises in pools.values_mut() {
            premises.sort_unstable_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
            premises.dedup();
        }
    }

    for (battr, cands) in candidates.iter().enumerate() {
        let battr = AttrId(battr as u16);
        if cands.len() < 2 {
            continue; // nothing to decide (0/1 candidates)
        }
        'target: for &b in cands {
            // U(B,b): competing candidates that must be dominated.
            let competitors: Vec<ValueId> = cands.iter().copied().filter(|&x| x != b).collect();
            let empty = HashMap::new();
            let pool = by_conclusion.get(&(battr, b)).unwrap_or(&empty);
            let mut accumulated: Premise = Vec::new();
            for bi in competitors {
                let Some(premises) = pool.get(&bi) else {
                    continue 'target; // bi not coverable: no rule for (B,b)
                };
                // Greedily pick the first premise compatible with what we
                // have accumulated so far.
                let mut chosen: Option<&Premise> = None;
                'premise: for p in premises {
                    for (a, v) in p {
                        if let Some((_, prev)) = accumulated.iter().find(|(x, _)| x == a) {
                            if prev != v {
                                continue 'premise;
                            }
                        }
                        // A rule about B must not assume B's own top.
                        if *a == battr {
                            continue 'premise;
                        }
                    }
                    chosen = Some(p);
                    break;
                }
                let Some(p) = chosen else {
                    continue 'target;
                };
                for (a, v) in p {
                    if !accumulated.iter().any(|(x, _)| x == a) {
                        accumulated.push((*a, *v));
                    }
                }
            }
            if !accumulated.is_empty() {
                accumulated.sort_unstable_by_key(|(a, _)| *a);
                rules.push(DerivationRule { lhs: accumulated, rhs: (battr, b) });
            }
        }
    }

    rules.sort_by(|a, b| (a.rhs, &a.lhs).cmp(&(b.rhs, &b.lhs)));
    rules.dedup();
    rules
}

/// Candidate true values `V(A)` per attribute, as concrete values (the
/// suggestion payload shown to users).
pub fn candidate_values(
    enc: &EncodedSpec,
    od: &DeducedOrders,
    attr: AttrId,
) -> Vec<Value> {
    od.candidates(enc, attr)
        .into_iter()
        .map(|v| enc.value(attr, v).clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deduce::deduce_order;
    use crate::truevalue::true_values_from_orders;
    use cr_constraints::parser::{parse_cfds, parse_currency_file};
    use cr_types::{EntityInstance, Schema, Tuple};

    /// George (Fig. 2 E2) with the Fig. 3 constraints restricted to the
    /// attributes present here.
    fn george() -> Specification {
        let s = Schema::new("p", ["status", "job", "AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([
                    Value::str("working"),
                    Value::str("sailor"),
                    Value::int(401),
                    Value::str("Newport"),
                ]),
                Tuple::of([
                    Value::str("retired"),
                    Value::str("veteran"),
                    Value::int(212),
                    Value::str("NY"),
                ]),
                Tuple::of([
                    Value::str("unemployed"),
                    Value::str("n/a"),
                    Value::int(312),
                    Value::str("Chicago"),
                ]),
            ],
        )
        .unwrap();
        let sigma = parse_currency_file(
            &s,
            r#"
            phi1: t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2
            phi5: t1 <[status] t2 -> t1 <[job] t2
            phi6: t1 <[status] t2 -> t1 <[AC] t2
            "#,
        )
        .unwrap();
        let gamma = parse_cfds(&s, "psi2: AC = 212 -> city = \"NY\"").unwrap();
        Specification::without_orders(e, sigma, gamma)
    }

    #[test]
    fn rules_match_example_10_shape() {
        let spec = george();
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let known = true_values_from_orders(&enc, &od);
        let rules = true_der(&spec, &enc, &od, &known);
        let s = spec.schema();
        let rendered: Vec<String> = rules.iter().map(|r| r.display(&enc, s)).collect();
        // n1/n6-style rules: status=retired → job=veteran, status=unemployed → job=n/a.
        assert!(
            rendered.iter().any(|r| r == "(status=retired) -> (job=veteran)"),
            "missing n1-style rule in {rendered:?}"
        );
        assert!(
            rendered.iter().any(|r| r == "(status=unemployed) -> (job=n/a)"),
            "missing n6-style rule in {rendered:?}"
        );
        // n2/n7-style: status → AC.
        assert!(rendered.iter().any(|r| r == "(status=retired) -> (AC=212)"));
        assert!(rendered.iter().any(|r| r == "(status=unemployed) -> (AC=312)"));
        // n5-style from the CFD: AC=212 → city=NY.
        assert!(rendered.iter().any(|r| r == "(AC=212) -> (city=NY)"));
    }

    #[test]
    fn rules_never_conclude_known_attributes() {
        let spec = george();
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let known = true_values_from_orders(&enc, &od);
        let rules = true_der(&spec, &enc, &od, &known);
        for r in &rules {
            assert!(known.get(r.rhs.0).is_none());
        }
    }

    #[test]
    fn cfd_rule_dropped_when_pattern_not_a_candidate() {
        // CFD on an AC value that is already dominated.
        let s = Schema::new("p", ["status", "AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::int(401), Value::str("Newport")]),
                Tuple::of([Value::str("retired"), Value::int(212), Value::str("NY")]),
            ],
        )
        .unwrap();
        let sigma = parse_currency_file(
            &s,
            r#"
            t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2
            t1 <[status] t2 -> t1 <[AC] t2
            "#,
        )
        .unwrap();
        // 401 is dominated by 212 after deduction → rule pattern dead.
        let gamma = parse_cfds(&s, "AC = 401 -> city = \"Newport\"").unwrap();
        let spec = Specification::without_orders(e, sigma, gamma);
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let known = true_values_from_orders(&enc, &od);
        let rules = true_der(&spec, &enc, &od, &known);
        assert!(
            rules.iter().all(|r| spec.schema().attr_name(r.rhs.0) != "city"),
            "dead CFD must not produce a city rule"
        );
    }
}
