//! True-value extraction (Section V-B) and the exact possible-current-value
//! analysis.

use cr_sat::SolveResult;
use cr_types::{AttrId, Value, ValueId};

use crate::deduce::DeducedOrders;
use crate::encode::EncodedSpec;

/// Per-attribute true values: `Some(v)` when the attribute's most current
/// value is the same in every valid completion reachable by the deduction
/// used, `None` when it is still ambiguous.
#[derive(Clone, Debug, PartialEq)]
pub struct TrueValues {
    per_attr: Vec<Option<Value>>,
}

impl TrueValues {
    /// Builds from a plain vector (one slot per attribute).
    pub fn new(per_attr: Vec<Option<Value>>) -> Self {
        TrueValues { per_attr }
    }

    /// The true value of `attr`, if known.
    pub fn get(&self, attr: AttrId) -> Option<&Value> {
        self.per_attr[attr.index()].as_ref()
    }

    /// Number of attributes with a known true value.
    pub fn known_count(&self) -> usize {
        self.per_attr.iter().filter(|v| v.is_some()).count()
    }

    /// True iff every attribute has a true value — i.e. `T(Se)` exists
    /// relative to the deduction performed.
    pub fn complete(&self) -> bool {
        self.per_attr.iter().all(Option::is_some)
    }

    /// Attributes whose true value is still unknown.
    pub fn unknown_attrs(&self) -> Vec<AttrId> {
        self.per_attr
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_none())
            .map(|(i, _)| AttrId(i as u16))
            .collect()
    }

    /// Attributes with a known true value.
    pub fn known_attrs(&self) -> Vec<AttrId> {
        self.per_attr
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .map(|(i, _)| AttrId(i as u16))
            .collect()
    }

    /// The full per-attribute vector.
    pub fn as_slice(&self) -> &[Option<Value>] {
        &self.per_attr
    }

    /// Assembles the current tuple `T(Se)` when complete.
    pub fn to_tuple(&self) -> Option<cr_types::Tuple> {
        if !self.complete() {
            return None;
        }
        Some(cr_types::Tuple::from_values(
            self.per_attr.iter().map(|v| v.clone().expect("complete")).collect(),
        ))
    }
}

/// Extracts true values from deduced orders: `a` is the true value of `Ai`
/// iff every other **live** value of the space is deduced `≺v a` (Section
/// V-B, "True value deduction"). On ordinary encodings every interned value
/// is live; on revisable encodings values retired by upstream corrections
/// drop out of the quantification — matching a from-scratch encode of the
/// revised specification, whose space never contained them. Attributes
/// whose space is a single value (including the all-null case) are
/// trivially known.
pub fn true_values_from_orders(enc: &EncodedSpec, od: &DeducedOrders) -> TrueValues {
    let arity = enc.space().arity();
    let mut out = Vec::with_capacity(arity);
    for attr in (0..arity as u16).map(AttrId) {
        let interner = enc.space().attr(attr);
        let n = interner.len();
        if n == 0 {
            // Attribute entirely absent from the instance (no tuples at
            // all): nothing to resolve.
            out.push(Some(Value::Null));
            continue;
        }
        // `a` is the top iff every other live value is deduced below it:
        // count distinct dominated values per candidate in one pass over
        // the deduced pairs instead of probing the set O(n²) times.
        // (Retired values are never deduced below anything — their
        // variables appear in no live clause — so the per-candidate counts
        // need no masking, only the candidate set and the target count do.)
        let mut below = vec![0u32; n];
        for (_, hi) in od.pairs(attr) {
            below[hi.index()] += 1;
        }
        let live = interner.live_len();
        let top = interner
            .live_ids()
            .find(|a| below[a.index()] as usize == live - 1);
        out.push(top.map(|t| enc.value(attr, t).clone()));
    }
    TrueValues::new(out)
}

/// The exact possible-current-value analysis: value `a` of `attr` is a
/// *possible* current value iff `Φ(Se) ∧ (b ≺v a for all b ≠ a)` is
/// satisfiable. The true value of `attr` exists iff exactly one value is
/// possible.
///
/// This is the complete counterpart of the candidate sets `V(A)` that
/// `DeriveVR` obtains heuristically from `Od`; it decides the (coNP-hard)
/// true-value problem exactly on the encoded instance.
pub fn possible_current_values(enc: &EncodedSpec, attr: AttrId) -> Vec<ValueId> {
    let mut solver = enc.fresh_solver();
    // Lazy encodings probe through the CEGAR loop; axioms injected by one
    // probe persist in this solver and sharpen the rest.
    let lazy = enc.options().is_lazy();
    let mut source = crate::encode::TransientAxiomSource::new_if(enc, lazy);
    let mut probe = |solver: &mut cr_sat::Solver, assumptions: &[cr_sat::Lit]| match &mut source {
        Some(src) => solver.solve_lazy_with_assumptions(assumptions, src),
        None => solver.solve_with_assumptions(assumptions),
    };
    if probe(&mut solver, &[]) == SolveResult::Unsat {
        return Vec::new();
    }
    let mut possible = Vec::new();
    // Only live values can be current (retired values no longer occur in
    // the revised instance; on ordinary encodings everything is live).
    for v in enc.space().attr(attr).live_ids().collect::<Vec<_>>() {
        let Some(assumptions) = enc.top_assumptions(attr, v) else {
            continue;
        };
        if probe(&mut solver, &assumptions) == SolveResult::Sat {
            possible.push(v);
        }
    }
    possible
}

/// Exact true values for every attribute via [`possible_current_values`].
pub fn exact_true_values(enc: &EncodedSpec) -> TrueValues {
    let arity = enc.space().arity();
    let mut out = Vec::with_capacity(arity);
    for attr in (0..arity as u16).map(AttrId) {
        if enc.space().attr(attr).is_empty() {
            out.push(Some(Value::Null));
            continue;
        }
        let possible = possible_current_values(enc, attr);
        out.push(match possible.as_slice() {
            [only] => Some(enc.value(attr, *only).clone()),
            _ => None,
        });
    }
    TrueValues::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deduce::deduce_order;
    use crate::spec::Specification;
    use cr_constraints::parser::parse_currency_constraint;
    use cr_types::{EntityInstance, Schema, Tuple};

    fn chain_spec() -> Specification {
        let s = Schema::new("p", ["status", "kids"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::int(0)]),
                Tuple::of([Value::str("retired"), Value::int(3)]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1[kids] < t2[kids] -> t1 <[kids] t2").unwrap(),
        ];
        Specification::without_orders(e, sigma, vec![])
    }

    #[test]
    fn chain_gives_complete_true_values() {
        let spec = chain_spec();
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let tv = true_values_from_orders(&enc, &od);
        assert!(tv.complete());
        let t = tv.to_tuple().unwrap();
        assert_eq!(t.values(), &[Value::str("retired"), Value::int(3)]);
    }

    #[test]
    fn ambiguous_attribute_stays_unknown() {
        let s = Schema::new("p", ["city"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![Tuple::of([Value::str("NY")]), Tuple::of([Value::str("LA")])],
        )
        .unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let tv = true_values_from_orders(&enc, &od);
        assert!(!tv.complete());
        assert_eq!(tv.known_count(), 0);
        assert_eq!(tv.unknown_attrs(), vec![AttrId(0)]);
        // Exact analysis agrees: both cities are possible tops.
        assert_eq!(possible_current_values(&enc, AttrId(0)).len(), 2);
        assert!(!exact_true_values(&enc).complete());
    }

    #[test]
    fn exact_agrees_with_up_on_chains() {
        let spec = chain_spec();
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let heuristic = true_values_from_orders(&enc, &od);
        let exact = exact_true_values(&enc);
        assert_eq!(heuristic, exact);
    }

    #[test]
    fn single_value_attribute_is_trivially_known() {
        let s = Schema::new("p", ["name", "city"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::str("Edith"), Value::str("NY")]),
                Tuple::of([Value::str("Edith"), Value::str("LA")]),
            ],
        )
        .unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let tv = true_values_from_orders(&enc, &od);
        assert_eq!(tv.get(AttrId(0)), Some(&Value::str("Edith")));
        assert_eq!(tv.get(AttrId(1)), None);
    }

    #[test]
    fn null_never_beats_data() {
        let s = Schema::new("p", ["kids"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![Tuple::of([Value::Null]), Tuple::of([Value::int(3)])],
        )
        .unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let tv = true_values_from_orders(&enc, &od);
        assert_eq!(tv.get(AttrId(0)), Some(&Value::int(3)));
    }
}
