/root/repo/target/debug/examples/quickstart-60571bf03e6b453b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-60571bf03e6b453b: examples/quickstart.rs

examples/quickstart.rs:
