/root/repo/target/debug/deps/fig8a_validity-3da367393446c2be.d: crates/cr-bench/src/bin/fig8a_validity.rs Cargo.toml

/root/repo/target/debug/deps/libfig8a_validity-3da367393446c2be.rmeta: crates/cr-bench/src/bin/fig8a_validity.rs Cargo.toml

crates/cr-bench/src/bin/fig8a_validity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
