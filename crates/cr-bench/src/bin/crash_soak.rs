//! Time-boxed crash-and-rehydrate soak for durable sessions.
//!
//! Loops over randomized scenarios × causal timelines (with a user answer
//! interleaved) for `--seconds` wall-clock seconds (default 60). Each
//! iteration seeds a **batch split** — causal events are ingested through
//! the store per-event or coalesced into chunks of 2–3, interleaved across
//! seeds — and drives a [`SessionStore`] over a fault-injecting in-memory
//! backend, checkpointing the full storage state (log bytes + sync
//! watermark) at **every** batch boundary; each checkpoint is then crashed
//! five ways — clean cut, torn final write, truncated tail, bit flip, lost
//! final fsync — and a fresh store must rehydrate the session to exactly
//! what a from-scratch resolve of the surviving prefix produces
//! ([`verify_recovery`]: scratch-equivalence of validity / deduced orders /
//! true values, plus the full logical state).
//!
//! Hard expectations beyond the differential: a corrupt tail is truncated
//! to the last valid frame and counted honestly; a crash that strands
//! events without their batch marker (e.g. a lost fsync reverting to the
//! mid-batch sync point) is truncated further, to the previous **batch
//! boundary** ([`cr_store::plan_replay`]), and counted as a partial-batch
//! truncation; a lost fsync leaves an intact shorter log and must report
//! **zero** checksum failures; a clean cut recovers with no truncation at
//! all.
//!
//! Exits nonzero on any divergence, printing the failing **seed and
//! iteration**. Designed for CI: `--seconds 45` keeps the step well under
//! its budget. Flags: `--seconds S` (default 60), `--seed S` (base seed,
//! default 1).

use std::time::Instant;

use cr_bench::{arg_seed, arg_value};
use cr_core::causal::CausalRevision;
use cr_core::ingest::RevisionPolicy;
use cr_core::spec::UserInput;
use cr_core::ResolutionConfig;
use cr_data::gen::{causal_timeline, scenario_from_raw, CausalTimelineConfig, Scenario};
use cr_store::{
    decode_log_offsets, plan_replay, reference_of, verify_recovery, Fault, FaultyBackend,
    LogRecord, MemoryBackend, SessionId, SessionStore, StorageBackend, StoreConfig,
};
use cr_types::AttrId;

const ID: SessionId = SessionId(1);

enum Step {
    Input(UserInput),
    Causal(Vec<CausalRevision>),
}

struct Totals {
    iterations: u64,
    boundaries: u64,
    crashes: u64,
    truncations: u64,
    checksum_failures: u64,
    events_replayed: u64,
    snapshots_used: u64,
}

fn main() {
    let budget: f64 = arg_value("seconds").and_then(|v| v.parse().ok()).unwrap_or(60.0);
    let base_seed = arg_seed(1);
    let config = ResolutionConfig::default();

    let mut totals = Totals {
        iterations: 0,
        boundaries: 0,
        crashes: 0,
        truncations: 0,
        checksum_failures: 0,
        events_replayed: 0,
        snapshots_used: 0,
    };
    let start = Instant::now();
    let mut iter = 0u64;
    while start.elapsed().as_secs_f64() < budget {
        // Reproduce any failure with `--seed <base_seed>` and the printed
        // iteration: the failing seed is derived, not sequential.
        let iteration = iter;
        let seed = base_seed.wrapping_add(iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        iter += 1;
        // Small shapes keep one crash+verify in the low milliseconds so the
        // soak covers many seeds × boundaries × fault modes.
        let tuples = 2 + (seed % 6) as usize;
        let domain = 2 + (seed / 6 % 5) as usize;
        let density = (seed / 30 % 100) as u32;
        let events = 2 + (seed / 7 % 5) as usize;
        let sources = 1 + (seed / 5 % 3) as usize;
        // Cycle the snapshot cadence: never / every 2 / every 4 events, so
        // recovery exercises scratch replay, snapshot + tail, and
        // snapshot-at-the-crash-point alike.
        let snapshot_every = [0usize, 2, 4][(seed % 3) as usize];
        let Scenario { spec, truth } = scenario_from_raw(seed, tuples, domain, density, false);
        let timeline = causal_timeline(
            &spec,
            &CausalTimelineConfig {
                seed: seed.wrapping_mul(131).wrapping_add(7),
                sources,
                events,
                rounds: 3,
                // Burst polls: generated rounds carry multi-event batches.
                burst: 1 + (seed / 17 % 3) as usize,
                ..Default::default()
            },
        );
        // Seeded batch split: 1 ingests event-at-a-time, 2/3 coalesce
        // consecutive events into one atomic store batch. Interleaved
        // across seeds so recovery sees both granularities.
        let chunk = 1 + (seed / 13 % 3) as usize;
        let events_only: Vec<CausalRevision> =
            timeline.into_iter().map(|(_, ev)| ev).collect();
        let mut steps: Vec<Step> =
            events_only.chunks(chunk).map(|c| Step::Causal(c.to_vec())).collect();
        let mut input = UserInput::empty();
        input.values.insert(AttrId(1), truth.get(AttrId(1)).clone());
        steps.insert(steps.len() / 3, Step::Input(input));

        // Drive the workload once, checkpointing at every boundary.
        let store_config = StoreConfig { snapshot_every, ..StoreConfig::default() };
        let mut store =
            SessionStore::new(FaultyBackend::new(MemoryBackend::new()).unwrap(), store_config)
                .unwrap();
        store.open(ID, &spec);
        store.session(ID).unwrap();
        let mut checkpoints = vec![store.backend().clone()];
        for step in &steps {
            match step {
                Step::Input(input) => {
                    store.apply_input(ID, input).unwrap();
                }
                Step::Causal(batch) => {
                    store.ingest_causal(ID, batch.clone()).unwrap();
                }
            }
            checkpoints.push(store.backend().clone());
        }

        for (boundary, checkpoint) in checkpoints.iter().enumerate() {
            let faults = [
                Fault::TruncatedTail { bytes: 0 }, // clean cut
                Fault::TornWrite { at: (seed.wrapping_add(boundary as u64 * 3)) % 23 },
                Fault::TruncatedTail { bytes: 1 + seed % 11 },
                Fault::BitFlip {
                    byte: seed.wrapping_add(boundary as u64 * 31),
                    bit: (boundary % 8) as u8,
                },
                Fault::LostSync,
            ];
            for fault in faults {
                let mut crashed = checkpoint.clone();
                crashed.crash(ID, fault).unwrap();
                let bytes = crashed.read_log(ID).unwrap();
                let (offsets, valid_len, scan_error) = decode_log_offsets(&bytes);
                let records: Vec<LogRecord> =
                    offsets.iter().map(|(rec, _)| rec.clone()).collect();
                let lost = (bytes.len() - valid_len) as u64;
                // The batch boundary recovery must restore the log to: the
                // end of the last record a marker (or input/snapshot)
                // committed. Frame-intact events past it are an
                // uncommitted batch and must be cut too.
                let plan = plan_replay(&records);
                let boundary_len = if plan.used_records == 0 {
                    0
                } else {
                    offsets[plan.used_records - 1].1
                };
                let partial_bytes = (valid_len - boundary_len) as u64;
                let dropped_run = plan.used_records < records.len();

                let mut reference =
                    reference_of(&config, RevisionPolicy::Quarantine, &spec, &records);
                let mut recovered = SessionStore::new(crashed, store_config).unwrap();
                recovered.open(ID, &spec);
                let session = recovered.session(ID).unwrap_or_else(|e| {
                    eprintln!(
                        "FAIL: seed {seed} iteration {iteration}: boundary {boundary} \
                         {fault:?}: rehydration errored: {e}"
                    );
                    std::process::exit(1);
                });
                if let Err(e) = verify_recovery(session, &mut reference) {
                    eprintln!(
                        "FAIL: seed {seed} iteration {iteration}: boundary {boundary} \
                         {fault:?}: {e}"
                    );
                    std::process::exit(1);
                }

                let t = recovered.recovery();
                let fail = |msg: &str| {
                    eprintln!(
                        "FAIL: seed {seed} iteration {iteration}: boundary {boundary} \
                         {fault:?}: {msg} (telemetry {t:?})"
                    );
                    std::process::exit(1);
                };
                match scan_error {
                    Some(_) => {
                        if t.corrupt_truncations != 1
                            || t.truncated_bytes != lost + partial_bytes
                        {
                            fail("corrupt tail not truncated/counted honestly");
                        }
                    }
                    None => {
                        if t.corrupt_truncations != 0 || t.checksum_failures != 0 {
                            fail("clean log reported corruption");
                        }
                        if t.truncated_bytes != partial_bytes {
                            fail("partial-batch bytes not counted honestly");
                        }
                    }
                }
                if t.partial_batch_truncations != u64::from(dropped_run) {
                    fail("partial-batch truncation miscounted");
                }
                if recovered.log_len(ID).unwrap() != boundary_len as u64 {
                    fail("log not truncated to the batch boundary");
                }
                if matches!(fault, Fault::LostSync) && scan_error.is_some() {
                    fail("lost fsync must leave an intact (shorter) log");
                }

                totals.crashes += 1;
                totals.truncations += t.corrupt_truncations;
                totals.checksum_failures += t.checksum_failures;
                totals.events_replayed += t.events_replayed;
                totals.snapshots_used += t.snapshots_used;
            }
            totals.boundaries += 1;
        }
        totals.iterations += 1;
    }

    println!(
        "crash soak OK: {} scenarios in {:.1}s — {} boundaries, {} crash-and-rehydrate \
         differentials, {} corrupt tails truncated ({} checksum failures), {} events \
         replayed, {} snapshot restores",
        totals.iterations,
        start.elapsed().as_secs_f64(),
        totals.boundaries,
        totals.crashes,
        totals.truncations,
        totals.checksum_failures,
        totals.events_replayed,
        totals.snapshots_used,
    );
    if totals.iterations == 0 {
        eprintln!("FAIL: soak budget too small to run a single scenario");
        std::process::exit(1);
    }
}
