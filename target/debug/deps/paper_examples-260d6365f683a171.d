/root/repo/target/debug/deps/paper_examples-260d6365f683a171.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-260d6365f683a171: tests/paper_examples.rs

tests/paper_examples.rs:
