/root/repo/target/debug/examples/nba_roster-851ae788cda4dc8a.d: examples/nba_roster.rs

/root/repo/target/debug/examples/nba_roster-851ae788cda4dc8a: examples/nba_roster.rs

examples/nba_roster.rs:
