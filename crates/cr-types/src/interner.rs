//! Value interning, at two granularities.
//!
//! * [`ValueTable`] — **dataset-level**: every value occurring anywhere in a
//!   dataset is interned exactly once into a dense `u32` id
//!   ([`GlobalValueId`]). Entity instances carry their tuples' values as
//!   contiguous rows of these ids (see `EntityInstance`), so equality and
//!   null tests on the encoder's hot paths are single integer compares over
//!   flat buffers instead of `Value` hashing per specification.
//! * [`AttrValueSpace`] / [`ValueInterner`] — **per-attribute, per
//!   encoding**: the SAT encoder (Section V-A) works with the strict value
//!   order `≺v_Ai` over `adom(Ie.Ai)`; interning each such value to a dense
//!   [`ValueId`] lets the encoder address order variables as integer pairs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::schema::AttrId;
use crate::value::Value;

/// Dataset-wide dense id of a value in a [`ValueTable`]. Id
/// [`NULL_VALUE_ID`] is always `Value::Null`.
pub type GlobalValueId = u32;

/// The reserved [`GlobalValueId`] of `Value::Null`.
pub const NULL_VALUE_ID: GlobalValueId = 0;

/// A dataset-level value interner: every distinct [`Value`] maps to one
/// dense [`GlobalValueId`], with `Null` pinned at id 0. Built once per
/// dataset (or per entity for standalone instances) and shared by all of the
/// dataset's entity instances via `Arc`.
#[derive(Clone, Debug)]
pub struct ValueTable {
    by_value: HashMap<Value, GlobalValueId>,
    values: Vec<Value>,
    /// Process-unique identity (see [`ValueTable::token`]).
    token: u64,
}

impl Default for ValueTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Source of process-unique [`ValueTable::token`] values. Starts at 1 so 0
/// can never collide with a real token.
static NEXT_TABLE_TOKEN: AtomicU64 = AtomicU64::new(1);

impl ValueTable {
    /// A table containing only `Null` (at id 0).
    pub fn new() -> Self {
        let mut by_value = HashMap::new();
        by_value.insert(Value::Null, NULL_VALUE_ID);
        ValueTable {
            by_value,
            values: vec![Value::Null],
            token: NEXT_TABLE_TOKEN.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A process-unique identity for this table's id universe. Two tables
    /// assign unrelated [`GlobalValueId`]s to the same values, so consumers
    /// that cache ids (entity instances, the encoder's compiled constraint
    /// programs) carry the token along and check it before mixing ids.
    /// Clones share the token — a clone extends the same id universe.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Interns `v`, returning its stable dataset-wide id.
    pub fn intern(&mut self, v: &Value) -> GlobalValueId {
        if let Some(&id) = self.by_value.get(v) {
            return id;
        }
        let id = self.values.len() as GlobalValueId;
        self.values.push(v.clone());
        self.by_value.insert(v.clone(), id);
        id
    }

    /// Interns every value of every tuple in `tuples`.
    pub fn intern_tuples<'a>(&mut self, tuples: impl IntoIterator<Item = &'a crate::tuple::Tuple>) {
        for t in tuples {
            for v in t.values() {
                self.intern(v);
            }
        }
    }

    /// Looks up an already interned value.
    pub fn get(&self, v: &Value) -> Option<GlobalValueId> {
        self.by_value.get(v).copied()
    }

    /// The value behind `id`.
    pub fn value(&self, id: GlobalValueId) -> &Value {
        &self.values[id as usize]
    }

    /// Number of interned values (including `Null`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff only `Null` is interned.
    pub fn is_empty(&self) -> bool {
        self.values.len() == 1
    }
}

/// Dense id of an interned value within one attribute's value space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interner for the values of a single attribute.
///
/// Every value additionally carries a **liveness** flag (default: live).
/// Interning never removes ids — dense id spaces must stay stable for the
/// SAT encoder's variable tables — but push-based correction ingestion can
/// *retire* a value whose last occurrence was revised away: retired values
/// keep their id (and their order variables) yet are skipped by every
/// consumer that quantifies over "the values of this attribute" (true-value
/// tops, suggestion candidates, CFD ωX premises). Values are revived when a
/// later revision or user answer realises them again.
#[derive(Clone, Default, Debug)]
pub struct ValueInterner {
    by_value: HashMap<Value, ValueId>,
    values: Vec<Value>,
    /// Liveness per id, parallel to `values`; retired ids stay allocated.
    live: Vec<bool>,
}

impl ValueInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `v`, returning its stable id. (Re-)interning marks the value
    /// live.
    pub fn intern(&mut self, v: &Value) -> ValueId {
        if let Some(&id) = self.by_value.get(v) {
            self.live[id.index()] = true;
            return id;
        }
        let id = ValueId(self.values.len() as u32);
        self.values.push(v.clone());
        self.live.push(true);
        self.by_value.insert(v.clone(), id);
        id
    }

    /// Sets the liveness of an interned value (see the type docs).
    pub fn set_live(&mut self, id: ValueId, live: bool) {
        self.live[id.index()] = live;
    }

    /// True iff `id` is live (never retired, or revived since).
    #[inline]
    pub fn is_live(&self, id: ValueId) -> bool {
        self.live[id.index()]
    }

    /// Number of live values.
    pub fn live_len(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Iterates over live `(ValueId, &Value)` pairs in interning order.
    pub fn iter_live(&self) -> impl Iterator<Item = (ValueId, &Value)> {
        self.iter().filter(|(id, _)| self.live[id.index()])
    }

    /// Live ids in interning order.
    pub fn live_ids(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.ids().filter(|id| self.live[id.index()])
    }

    /// Looks up an already interned value.
    pub fn get(&self, v: &Value) -> Option<ValueId> {
        self.by_value.get(v).copied()
    }

    /// The value behind `id`.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(ValueId, &Value)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &Value)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ValueId(i as u32), v))
    }

    /// All ids in interning order.
    pub fn ids(&self) -> impl Iterator<Item = ValueId> + 'static {
        (0..self.values.len() as u32).map(ValueId)
    }
}

/// One [`ValueInterner`] per attribute of a schema.
#[derive(Clone, Debug)]
pub struct AttrValueSpace {
    per_attr: Vec<ValueInterner>,
}

impl AttrValueSpace {
    /// Builds an empty space for a schema with `arity` attributes.
    pub fn new(arity: usize) -> Self {
        AttrValueSpace { per_attr: vec![ValueInterner::new(); arity] }
    }

    /// The interner for `attr`.
    pub fn attr(&self, attr: AttrId) -> &ValueInterner {
        &self.per_attr[attr.index()]
    }

    /// Mutable interner for `attr`.
    pub fn attr_mut(&mut self, attr: AttrId) -> &mut ValueInterner {
        &mut self.per_attr[attr.index()]
    }

    /// Interns `v` in the value space of `attr`.
    pub fn intern(&mut self, attr: AttrId, v: &Value) -> ValueId {
        self.per_attr[attr.index()].intern(v)
    }

    /// Looks up `(attr, v)` without interning.
    pub fn get(&self, attr: AttrId, v: &Value) -> Option<ValueId> {
        self.per_attr[attr.index()].get(v)
    }

    /// True iff `(attr, id)` is live (see [`ValueInterner::is_live`]).
    #[inline]
    pub fn is_live(&self, attr: AttrId, id: ValueId) -> bool {
        self.per_attr[attr.index()].is_live(id)
    }

    /// Sets the liveness of `(attr, id)`.
    pub fn set_live(&mut self, attr: AttrId, id: ValueId, live: bool) {
        self.per_attr[attr.index()].set_live(id, live);
    }

    /// The value behind `(attr, id)`.
    pub fn value(&self, attr: AttrId, id: ValueId) -> &Value {
        self.per_attr[attr.index()].value(id)
    }

    /// Number of attributes covered.
    pub fn arity(&self) -> usize {
        self.per_attr.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_deduplicating() {
        let mut i = ValueInterner::new();
        let a = i.intern(&Value::str("x"));
        let b = i.intern(&Value::int(1));
        let a2 = i.intern(&Value::str("x"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.value(a), &Value::str("x"));
        assert_eq!(i.get(&Value::int(1)), Some(b));
        assert_eq!(i.get(&Value::int(2)), None);
    }

    #[test]
    fn attr_spaces_are_independent() {
        let mut s = AttrValueSpace::new(2);
        let v = Value::str("same");
        let id0 = s.intern(AttrId(0), &v);
        assert_eq!(s.get(AttrId(1), &v), None);
        let id1 = s.intern(AttrId(1), &v);
        assert_eq!(id0, ValueId(0));
        assert_eq!(id1, ValueId(0));
        assert_eq!(s.attr(AttrId(0)).len(), 1);
    }
}
