//! Fig. 8(b): deducing true values — `DeduceOrder` vs `NaiveDeduce`.
//!
//! Paper series (log scale): DeduceOrder ≈ 51 ms on NBA \[109,135\] and
//! ≈ 914 ms on Person \[8001,10000\]; NaiveDeduce ≈ 13 585 ms on NBA's top
//! bin and over 20 minutes on Person (not plotted). Shape to reproduce:
//! DeduceOrder scales roughly linearly in |Φ(Se)| and beats NaiveDeduce by
//! orders of magnitude, while deducing the same orders in practice.
//!
//! Run: `cargo run --release -p cr-bench --bin fig8b_deduce [--full]`.

use cr_bench::{arg_flag, arg_seed, bin_sizes, ms, nba_bins, person_bins, print_table, time_deduction};
use cr_data::{nba, person};

fn main() {
    let seed = arg_seed(8);
    let full = arg_flag("full");
    let reps = 3;

    let mut rows = Vec::new();
    let run_bins = |name: &str, bins: Vec<(String, usize, usize)>, person: bool, rows: &mut Vec<Vec<String>>| {
        for (label, lo, hi) in bins {
            let sizes = bin_sizes(if person { lo } else { lo.max(2) }, hi, reps);
            let ds = if person {
                person::generate_with_sizes(&sizes, seed)
            } else {
                nba::generate_with_sizes(&sizes, seed)
            };
            let (mut up, mut naive, mut fresh) = (
                std::time::Duration::ZERO,
                std::time::Duration::ZERO,
                std::time::Duration::ZERO,
            );
            for i in 0..ds.len() {
                let (u, n, f) = time_deduction(&ds.spec(i));
                up += u;
                naive += n;
                fresh += f;
            }
            let n = ds.len() as u32;
            rows.push(vec![name.into(), label, ms(up / n), ms(naive / n), ms(fresh / n)]);
        }
    };
    run_bins("NBA", nba_bins(), false, &mut rows);
    run_bins("Person", person_bins(full), true, &mut rows);
    print_table(
        "Fig. 8(b) — deducing true values, avg per entity",
        &[
            "dataset",
            "bin",
            "DeduceOrder (ms)",
            "NaiveDeduce incr. (ms)",
            "NaiveDeduce paper (ms)",
        ],
        &rows,
    );
    println!("\npaper reference: NBA top bin 51 ms vs 13585 ms; Person top bin 914 ms vs >20 min");
}
