/root/repo/target/debug/deps/cr_data-7a56677c6e93a6c2.d: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs Cargo.toml

/root/repo/target/debug/deps/libcr_data-7a56677c6e93a6c2.rmeta: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs Cargo.toml

crates/cr-data/src/lib.rs:
crates/cr-data/src/career.rs:
crates/cr-data/src/gen_util.rs:
crates/cr-data/src/nba.rs:
crates/cr-data/src/person.rs:
crates/cr-data/src/vjday.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
