//! Accuracy accounting: precision, recall and F-measure (Section VI).
//!
//! Following the paper: *precision* is the ratio of correctly deduced values
//! to all values deduced; *recall* is the ratio of correctly deduced values
//! to the number of attributes with conflicts or stale values;
//! `F = 2·P·R/(P+R)`.
//!
//! An attribute is *relevant* (needs resolving) when its tuples disagree
//! (a conflict) or its single value differs from the ground truth (stale).
//! Trivially single-valued correct attributes are excluded from both
//! numerator and denominator so methods are compared on actual work.

use cr_types::{AttrId, EntityInstance, Tuple};

use crate::truevalue::TrueValues;

/// Precision / recall / F-measure triple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FMeasure {
    /// Correct deduced / total deduced.
    pub precision: f64,
    /// Correct deduced / relevant attributes.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f_measure: f64,
}

impl FMeasure {
    /// Builds from raw counts.
    pub fn from_counts(correct: usize, deduced: usize, relevant: usize) -> FMeasure {
        let precision = if deduced == 0 { 0.0 } else { correct as f64 / deduced as f64 };
        let recall = if relevant == 0 { 1.0 } else { correct as f64 / relevant as f64 };
        let f_measure = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        FMeasure { precision, recall, f_measure }
    }
}

/// Accumulates accuracy over many entities (the per-dataset averages the
/// paper reports).
#[derive(Clone, Copy, Debug, Default)]
pub struct Accuracy {
    correct: usize,
    deduced: usize,
    relevant: usize,
    entities: usize,
    fully_resolved: usize,
}

impl Accuracy {
    /// Empty accumulator.
    pub fn new() -> Self {
        Accuracy::default()
    }

    /// The attributes of `entity` that need resolving against `truth`:
    /// conflicting or stale.
    pub fn relevant_attrs(entity: &EntityInstance, truth: &Tuple) -> Vec<AttrId> {
        entity
            .schema()
            .attr_ids()
            .filter(|&a| {
                let mut values = entity.tuples().iter().map(|t| t.get(a));
                match values.next() {
                    None => false,
                    Some(first) => {
                        let conflict = values.clone().any(|v| v != first);
                        let stale = !conflict && first != truth.get(a);
                        conflict || stale
                    }
                }
            })
            .collect()
    }

    /// Scores one entity's resolution against its ground truth.
    pub fn add_entity(&mut self, entity: &EntityInstance, truth: &Tuple, resolved: &TrueValues) {
        let relevant = Self::relevant_attrs(entity, truth);
        self.relevant += relevant.len();
        self.entities += 1;
        let mut all_attrs_known = true;
        for attr in entity.schema().attr_ids() {
            if resolved.get(attr).is_none() {
                all_attrs_known = false;
            }
        }
        if all_attrs_known {
            self.fully_resolved += 1;
        }
        for &attr in &relevant {
            if let Some(v) = resolved.get(attr) {
                self.deduced += 1;
                if v == truth.get(attr) {
                    self.correct += 1;
                }
            }
        }
    }

    /// The aggregated F-measure.
    pub fn f_measure(&self) -> FMeasure {
        FMeasure::from_counts(self.correct, self.deduced, self.relevant)
    }

    /// Fraction of relevant attribute values correctly found — the y-axis of
    /// the interaction plots (Fig. 8(e)/(i)/(m)).
    pub fn true_value_fraction(&self) -> f64 {
        if self.relevant == 0 {
            1.0
        } else {
            self.correct as f64 / self.relevant as f64
        }
    }

    /// Fraction of entities fully resolved.
    pub fn fully_resolved_fraction(&self) -> f64 {
        if self.entities == 0 {
            0.0
        } else {
            self.fully_resolved as f64 / self.entities as f64
        }
    }

    /// Raw counters `(correct, deduced, relevant, entities)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        (self.correct, self.deduced, self.relevant, self.entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_types::{Schema, Value};

    fn entity() -> (EntityInstance, Tuple) {
        let s = Schema::new("p", ["name", "status", "kids", "city"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::str("X"), Value::str("working"), Value::int(0), Value::str("NY")]),
                Tuple::of([Value::str("X"), Value::str("retired"), Value::int(3), Value::str("NY")]),
            ],
        )
        .unwrap();
        // city "NY" is stale: truth says LA. name is trivially correct.
        let truth = Tuple::of([
            Value::str("X"),
            Value::str("retired"),
            Value::int(3),
            Value::str("LA"),
        ]);
        (e, truth)
    }

    #[test]
    fn relevant_attrs_are_conflicting_or_stale() {
        let (e, truth) = entity();
        let names: Vec<&str> = Accuracy::relevant_attrs(&e, &truth)
            .iter()
            .map(|&a| e.schema().attr_name(a))
            .collect();
        assert_eq!(names, vec!["status", "kids", "city"]);
    }

    #[test]
    fn perfect_resolution_scores_one() {
        let (e, truth) = entity();
        let resolved = TrueValues::new(truth.values().iter().cloned().map(Some).collect());
        let mut acc = Accuracy::new();
        acc.add_entity(&e, &truth, &resolved);
        let f = acc.f_measure();
        assert_eq!(f.precision, 1.0);
        assert_eq!(f.recall, 1.0);
        assert_eq!(f.f_measure, 1.0);
        assert_eq!(acc.fully_resolved_fraction(), 1.0);
    }

    #[test]
    fn partial_resolution_trades_recall() {
        let (e, truth) = entity();
        // Resolve status correctly, leave kids/city unknown.
        let resolved = TrueValues::new(vec![
            Some(Value::str("X")),
            Some(Value::str("retired")),
            None,
            None,
        ]);
        let mut acc = Accuracy::new();
        acc.add_entity(&e, &truth, &resolved);
        let f = acc.f_measure();
        assert_eq!(f.precision, 1.0);
        assert!((f.recall - 1.0 / 3.0).abs() < 1e-9);
        assert!((f.f_measure - 0.5).abs() < 1e-9);
        assert_eq!(acc.fully_resolved_fraction(), 0.0);
    }

    #[test]
    fn wrong_values_hurt_precision() {
        let (e, truth) = entity();
        let resolved = TrueValues::new(vec![
            Some(Value::str("X")),
            Some(Value::str("working")), // wrong
            Some(Value::int(3)),         // right
            Some(Value::str("NY")),      // wrong (stale)
        ]);
        let mut acc = Accuracy::new();
        acc.add_entity(&e, &truth, &resolved);
        let f = acc.f_measure();
        assert!((f.precision - 1.0 / 3.0).abs() < 1e-9);
        assert!((f.recall - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn f_measure_degenerate_cases() {
        let f = FMeasure::from_counts(0, 0, 0);
        assert_eq!(f.precision, 0.0);
        assert_eq!(f.recall, 1.0);
        assert_eq!(f.f_measure, 0.0);
    }
}
