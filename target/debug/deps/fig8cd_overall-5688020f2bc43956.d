/root/repo/target/debug/deps/fig8cd_overall-5688020f2bc43956.d: crates/cr-bench/src/bin/fig8cd_overall.rs Cargo.toml

/root/repo/target/debug/deps/libfig8cd_overall-5688020f2bc43956.rmeta: crates/cr-bench/src/bin/fig8cd_overall.rs Cargo.toml

crates/cr-bench/src/bin/fig8cd_overall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
