//! Simulated CAREER dataset (Section VI, "(2) CAREER").
//!
//! The original data (citeseer via cs.purdue.edu) has schema
//! `(first_name, last_name, affiliation, city, country)`: 65 researchers,
//! one tuple per publication (2–175 per person, ≈32 on average). The paper
//! derived 503 currency constraints from citations — *"if two papers A and
//! B are by the same person and A cites B, then the affiliation and address
//! (city and country) used in paper A are more current than those used in
//! paper B"* — and a single CFD `affiliation → city, country` with 347
//! constant patterns.
//!
//! The generator builds a global affiliation universe with a monotone index
//! (careers only move to higher-indexed affiliations, and country groups
//! increase with the index), which keeps the dataset-wide constraint set
//! acyclic — a property the published constraint set must implicitly have
//! had, since its specifications validate (DESIGN.md §3).

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::prelude::*;

use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
use cr_constraints::{ConstantCfd, CurrencyConstraint};
use cr_types::{EntityInstance, Schema, Tuple, Value};

use crate::gen_util::{rng, skewed_size};
use crate::Dataset;

/// Affiliation pool size. Careers draw from the full pool; CFD patterns
/// cover only the first [`PATTERNED`] affiliations — pattern discovery from
/// real data is incomplete, which is what keeps the Γ-only configuration
/// away from a perfect score (Fig. 8(l)).
const AFFILIATIONS: usize = 250;
/// Affiliations with `affiliation → city, country` CFD patterns. The last
/// one lacks its country pattern, for `2·174 - 1 = 347` patterns as in the
/// paper.
const PATTERNED: usize = 174;
/// Affiliations per country group (country index = affiliation / group).
const COUNTRY_GROUP: usize = 6;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct CareerConfig {
    /// Number of researchers (paper: 65).
    pub entities: usize,
    /// Minimum publications per researcher (paper: 2).
    pub min_tuples: usize,
    /// Maximum publications (paper: 175).
    pub max_tuples: usize,
    /// Mean target (paper: ≈32).
    pub mean_tuples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CareerConfig {
    fn default() -> Self {
        CareerConfig { entities: 65, min_tuples: 2, max_tuples: 175, mean_tuples: 32, seed: 0xCA3EE3 }
    }
}

/// The CAREER schema.
pub fn schema() -> Arc<Schema> {
    Schema::new(
        "career",
        ["first_name", "last_name", "affiliation", "city", "country"],
    )
    .expect("static schema")
}

fn aff_label(i: usize) -> String {
    format!("aff_{i}")
}

fn aff_city(i: usize) -> String {
    format!("city_{i}")
}

fn aff_country(i: usize) -> String {
    format!("country_{}", i / COUNTRY_GROUP)
}

/// Builds the CFD patterns (`affiliation → city` and `→ country`): 347
/// distinct patterns as in the paper — the last affiliation's country
/// pattern is absent, modelling the incompleteness of pattern discovery
/// from real data.
pub fn gamma(schema: &Arc<Schema>) -> Vec<ConstantCfd> {
    let mut out = Vec::with_capacity(2 * PATTERNED - 1);
    for i in 0..PATTERNED {
        let text = if i == PATTERNED - 1 {
            format!("affiliation = \"{}\" -> city = \"{}\"", aff_label(i), aff_city(i))
        } else {
            format!(
                "affiliation = \"{}\" -> city = \"{}\", country = \"{}\"",
                aff_label(i),
                aff_city(i),
                aff_country(i)
            )
        };
        out.extend(parse_cfds(schema, &text).expect("static"));
    }
    debug_assert_eq!(out.len(), 2 * PATTERNED - 1);
    out
}

/// Result of generating the citation structure: the dataset plus the actual
/// constraint count (tuned to land near the paper's 503).
pub fn generate(config: CareerConfig) -> Dataset {
    let s = schema();
    let mut r = rng(config.seed);

    // Careers: each researcher visits 2–4 affiliations in increasing index
    // order; publications are assigned to affiliation periods.
    struct Person {
        first: String,
        last: String,
        affs: Vec<usize>,
        papers: Vec<usize>, // affiliation index per paper, oldest first
    }
    let mut people = Vec::with_capacity(config.entities);
    for p in 0..config.entities {
        let hops = r.gen_range(2..=5usize);
        let mut affs = BTreeSet::new();
        while affs.len() < hops {
            affs.insert(r.gen_range(0..AFFILIATIONS));
        }
        let affs: Vec<usize> = affs.into_iter().collect(); // increasing
        let n_papers = skewed_size(&mut r, config.min_tuples, config.max_tuples, config.mean_tuples);
        // Split papers across affiliation periods; guarantee at least one
        // paper in the first and last period so conflicts and a resolvable
        // truth both exist.
        let papers: Vec<usize> = (0..n_papers)
            .map(|k| {
                let period = (k * affs.len()) / n_papers.max(1);
                affs[period.min(affs.len() - 1)]
            })
            .collect();
        people.push(Person {
            first: format!("First{p}"),
            last: format!("Last{p}"),
            affs,
            papers,
        });
    }

    // Citations: papers cite earlier papers by the same person with modest
    // probability (real citation graphs are sparse — this is what leaves
    // ~22% of CAREER true values underivable without interaction);
    // cross-affiliation citations yield currency constraints on
    // affiliation, city and country values (deduplicated globally).
    let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    for person in &people {
        for (i, &aff_i) in person.papers.iter().enumerate() {
            if i == 0 || !r.gen_bool(0.65) {
                continue;
            }
            // Cite into the recent past: cross-affiliation pairs only arise
            // near period boundaries, so some careers keep unconstrained
            // transitions (the ~22% of CAREER values needing interaction).
            let back = r.gen_range(1..=6usize.min(i));
            let aff_j = person.papers[i - back];
            if aff_j != aff_i {
                // Papers are ordered oldest-first ⇒ aff_j < aff_i.
                pairs.insert((aff_j, aff_i));
            }
        }
        let _ = &person.affs;
    }

    let mut sigma: Vec<CurrencyConstraint> = Vec::new();
    for &(lo, hi) in &pairs {
        sigma.push(
            parse_currency_constraint(
                &s,
                &format!(
                    r#"t1[affiliation] = "{}" && t2[affiliation] = "{}" -> t1 <[affiliation] t2"#,
                    aff_label(lo),
                    aff_label(hi)
                ),
            )
            .expect("static"),
        );
        if aff_city(lo) != aff_city(hi) {
            sigma.push(
                parse_currency_constraint(
                    &s,
                    &format!(
                        r#"t1[city] = "{}" && t2[city] = "{}" -> t1 <[city] t2"#,
                        aff_city(lo),
                        aff_city(hi)
                    ),
                )
                .expect("static"),
            );
        }
        if aff_country(lo) != aff_country(hi) {
            sigma.push(
                parse_currency_constraint(
                    &s,
                    &format!(
                        r#"t1[country] = "{}" && t2[country] = "{}" -> t1 <[country] t2"#,
                        aff_country(lo),
                        aff_country(hi)
                    ),
                )
                .expect("static"),
            );
        }
    }

    // Entities: one tuple per publication.
    let mut entities = Vec::with_capacity(people.len());
    for person in &people {
        let tuples: Vec<Tuple> = person
            .papers
            .iter()
            .map(|&aff| {
                Tuple::of([
                    Value::str(&person.first),
                    Value::str(&person.last),
                    Value::str(aff_label(aff)),
                    Value::str(aff_city(aff)),
                    Value::str(aff_country(aff)),
                ])
            })
            .collect();
        // With small probability the verified current affiliation postdates
        // the last publication (the researcher moved and has not published
        // yet) — a confidently-stale case no amount of interaction fixes,
        // bounding the F-measure ceiling like the paper's 0.958.
        let mut last_aff = *person.papers.last().expect("papers non-empty");
        if r.gen_bool(0.05) && last_aff + 1 < AFFILIATIONS {
            last_aff += 1;
        }
        let truth = Tuple::of([
            Value::str(&person.first),
            Value::str(&person.last),
            Value::str(aff_label(last_aff)),
            Value::str(aff_city(last_aff)),
            Value::str(aff_country(last_aff)),
        ]);
        entities.push((
            EntityInstance::new(s.clone(), tuples).expect("arity"),
            truth,
        ));
    }

    Dataset {
        name: "CAREER".to_string(),
        schema: s.clone(),
        sigma,
        gamma: gamma(&s),
        entities,
        table: None,
        program: std::sync::OnceLock::new(),
    }
    .share_value_table()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::isvalid::is_valid;

    #[test]
    fn cfd_pattern_count_matches_the_paper() {
        let s = schema();
        assert_eq!(gamma(&s).len(), 347);
    }

    #[test]
    fn constraint_count_is_in_the_papers_ballpark() {
        let ds = generate(CareerConfig::default());
        let n = ds.sigma.len();
        assert!(
            (300..=700).contains(&n),
            "citation constraints {n} should be near the paper's 503"
        );
    }

    #[test]
    fn generated_specs_are_valid() {
        let ds = generate(CareerConfig { entities: 10, seed: 5, ..Default::default() });
        for i in 0..ds.len() {
            assert!(is_valid(&ds.spec(i)).valid, "person {i} must be valid");
        }
    }

    #[test]
    fn shape_statistics_match() {
        let ds = generate(CareerConfig::default());
        let stats = ds.stats();
        assert_eq!(stats.entities, 65);
        assert!(stats.min_tuples >= 2);
        assert!(stats.max_tuples <= 175);
        assert!((15.0..60.0).contains(&stats.avg_tuples));
    }

    #[test]
    fn truth_is_the_latest_affiliation() {
        let ds = generate(CareerConfig { entities: 8, seed: 2, ..Default::default() });
        let aff = ds.schema.attr_id("affiliation").unwrap();
        for (e, truth) in &ds.entities {
            let idx = |v: &Value| -> usize {
                v.to_token().rsplit('_').next().unwrap().parse().unwrap()
            };
            let t = idx(truth.get(aff));
            for tuple in e.tuples() {
                assert!(idx(tuple.get(aff)) <= t);
            }
        }
    }
}
