/root/repo/target/debug/deps/conflict_resolution-5516b836022d8778.d: src/lib.rs

/root/repo/target/debug/deps/conflict_resolution-5516b836022d8778: src/lib.rs

src/lib.rs:
