/root/repo/target/debug/deps/cr_types-ef32c7d5bd54ae23.d: crates/cr-types/src/lib.rs crates/cr-types/src/csv.rs crates/cr-types/src/entity.rs crates/cr-types/src/error.rs crates/cr-types/src/interner.rs crates/cr-types/src/schema.rs crates/cr-types/src/tuple.rs crates/cr-types/src/value.rs

/root/repo/target/debug/deps/libcr_types-ef32c7d5bd54ae23.rmeta: crates/cr-types/src/lib.rs crates/cr-types/src/csv.rs crates/cr-types/src/entity.rs crates/cr-types/src/error.rs crates/cr-types/src/interner.rs crates/cr-types/src/schema.rs crates/cr-types/src/tuple.rs crates/cr-types/src/value.rs

crates/cr-types/src/lib.rs:
crates/cr-types/src/csv.rs:
crates/cr-types/src/entity.rs:
crates/cr-types/src/error.rs:
crates/cr-types/src/interner.rs:
crates/cr-types/src/schema.rs:
crates/cr-types/src/tuple.rs:
crates/cr-types/src/value.rs:
