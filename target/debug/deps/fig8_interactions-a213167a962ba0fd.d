/root/repo/target/debug/deps/fig8_interactions-a213167a962ba0fd.d: crates/cr-bench/src/bin/fig8_interactions.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_interactions-a213167a962ba0fd.rmeta: crates/cr-bench/src/bin/fig8_interactions.rs Cargo.toml

crates/cr-bench/src/bin/fig8_interactions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
