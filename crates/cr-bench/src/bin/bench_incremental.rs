//! Benchmarks the incremental resolution engine against the from-scratch
//! Fig. 4 loop on the multi-round end-to-end scenario and writes a
//! machine-readable `BENCH_<n>.json` report.
//!
//! The workload reproduces the interactive setting of the paper's Fig. 8:
//! entities at the seed bin sizes, a simulated user answering one attribute
//! per round, and a 0.6 constraint fraction (the paper's |Σ|,|Γ| sweeps) so
//! that entities genuinely need several interaction rounds — the regime the
//! incremental engine targets.
//!
//! Every incremental resolution also reports its **engine rebuild count**:
//! with the guard-group zero-rebuild engine this must be 0 on every
//! dataset, and the run fails loudly if it is not.
//!
//! Flags: `--entities N` (per generated dataset, default 10), `--seed S`,
//! `--rounds R` (max user rounds, default 10), `--reps K` (timing
//! repetitions, default 3), `--frac F` (constraint fraction, default 0.6),
//! `--out PATH` (default `BENCH_2.json`), `--smoke` (tiny CI mode: check
//! agreement and the zero-rebuild invariant, skip the timing sweep).

use std::time::Instant;

use cr_bench::{arg_entities, arg_flag, arg_seed, arg_value, json::BenchReport, quick};
use cr_core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use cr_core::Specification;
use cr_data::{nba, person, vjday};
use cr_types::Tuple;

struct Workload {
    label: &'static str,
    specs: Vec<Specification>,
    truths: Vec<Tuple>,
}

fn resolver(incremental: bool, max_rounds: usize) -> Resolver {
    Resolver::new(ResolutionConfig { max_rounds, incremental, ..Default::default() })
}

/// Serial wall-clock seconds for one pass over the workload (best of `reps`).
fn time_serial(w: &Workload, incremental: bool, rounds: usize, reps: usize) -> f64 {
    let r = resolver(incremental, rounds);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        for (spec, truth) in w.specs.iter().zip(&w.truths) {
            let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
            std::hint::black_box(r.resolve(spec, &mut oracle));
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Parallel fan-out wall-clock seconds (best of `reps`).
fn time_parallel(w: &Workload, incremental: bool, rounds: usize, reps: usize) -> f64 {
    let r = resolver(incremental, rounds);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(r.resolve_all_parallel(&w.specs, |i| {
            GroundTruthOracle::with_cap(w.truths[i].clone(), 1)
        }));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Both paths must produce identical resolution outcomes. Returns the total
/// engine rebuild count of the incremental path (must be 0 with the
/// guard-group engine).
fn check_agreement(w: &Workload, rounds: usize) -> usize {
    let inc = resolver(true, rounds);
    let scr = resolver(false, rounds);
    let mut rebuilds = 0;
    for (spec, truth) in w.specs.iter().zip(&w.truths) {
        let a = inc.resolve(spec, &mut GroundTruthOracle::with_cap(truth.clone(), 1));
        let b = scr.resolve(spec, &mut GroundTruthOracle::with_cap(truth.clone(), 1));
        assert_eq!(a.resolved, b.resolved, "{}: resolved tuples diverged", w.label);
        assert_eq!(a.interactions, b.interactions, "{}: interaction counts diverged", w.label);
        assert_eq!(a.user_values, b.user_values, "{}: answer counts diverged", w.label);
        rebuilds += a.rebuilds;
    }
    rebuilds
}

fn main() {
    let entities = arg_entities(10);
    let seed = arg_seed(7);
    let rounds: usize = arg_value("rounds").and_then(|v| v.parse().ok()).unwrap_or(10);
    let reps: usize = arg_value("reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let frac: f64 = arg_value("frac").and_then(|v| v.parse().ok()).unwrap_or(0.6);
    let smoke = arg_flag("smoke");
    let out = arg_value("out").unwrap_or_else(|| "BENCH_2.json".to_string());

    // Entity sizes follow the seed's Fig. 8(a) bins: NBA up to 135 tuples,
    // Person at 1/10 paper scale up to 200.
    let nba_sizes: Vec<usize> = (0..entities).map(|i| 27 + (i * 108) / entities.max(1)).collect();
    let person_sizes: Vec<usize> =
        (0..entities).map(|i| 100 + (i * 150) / entities.max(1)).collect();

    let subsample =
        |spec: &Specification| spec.with_constraint_fraction(frac, frac, seed.wrapping_add(11));
    let workloads = [
        Workload {
            label: "vjday",
            specs: vec![vjday::edith_spec(), vjday::george_spec()],
            truths: vec![vjday::edith_truth(), vjday::george_truth()],
        },
        {
            let ds = nba::generate_with_sizes(&nba_sizes, seed);
            Workload {
                label: "nba",
                truths: (0..ds.len()).map(|i| ds.truth(i).clone()).collect(),
                specs: (0..ds.len()).map(|i| subsample(&ds.spec(i))).collect(),
            }
        },
        {
            let ds = person::generate_with_sizes(&person_sizes, seed);
            Workload {
                label: "person",
                truths: (0..ds.len()).map(|i| ds.truth(i).clone()).collect(),
                specs: (0..ds.len()).map(|i| subsample(&ds.spec(i))).collect(),
            }
        },
        {
            let ds = quick::career(entities.min(65), seed);
            Workload {
                label: "career",
                truths: (0..ds.len()).map(|i| ds.truth(i).clone()).collect(),
                specs: (0..ds.len()).map(|i| ds.spec(i)).collect(),
            }
        },
    ];

    let mut report = BenchReport::new("zero-rebuild-interaction-loop");
    report.context("entities_per_dataset", entities);
    report.context("seed", seed);
    report.context("max_rounds", rounds);
    report.context("reps", reps);
    report.context(
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let mut total_scratch = 0.0;
    let mut total_incremental = 0.0;
    let mut total_rebuilds = 0;
    for w in &workloads {
        let rebuilds = check_agreement(w, rounds);
        total_rebuilds += rebuilds;
        report.context(format!("rebuilds/{}", w.label), rebuilds);
        if rebuilds != 0 {
            eprintln!("{:>8}: ZERO-REBUILD VIOLATION: {rebuilds} engine rebuilds", w.label);
        } else {
            println!("{:>8}: rebuilds 0", w.label);
        }
        if smoke {
            continue;
        }
        let scratch = time_serial(w, false, rounds, reps);
        let incremental = time_serial(w, true, rounds, reps);
        let parallel = time_parallel(w, true, rounds, reps);
        total_scratch += scratch;
        total_incremental += incremental;
        report.measure(format!("end_to_end/{}/scratch", w.label), scratch);
        report.measure(format!("end_to_end/{}/incremental", w.label), incremental);
        report.measure(format!("end_to_end/{}/incremental_parallel", w.label), parallel);
        println!(
            "{:>8}: scratch {:>8.4}s  incremental {:>8.4}s  ({:.2}x)  parallel {:>8.4}s  ({:.2}x)",
            w.label,
            scratch,
            incremental,
            scratch / incremental,
            parallel,
            scratch / parallel,
        );
    }
    report.context("rebuilds_total", total_rebuilds);
    if !smoke {
        let speedup = total_scratch / total_incremental;
        report.measure("end_to_end/total/scratch", total_scratch);
        report.measure("end_to_end/total/incremental", total_incremental);
        report.context("speedup_incremental_vs_scratch", format!("{speedup:.2}"));
        println!("overall incremental speedup: {speedup:.2}x");
        report.write(&out).expect("write bench report");
        println!("wrote {out}");
    }
    if total_rebuilds != 0 {
        eprintln!("FAIL: incremental engine rebuilt {total_rebuilds} times (expected 0)");
        std::process::exit(1);
    }
}
