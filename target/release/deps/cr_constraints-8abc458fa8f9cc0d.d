/root/repo/target/release/deps/cr_constraints-8abc458fa8f9cc0d.d: crates/cr-constraints/src/lib.rs crates/cr-constraints/src/builder.rs crates/cr-constraints/src/cfd.rs crates/cr-constraints/src/fmt_util.rs crates/cr-constraints/src/currency.rs crates/cr-constraints/src/error.rs crates/cr-constraints/src/op.rs crates/cr-constraints/src/parser.rs crates/cr-constraints/src/predicate.rs

/root/repo/target/release/deps/libcr_constraints-8abc458fa8f9cc0d.rlib: crates/cr-constraints/src/lib.rs crates/cr-constraints/src/builder.rs crates/cr-constraints/src/cfd.rs crates/cr-constraints/src/fmt_util.rs crates/cr-constraints/src/currency.rs crates/cr-constraints/src/error.rs crates/cr-constraints/src/op.rs crates/cr-constraints/src/parser.rs crates/cr-constraints/src/predicate.rs

/root/repo/target/release/deps/libcr_constraints-8abc458fa8f9cc0d.rmeta: crates/cr-constraints/src/lib.rs crates/cr-constraints/src/builder.rs crates/cr-constraints/src/cfd.rs crates/cr-constraints/src/fmt_util.rs crates/cr-constraints/src/currency.rs crates/cr-constraints/src/error.rs crates/cr-constraints/src/op.rs crates/cr-constraints/src/parser.rs crates/cr-constraints/src/predicate.rs

crates/cr-constraints/src/lib.rs:
crates/cr-constraints/src/builder.rs:
crates/cr-constraints/src/cfd.rs:
crates/cr-constraints/src/fmt_util.rs:
crates/cr-constraints/src/currency.rs:
crates/cr-constraints/src/error.rs:
crates/cr-constraints/src/op.rs:
crates/cr-constraints/src/parser.rs:
crates/cr-constraints/src/predicate.rs:
