//! Sharded work-stealing resolution scheduling.
//!
//! Dataset-wide conflict resolution (Section VII's Fig. 8 sweeps, and the
//! 10⁵–10⁶-entity datasets the paper's motivation cites) is a batch of
//! *independent* per-entity resolutions whose costs follow a heavy tail:
//! most entities are a handful of tuples, a few are hundreds. A flat
//! atomic-counter fan-out (the previous `resolve_all_parallel`) handles
//! the average case but has two structural problems this module fixes:
//!
//! * **Per-entity queue traffic.** Tiny entities resolve in well under the
//!   cost of a queue round-trip; the scheduler *batches* runs of small
//!   entities into one task at build time.
//! * **Head-of-line giants.** One oversized entity pins a core for its
//!   whole round-0 instantiation while the other cores drain the cheap
//!   tail and go idle. The scheduler *splits* an oversized entity's Σ/Γ
//!   instantiation into range subtasks (over the combined constraint
//!   index space — see `SplitPlan` in the encode module) that thieves can
//!   pick up; the last subtask to finish replays the collected chunks
//!   through `EncodedSpec::encode_with_omega_chunks`, which reproduces
//!   the serial encoding byte-for-byte, and resolves the entity.
//!
//! # Structure
//!
//! Tasks are constructed **deterministically** from the input batch and
//! the [`SchedulerConfig`] thresholds — batching and splitting decisions
//! never depend on runtime timing, so the batch/split telemetry of a
//! given (dataset, config) pair is reproducible and, more importantly,
//! *what* is encoded and solved is identical at every worker count. Each
//! worker owns a deque (owner pops newest-first from the back; thieves
//! steal oldest-first from the front) and steals round-robin from its
//! siblings when its own deque runs dry. All tasks exist before the
//! workers start and tasks never spawn tasks, so a worker exits when
//! every deque is empty.
//!
//! Workers recycle per-entity solver allocations through a pooled
//! [`cr_sat::SolverScratch`] (`Resolver::resolve_pooled`): a
//! scratch-built solver is state-identical to a fresh one, so pooling is
//! invisible to outcomes.
//!
//! # Streaming and backpressure
//!
//! [`resolve_stream`] couples an entity *producer* (revision ingestion, a
//! dataset generator, a network reader) to the shard workers through a
//! [`BoundedQueue`]: when resolution falls behind, the producer blocks in
//! `push` instead of buffering unboundedly — the queue's high-water mark
//! and stall count are reported in [`SchedTelemetry`]. This is the
//! memory-bounded path `bench_incremental` uses for its 10⁵-entity
//! power-law run: entities are generated on demand, at most
//! `queue_cap + workers` specifications are alive at once, and outcomes
//! are folded into the caller's sink as they complete.
//!
//! # Outcome equality
//!
//! Scheduling only moves work between threads. Batches resolve their
//! entities in input order with the same per-entity state a solo run
//! would build; split subtasks instantiate constraint ranges whose
//! in-order concatenation is the serial emission stream; pooled scratch
//! yields state-identical solvers. `tests/sched_equivalence.rs` sweeps
//! worker counts and placements over seeded power-law batches and asserts
//! outcome equality against the single-threaded run.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::encode::{EncodedSpec, InstanceConstraint, SplitPlan};
use crate::framework::{ResolutionOutcome, Resolver, UserOracle};
use crate::spec::Specification;

/// Tuning knobs of the scheduler. The defaults suit heavy-tailed entity
/// batches; tests pin thresholds to force specific task shapes.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Worker (shard) count. Clamped to at least 1; a single worker runs
    /// everything inline with no stealing.
    pub workers: usize,
    /// Maximum entities fused into one batch task. Batching amortises
    /// deque traffic over runs of small entities; 1 disables it.
    pub batch_max_entities: usize,
    /// Entities with at least this many tuples are never batched (they
    /// are enough work on their own to justify a task).
    pub large_tuple_threshold: usize,
    /// Entities with at least this many tuples get their Σ/Γ
    /// instantiation split into stealable subtasks. `usize::MAX` disables
    /// splitting.
    pub split_tuple_threshold: usize,
    /// Upper bound on subtasks per split entity (also bounded by the
    /// entity's combined constraint count).
    pub split_max_subtasks: usize,
    /// Where freshly built tasks are placed.
    pub placement: Placement,
    /// Capacity of the ingestion queue in [`resolve_stream`] — the
    /// backpressure bound between the producer and the workers.
    pub queue_cap: usize,
}

impl SchedulerConfig {
    /// The default configuration at a given worker count — what
    /// [`Resolver::resolve_all_parallel_with_threads`] uses.
    pub fn with_workers(workers: usize) -> Self {
        SchedulerConfig {
            workers,
            batch_max_entities: 8,
            large_tuple_threshold: 32,
            split_tuple_threshold: 192,
            split_max_subtasks: 4,
            placement: Placement::RoundRobin,
            queue_cap: 256,
        }
    }
}

/// Initial placement of tasks onto shard deques.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Task `t` starts on shard `t mod workers` — balanced by count, so
    /// stealing only happens when costs skew.
    RoundRobin,
    /// Every task starts on shard 0 — an adversarial placement that makes
    /// the other workers live entirely off steals. Used by the
    /// steal-liveness smoke and by tests; pointless in production.
    Skewed,
}

/// Counters describing what the scheduler actually did. Task counts
/// (batches, splits, sizes) are deterministic functions of the input and
/// config; steal counts depend on runtime interleaving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedTelemetry {
    /// Workers the run used.
    pub workers: usize,
    /// Tasks executed (batch tasks count once, split subtasks each).
    pub tasks: usize,
    /// Tasks taken from another worker's deque.
    pub steals: usize,
    /// Multi-entity batch tasks built.
    pub batch_tasks: usize,
    /// Entities resolved inside multi-entity batches.
    pub batched_entities: usize,
    /// Largest batch built.
    pub max_batch: usize,
    /// Entities whose instantiation was split.
    pub split_entities: usize,
    /// Split subtasks built (≥ 2 per split entity).
    pub split_subtasks: usize,
    /// Resolutions whose solver was built from pooled scratch (the first
    /// resolution of each worker necessarily starts cold).
    pub scratch_reuses: usize,
    /// Peak occupancy of the streaming ingestion queue (stream mode only).
    pub queue_high_water: usize,
    /// Producer pushes that had to block on a full queue (stream mode
    /// only) — nonzero means backpressure engaged.
    pub backpressure_stalls: usize,
}

/// Shared counters, flattened into [`SchedTelemetry`] at the end of a run.
#[derive(Default)]
struct Counters {
    tasks: AtomicUsize,
    steals: AtomicUsize,
    scratch_reuses: AtomicUsize,
}

/// State of one split entity: the instantiation plan plus the chunk
/// rendezvous. The worker finishing the *last* range runs the merge +
/// resolve inline (its cache just produced the final chunk anyway).
struct SplitState {
    /// Index of the entity in the input batch.
    spec_idx: usize,
    plan: SplitPlan,
    /// One slot per subtask range, in range order.
    chunks: Mutex<Vec<Option<Vec<InstanceConstraint>>>>,
    /// Subtasks still running; the decrement-to-zero worker finishes.
    remaining: AtomicUsize,
}

/// One unit of deque work.
enum Task {
    /// Resolve a run of entities (batched small entities, or a single
    /// entity as the degenerate run).
    Run(Vec<usize>),
    /// Instantiate one constraint range of a split entity.
    SplitPart {
        state: Arc<SplitState>,
        part: usize,
        range: std::ops::Range<usize>,
    },
}

/// Resolves `specs` on the work-stealing pool and returns the outcomes in
/// input order plus the run's telemetry. Outcomes are identical for every
/// `config.workers` and [`Placement`] — see the module docs.
pub fn resolve_batch<O, F>(
    resolver: &Resolver,
    specs: &[Specification],
    make_oracle: &F,
    config: &SchedulerConfig,
) -> (Vec<ResolutionOutcome>, SchedTelemetry)
where
    O: UserOracle,
    F: Fn(usize) -> O + Sync,
{
    if specs.is_empty() {
        return (Vec::new(), SchedTelemetry { workers: 0, ..SchedTelemetry::default() });
    }
    let workers = config.workers.clamp(1, specs.len());
    let mut telemetry = SchedTelemetry { workers, ..SchedTelemetry::default() };

    // ---- Deterministic task construction (placement-independent). ----
    // Splitting pre-encodes with the engine's options, which only the
    // incremental path consumes; the from-scratch loop re-encodes per
    // round, so splitting would be wasted work there.
    let splittable = workers > 1 && resolver.config().incremental;
    let mut tasks: Vec<Task> = Vec::new();
    let mut run: Vec<usize> = Vec::new();
    let flush = |run: &mut Vec<usize>, tasks: &mut Vec<Task>, telemetry: &mut SchedTelemetry| {
        if run.is_empty() {
            return;
        }
        if run.len() > 1 {
            telemetry.batch_tasks += 1;
            telemetry.batched_entities += run.len();
            telemetry.max_batch = telemetry.max_batch.max(run.len());
        }
        tasks.push(Task::Run(std::mem::take(run)));
    };
    for (i, spec) in specs.iter().enumerate() {
        let tuples = spec.entity().len();
        if splittable && tuples >= config.split_tuple_threshold {
            let plan = SplitPlan::new(spec);
            let total = plan.total_constraints();
            let parts = config.split_max_subtasks.min(total).min(workers.max(2));
            if parts >= 2 {
                flush(&mut run, &mut tasks, &mut telemetry);
                telemetry.split_entities += 1;
                telemetry.split_subtasks += parts;
                let state = Arc::new(SplitState {
                    spec_idx: i,
                    plan,
                    chunks: Mutex::new((0..parts).map(|_| None).collect()),
                    remaining: AtomicUsize::new(parts),
                });
                // Balanced contiguous ranges covering [0, total) in order.
                let base = total / parts;
                let extra = total % parts;
                let mut start = 0usize;
                for part in 0..parts {
                    let len = base + usize::from(part < extra);
                    tasks.push(Task::SplitPart {
                        state: Arc::clone(&state),
                        part,
                        range: start..start + len,
                    });
                    start += len;
                }
                debug_assert_eq!(start, total);
                continue;
            }
            // Too few constraints to split: falls through to a plain run.
        }
        if tuples >= config.large_tuple_threshold || config.batch_max_entities <= 1 {
            flush(&mut run, &mut tasks, &mut telemetry);
            tasks.push(Task::Run(vec![i]));
            continue;
        }
        run.push(i);
        if run.len() >= config.batch_max_entities {
            flush(&mut run, &mut tasks, &mut telemetry);
        }
    }
    flush(&mut run, &mut tasks, &mut telemetry);
    telemetry.tasks = tasks.len();

    // ---- Placement. ----
    let shards: Vec<Mutex<VecDeque<Task>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (t, task) in tasks.into_iter().enumerate() {
        let shard = match config.placement {
            Placement::RoundRobin => t % workers,
            Placement::Skewed => 0,
        };
        shards[shard].lock().unwrap().push_back(task);
    }

    // ---- Execution. ----
    let counters = Counters::default();
    let slots: Vec<OnceLock<ResolutionOutcome>> = specs.iter().map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let shards = &shards;
            let slots = &slots;
            let counters = &counters;
            scope.spawn(move || {
                let mut scratch: Option<cr_sat::SolverScratch> = None;
                loop {
                    // Own deque first (back = newest, keeps caches warm),
                    // then steal round-robin from the front of siblings.
                    let mut task = shards[me].lock().unwrap().pop_back();
                    if task.is_none() {
                        for off in 1..workers {
                            let victim = (me + off) % workers;
                            if let Some(stolen) = shards[victim].lock().unwrap().pop_front() {
                                counters.steals.fetch_add(1, Ordering::Relaxed);
                                task = Some(stolen);
                                break;
                            }
                        }
                    }
                    let Some(task) = task else {
                        // All tasks pre-exist and tasks never spawn tasks,
                        // so empty-everywhere means done.
                        break;
                    };
                    counters.tasks.fetch_add(1, Ordering::Relaxed);
                    match task {
                        Task::Run(indices) => {
                            for i in indices {
                                let mut oracle = make_oracle(i);
                                if scratch.is_some() {
                                    counters.scratch_reuses.fetch_add(1, Ordering::Relaxed);
                                }
                                let outcome = resolver.resolve_pooled(
                                    &specs[i],
                                    &mut oracle,
                                    None,
                                    &mut scratch,
                                );
                                slots[i].set(outcome).expect("each entity resolved once");
                            }
                        }
                        Task::SplitPart { state, part, range } => {
                            let spec = &specs[state.spec_idx];
                            let chunk = state.plan.instantiate_range(spec, range);
                            state.chunks.lock().unwrap()[part] = Some(chunk);
                            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                                // Last part in: merge in range order and
                                // resolve here.
                                let chunks: Vec<Vec<InstanceConstraint>> = state
                                    .chunks
                                    .lock()
                                    .unwrap()
                                    .iter_mut()
                                    .map(|c| c.take().expect("all parts delivered"))
                                    .collect();
                                let enc = EncodedSpec::encode_with_omega_chunks(
                                    spec,
                                    resolver.engine_encode_options(),
                                    chunks,
                                );
                                let i = state.spec_idx;
                                let mut oracle = make_oracle(i);
                                if scratch.is_some() {
                                    counters.scratch_reuses.fetch_add(1, Ordering::Relaxed);
                                }
                                let outcome = resolver.resolve_pooled(
                                    spec,
                                    &mut oracle,
                                    Some(enc),
                                    &mut scratch,
                                );
                                slots[i].set(outcome).expect("each entity resolved once");
                            }
                        }
                    }
                }
            });
        }
    });

    telemetry.steals = counters.steals.load(Ordering::Relaxed);
    telemetry.scratch_reuses = counters.scratch_reuses.load(Ordering::Relaxed);
    debug_assert_eq!(counters.tasks.load(Ordering::Relaxed), telemetry.tasks);
    let outcomes = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every entity resolved"))
        .collect();
    (outcomes, telemetry)
}

/// A blocking bounded MPMC queue — the backpressure seam between entity
/// ingestion and resolution. `push` blocks while the queue is at
/// capacity (counting the stall); `pop` blocks while it is empty and not
/// yet closed. Occupancy never exceeds the capacity, and `close` wakes
/// every blocked consumer for shutdown.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

struct QueueInner<T> {
    buf: VecDeque<T>,
    closed: bool,
    high_water: usize,
    push_stalls: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` items (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                buf: VecDeque::new(),
                closed: false,
                high_water: 0,
                push_stalls: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Each push that
    /// finds the queue full counts one stall (however long it waits).
    /// Panics if the queue was closed (producers own the close).
    pub fn push(&self, item: T) {
        let mut inner = self.inner.lock().unwrap();
        if inner.buf.len() >= self.cap {
            inner.push_stalls += 1;
            while inner.buf.len() >= self.cap {
                inner = self.not_full.wait(inner).unwrap();
            }
        }
        assert!(!inner.closed, "push after close");
        inner.buf.push_back(item);
        let len = inner.buf.len();
        inner.high_water = inner.high_water.max(len);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Dequeues the oldest item, blocking while the queue is empty;
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.buf.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Marks the stream complete: consumers drain the remainder and then
    /// observe `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// `(high_water, push_stalls)` so far.
    pub fn stats(&self) -> (usize, usize) {
        let inner = self.inner.lock().unwrap();
        (inner.high_water, inner.push_stalls)
    }

    /// Current occupancy (tests).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Streaming resolution with ingestion backpressure: the caller's
/// `entities` iterator runs on the calling thread and feeds a
/// [`BoundedQueue`] of capacity `config.queue_cap`; `config.workers`
/// shard workers consume, resolve (with pooled scratch) and hand each
/// outcome to `sink` as `(entity index, outcome)` — concurrently and out
/// of input order, so the sink must synchronise its own state. At most
/// `queue_cap + workers` specifications are alive at any moment
/// regardless of dataset size.
pub fn resolve_stream<O, F, S, I>(
    resolver: &Resolver,
    entities: I,
    make_oracle: &F,
    config: &SchedulerConfig,
    sink: &S,
) -> SchedTelemetry
where
    I: Iterator<Item = Specification>,
    O: UserOracle,
    F: Fn(usize) -> O + Sync,
    S: Fn(usize, ResolutionOutcome) + Sync,
{
    let workers = config.workers.max(1);
    let queue: BoundedQueue<(usize, Specification)> = BoundedQueue::new(config.queue_cap);
    let counters = Counters::default();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let counters = &counters;
            scope.spawn(move || {
                let mut scratch: Option<cr_sat::SolverScratch> = None;
                while let Some((i, spec)) = queue.pop() {
                    counters.tasks.fetch_add(1, Ordering::Relaxed);
                    if scratch.is_some() {
                        counters.scratch_reuses.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut oracle = make_oracle(i);
                    let outcome = resolver.resolve_pooled(&spec, &mut oracle, None, &mut scratch);
                    sink(i, outcome);
                }
            });
        }
        // Producer: enumerate on the calling thread; a full queue blocks
        // ingestion right here instead of buffering.
        for (i, spec) in entities.enumerate() {
            queue.push((i, spec));
        }
        queue.close();
    });
    let (high_water, stalls) = queue.stats();
    SchedTelemetry {
        workers,
        tasks: counters.tasks.load(Ordering::Relaxed),
        scratch_reuses: counters.scratch_reuses.load(Ordering::Relaxed),
        queue_high_water: high_water,
        backpressure_stalls: stalls,
        ..SchedTelemetry::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn bounded_queue_fifo_and_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.close();
        assert_eq!(q.pop(), Some(3), "close drains the remainder first");
        assert_eq!(q.pop(), None);
        assert_eq!(q.stats(), (3, 0), "never full: no stalls; high water 3");
    }

    #[test]
    fn bounded_queue_blocks_at_cap_without_deadlock() {
        // Producer pushes 64 items through a cap-4 queue while a slow
        // consumer drains: occupancy must never exceed the cap, the
        // producer must stall at least once, and the whole thing must
        // terminate (no deadlock at the cap boundary).
        const N: usize = 64;
        const CAP: usize = 4;
        let q: BoundedQueue<usize> = BoundedQueue::new(CAP);
        let over_cap = AtomicBool::new(false);
        let mut seen = Vec::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..N {
                    q.push(i);
                    if q.len() > CAP {
                        over_cap.store(true, Ordering::Relaxed);
                    }
                }
                q.close();
            });
            while let Some(i) = q.pop() {
                if q.len() > CAP {
                    over_cap.store(true, Ordering::Relaxed);
                }
                seen.push(i);
            }
        });
        assert_eq!(seen, (0..N).collect::<Vec<_>>(), "FIFO, nothing lost");
        assert!(!over_cap.load(Ordering::Relaxed), "occupancy stayed ≤ cap");
        let (high_water, stalls) = q.stats();
        assert!(high_water <= CAP);
        assert!(stalls > 0, "a 64-item burst through cap 4 must stall");
    }

    #[test]
    fn bounded_queue_many_consumers_terminate() {
        let q: BoundedQueue<usize> = BoundedQueue::new(2);
        let popped = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while q.pop().is_some() {
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..32 {
                q.push(i);
            }
            q.close();
        });
        assert_eq!(popped.load(Ordering::Relaxed), 32);
    }
}
