//! Lazy (on-demand) axiom instantiation — the solver side of lazy clause
//! generation à la SMT theory propagation.
//!
//! Large axiom schemes (the conflict-resolution encoder's `O(n³)`
//! transitivity clauses per attribute) usually constrain only a thin slice
//! of the search. Instead of materialising every instance up front, a
//! consumer registers a [`LazyAxiomSource`] — an oracle that, shown a
//! candidate assignment, returns the axiom instances the candidate violates
//! (or that have become unit under it). Two drivers integrate the oracle:
//!
//! * [`Solver::solve_lazy_with_assumptions`] runs the classic
//!   counterexample-guided loop: solve, show the model to the source, add
//!   the returned clauses, re-solve — until the model satisfies the full
//!   theory (`Sat`) or the accumulated formula is contradictory (`Unsat`).
//! * [`UnitPropagator::propagate_to_fixpoint_lazy`] interleaves root-level
//!   propagation with instantiation: after each fixpoint the source sees the
//!   literals assigned since its previous consultation and returns every
//!   axiom clause that is now unit or conflicting; propagation resumes until
//!   neither units nor instantiations remain. The combined fixpoint equals
//!   unit propagation over the fully materialised axiom set: any eager
//!   propagation step uses a clause that is unit under the partial
//!   assignment, and exactly those clauses are handed over on demand.
//!
//! Axiom instances injected this way are ordinary **problem clauses**: they
//! are theory-valid regardless of any retractable clause group, so they are
//! never guarded, survive `retract_group`/persistent-assumption changes, and
//! are exempt from learnt-database sweeps ([`Solver::compact_learnts`] only
//! deletes learnt clauses).
//!
//! [`Solver::solve_lazy_with_assumptions`]: crate::Solver::solve_lazy_with_assumptions
//! [`UnitPropagator::propagate_to_fixpoint_lazy`]: crate::UnitPropagator::propagate_to_fixpoint_lazy
//! [`Solver::compact_learnts`]: crate::Solver::compact_learnts

use crate::lit::{Lit, Var};

/// An oracle for on-demand axiom instantiation (see the module docs).
///
/// Implementors must guarantee two properties for the drivers to be sound
/// and terminating:
///
/// 1. **Validity** — every returned clause is entailed by the intended
///    theory (it may only cut assignments that no theory model has), and
/// 2. **Completeness at fixpoint** — if the candidate assignment satisfies
///    every instantiable axiom, an empty vector is returned; conversely a
///    violated (or, for partial candidates, unit) axiom not yet known to
///    the caller must eventually be returned. Since callers add everything
///    handed to them and their candidates satisfy all clauses they hold,
///    returning only *currently violated/unit* clauses never repeats work.
pub trait LazyAxiomSource {
    /// Inspects a candidate assignment and returns the axiom clauses it
    /// violates (or that are unit under it).
    ///
    /// `value(v)` is the candidate truth of variable `v` (`None` =
    /// unassigned). `delta` is `Some(lits)` when the caller knows exactly
    /// which literals were assigned since this source was last consulted —
    /// root-level unit propagation passes its implied-literal tail, so the
    /// source may restrict attention to axioms touching those variables.
    /// `None` means the candidate is a fresh total model and everything must
    /// be inspected.
    fn instantiate(
        &mut self,
        value: &dyn Fn(Var) -> Option<bool>,
        delta: Option<&[Lit]>,
    ) -> Vec<Vec<Lit>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;
    use crate::solver::{SolveResult, Solver};
    use crate::unit_propagation::UnitPropagator;

    /// A toy theory: "x0, x1, x2 may not all be true" plus "x0 → x3",
    /// instantiated lazily. Mirrors the shape of the order-axiom source
    /// (violation detection from the candidate assignment only).
    struct ToySource {
        calls: usize,
    }

    impl LazyAxiomSource for ToySource {
        fn instantiate(
            &mut self,
            value: &dyn Fn(Var) -> Option<bool>,
            _delta: Option<&[Lit]>,
        ) -> Vec<Vec<Lit>> {
            self.calls += 1;
            let mut out = Vec::new();
            // ¬x0 ∨ ¬x1 ∨ ¬x2: inject when no literal is true and at most
            // one variable is unassigned.
            let vals = [value(Var(0)), value(Var(1)), value(Var(2))];
            let trues = vals.iter().filter(|v| **v == Some(true)).count();
            let unassigned = vals.iter().filter(|v| v.is_none()).count();
            if trues + unassigned == 3 && unassigned <= 1 {
                out.push(vec![Var(0).negative(), Var(1).negative(), Var(2).negative()]);
            }
            // x0 → x3.
            if value(Var(0)) == Some(true) && value(Var(3)) != Some(true) {
                out.push(vec![Var(0).negative(), Var(3).positive()]);
            }
            out
        }
    }

    #[test]
    fn solver_cegar_loop_reaches_theory_model() {
        let mut s = Solver::new();
        for _ in 0..4 {
            s.new_var();
        }
        // Base formula pushes toward the violation: x0 ∧ x1.
        s.add_clause([Var(0).positive()]);
        s.add_clause([Var(1).positive()]);
        let mut src = ToySource { calls: 0 };
        assert_eq!(s.solve_lazy(&mut src), SolveResult::Sat);
        // The final model satisfies the full theory.
        assert_eq!(s.model_value(Var(2)), Some(false));
        assert_eq!(s.model_value(Var(3)), Some(true));
        assert!(src.calls >= 2, "at least one refinement round");
    }

    #[test]
    fn solver_cegar_loop_detects_theory_unsat() {
        let mut s = Solver::new();
        for _ in 0..4 {
            s.new_var();
        }
        for v in [0u32, 1, 2] {
            s.add_clause([Var(v).positive()]);
        }
        let mut src = ToySource { calls: 0 };
        assert_eq!(s.solve_lazy(&mut src), SolveResult::Unsat);
    }

    #[test]
    fn solver_lazy_respects_assumptions_and_stays_reusable() {
        let mut s = Solver::new();
        for _ in 0..4 {
            s.new_var();
        }
        let mut src = ToySource { calls: 0 };
        // Assume x0, x1: theory forces ¬x2 (and x3).
        let a = [Var(0).positive(), Var(1).positive()];
        assert_eq!(s.solve_lazy_with_assumptions(&a, &mut src), SolveResult::Sat);
        assert_eq!(s.model_value(Var(2)), Some(false));
        // Probing the forced literal is now Unsat under the assumptions.
        let b = [Var(0).positive(), Var(1).positive(), Var(2).positive()];
        assert_eq!(s.solve_lazy_with_assumptions(&b, &mut src), SolveResult::Unsat);
        // Without assumptions everything is satisfiable again.
        assert_eq!(s.solve_lazy(&mut src), SolveResult::Sat);
    }

    #[test]
    fn injected_axioms_survive_learnt_compaction() {
        let mut s = Solver::new();
        for _ in 0..4 {
            s.new_var();
        }
        s.add_clause([Var(0).positive()]);
        s.add_clause([Var(1).positive()]);
        let mut src = ToySource { calls: 0 };
        // Lazy probes materialise the cut and the implication.
        assert_eq!(
            s.solve_lazy_with_assumptions(&[Var(2).positive()], &mut src),
            SolveResult::Unsat
        );
        assert_eq!(
            s.solve_lazy_with_assumptions(&[Var(3).negative()], &mut src),
            SolveResult::Unsat
        );
        // A zero-cap sweep deletes every unlocked long learnt clause but
        // must not touch the injected problem clauses: the same probes stay
        // Unsat *without* consulting the source again.
        s.compact_learnts(0);
        assert_eq!(
            s.solve_with_assumptions(&[Var(2).positive()]),
            SolveResult::Unsat,
            "injected ¬x0∨¬x1∨¬x2 must survive the sweep"
        );
        assert_eq!(
            s.solve_with_assumptions(&[Var(3).negative()]),
            SolveResult::Unsat,
            "injected x0→x3 must survive the sweep"
        );
    }

    #[test]
    fn injected_axioms_survive_group_retraction() {
        // A guarded group forces x0; the lazy source then injects x0 → x3.
        // Retracting the group frees x0 but the axiom itself must remain:
        // re-asserting x0 by assumption still forces x3.
        let mut s = Solver::new();
        for _ in 0..4 {
            s.new_var();
        }
        let g = s.new_var();
        s.add_clause([g.negative(), Var(0).positive()]);
        s.add_clause([Var(1).negative()]); // keep the ToySource cut quiet
        s.set_persistent_assumptions(vec![g.positive()]);
        let mut src = ToySource { calls: 0 };
        assert_eq!(s.solve_lazy(&mut src), SolveResult::Sat);
        assert_eq!(s.model_value(Var(3)), Some(true));
        // Retract the group.
        s.set_persistent_assumptions(Vec::new());
        s.add_clause([g.negative()]);
        // x0 is free now…
        assert_eq!(
            s.solve_with_assumptions(&[Var(0).negative()]),
            SolveResult::Sat
        );
        // …but the injected implication is permanent.
        assert_eq!(
            s.solve_with_assumptions(&[Var(0).positive(), Var(3).negative()]),
            SolveResult::Unsat
        );
    }

    #[test]
    fn up_lazy_fixpoint_matches_eager_propagation() {
        // Base: x0, x1. Lazy theory: the ToySource cut + implication. The
        // combined fixpoint must derive ¬x2 and x3 exactly as if the axioms
        // had been present from the start.
        let mut cnf = Cnf::new();
        for _ in 0..4 {
            cnf.new_var();
        }
        cnf.add_clause([Var(0).positive()]);
        cnf.add_clause([Var(1).positive()]);
        let mut up = UnitPropagator::new(&cnf);
        let mut src = ToySource { calls: 0 };
        let implied = up
            .propagate_to_fixpoint_lazy(&mut src)
            .expect("consistent")
            .to_vec();
        assert!(implied.contains(&Var(2).negative()));
        assert!(implied.contains(&Var(3).positive()));
    }

    #[test]
    fn up_lazy_consults_only_the_delta() {
        struct DeltaRecorder {
            seen: Vec<Vec<Lit>>,
        }
        impl LazyAxiomSource for DeltaRecorder {
            fn instantiate(
                &mut self,
                _value: &dyn Fn(Var) -> Option<bool>,
                delta: Option<&[Lit]>,
            ) -> Vec<Vec<Lit>> {
                self.seen.push(delta.expect("UP always passes a delta").to_vec());
                Vec::new()
            }
        }
        let mut up = UnitPropagator::new(&Cnf::new());
        up.add_clause(&[Var(0).positive()]);
        let mut src = DeltaRecorder { seen: Vec::new() };
        up.propagate_to_fixpoint_lazy(&mut src).unwrap();
        assert_eq!(src.seen, vec![vec![Var(0).positive()]]);
        // A later run only reports the new assignments.
        up.add_clause(&[Var(1).positive()]);
        up.propagate_to_fixpoint_lazy(&mut src).unwrap();
        assert_eq!(src.seen.last().unwrap(), &vec![Var(1).positive()]);
    }

    #[test]
    fn up_lazy_redelivers_delta_after_retraction() {
        // Retraction resets the propagator's assignment, so the re-derived
        // fixpoint must be handed to the source from scratch — the
        // regression guard for axiom re-derivation after `retract_group`.
        struct Chain;
        impl LazyAxiomSource for Chain {
            fn instantiate(
                &mut self,
                value: &dyn Fn(Var) -> Option<bool>,
                _delta: Option<&[Lit]>,
            ) -> Vec<Vec<Lit>> {
                // Theory: x0 → x1.
                if value(Var(0)) == Some(true) && value(Var(1)) != Some(true) {
                    vec![vec![Var(0).negative(), Var(1).positive()]]
                } else {
                    Vec::new()
                }
            }
        }
        let mut up = UnitPropagator::new(&Cnf::new());
        up.add_clause_grouped(&[Var(0).positive()], 1);
        let implied = up.propagate_to_fixpoint_lazy(&mut Chain).unwrap();
        assert!(implied.contains(&Var(1).positive()));
        // Retract the group that seeded x0: both x0 and its lazily injected
        // consequence x1 must vanish…
        up.retract_group(1);
        let implied = up.propagate_to_fixpoint_lazy(&mut Chain).unwrap();
        assert!(implied.is_empty(), "retraction must clear lazy consequences");
        // …and a fresh permanent x0 re-derives x1 through the (surviving)
        // injected axiom — and through re-consultation of the source.
        up.add_clause(&[Var(0).positive()]);
        let implied = up.propagate_to_fixpoint_lazy(&mut Chain).unwrap();
        assert!(implied.contains(&Var(0).positive()));
        assert!(implied.contains(&Var(1).positive()));
    }
}
