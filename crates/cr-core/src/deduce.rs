//! `DeduceOrder` and `NaiveDeduce`: deriving implied currency orders
//! (Section V-B, step (2) of Fig. 4).

use std::collections::HashSet;

use cr_sat::{SolveResult, Solver, UnitPropagator};
use cr_types::{AttrId, ValueId};

use crate::encode::{EncodedSpec, OrderAtom, RecordingAxiomSource, TransientAxiomSource};

/// A deduced partial order `Od` at the value level: `Se |= Od`.
#[derive(Clone, Debug, Default)]
pub struct DeducedOrders {
    per_attr: Vec<HashSet<(ValueId, ValueId)>>,
}

impl DeducedOrders {
    /// Empty orders for `arity` attributes.
    pub fn empty(arity: usize) -> Self {
        DeducedOrders { per_attr: vec![HashSet::new(); arity] }
    }

    /// Records `lo ≺v_attr hi`.
    pub fn insert(&mut self, attr: AttrId, lo: ValueId, hi: ValueId) {
        self.per_attr[attr.index()].insert((lo, hi));
    }

    /// True iff `lo ≺v_attr hi` was deduced.
    pub fn contains(&self, attr: AttrId, lo: ValueId, hi: ValueId) -> bool {
        self.per_attr[attr.index()].contains(&(lo, hi))
    }

    /// All pairs deduced for `attr`.
    pub fn pairs(&self, attr: AttrId) -> impl Iterator<Item = (ValueId, ValueId)> + '_ {
        self.per_attr[attr.index()].iter().copied()
    }

    /// Total number of deduced pairs.
    pub fn size(&self) -> usize {
        self.per_attr.iter().map(HashSet::len).sum()
    }

    /// Values of `attr` not dominated by any other value — the candidate
    /// true values `V(attr)` of `DeriveVR` (Section V-C.2). Quantifies over
    /// the **live** values of the space: on ordinary encodings that is
    /// every interned value; on revisable encodings, values retired by
    /// upstream corrections are no possible current values and drop out.
    ///
    /// Single pass over the deduced pairs marking dominated values in a
    /// bitvec; the previous formulation probed the hash set `O(n²)` times
    /// per attribute.
    pub fn candidates(&self, enc: &EncodedSpec, attr: AttrId) -> Vec<ValueId> {
        let interner = enc.space().attr(attr);
        let mut dominated = vec![false; interner.len()];
        for (lo, _) in self.pairs(attr) {
            dominated[lo.index()] = true;
        }
        interner
            .live_ids()
            .filter(|v| !dominated[v.index()])
            .collect()
    }
}

/// `DeduceOrder` (Fig. 5): runs root-level unit propagation on `Φ(Se)`.
/// Every one-literal consequence is an implied order: a positive literal
/// `x^A_{a1,a2}` yields `a1 ≺v a2`; a negative one yields `a2 ≺v a1`
/// (sound because valid completions induce *total* value orders).
///
/// Lazy encodings propagate through
/// [`UnitPropagator::propagate_to_fixpoint_lazy`], interleaving on-demand
/// axiom instantiation with propagation; the derived set equals the eager
/// fixpoint (an eager step needs a clause that is unit under the current
/// assignment, and exactly those are instantiated).
///
/// Returns `None` if propagation derives a conflict (the specification is
/// invalid — callers should have checked `IsValid` first).
pub fn deduce_order(enc: &EncodedSpec) -> Option<DeducedOrders> {
    let mut up = enc.fresh_propagator();
    deduce_order_from(&mut up, enc)
}

/// `DeduceOrder` over a caller-owned [`UnitPropagator`] — the incremental
/// engine keeps one propagator alive across all rounds of a `resolve()`
/// call, feeding it the per-round clause deltas, so each round only
/// propagates the consequences of the new clauses. The propagator's
/// accumulated implied set covers all rounds so far.
///
/// Lazily instantiated axioms are handed to the propagator only (the
/// shared encoding is untouched); the engine uses
/// [`deduce_order_recording`] instead so injections reach its other
/// consumers through the CNF.
pub fn deduce_order_from(up: &mut UnitPropagator, enc: &EncodedSpec) -> Option<DeducedOrders> {
    let implied = if enc.options().is_lazy() {
        let mut source = TransientAxiomSource::new(enc);
        up.propagate_to_fixpoint_lazy(&mut source)?
    } else {
        up.propagate_to_fixpoint()?
    };
    Some(orders_from_implied(enc, implied))
}

/// [`deduce_order_from`] for [`AxiomMode::Lazy`](crate::encode::AxiomMode)
/// encodings with **recording** instantiation: axiom clauses pulled during
/// propagation are also appended to `enc`'s CNF, so the engine's warm
/// solver and the MaxSAT repair's borrowed hard base see them via the
/// ordinary clause-tail sync.
pub fn deduce_order_recording(
    up: &mut UnitPropagator,
    enc: &mut EncodedSpec,
) -> Option<DeducedOrders> {
    {
        let mut source = RecordingAxiomSource::new(enc);
        up.propagate_to_fixpoint_lazy(&mut source)?;
    }
    // Fixpoint already reached; this re-borrows the accumulated set.
    let implied = up.propagate_to_fixpoint().expect("fixpoint just reached");
    Some(orders_from_implied(enc, implied))
}

/// Maps implied order-atom literals to deduced value orders.
fn orders_from_implied(enc: &EncodedSpec, implied: &[cr_sat::Lit]) -> DeducedOrders {
    let mut od = DeducedOrders::empty(enc.space().arity());
    for &lit in implied {
        let Some(OrderAtom { attr, lo, hi }) = enc.order_atom(lit.var()) else {
            continue; // auxiliary variable (guard, not an order atom)
        };
        if lit.is_positive() {
            od.insert(attr, lo, hi);
        } else {
            od.insert(attr, hi, lo);
        }
    }
    od
}

/// `NaiveDeduce`: the complete (but expensive) variant — for every order
/// variable `x`, probe `Φ(Se) ∧ ¬x` and `Φ(Se) ∧ x` with the SAT solver;
/// an unsatisfiable probe means the opposite literal is implied.
///
/// Probes on lazy encodings run the CEGAR loop
/// ([`Solver::solve_lazy_with_assumptions`]): an `Unsat` probe is sound
/// (injected axioms are entailed by the eager formula) and a `Sat` probe is
/// exact (the final model satisfies the full theory), so the deduced set
/// equals the eager one. Axioms injected by one probe persist in the
/// solver and sharpen all later probes.
///
/// Returns `None` if `Φ(Se)` itself is unsatisfiable.
pub fn naive_deduce(enc: &EncodedSpec) -> Option<DeducedOrders> {
    let mut solver = enc.fresh_solver();
    naive_deduce_with(&mut solver, enc)
}

/// `NaiveDeduce` over a caller-owned incremental [`Solver`] (the engine
/// reuses the validity-check solver, so learnt clauses carry across both
/// phases and across rounds). Lazily instantiated axioms go to the solver
/// only; the engine uses [`naive_deduce_recording`] to persist them in the
/// encoding's CNF as well.
pub fn naive_deduce_with(solver: &mut Solver, enc: &EncodedSpec) -> Option<DeducedOrders> {
    let plan = probe_plan(enc);
    if enc.options().is_lazy() {
        let mut source = TransientAxiomSource::new(enc);
        naive_probe_loop(solver, enc.space().arity(), &plan, Some(&mut source))
    } else {
        naive_probe_loop(solver, enc.space().arity(), &plan, None)
    }
}

/// [`naive_deduce_with`] with **recording** lazy instantiation: probe-time
/// axiom injections are appended to `enc`'s CNF too (engine integration).
pub fn naive_deduce_recording(
    solver: &mut Solver,
    enc: &mut EncodedSpec,
) -> Option<DeducedOrders> {
    let plan = probe_plan(enc);
    let arity = enc.space().arity();
    let mut source = RecordingAxiomSource::new(enc);
    naive_probe_loop(solver, arity, &plan, Some(&mut source))
}

/// Probe order: descending CNF occurrence count — a static VSIDS-style
/// score. Heavily constrained variables are the most likely to be UNSAT
/// probes, and answering those first seeds the solver with learnt clauses
/// (and root-level units) that let later probes be skipped outright.
fn probe_plan(enc: &EncodedSpec) -> Vec<(cr_sat::Var, OrderAtom)> {
    let mut occurrences = vec![0u32; enc.cnf().num_vars() as usize];
    for clause in enc.cnf().clauses() {
        for lit in clause {
            occurrences[lit.var().index()] += 1;
        }
    }
    let mut probe_order: Vec<(cr_sat::Var, OrderAtom)> = enc.order_vars().collect();
    probe_order.sort_by_key(|(v, _)| std::cmp::Reverse(occurrences[v.index()]));
    probe_order
}

/// The probe loop shared by the transient/recording/eager entry points.
/// Any variable already fixed by root-level propagation is implied and
/// recorded without touching the solver.
fn naive_probe_loop(
    solver: &mut Solver,
    arity: usize,
    plan: &[(cr_sat::Var, OrderAtom)],
    mut source: Option<&mut dyn cr_sat::LazyAxiomSource>,
) -> Option<DeducedOrders> {
    let mut probe = |solver: &mut Solver, assumptions: &[cr_sat::Lit]| match source.as_deref_mut()
    {
        Some(src) => solver.solve_lazy_with_assumptions(assumptions, src),
        None => solver.solve_with_assumptions(assumptions),
    };
    if probe(solver, &[]) == SolveResult::Unsat {
        return None;
    }
    let mut od = DeducedOrders::empty(arity);
    for &(var, OrderAtom { attr, lo, hi }) in plan {
        // The symmetric variable's probes already decided this pair.
        if od.contains(attr, lo, hi) || od.contains(attr, hi, lo) {
            continue;
        }
        // Fixed at the root by propagation (original clauses or units
        // learnt from earlier probes): implied, no SAT call needed.
        match solver.root_value(var) {
            Some(true) => {
                od.insert(attr, lo, hi);
                continue;
            }
            Some(false) => {
                od.insert(attr, hi, lo);
                continue;
            }
            None => {}
        }
        if probe(solver, &[var.negative()]) == SolveResult::Unsat {
            od.insert(attr, lo, hi);
        } else if probe(solver, &[var.positive()]) == SolveResult::Unsat {
            od.insert(attr, hi, lo);
        }
    }
    Some(od)
}

/// The paper's `NaiveDeduce` exactly as described: a **fresh** SAT-solver
/// invocation per probe ("this approach … calls the SAT-solver |It|² times").
/// [`naive_deduce`] improves on it by keeping one incremental solver (learnt
/// clauses carry across probes); this variant exists for the Fig. 8(b)
/// ablation quantifying that difference.
pub fn naive_deduce_fresh(enc: &EncodedSpec) -> Option<DeducedOrders> {
    // One-shot solve over a fresh solver (lazy encodings run the CEGAR
    // loop against a throwaway source — the paper-faithful ablation pays
    // the instantiation again per solver, by design).
    let fresh_solve = |extra: Option<cr_sat::Lit>| {
        let mut solver = enc.fresh_solver();
        if let Some(lit) = extra {
            solver.add_clause([lit]);
        }
        if enc.options().is_lazy() {
            let mut source = TransientAxiomSource::new(enc);
            solver.solve_lazy(&mut source)
        } else {
            solver.solve()
        }
    };
    if fresh_solve(None) == SolveResult::Unsat {
        return None;
    }
    let mut od = DeducedOrders::empty(enc.space().arity());
    for (var, OrderAtom { attr, lo, hi }) in enc.order_vars() {
        if od.contains(attr, lo, hi) || od.contains(attr, hi, lo) {
            continue;
        }
        if fresh_solve(Some(var.negative())) == SolveResult::Unsat {
            od.insert(attr, lo, hi);
            continue;
        }
        if fresh_solve(Some(var.positive())) == SolveResult::Unsat {
            od.insert(attr, hi, lo);
        }
    }
    Some(od)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Specification;
    use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
    use cr_types::{EntityInstance, Schema, Tuple, Value};

    /// The George fragment of Example 9: DeduceOrder finds the kids and
    /// status orders plus the propagated job/AC/zip orders.
    fn george_like() -> Specification {
        let s = Schema::new("p", ["status", "job", "kids"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::str("sailor"), Value::int(0)]),
                Tuple::of([Value::str("retired"), Value::str("veteran"), Value::int(2)]),
                Tuple::of([Value::str("unemployed"), Value::str("n/a"), Value::int(2)]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1[kids] < t2[kids] -> t1 <[kids] t2").unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[job] t2").unwrap(),
        ];
        Specification::without_orders(e, sigma, vec![])
    }

    #[test]
    fn deduce_order_matches_example_9_prefix() {
        let spec = george_like();
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).expect("valid spec");
        let status = spec.schema().attr_id("status").unwrap();
        let job = spec.schema().attr_id("job").unwrap();
        let kids = spec.schema().attr_id("kids").unwrap();
        let sid = |v: &str| enc.value_id(status, &Value::str(v)).unwrap();
        let jid = |v: &str| enc.value_id(job, &Value::str(v)).unwrap();
        let kid = |v: i64| enc.value_id(kids, &Value::int(v)).unwrap();
        // (1) 0 ≺ 2 by phi-kids; (2) working ≺ retired by phi1;
        // (3) sailor ≺ veteran by (2) and phi5.
        assert!(od.contains(kids, kid(0), kid(2)));
        assert!(od.contains(status, sid("working"), sid("retired")));
        assert!(od.contains(job, jid("sailor"), jid("veteran")));
        // unemployed is not ordered against retired: no spurious orders.
        assert!(!od.contains(status, sid("unemployed"), sid("retired")));
        assert!(!od.contains(status, sid("retired"), sid("unemployed")));
    }

    #[test]
    fn naive_deduce_is_a_superset_of_deduce_order() {
        let spec = george_like();
        let enc = EncodedSpec::encode(&spec);
        let up = deduce_order(&enc).unwrap();
        let naive = naive_deduce(&enc).unwrap();
        for attr in spec.schema().attr_ids() {
            for (lo, hi) in up.pairs(attr) {
                assert!(
                    naive.contains(attr, lo, hi),
                    "UP deduced a pair NaiveDeduce missed"
                );
            }
        }
        assert!(naive.size() >= up.size());
    }

    #[test]
    fn candidates_shrink_with_deduction() {
        let spec = george_like();
        let enc = EncodedSpec::encode(&spec);
        let od = deduce_order(&enc).unwrap();
        let status = spec.schema().attr_id("status").unwrap();
        let kids = spec.schema().attr_id("kids").unwrap();
        // kids: only 2 remains (0 is dominated).
        let kids_cands = od.candidates(&enc, kids);
        assert_eq!(kids_cands.len(), 1);
        assert_eq!(enc.value(kids, kids_cands[0]), &Value::int(2));
        // status: retired and unemployed remain (working dominated).
        let scands: Vec<&Value> = od
            .candidates(&enc, status)
            .into_iter()
            .map(|v| enc.value(status, v))
            .collect();
        assert_eq!(scands.len(), 2);
        assert!(scands.contains(&&Value::str("retired")));
        assert!(scands.contains(&&Value::str("unemployed")));
    }

    #[test]
    fn naive_deduce_catches_disjunctive_inference_up_misses() {
        // Γ forces city=LA whichever AC value tops: with ACs {212, 213} and
        // both CFDs pointing at LA, NY ≺ LA holds in all completions, but no
        // unit clause exists for UP to fire.
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let gamma = [
            parse_cfds(&s, "AC = 212 -> city = \"LA\"").unwrap(),
            parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap(),
        ]
        .concat();
        let spec = Specification::without_orders(e, vec![], gamma);
        let enc = EncodedSpec::encode(&spec);
        let city = spec.schema().attr_id("city").unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        let naive = naive_deduce(&enc).unwrap();
        assert!(naive.contains(city, ny, la), "complete deduction finds NY ≺ LA");
        // Documented incompleteness of the heuristic:
        let up = deduce_order(&enc).unwrap();
        assert!(!up.contains(city, ny, la), "UP alone cannot branch");

        // Reproduction finding: with the paper-faithful encoding (no
        // totality clauses) even NaiveDeduce misses the fact, because Φ(Se)
        // then has models that are not completions.
        let paper = EncodedSpec::encode_with(
            &spec,
            crate::encode::EncodeOptions::paper_faithful(),
        );
        let ny_p = paper.value_id(city, &Value::str("NY")).unwrap();
        let la_p = paper.value_id(city, &Value::str("LA")).unwrap();
        let naive_paper = naive_deduce(&paper).unwrap();
        assert!(!naive_paper.contains(city, ny_p, la_p));
    }

    #[test]
    fn fresh_and_incremental_naive_agree() {
        let spec = george_like();
        let enc = EncodedSpec::encode(&spec);
        let a = naive_deduce(&enc).unwrap();
        let b = naive_deduce_fresh(&enc).unwrap();
        assert_eq!(a.size(), b.size());
        for attr in spec.schema().attr_ids() {
            for (lo, hi) in a.pairs(attr) {
                assert!(b.contains(attr, lo, hi));
            }
        }
    }

    #[test]
    fn conflict_returns_none() {
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![Tuple::of([Value::int(1)]), Tuple::of([Value::int(2)])],
        )
        .unwrap();
        let mut orders = crate::orders::PartialOrders::empty(1);
        orders.add(AttrId(0), cr_types::TupleId(0), cr_types::TupleId(1));
        orders.add(AttrId(0), cr_types::TupleId(1), cr_types::TupleId(0));
        let spec = Specification::new(e, orders, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        assert!(deduce_order(&enc).is_none());
        assert!(naive_deduce(&enc).is_none());
    }
}
