//! Deadline-aware execution budgets for serving-layer entry points.
//!
//! The serving layer ([`cr-server`]) stamps every request with an absolute
//! deadline measured in logical server **ticks** (no wall clock anywhere —
//! the harness advances time explicitly, so timeout behaviour is
//! deterministic and replayable under seeded test). A multi-phase request
//! (e.g. `TrueValues` = is-valid → deduce → extract, `Suggest` adds a
//! repair pass) threads one [`PhaseDeadline`] through its phases: each
//! phase first *checks* the budget and then *charges* its cost, so a
//! request can expire mid-flight between phases instead of only at queue
//! boundaries. The session entry points that consume these budgets are
//! [`ResolutionSession::is_valid_within`] and friends.
//!
//! [`cr-server`]: https://docs.rs/cr-server
//! [`ResolutionSession::is_valid_within`]: crate::ingest::ResolutionSession::is_valid_within

/// A request ran past its deadline. Carries the tick the budget expired at
/// and how far past it the violating phase would have landed, so callers
/// can report lateness honestly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineExceeded {
    /// The absolute deadline tick the request was admitted with.
    pub deadline: u64,
    /// The virtual tick the request had reached when the check failed.
    pub now: u64,
}

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadline exceeded: at tick {} with deadline {} (late by {})",
            self.now,
            self.deadline,
            self.now.saturating_sub(self.deadline)
        )
    }
}

impl std::error::Error for DeadlineExceeded {}

/// A phase-charged deadline budget.
///
/// `now` starts at the tick the request was dequeued and advances by
/// `cost_per_phase` each time a phase completes. A phase whose *start*
/// tick is already past `deadline` fails with [`DeadlineExceeded`]; work
/// inside a phase is never interrupted (phases are the cancellation
/// granularity, matching the engine's atomic solve/deduce/extract steps).
#[derive(Clone, Copy, Debug)]
pub struct PhaseDeadline {
    now: u64,
    deadline: u64,
    cost_per_phase: u64,
}

impl PhaseDeadline {
    /// A budget dequeued at `now` that expires after tick `deadline`,
    /// charging `cost_per_phase` ticks per completed phase.
    pub fn new(now: u64, deadline: u64, cost_per_phase: u64) -> Self {
        Self { now, deadline, cost_per_phase }
    }

    /// An effectively unbounded budget (deadline `u64::MAX`), for callers
    /// that want the `*_within` entry points without a timeout.
    pub fn unbounded() -> Self {
        Self { now: 0, deadline: u64::MAX, cost_per_phase: 0 }
    }

    /// The virtual tick the budget has advanced to.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The absolute deadline tick.
    pub fn deadline(&self) -> u64 {
        self.deadline
    }

    /// Fails iff the budget is already spent (`now > deadline`). Called at
    /// every phase boundary *before* the phase runs.
    pub fn check(&self) -> Result<(), DeadlineExceeded> {
        if self.now > self.deadline {
            Err(DeadlineExceeded { deadline: self.deadline, now: self.now })
        } else {
            Ok(())
        }
    }

    /// Charges one completed phase, advancing `now`.
    pub fn charge(&mut self) {
        self.now = self.now.saturating_add(self.cost_per_phase);
    }

    /// `check` + `charge` in phase order: admit the phase against the
    /// current tick, then advance past it. Returns the error of the
    /// *check*, i.e. the phase did not run if this fails.
    pub fn enter_phase(&mut self) -> Result<(), DeadlineExceeded> {
        self.check()?;
        self.charge();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_expires_between_phases() {
        // Dequeued at tick 10, deadline 12, 2 ticks/phase: phases start at
        // 10, 12, 14 — the third phase must fail.
        let mut b = PhaseDeadline::new(10, 12, 2);
        assert!(b.enter_phase().is_ok());
        assert!(b.enter_phase().is_ok());
        let err = b.enter_phase().unwrap_err();
        assert_eq!(err, DeadlineExceeded { deadline: 12, now: 14 });
        assert_eq!(err.to_string(), "deadline exceeded: at tick 14 with deadline 12 (late by 2)");
    }

    #[test]
    fn already_late_fails_immediately() {
        let mut b = PhaseDeadline::new(9, 3, 1);
        assert!(b.enter_phase().is_err());
    }

    #[test]
    fn unbounded_never_expires() {
        let mut b = PhaseDeadline::unbounded();
        for _ in 0..1000 {
            assert!(b.enter_phase().is_ok());
        }
    }
}
