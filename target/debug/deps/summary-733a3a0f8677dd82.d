/root/repo/target/debug/deps/summary-733a3a0f8677dd82.d: crates/cr-bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-733a3a0f8677dd82: crates/cr-bench/src/bin/summary.rs

crates/cr-bench/src/bin/summary.rs:
