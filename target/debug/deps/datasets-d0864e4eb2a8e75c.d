/root/repo/target/debug/deps/datasets-d0864e4eb2a8e75c.d: tests/datasets.rs Cargo.toml

/root/repo/target/debug/deps/libdatasets-d0864e4eb2a8e75c.rmeta: tests/datasets.rs Cargo.toml

tests/datasets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
