/root/repo/target/debug/examples/nba_roster-18a00aea4c8d443f.d: examples/nba_roster.rs Cargo.toml

/root/repo/target/debug/examples/libnba_roster-18a00aea4c8d443f.rmeta: examples/nba_roster.rs Cargo.toml

examples/nba_roster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
