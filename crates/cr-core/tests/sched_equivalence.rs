//! Differential tests for the sharded work-stealing scheduler
//! (`cr_core::sched`): resolution outcomes must be *identical* to the
//! single-threaded baseline at every worker count, placement, batching
//! and splitting configuration — scheduling must only move work between
//! threads, never change it.

use cr_core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use cr_core::sched::{resolve_batch, resolve_stream, Placement, SchedulerConfig};
use cr_core::{ResolutionOutcome, Specification};
use cr_data::gen::{PowerLawConfig, PowerLawDataset};
use proptest::prelude::*;
use std::sync::Mutex;

fn dataset(seed: u64, entities: usize, giants: usize) -> PowerLawDataset {
    PowerLawDataset::new(&PowerLawConfig {
        seed,
        entities,
        max_tuples: 96,
        giants,
        ..Default::default()
    })
}

fn serial_outcomes(
    resolver: &Resolver,
    ds: &PowerLawDataset,
    specs: &[Specification],
) -> Vec<ResolutionOutcome> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut oracle = GroundTruthOracle::with_cap(ds.truth(i).clone(), 1);
            resolver.resolve(spec, &mut oracle)
        })
        .collect()
}

fn assert_outcomes_equal(label: &str, serial: &[ResolutionOutcome], other: &[ResolutionOutcome]) {
    assert_eq!(serial.len(), other.len(), "{label}: length");
    for (i, (s, o)) in serial.iter().zip(other).enumerate() {
        assert_eq!(s.valid, o.valid, "{label}: entity {i} validity diverged");
        assert_eq!(s.resolved, o.resolved, "{label}: entity {i} resolution diverged");
        assert_eq!(
            s.interactions, o.interactions,
            "{label}: entity {i} interaction count diverged"
        );
        assert_eq!(
            s.rounds.len(),
            o.rounds.len(),
            "{label}: entity {i} round count diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeded power-law batches across worker widths and both placements:
    /// every configuration must reproduce the single-threaded outcomes.
    #[test]
    fn width_sweep_matches_serial(seed in 0u64..200, inc_bit in 0u32..2) {
        let incremental = inc_bit == 1;
        let ds = dataset(seed, 24, 1);
        let specs = ds.specs();
        let resolver = Resolver::new(ResolutionConfig { incremental, ..Default::default() });
        let serial = serial_outcomes(&resolver, &ds, &specs);
        let make_oracle = |i: usize| GroundTruthOracle::with_cap(ds.truth(i).clone(), 1);
        for workers in [1usize, 2, 4, 8] {
            for placement in [Placement::RoundRobin, Placement::Skewed] {
                let config = SchedulerConfig {
                    placement,
                    // Low thresholds so batching AND splitting genuinely
                    // engage on these small test datasets.
                    batch_max_entities: 4,
                    large_tuple_threshold: 12,
                    split_tuple_threshold: 48,
                    ..SchedulerConfig::with_workers(workers)
                };
                let (outcomes, telemetry) = resolve_batch(&resolver, &specs, &make_oracle, &config);
                let label = format!("workers={workers} placement={placement:?} incremental={incremental}");
                assert_outcomes_equal(&label, &serial, &outcomes);
                prop_assert_eq!(telemetry.workers, workers.min(specs.len()));
                prop_assert!(telemetry.tasks > 0);
            }
        }
    }
}

/// One pinned oversized entity with a low split threshold: the scheduler
/// must actually split it (deterministic task construction ⇒ exact
/// telemetry), and the split-instantiated encoding must resolve to the
/// serial outcome.
#[test]
fn split_tasks_reproduce_serial_outcomes() {
    let ds = dataset(77, 6, 1);
    assert!(ds.sizes()[0] >= 96, "giant pinned to max_tuples");
    let specs = ds.specs();
    let resolver = Resolver::new(ResolutionConfig::default());
    assert!(resolver.config().incremental, "split path needs the incremental engine");
    let serial = serial_outcomes(&resolver, &ds, &specs);
    let make_oracle = |i: usize| GroundTruthOracle::with_cap(ds.truth(i).clone(), 1);
    let config = SchedulerConfig {
        split_tuple_threshold: 90,
        split_max_subtasks: 3,
        ..SchedulerConfig::with_workers(4)
    };
    let (outcomes, telemetry) = resolve_batch(&resolver, &specs, &make_oracle, &config);
    assert_outcomes_equal("split", &serial, &outcomes);
    assert_eq!(telemetry.split_entities, 1, "exactly the giant splits");
    assert!(
        (2..=3).contains(&telemetry.split_subtasks),
        "subtasks bounded by config, got {}",
        telemetry.split_subtasks
    );

    // The same batch with splitting disabled also agrees — splitting is
    // purely a scheduling decision.
    let no_split = SchedulerConfig {
        split_tuple_threshold: usize::MAX,
        ..SchedulerConfig::with_workers(4)
    };
    let (outcomes2, telemetry2) = resolve_batch(&resolver, &specs, &make_oracle, &no_split);
    assert_outcomes_equal("no-split", &serial, &outcomes2);
    assert_eq!(telemetry2.split_entities, 0);
}

/// Small entities with batching engaged: batch telemetry is deterministic
/// and the fused tasks resolve identically.
#[test]
fn batched_small_entities_match_serial() {
    let ds = PowerLawDataset::new(&PowerLawConfig {
        seed: 5,
        entities: 30,
        min_tuples: 2,
        max_tuples: 6, // everything is "small"
        ..Default::default()
    });
    let specs = ds.specs();
    let resolver = Resolver::new(ResolutionConfig::default());
    let serial = serial_outcomes(&resolver, &ds, &specs);
    let make_oracle = |i: usize| GroundTruthOracle::with_cap(ds.truth(i).clone(), 1);
    let config = SchedulerConfig {
        batch_max_entities: 8,
        large_tuple_threshold: 100,
        ..SchedulerConfig::with_workers(3)
    };
    let (outcomes, telemetry) = resolve_batch(&resolver, &specs, &make_oracle, &config);
    assert_outcomes_equal("batched", &serial, &outcomes);
    // 30 small entities at batch size 8 → deterministic 4 run tasks.
    assert_eq!(telemetry.tasks, 4);
    assert_eq!(telemetry.batch_tasks, 4);
    assert_eq!(telemetry.batched_entities, 30);
    assert_eq!(telemetry.max_batch, 8);
}

/// Streaming resolution through the bounded ingestion queue: outcomes
/// match serial, occupancy respects the cap, and nothing deadlocks even
/// with a tiny queue.
#[test]
fn stream_matches_serial_and_respects_queue_cap() {
    let ds = dataset(13, 40, 0);
    let specs = ds.specs();
    let resolver = Resolver::new(ResolutionConfig::default());
    let serial = serial_outcomes(&resolver, &ds, &specs);
    let make_oracle = |i: usize| GroundTruthOracle::with_cap(ds.truth(i).clone(), 1);
    for (workers, cap) in [(1usize, 1usize), (2, 2), (4, 8)] {
        let config = SchedulerConfig {
            queue_cap: cap,
            ..SchedulerConfig::with_workers(workers)
        };
        let slots: Vec<Mutex<Option<ResolutionOutcome>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        let telemetry = resolve_stream(
            &resolver,
            ds.stream(),
            &make_oracle,
            &config,
            &|i, outcome| {
                let prev = slots[i].lock().unwrap().replace(outcome);
                assert!(prev.is_none(), "entity {i} resolved twice");
            },
        );
        let outcomes: Vec<ResolutionOutcome> = slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("every entity resolved"))
            .collect();
        assert_outcomes_equal(&format!("stream workers={workers} cap={cap}"), &serial, &outcomes);
        assert_eq!(telemetry.tasks, specs.len());
        assert!(
            telemetry.queue_high_water <= cap,
            "occupancy {} exceeded cap {cap}",
            telemetry.queue_high_water
        );
    }
}

/// The public entry point (`resolve_all_parallel_with_threads`) rides the
/// scheduler and stays width-invariant, including degenerate widths.
#[test]
fn public_parallel_entry_point_is_width_invariant() {
    let ds = dataset(29, 12, 0);
    let specs = ds.specs();
    let resolver = Resolver::new(ResolutionConfig::default());
    let serial = serial_outcomes(&resolver, &ds, &specs);
    for threads in [0usize, 1, 3, 16] {
        let outcomes = resolver.resolve_all_parallel_with_threads(
            &specs,
            |i| GroundTruthOracle::with_cap(ds.truth(i).clone(), 1),
            threads,
        );
        assert_outcomes_equal(&format!("threads={threads}"), &serial, &outcomes);
    }
    let empty: Vec<Specification> = Vec::new();
    let outcomes = resolver.resolve_all_parallel_with_threads(
        &empty,
        |_| GroundTruthOracle::with_cap(ds.truth(0).clone(), 1),
        4,
    );
    assert!(outcomes.is_empty());
}
