//! Entity instances: sets of tuples pertaining to one real-world entity.

use std::fmt;
use std::sync::Arc;

use crate::error::TypesError;
use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Index of a tuple within an [`EntityInstance`] (dense, zero based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The tuple position as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An entity instance `Ie`: tuples of one schema, all describing the same
/// real-world entity (typically produced upstream by record linkage).
///
/// Entity instances are small relative to a database — the NBA dataset in the
/// paper averages 27 tuples per entity — so the representation favours simple
/// dense storage and cheap iteration.
#[derive(Clone)]
pub struct EntityInstance {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl EntityInstance {
    /// Builds an entity instance, checking every tuple's arity.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Result<Self, TypesError> {
        for t in &tuples {
            if t.arity() != schema.arity() {
                return Err(TypesError::ArityMismatch {
                    expected: schema.arity(),
                    got: t.arity(),
                });
            }
        }
        Ok(EntityInstance { schema, tuples })
    }

    /// An empty instance over `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        EntityInstance { schema, tuples: Vec::new() }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples, `|Ie|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the instance has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple with the given id.
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.index()]
    }

    /// All tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterates over `(TupleId, &Tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (TupleId(i as u32), t))
    }

    /// All tuple ids.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> + 'static {
        (0..self.tuples.len() as u32).map(TupleId)
    }

    /// Appends a tuple, returning its id. Used when extending a specification
    /// with user input (`Se ⊕ Ot`, Section III Remark (1)).
    pub fn push(&mut self, tuple: Tuple) -> Result<TupleId, TypesError> {
        if tuple.arity() != self.schema.arity() {
            return Err(TypesError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        let id = TupleId(self.tuples.len() as u32);
        self.tuples.push(tuple);
        Ok(id)
    }

    /// The *active domain* `adom(Ie.Ai)`: distinct non-null values of
    /// attribute `attr` occurring in the instance, in canonical order.
    ///
    /// Nulls are excluded: a null never becomes a "most current" value (it is
    /// ranked lowest in every currency order), and the paper's encoder builds
    /// `≺v` over actual data values.
    pub fn active_domain(&self, attr: AttrId) -> Vec<Value> {
        let mut vals: Vec<Value> = self
            .tuples
            .iter()
            .map(|t| t.get(attr))
            .filter(|v| !v.is_null())
            .cloned()
            .collect();
        vals.sort();
        vals.dedup();
        vals
    }

    /// True iff `value` occurs (non-null) in attribute `attr`.
    pub fn adom_contains(&self, attr: AttrId, value: &Value) -> bool {
        !value.is_null() && self.tuples.iter().any(|t| t.get(attr) == value)
    }

    /// Tuples whose `attr` value equals `value`.
    pub fn tuples_with_value(&self, attr: AttrId, value: &Value) -> Vec<TupleId> {
        self.iter()
            .filter(|(_, t)| t.get(attr) == value)
            .map(|(id, _)| id)
            .collect()
    }

    /// Attributes on which the tuples disagree (carry ≥ 2 distinct values,
    /// counting null as a value). These are the *conflicting* attributes
    /// conflict resolution must settle.
    pub fn conflicting_attrs(&self) -> Vec<AttrId> {
        self.schema
            .attr_ids()
            .filter(|&a| {
                let mut it = self.tuples.iter().map(|t| t.get(a));
                match it.next() {
                    None => false,
                    Some(first) => it.any(|v| v != first),
                }
            })
            .collect()
    }
}

impl fmt::Debug for EntityInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EntityInstance over {} ({} tuples):", self.schema, self.tuples.len())?;
        for (id, t) in self.iter() {
            writeln!(f, "  r{}: {}", id.0, t.display(&self.schema))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> EntityInstance {
        let schema = Schema::new("person", ["name", "status", "kids"]).unwrap();
        let tuples = vec![
            Tuple::of([Value::str("Edith"), Value::str("working"), Value::int(0)]),
            Tuple::of([Value::str("Edith"), Value::str("retired"), Value::int(3)]),
            Tuple::of([Value::str("Edith"), Value::str("deceased"), Value::Null]),
        ];
        EntityInstance::new(schema, tuples).unwrap()
    }

    #[test]
    fn active_domain_excludes_null_and_dedups() {
        let e = instance();
        let kids = e.schema().attr_id("kids").unwrap();
        assert_eq!(e.active_domain(kids), vec![Value::int(0), Value::int(3)]);
        let name = e.schema().attr_id("name").unwrap();
        assert_eq!(e.active_domain(name), vec![Value::str("Edith")]);
    }

    #[test]
    fn conflicting_attrs_detects_disagreement() {
        let e = instance();
        let names: Vec<&str> = e
            .conflicting_attrs()
            .iter()
            .map(|&a| e.schema().attr_name(a))
            .collect();
        assert_eq!(names, vec!["status", "kids"]);
    }

    #[test]
    fn push_appends_with_fresh_id() {
        let mut e = instance();
        let id = e
            .push(Tuple::of([Value::str("Edith"), Value::str("deceased"), Value::int(3)]))
            .unwrap();
        assert_eq!(id, TupleId(3));
        assert_eq!(e.len(), 4);
        assert!(e.push(Tuple::of([Value::Null])).is_err());
    }

    #[test]
    fn tuples_with_value_finds_matches() {
        let e = instance();
        let status = e.schema().attr_id("status").unwrap();
        assert_eq!(
            e.tuples_with_value(status, &Value::str("retired")),
            vec![TupleId(1)]
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let schema = Schema::new("r", ["a", "b"]).unwrap();
        let bad = vec![Tuple::of([Value::int(1)])];
        assert!(EntityInstance::new(schema, bad).is_err());
    }
}
