//! Reduction of a specification to CNF (Section V-A).
//!
//! `Instantiation(Se)` expresses the currency orders, currency constraints
//! and constant CFDs of a specification as *instance constraints* over the
//! strict value orders `≺v_Ai`; `ConvertToCNF` then maps each value-order
//! atom `a1 ≺v_Ai a2` to a Boolean variable `x^Ai_{a1,a2}` and each
//! implication to a clause, adding transitivity and asymmetry axioms so that
//! satisfying assignments correspond to valid completions (Lemma 5).
//!
//! ## Guard-literal clause groups
//!
//! With [`EncodeOptions::guarded_cfds`] each CFD's instance constraints
//! form a retractable clause group, which is what lets the incremental
//! resolution engine absorb out-of-domain user answers without ever
//! rebuilding the encoding. The full emission → activation → retraction
//! lifecycle is documented in the [`cnf`] module docs; the engine side
//! lives in `framework`'s module docs.
//!
//! ## Semantics notes (see DESIGN.md §4)
//!
//! * The value space of attribute `Ai` is its active domain plus `null` when
//!   null occurs; nulls are *strict bottoms* (unit clauses `null ≺v a`),
//!   reflecting "an attribute with value missing is ranked the lowest".
//! * A premise order atom instantiated on equal values is `false` (a value
//!   is never strictly more current than itself) — the instance is dropped.
//! * A conclusion atom on equal values is vacuously satisfied — the instance
//!   is skipped (required for Example 2 of the paper to type-check: ϕ5 fires
//!   on Edith's (r2, r3) whose jobs are both `n/a`).
//! * A CFD whose LHS pattern constant is outside the active domain can never
//!   fire and is skipped; one whose RHS constant is outside the active
//!   domain forces `¬ωX` (the current tuple draws its values from `Ie`).

mod cnf;
mod omega;

pub use cnf::{EncodedSpec, ExtendOutcome, GroupId};
pub use omega::{Conclusion, InstanceConstraint, OrderAtom, Origin};

use cr_types::{AttrId, ValueId};

/// Options controlling CNF generation.
#[derive(Clone, Copy, Debug)]
pub struct EncodeOptions {
    /// Generate transitivity clauses for *all* value triples of every
    /// attribute (the paper's `O(|It|³)` encoding). When `false`, triples
    /// are restricted to values that occur in at least one instance
    /// constraint — an ablation that preserves unit-propagation behaviour on
    /// sparse instances while shrinking the CNF.
    pub full_transitivity: bool,
    /// Add totality clauses `x^A_{a,b} ∨ x^A_{b,a}` for every value pair.
    ///
    /// **Reproduction finding.** The paper's encoding has transitivity and
    /// asymmetry but *not* totality, so satisfying assignments of `Φ(Se)`
    /// are partial orders that may not extend to a valid completion, and
    /// literals can hold in every valid completion without being implied by
    /// `Φ(Se)` (Lemmas 5/6 break on corner cases — see
    /// `encoding_gaps::paper_encoding_misses_disjunctive_facts` and
    /// DESIGN.md §4). With totality the models of `Φ(Se)` are exactly the
    /// value-level completions. Default `true`; set `false` for the
    /// paper-faithful ablation.
    pub totality: bool,
    /// Emit every CFD's instance constraints as a *guard-literal clause
    /// group* (see the guard-group lifecycle in the [`cnf`] module docs).
    /// Guarded CFD clauses carry an extra `¬g` literal and are only active
    /// while `g` is asserted — via [`EncodedSpec::active_guards`] units in
    /// fresh solvers, or as persistent assumptions on the incremental
    /// engine's warm solver — which makes them *retractable*: when a user
    /// answer introduces a new value, the affected CFDs' stale groups are
    /// withdrawn and re-emitted over the grown value space instead of
    /// rebuilding the whole encoding. Default `false` (one-shot encodings
    /// never retract and skip the guard plumbing); the incremental
    /// resolution engine turns it on.
    pub guarded_cfds: bool,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions { full_transitivity: true, totality: true, guarded_cfds: false }
    }
}

impl EncodeOptions {
    /// The encoding exactly as described in Section V-A of the paper
    /// (no totality clauses).
    pub fn paper_faithful() -> Self {
        EncodeOptions { totality: false, ..Default::default() }
    }

    /// These options with guarded CFD emission enabled.
    pub fn with_guarded_cfds(self) -> Self {
        EncodeOptions { guarded_cfds: true, ..self }
    }
}

/// A value-order literal `(attr, lo, hi)` read as `lo ≺v_attr hi`, plus a
/// sign for deduced results.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ValuePair {
    /// The attribute whose order is constrained.
    pub attr: AttrId,
    /// The less-current value.
    pub lo: ValueId,
    /// The more-current value.
    pub hi: ValueId,
}
