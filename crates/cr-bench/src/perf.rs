//! Perf-regression gate: comparing a criterion JSONL run against a
//! committed baseline.
//!
//! The criterion shim appends one record per finished benchmark to the
//! file named by `CRITERION_JSON` (see `shims/criterion`). This module
//! parses those records (hand-rolled — no serde in the container) and
//! compares a fresh run against `perf/baseline.jsonl`, failing when a
//! benchmark's median regresses beyond the tolerance. The CI container
//! is a noisy single shared core, so the default tolerance is wide (a
//! real regression from an algorithmic change is typically 10×+; run-to-
//! run noise stays well inside 5×) and sub-floor medians are ignored
//! entirely — microsecond benches are pure jitter there.
//!
//! Refreshing the baseline after an intentional perf change:
//!
//! ```text
//! rm -f target/criterion.jsonl
//! CRITERION_JSON=target/criterion.jsonl CRITERION_SAMPLES=10 \
//!     cargo bench --release -p cr-bench
//! cargo run --release -p cr-bench --bin perf_gate -- bless \
//!     --current target/criterion.jsonl
//! ```

use std::fmt;

/// One benchmark measurement (a parsed JSONL record).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// `group/bench` identifier.
    pub id: String,
    /// Median wall-clock nanoseconds.
    pub median_ns: u64,
    /// Mean wall-clock nanoseconds.
    pub mean_ns: u64,
    /// Samples behind the statistics.
    pub samples: u64,
}

/// Extracts a JSON string field from a single-line record.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts a JSON integer field from a single-line record.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Parses criterion-shim JSONL. Repeated ids (re-runs appended to the
/// same file) keep the **last** record. Malformed lines are errors — a
/// truncated baseline should fail loudly, not silently shrink coverage.
pub fn parse_jsonl(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut records: Vec<BenchRecord> = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rec = (|| {
            Some(BenchRecord {
                id: field_str(line, "id")?,
                median_ns: field_u64(line, "median_ns")?,
                mean_ns: field_u64(line, "mean_ns")?,
                samples: field_u64(line, "samples")?,
            })
        })()
        .ok_or_else(|| format!("line {}: malformed record: {line}", n + 1))?;
        if let Some(existing) = records.iter_mut().find(|r| r.id == rec.id) {
            *existing = rec;
        } else {
            records.push(rec);
        }
    }
    Ok(records)
}

/// Renders records back to JSONL (used by `bless`).
pub fn to_jsonl(records: &[BenchRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"median_ns\":{},\"mean_ns\":{},\"samples\":{}}}\n",
            r.id, r.median_ns, r.mean_ns, r.samples
        ));
    }
    out
}

/// Gate thresholds.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// A benchmark fails when `current > baseline * tolerance` (and both
    /// exceed the floor). Wide by default — see the module docs.
    pub tolerance: f64,
    /// Medians below this are ignored entirely (noise floor, ns).
    pub floor_ns: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { tolerance: 5.0, floor_ns: 200_000 }
    }
}

/// Per-benchmark verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or under the noise floor).
    Ok,
    /// Median regressed beyond the tolerance.
    Regressed,
    /// In the baseline but absent from the current run.
    Missing,
    /// New benchmark with no baseline entry (needs a bless).
    New,
}

/// One row of the comparison report.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Benchmark id.
    pub id: String,
    /// Baseline median (ns), when present.
    pub baseline_ns: Option<u64>,
    /// Current median (ns), when present.
    pub current_ns: Option<u64>,
    /// The verdict.
    pub verdict: Verdict,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |ns: Option<u64>| match ns {
            Some(ns) => format!("{:.3}ms", ns as f64 / 1e6),
            None => "-".to_string(),
        };
        let ratio = match (self.baseline_ns, self.current_ns) {
            (Some(b), Some(c)) if b > 0 => format!("{:.2}x", c as f64 / b as f64),
            _ => "-".to_string(),
        };
        write!(
            f,
            "{:<40} base {:>10}  now {:>10}  {:>7}  {:?}",
            self.id,
            show(self.baseline_ns),
            show(self.current_ns),
            ratio,
            self.verdict
        )
    }
}

/// Compares a current run against the baseline. The gate **fails** on
/// any `Regressed` or `Missing` verdict; `New` benchmarks pass (they
/// only gate once blessed into the baseline).
pub fn compare(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    cfg: &GateConfig,
) -> (Vec<Comparison>, bool) {
    let mut rows = Vec::new();
    let mut pass = true;
    for b in baseline {
        let row = match current.iter().find(|c| c.id == b.id) {
            None => {
                pass = false;
                Comparison {
                    id: b.id.clone(),
                    baseline_ns: Some(b.median_ns),
                    current_ns: None,
                    verdict: Verdict::Missing,
                }
            }
            Some(c) => {
                let below_floor = b.median_ns < cfg.floor_ns && c.median_ns < cfg.floor_ns;
                let regressed =
                    !below_floor && (c.median_ns as f64) > (b.median_ns as f64) * cfg.tolerance;
                if regressed {
                    pass = false;
                }
                Comparison {
                    id: b.id.clone(),
                    baseline_ns: Some(b.median_ns),
                    current_ns: Some(c.median_ns),
                    verdict: if regressed { Verdict::Regressed } else { Verdict::Ok },
                }
            }
        };
        rows.push(row);
    }
    for c in current {
        if !baseline.iter().any(|b| b.id == c.id) {
            rows.push(Comparison {
                id: c.id.clone(),
                baseline_ns: None,
                current_ns: Some(c.median_ns),
                verdict: Verdict::New,
            });
        }
    }
    (rows, pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, median: u64) -> BenchRecord {
        BenchRecord { id: id.into(), median_ns: median, mean_ns: median, samples: 10 }
    }

    #[test]
    fn parse_roundtrips_and_keeps_last_duplicate() {
        let text = "\
{\"id\":\"resolve/nba/27\",\"median_ns\":1200000,\"mean_ns\":1300000,\"samples\":15}
{\"id\":\"sched/batch/2\",\"median_ns\":900000,\"mean_ns\":910000,\"samples\":10}
{\"id\":\"resolve/nba/27\",\"median_ns\":1100000,\"mean_ns\":1250000,\"samples\":15}
";
        let records = parse_jsonl(text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].median_ns, 1_100_000, "last duplicate wins");
        let reparsed = parse_jsonl(&to_jsonl(&records)).unwrap();
        assert_eq!(reparsed, records);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse_jsonl("{\"id\":\"x\"}").is_err());
        assert!(parse_jsonl("not json at all").is_err());
        assert!(parse_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn identical_runs_pass() {
        let base = vec![rec("a/1", 1_000_000), rec("b/2", 5_000_000)];
        let (rows, pass) = compare(&base, &base, &GateConfig::default());
        assert!(pass);
        assert!(rows.iter().all(|r| r.verdict == Verdict::Ok));
    }

    #[test]
    fn out_of_tolerance_regressions_fail() {
        let base = vec![rec("a/1", 1_000_000)];
        let current = vec![rec("a/1", 6_000_001)];
        let (rows, pass) = compare(&base, &current, &GateConfig::default());
        assert!(!pass);
        assert_eq!(rows[0].verdict, Verdict::Regressed);
        // Within 5x passes.
        let current = vec![rec("a/1", 4_900_000)];
        let (_, pass) = compare(&base, &current, &GateConfig::default());
        assert!(pass);
    }

    #[test]
    fn noise_floor_mutes_micro_benches() {
        let base = vec![rec("tiny/1", 10_000)];
        let current = vec![rec("tiny/1", 150_000)]; // 15x but sub-floor
        let (rows, pass) = compare(&base, &current, &GateConfig::default());
        assert!(pass);
        assert_eq!(rows[0].verdict, Verdict::Ok);
        // Crossing the floor re-arms the gate.
        let current = vec![rec("tiny/1", 900_000)];
        let (_, pass) = compare(&base, &current, &GateConfig::default());
        assert!(!pass);
    }

    #[test]
    fn missing_fails_and_new_passes() {
        let base = vec![rec("gone/1", 1_000_000)];
        let current = vec![rec("fresh/1", 1_000_000)];
        let (rows, pass) = compare(&base, &current, &GateConfig::default());
        assert!(!pass, "a vanished benchmark is a coverage regression");
        assert!(rows.iter().any(|r| r.verdict == Verdict::Missing));
        assert!(rows.iter().any(|r| r.verdict == Verdict::New));
        let (_, pass) = compare(&[], &current, &GateConfig::default());
        assert!(pass, "new benchmarks alone never fail the gate");
    }
}
