//! Resolving researcher profiles from publication records (the CAREER
//! dataset of Section VI).
//!
//! Each researcher has one tuple per publication carrying the affiliation,
//! city and country at publication time. Citation-derived currency
//! constraints ("a citing paper's affiliation is more current than the
//! cited paper's") and `affiliation → city, country` CFD patterns resolve
//! most profiles without any user input.
//!
//! Run: `cargo run --release --example career_profiles`

use conflict_resolution::core::framework::{Resolver, SilentOracle};
use conflict_resolution::core::framework::render_resolved;
use conflict_resolution::core::Accuracy;
use conflict_resolution::data::career::{self, CareerConfig};

fn main() {
    let ds = career::generate(CareerConfig { entities: 30, seed: 11, ..Default::default() });
    println!("dataset: {}", ds.stats());
    println!("(paper: 65 researchers, 2–175 papers each, 503 citation constraints, 347 CFD patterns)\n");

    let resolver = Resolver::default_config();
    let mut acc = Accuracy::new();
    let mut auto_resolved = 0;

    for i in 0..ds.len() {
        let spec = ds.spec(i);
        // SilentOracle: automatic deduction only (0 interactions).
        let outcome = resolver.resolve(&spec, &mut SilentOracle);
        if outcome.complete {
            auto_resolved += 1;
        }
        acc.add_entity(&ds.entities[i].0, ds.truth(i), &outcome.resolved);
        if i < 3 {
            println!(
                "researcher {i}: {} papers → {}",
                ds.entities[i].0.len(),
                render_resolved(&ds.schema, &outcome.resolved)
            );
        }
    }

    println!(
        "\nfully auto-resolved: {}/{} researchers",
        auto_resolved,
        ds.len()
    );
    println!(
        "true values found automatically: {:.0}% (paper: 78% for CAREER)",
        acc.true_value_fraction() * 100.0
    );
    let f = acc.f_measure();
    println!("0-interaction F-measure: {:.3}", f.f_measure);
}
