//! Learnt-clause database reduction.

use super::{ClauseRef, Solver};
use crate::lit::LBool;

const CLA_RESCALE_LIMIT: f32 = 1e20;
const CLA_RESCALE_FACTOR: f32 = 1e-20;

impl Solver {
    /// Bumps a learnt clause's activity (it participated in a conflict).
    pub(crate) fn bump_clause_activity(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > CLA_RESCALE_LIMIT {
            for r in &self.learnt_refs {
                self.clauses[*r as usize].activity *= CLA_RESCALE_FACTOR;
            }
            self.cla_inc *= CLA_RESCALE_FACTOR;
        }
    }

    /// Geometric decay of clause activities.
    pub(crate) fn decay_clause_activity(&mut self) {
        self.cla_inc /= self.cla_decay;
    }

    /// True iff the clause is the reason of a currently assigned literal and
    /// therefore must not be deleted.
    fn locked(&self, cref: ClauseRef) -> bool {
        let first = self.clauses[cref as usize].lits[0];
        self.value_lit(first) == LBool::True
            && self.reason[first.var().index()] == Some(cref)
    }

    /// Deletes the least active half of the learnt clauses (keeping binary
    /// and locked clauses) and raises the budget for the next round.
    pub(crate) fn reduce_db(&mut self) {
        self.stats.db_reductions += 1;
        let target = self.learnt_refs.len() / 2;
        self.delete_least_active(target);
        self.max_learnts *= 1.1;
    }

    /// Compacts the learnt-clause database down to at most `max_keep`
    /// clauses, deleting the least active ones first (binary and locked
    /// clauses are always kept). Unlike the in-search `Solver::reduce_db`
    /// this is a *caller-driven* sweep: the incremental resolution engine
    /// invokes it at user-interaction round boundaries so learnt clauses
    /// stay bounded over arbitrarily long interactions, and it also resets
    /// the in-search reduction budget so the next solve does not inherit a
    /// budget inflated by earlier rounds.
    pub fn compact_learnts(&mut self, max_keep: usize) {
        debug_assert_eq!(self.decision_level(), 0);
        if self.learnt_refs.len() > max_keep {
            self.stats.db_reductions += 1;
            let target = self.learnt_refs.len() - max_keep;
            self.delete_least_active(target);
        }
        let floor = (self.clauses.len() as f64 / 3.0).max(2000.0);
        self.max_learnts = self.max_learnts.min(floor.max(max_keep as f64));
    }

    /// Detaches up to `target` learnt clauses, least useful first (long
    /// clauses with low activity; binary and locked clauses survive).
    fn delete_least_active(&mut self, target: usize) {
        let mut refs = std::mem::take(&mut self.learnt_refs);
        refs.sort_by(|&a, &b| {
            let ca = &self.clauses[a as usize];
            let cb = &self.clauses[b as usize];
            (ca.lits.len() > 2)
                .cmp(&(cb.lits.len() > 2))
                .reverse()
                .then(ca.activity.partial_cmp(&cb.activity).unwrap_or(std::cmp::Ordering::Equal))
        });
        let mut kept = Vec::with_capacity(refs.len().saturating_sub(target));
        for (i, cref) in refs.iter().copied().enumerate() {
            let c = &self.clauses[cref as usize];
            if i < target && c.lits.len() > 2 && !self.locked(cref) {
                self.detach_clause(cref);
                self.stats.deleted_clauses += 1;
            } else {
                kept.push(cref);
            }
        }
        self.learnt_refs = kept;
    }
}

#[cfg(test)]
mod tests {
    use crate::solver::{SolveResult, Solver};

    /// Push the solver through enough conflicts that at least one DB
    /// reduction happens, then check it still answers correctly.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn reduction_does_not_break_correctness() {
        let mut s = Solver::new();
        // A satisfiable but conflict-rich instance: overlapping pigeonhole
        // fragments plus a large satisfiable core.
        let n = 7;
        let p: Vec<Vec<_>> = (0..n).map(|_| (0..n).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            s.add_clause(row.iter().map(|v| v.positive()));
        }
        for j in 0..n {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        // n pigeons, n holes: satisfiable (a permutation).
        assert_eq!(s.solve(), SolveResult::Sat);
        // Verify the model is a valid permutation assignment.
        for (i, row) in p.iter().enumerate() {
            assert!(
                row.iter().any(|v| s.model_value(*v) == Some(true)),
                "pigeon {i} unplaced"
            );
        }
    }
}
