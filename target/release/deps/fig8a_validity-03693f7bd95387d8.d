/root/repo/target/release/deps/fig8a_validity-03693f7bd95387d8.d: crates/cr-bench/src/bin/fig8a_validity.rs

/root/repo/target/release/deps/fig8a_validity-03693f7bd95387d8: crates/cr-bench/src/bin/fig8a_validity.rs

crates/cr-bench/src/bin/fig8a_validity.rs:
