/root/repo/target/debug/deps/clique_proptest-69d23b0185e7bc08.d: crates/cr-clique/tests/clique_proptest.rs Cargo.toml

/root/repo/target/debug/deps/libclique_proptest-69d23b0185e7bc08.rmeta: crates/cr-clique/tests/clique_proptest.rs Cargo.toml

crates/cr-clique/tests/clique_proptest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
