/root/repo/target/debug/deps/bench_incremental-85e445c4109ac3a4.d: crates/cr-bench/src/bin/bench_incremental.rs

/root/repo/target/debug/deps/libbench_incremental-85e445c4109ac3a4.rmeta: crates/cr-bench/src/bin/bench_incremental.rs

crates/cr-bench/src/bin/bench_incremental.rs:
