//! VSIDS decision heuristic: activity bookkeeping and the order heap.

use super::Solver;
use crate::lit::{LBool, Lit, Var};

const RESCALE_LIMIT: f64 = 1e100;
const RESCALE_FACTOR: f64 = 1e-100;

impl Solver {
    /// Picks the unassigned variable with the highest activity and returns
    /// its phase-saved literal; `None` when all variables are assigned.
    pub(crate) fn pick_branch_lit(&mut self) -> Option<Lit> {
        loop {
            let v = self.order.pop_max(&self.activity)?;
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v.lit(self.polarity[v.index()]));
            }
        }
    }

    /// Bumps a variable's activity (it appeared in a conflict).
    pub(crate) fn bump_var_activity(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= RESCALE_FACTOR;
            }
            self.var_inc *= RESCALE_FACTOR;
        }
        self.order.update(v, &self.activity);
    }

    /// Geometric decay of all variable activities (by inflating `var_inc`).
    pub(crate) fn decay_var_activity(&mut self) {
        self.var_inc /= self.var_decay;
    }
}

/// A max-heap of variables keyed by activity, with a position index so
/// membership tests and sift-ups after activity bumps are O(1)/O(log n).
#[derive(Default)]
pub(crate) struct VarOrder {
    heap: Vec<Var>,
    /// `pos[v] == -1` means "not in heap"; otherwise the heap slot.
    pos: Vec<i32>,
}

impl VarOrder {
    pub(crate) fn new() -> Self {
        VarOrder::default()
    }

    fn ensure(&mut self, v: Var) {
        if self.pos.len() <= v.index() {
            self.pos.resize(v.index() + 1, -1);
        }
    }

    pub(crate) fn contains(&self, v: Var) -> bool {
        self.pos.get(v.index()).is_some_and(|&p| p >= 0)
    }

    /// Empties the heap, retaining its allocations (solver scratch reuse).
    pub(crate) fn clear(&mut self) {
        self.heap.clear();
        self.pos.clear();
    }

    /// Inserts `v` if absent.
    pub(crate) fn insert(&mut self, v: Var, activity: &[f64]) {
        self.ensure(v);
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores heap order after `v`'s activity increased.
    pub(crate) fn update(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            let i = self.pos[v.index()] as usize;
            self.sift_up(i, activity);
        }
    }

    /// Removes and returns the most active variable.
    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.index()] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l].index()] > activity[self.heap[best].index()]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index()] > activity[self.heap[best].index()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index()] = i as i32;
        self.pos[self.heap[j].index()] = j as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_orders_by_activity() {
        let mut order = VarOrder::new();
        let activity = vec![1.0, 5.0, 3.0, 4.0];
        for i in 0..4 {
            order.insert(Var(i), &activity);
        }
        assert_eq!(order.pop_max(&activity), Some(Var(1)));
        assert_eq!(order.pop_max(&activity), Some(Var(3)));
        assert_eq!(order.pop_max(&activity), Some(Var(2)));
        assert_eq!(order.pop_max(&activity), Some(Var(0)));
        assert_eq!(order.pop_max(&activity), None);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut order = VarOrder::new();
        let activity = vec![1.0, 2.0];
        order.insert(Var(0), &activity);
        order.insert(Var(0), &activity);
        order.insert(Var(1), &activity);
        assert_eq!(order.len(), 2);
        assert!(order.contains(Var(0)));
    }

    #[test]
    fn update_after_bump_floats_to_top() {
        let mut order = VarOrder::new();
        let mut activity = vec![1.0, 2.0, 3.0];
        for i in 0..3 {
            order.insert(Var(i), &activity);
        }
        activity[0] = 10.0;
        order.update(Var(0), &activity);
        assert_eq!(order.pop_max(&activity), Some(Var(0)));
    }
}
