/root/repo/target/release/deps/phase_probe-87e7473552953b53.d: crates/cr-bench/src/bin/phase_probe.rs

/root/repo/target/release/deps/phase_probe-87e7473552953b53: crates/cr-bench/src/bin/phase_probe.rs

crates/cr-bench/src/bin/phase_probe.rs:
