/root/repo/target/debug/deps/suggest-4e68277b04b0fd8c.d: crates/cr-bench/benches/suggest.rs

/root/repo/target/debug/deps/suggest-4e68277b04b0fd8c: crates/cr-bench/benches/suggest.rs

crates/cr-bench/benches/suggest.rs:
