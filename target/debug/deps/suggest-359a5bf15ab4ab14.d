/root/repo/target/debug/deps/suggest-359a5bf15ab4ab14.d: crates/cr-bench/benches/suggest.rs Cargo.toml

/root/repo/target/debug/deps/libsuggest-359a5bf15ab4ab14.rmeta: crates/cr-bench/benches/suggest.rs Cargo.toml

crates/cr-bench/benches/suggest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
