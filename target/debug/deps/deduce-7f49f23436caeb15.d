/root/repo/target/debug/deps/deduce-7f49f23436caeb15.d: crates/cr-bench/benches/deduce.rs Cargo.toml

/root/repo/target/debug/deps/libdeduce-7f49f23436caeb15.rmeta: crates/cr-bench/benches/deduce.rs Cargo.toml

crates/cr-bench/benches/deduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
