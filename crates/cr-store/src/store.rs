//! The multi-session store: write-ahead logging, snapshots, eviction and
//! crash-and-rehydrate recovery.
//!
//! [`SessionStore`] hosts many durable [`ResolutionSession`]s over one
//! [`StorageBackend`]. Every mutation follows the write-ahead discipline:
//! the event is framed, appended, and synced **before** it is applied to
//! the in-memory engine — the log records inputs, never effects, so replay
//! is a pure function of the surviving bytes. Cold sessions are evicted
//! (engine state dropped, log kept) and transparently rehydrated on next
//! touch from the last intact snapshot plus the log tail, through the very
//! same `ingest_causal`/`apply_input` paths production traffic uses.
//! Recovery truncates corrupt tails (checksum or record-decode failures)
//! and counts everything it did in [`RecoveryTelemetry`].

use std::collections::BTreeMap;
use std::fmt;

use cr_core::causal::CausalRevision;
use cr_core::ingest::{BatchReport, ResolutionSession, Revision, RevisionPolicy};
use cr_core::spec::{Specification, UserInput};
use cr_core::ResolutionConfig;
use cr_types::codec::{write_frame, CodecError};

use crate::backend::{SessionId, StorageBackend};
use crate::event::{decode_log_offsets, plan_replay, LogRecord, ReplayStep, SnapshotRecord};

/// Errors surfaced by the store and its backends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// A log frame or record failed to decode where corruption is not an
    /// acceptable answer (recovery itself *tolerates* corruption and
    /// truncates instead of erroring).
    Codec(CodecError),
    /// A backend I/O failure.
    Io(String),
    /// The session was never [`open`](SessionStore::open)ed in this store.
    UnknownSession(SessionId),
    /// The store refuses [`RevisionPolicy::Reject`]: replay of a durable
    /// log must be total, and a policy that aborts mid-stream would leave
    /// rehydration unable to reach the log's end.
    RejectPolicy,
    /// A snapshot was internally consistent (checksums passed) but
    /// inconsistent with the session's base specification.
    Restore(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Codec(e) => write!(f, "log corrupt: {e}"),
            StoreError::Io(msg) => write!(f, "storage error: {msg}"),
            StoreError::UnknownSession(id) => write!(f, "unknown session {id}"),
            StoreError::RejectPolicy => write!(
                f,
                "RevisionPolicy::Reject is not replayable; use Quarantine or BestEffort"
            ),
            StoreError::Restore(msg) => write!(f, "snapshot restore failed: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// Store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Engine configuration for every hosted session.
    pub resolution: ResolutionConfig,
    /// Revision policy for every hosted session. Must not be
    /// [`RevisionPolicy::Reject`] (see [`StoreError::RejectPolicy`]).
    pub policy: RevisionPolicy,
    /// Append a snapshot record after this many logged events; `0` disables
    /// snapshots (rehydration replays the full log).
    pub snapshot_every: usize,
    /// Maximum sessions kept live in memory; beyond it the least recently
    /// used live session is evicted. `0` means unbounded.
    pub max_live: usize,
    /// Maximum recorded replies kept per session in the idempotency
    /// ledger ([`SessionStore::record_reply`]); beyond it the oldest
    /// recorded reply is forgotten. `0` disables the ledger entirely.
    pub idempotency_cap: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            resolution: ResolutionConfig::default(),
            policy: RevisionPolicy::Quarantine,
            snapshot_every: 32,
            max_live: 0,
            idempotency_cap: 128,
        }
    }
}

/// Counters of everything recovery and eviction did, store-wide.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryTelemetry {
    /// Sessions rebuilt from their log (cold touch or explicit reload).
    pub rehydrations: u64,
    /// Live sessions whose engine state was dropped.
    pub evictions: u64,
    /// Event records replayed through the engine during rehydration.
    pub events_replayed: u64,
    /// Rehydrations that started from a snapshot instead of scratch.
    pub snapshots_used: u64,
    /// Corrupt log tails truncated (checksum, torn frame, or record-decode
    /// failure).
    pub corrupt_truncations: u64,
    /// Total bytes discarded by those truncations.
    pub truncated_bytes: u64,
    /// Truncations whose cause was specifically a CRC-32 mismatch.
    pub checksum_failures: u64,
    /// Uncommitted trailing batch runs (events without their
    /// [`LogRecord::BatchMark`]) dropped and physically truncated — a
    /// crash landed mid-batch; recovery restored the previous batch
    /// boundary. Bytes cut land in `truncated_bytes`.
    pub partial_batch_truncations: u64,
}

impl fmt::Display for RecoveryTelemetry {
    /// One human-readable row per store, for soak and harness failure
    /// output — e.g.
    /// `recovery: 3 rehydrations (2 via snapshot, 47 events replayed), 5 evictions, 1 corrupt truncations (12 bytes, 1 checksum), 0 partial batches`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery: {} rehydrations ({} via snapshot, {} events replayed), \
             {} evictions, {} corrupt truncations ({} bytes, {} checksum), \
             {} partial batches",
            self.rehydrations,
            self.snapshots_used,
            self.events_replayed,
            self.evictions,
            self.corrupt_truncations,
            self.truncated_bytes,
            self.checksum_failures,
            self.partial_batch_truncations,
        )
    }
}

/// What admission control may learn about a session **without** touching
/// it: probing never bumps the LRU clock, never rehydrates, and never
/// evicts — an admission decision that ends in load-shedding must leave
/// the store exactly as it found it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionProbe {
    /// Whether the session currently holds live engine state. A cold
    /// session will pay a rehydration on first touch, so admission can
    /// charge it a higher token cost.
    pub live: bool,
    /// Byte length of the session's durable log — a proxy for how
    /// expensive that rehydration would be.
    pub log_bytes: u64,
}

struct Entry {
    base: Specification,
    live: Option<ResolutionSession>,
    /// Events appended since the last snapshot record.
    events_since_snapshot: usize,
    /// Events appended over the session's lifetime (snapshot metadata).
    events_total: u64,
    /// LRU stamp from the store clock.
    last_used: u64,
    /// Idempotency ledger: recorded replies of acknowledged mutations,
    /// keyed by the client's idempotency key. Deliberately *not* part of
    /// the live engine state: it survives eviction, so a retry arriving
    /// after the session went cold still deduplicates. Bounded by
    /// [`StoreConfig::idempotency_cap`] in insertion order.
    idem: BTreeMap<u64, Vec<u8>>,
    /// Insertion order of `idem` keys, oldest first, for cap eviction.
    idem_order: Vec<u64>,
}

/// A durable multi-session host over a [`StorageBackend`].
pub struct SessionStore<B: StorageBackend> {
    backend: B,
    config: StoreConfig,
    entries: BTreeMap<u64, Entry>,
    clock: u64,
    recovery: RecoveryTelemetry,
}

impl<B: StorageBackend> SessionStore<B> {
    /// Creates a store over `backend`. Fails fast on a non-replayable
    /// policy.
    pub fn new(backend: B, config: StoreConfig) -> Result<Self, StoreError> {
        if matches!(config.policy, RevisionPolicy::Reject) {
            return Err(StoreError::RejectPolicy);
        }
        Ok(SessionStore {
            backend,
            config,
            entries: BTreeMap::new(),
            clock: 0,
            recovery: RecoveryTelemetry::default(),
        })
    }

    /// The store's accumulated recovery telemetry.
    pub fn recovery(&self) -> RecoveryTelemetry {
        self.recovery
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Immutable access to the backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend (fault-injection harnesses reach the
    /// [`FaultyBackend`](crate::fault::FaultyBackend) through this).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Consumes the store, returning the backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Registers a session with its base (pre-interaction) specification.
    /// Cheap: no engine is built and no log is read until the session is
    /// first touched. Re-opening a known session only updates the base.
    pub fn open(&mut self, id: SessionId, base: &Specification) {
        self.clock += 1;
        let clock = self.clock;
        self.entries
            .entry(id.0)
            .and_modify(|e| {
                e.base = base.clone();
                e.last_used = clock;
            })
            .or_insert_with(|| Entry {
                base: base.clone(),
                live: None,
                events_since_snapshot: 0,
                events_total: 0,
                last_used: clock,
                idem: BTreeMap::new(),
                idem_order: Vec::new(),
            });
    }

    /// Sessions currently registered, ascending.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.entries.keys().map(|&k| SessionId(k)).collect()
    }

    /// Whether `id` currently holds live engine state.
    pub fn is_live(&self, id: SessionId) -> bool {
        self.entries.get(&id.0).is_some_and(|e| e.live.is_some())
    }

    /// Byte length of `id`'s durable log.
    pub fn log_len(&self, id: SessionId) -> Result<u64, StoreError> {
        self.backend.log_len(id)
    }

    /// Drops `id`'s in-memory engine state (the log stays). Returns whether
    /// the session was live. The next touch rehydrates it.
    pub fn evict(&mut self, id: SessionId) -> Result<bool, StoreError> {
        let entry =
            self.entries.get_mut(&id.0).ok_or(StoreError::UnknownSession(id))?;
        let was_live = entry.live.take().is_some();
        if was_live {
            self.recovery.evictions += 1;
        }
        Ok(was_live)
    }

    /// Side-effect-free admission probe: is the session live, and how big
    /// is its log? Unlike every other accessor this does **not** stamp the
    /// LRU clock — shedding a request must not reorder eviction victims.
    pub fn admission_probe(&self, id: SessionId) -> Result<AdmissionProbe, StoreError> {
        if !self.entries.contains_key(&id.0) {
            return Err(StoreError::UnknownSession(id));
        }
        Ok(AdmissionProbe {
            live: self.is_live(id),
            log_bytes: self.backend.log_len(id)?,
        })
    }

    /// Looks up the recorded reply for a mutation idempotency key. `Some`
    /// means the mutation was already acknowledged once: the server must
    /// replay this reply instead of re-applying. Survives eviction (the
    /// ledger is store-level, not engine state), so a retry landing after
    /// the session went cold still deduplicates — and underneath it, the
    /// causal frontier's `(source, hlc)` dedup catches stamped events that
    /// outlive even this process.
    pub fn idempotent_reply(&self, id: SessionId, key: u64) -> Option<&[u8]> {
        self.entries.get(&id.0)?.idem.get(&key).map(Vec::as_slice)
    }

    /// Records the encoded reply of an acknowledged mutation under its
    /// idempotency key. Bounded by [`StoreConfig::idempotency_cap`]:
    /// beyond the cap the oldest recorded reply is forgotten (a retry
    /// older than the whole window re-applies, and is then caught by the
    /// causal frontier for stamped events). Re-recording an existing key
    /// keeps the first reply — the first acknowledgement wins.
    pub fn record_reply(
        &mut self,
        id: SessionId,
        key: u64,
        reply: Vec<u8>,
    ) -> Result<(), StoreError> {
        if self.config.idempotency_cap == 0 {
            return Ok(());
        }
        let cap = self.config.idempotency_cap;
        let entry =
            self.entries.get_mut(&id.0).ok_or(StoreError::UnknownSession(id))?;
        if entry.idem.contains_key(&key) {
            return Ok(());
        }
        entry.idem.insert(key, reply);
        entry.idem_order.push(key);
        while entry.idem.len() > cap {
            let oldest = entry.idem_order.remove(0);
            entry.idem.remove(&oldest);
        }
        Ok(())
    }

    /// Number of replies currently held in `id`'s idempotency ledger.
    pub fn ledger_len(&self, id: SessionId) -> usize {
        self.entries.get(&id.0).map_or(0, |e| e.idem.len())
    }

    /// The live session for `id`, rehydrating from the log if cold.
    pub fn session(&mut self, id: SessionId) -> Result<&mut ResolutionSession, StoreError> {
        self.touch(id)?;
        self.enforce_live_cap(id);
        Ok(self
            .entries
            .get_mut(&id.0)
            .expect("touch ensured the entry")
            .live
            .as_mut()
            .expect("touch ensured live state"))
    }

    /// Absorbs one round of user input durably: logged and synced first,
    /// then applied. Returns the engine's `|Ot|` extension size.
    pub fn apply_input(&mut self, id: SessionId, input: &UserInput) -> Result<usize, StoreError> {
        self.touch(id)?;
        self.log_event(id, &LogRecord::Input(input.clone()))?;
        let entry = self.entries.get_mut(&id.0).expect("touched");
        let added = entry.live.as_mut().expect("touched").apply_input(input);
        self.after_event(id, 1)?;
        Ok(added)
    }

    /// Ingests causally-stamped corrections durably, as **one atomic
    /// batch**: every event is framed and appended, the log is synced
    /// once, the whole poll is applied through
    /// [`ResolutionSession::ingest_causal`] (one coalesced retraction and
    /// replay), and finally a [`LogRecord::BatchMark`] commits the batch.
    /// A crash before the marker lands makes recovery drop the entire
    /// batch — rehydration always restores exactly a batch boundary.
    /// Returns the effective plain revisions.
    pub fn ingest_causal(
        &mut self,
        id: SessionId,
        events: Vec<CausalRevision>,
    ) -> Result<Vec<Revision>, StoreError> {
        self.touch(id)?;
        if events.is_empty() {
            return Ok(Vec::new());
        }
        let count = events.len();
        for ev in &events {
            self.append_record(id, &LogRecord::Causal(ev.clone()))?;
        }
        self.backend.sync(id)?;
        let entry = self.entries.get_mut(&id.0).expect("touched");
        let live = entry.live.as_mut().expect("touched");
        let effective =
            live.ingest_causal(events).expect("store policy is never Reject");
        let epoch = live.epoch().0;
        self.commit_batch(id, epoch, count)?;
        self.after_event(id, count)?;
        Ok(effective)
    }

    /// Absorbs one plain (unstamped) revision durably, as a batch of one.
    /// Returns whether it was applied (`false` = quarantined), as
    /// [`ResolutionSession::absorb_revision`] does.
    pub fn absorb_revision(&mut self, id: SessionId, rev: &Revision) -> Result<bool, StoreError> {
        let (_, applied) = self.absorb_revision_batch(id, std::slice::from_ref(rev))?;
        Ok(applied.first().copied().unwrap_or(false))
    }

    /// Absorbs a batch of plain revisions durably and atomically: appended
    /// and synced, applied through
    /// [`ResolutionSession::absorb_revision_batch`] (one coalesced
    /// retraction and replay), then committed with a
    /// [`LogRecord::BatchMark`]. Returns the engine's batch report plus
    /// the per-event applied flags.
    pub fn absorb_revision_batch(
        &mut self,
        id: SessionId,
        revs: &[Revision],
    ) -> Result<(BatchReport, Vec<bool>), StoreError> {
        self.touch(id)?;
        if revs.is_empty() {
            return Ok((BatchReport::default(), Vec::new()));
        }
        for rev in revs {
            self.append_record(id, &LogRecord::Revision(rev.clone()))?;
        }
        self.backend.sync(id)?;
        let entry = self.entries.get_mut(&id.0).expect("touched");
        let live = entry.live.as_mut().expect("touched");
        let (report, applied) =
            live.absorb_revision_batch(revs).expect("store policy is never Reject");
        self.commit_batch(id, report.epoch.0, revs.len())?;
        self.after_event(id, revs.len())?;
        Ok((report, applied))
    }

    /// Appends + syncs the batch-commit marker. If the marker fails to
    /// land, the batch applied in memory but is uncommitted on disk: the
    /// live engine is dropped so the next touch rehydrates from the log,
    /// which recovery truncates back to the previous batch boundary.
    fn commit_batch(&mut self, id: SessionId, epoch: u64, events: usize) -> Result<(), StoreError> {
        let mark = LogRecord::BatchMark { epoch, events: events as u64 };
        let committed =
            self.append_record(id, &mark).and_then(|()| self.backend.sync(id));
        if let Err(e) = committed {
            self.entries.get_mut(&id.0).expect("touched").live = None;
            return Err(e);
        }
        Ok(())
    }

    /// Appends a snapshot of `id`'s current state and resets the snapshot
    /// cadence. Also available to callers that want a snapshot at a known
    /// boundary (e.g. before shutdown).
    pub fn snapshot(&mut self, id: SessionId) -> Result<(), StoreError> {
        self.touch(id)?;
        let entry = self.entries.get_mut(&id.0).expect("touched");
        let record = LogRecord::Snapshot(Box::new(SnapshotRecord {
            events_covered: entry.events_total,
            state: entry.live.as_ref().expect("touched").state(),
        }));
        self.append_record(id, &record)?;
        self.backend.sync(id)?;
        self.entries.get_mut(&id.0).expect("touched").events_since_snapshot = 0;
        Ok(())
    }

    fn append_record(&mut self, id: SessionId, record: &LogRecord) -> Result<(), StoreError> {
        let mut frame = Vec::new();
        write_frame(&mut frame, &record.encode());
        self.backend.append(id, &frame)
    }

    /// Write-ahead append + sync of one event record.
    fn log_event(&mut self, id: SessionId, record: &LogRecord) -> Result<(), StoreError> {
        self.append_record(id, record)?;
        self.backend.sync(id)
    }

    /// Post-apply bookkeeping: snapshot cadence and the live cap.
    fn after_event(&mut self, id: SessionId, count: usize) -> Result<(), StoreError> {
        let entry = self.entries.get_mut(&id.0).expect("caller touched");
        entry.events_total += count as u64;
        entry.events_since_snapshot += count;
        if self.config.snapshot_every > 0
            && entry.events_since_snapshot >= self.config.snapshot_every
        {
            self.snapshot(id)?;
        }
        self.enforce_live_cap(id);
        Ok(())
    }

    /// Ensures `id` is registered and live, rehydrating from the log if
    /// necessary, and stamps its LRU clock.
    fn touch(&mut self, id: SessionId) -> Result<(), StoreError> {
        if !self.entries.contains_key(&id.0) {
            return Err(StoreError::UnknownSession(id));
        }
        self.clock += 1;
        let clock = self.clock;
        if self.entries.get(&id.0).expect("checked").live.is_none() {
            self.rehydrate(id)?;
        }
        self.entries.get_mut(&id.0).expect("checked").last_used = clock;
        Ok(())
    }

    /// Rebuilds `id`'s engine from its durable log: scan frames, truncate
    /// any corrupt tail, drop (and truncate) an uncommitted trailing batch
    /// run, restore the last usable snapshot (or start from the base
    /// specification) and replay the committed tail **whole batch by whole
    /// batch** through the ordinary ingestion paths.
    fn rehydrate(&mut self, id: SessionId) -> Result<(), StoreError> {
        let bytes = self.backend.read_log(id)?;
        let (offsets, valid_len, error) = decode_log_offsets(&bytes);
        if let Some(err) = error {
            self.recovery.corrupt_truncations += 1;
            self.recovery.truncated_bytes += (bytes.len() - valid_len) as u64;
            if matches!(err, CodecError::BadCrc { .. }) {
                self.recovery.checksum_failures += 1;
            }
            self.backend.truncate(id, valid_len as u64)?;
            self.backend.sync(id)?;
        }

        let records: Vec<LogRecord> = offsets.iter().map(|(rec, _)| rec.clone()).collect();
        let plan = plan_replay(&records);
        if plan.used_records < records.len() {
            // Events after the last commit point are an uncommitted batch
            // (the crash hit before its marker landed). Drop them and cut
            // the log back to the batch boundary, so every later recovery
            // of this log reaches the same state.
            let boundary = if plan.used_records == 0 {
                0
            } else {
                offsets[plan.used_records - 1].1
            };
            self.recovery.partial_batch_truncations += 1;
            self.recovery.truncated_bytes += (valid_len - boundary) as u64;
            self.backend.truncate(id, boundary as u64)?;
            self.backend.sync(id)?;
        }

        let entry = self.entries.get(&id.0).expect("caller checked");
        let base = entry.base.clone();
        // Restore from the last usable snapshot; an unusable one (version
        // accepted but inconsistent with the base) falls back to the next
        // older snapshot, ultimately to a from-scratch replay — snapshots
        // are an optimization, never the source of truth.
        let mut start = 0;
        let mut session = None;
        for (i, step) in plan.steps.iter().enumerate().rev() {
            if let ReplayStep::Snapshot(snap) = step {
                match ResolutionSession::restore(&self.config.resolution, &base, snap.state.clone())
                {
                    Ok(s) => {
                        session = Some(s);
                        start = i + 1;
                        self.recovery.snapshots_used += 1;
                        break;
                    }
                    Err(_) => continue,
                }
            }
        }
        let mut session = session
            .unwrap_or_else(|| ResolutionSession::new_revisable(&self.config.resolution, &base));
        session.set_revision_policy(self.config.policy);

        let mut replayed = 0u64;
        let mut since_snapshot = 0usize;
        let mut total = 0u64;
        for (i, step) in plan.steps.iter().enumerate() {
            if let ReplayStep::Snapshot(_) = step {
                if i < start {
                    continue;
                }
                // A snapshot past the restore point still resets cadence.
                since_snapshot = 0;
                continue;
            }
            let count = step.event_count();
            total += count as u64;
            if i < start {
                continue;
            }
            since_snapshot += count;
            replayed += count as u64;
            match step {
                ReplayStep::Input(input) => {
                    session.apply_input(input);
                }
                ReplayStep::CausalBatch(batch) => {
                    session
                        .ingest_causal(batch.clone())
                        .expect("store policy is never Reject");
                }
                ReplayStep::RevisionBatch(batch) => {
                    session
                        .absorb_revision_batch(batch)
                        .expect("store policy is never Reject");
                }
                ReplayStep::Snapshot(_) => unreachable!("handled above"),
            }
        }

        self.recovery.rehydrations += 1;
        self.recovery.events_replayed += replayed;
        let entry = self.entries.get_mut(&id.0).expect("caller checked");
        entry.live = Some(session);
        entry.events_total = total;
        entry.events_since_snapshot = since_snapshot;
        Ok(())
    }

    /// Evicts least-recently-used live sessions (never `keep`) until the
    /// live count respects `max_live`.
    fn enforce_live_cap(&mut self, keep: SessionId) {
        if self.config.max_live == 0 {
            return;
        }
        loop {
            let live = self.entries.values().filter(|e| e.live.is_some()).count();
            if live <= self.config.max_live {
                return;
            }
            let victim = self
                .entries
                .iter()
                .filter(|(&k, e)| e.live.is_some() && k != keep.0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            let Some(victim) = victim else { return };
            let entry = self.entries.get_mut(&victim).expect("just found");
            entry.live = None;
            self.recovery.evictions += 1;
        }
    }
}
