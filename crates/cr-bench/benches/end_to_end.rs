//! Criterion bench for the overall framework loop (Fig. 8(c)/(d) totals):
//! validity + deduction + suggestion + simulated user rounds, per entity —
//! for both the incremental engine (default) and the from-scratch loop
//! (`bench_incremental` writes the same comparison to `BENCH_*.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cr_core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use cr_data::{career, nba, person, vjday};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolve");
    group.sample_size(15);

    // Paper running examples plus one representative entity per dataset.
    let nba_ds = nba::generate_with_sizes(&[27], 7);
    let career_ds = career::generate(career::CareerConfig {
        entities: 1,
        seed: 7,
        ..Default::default()
    });
    let person_ds = person::generate_with_sizes(&[200], 7);
    let cases = [
        ("vjday/edith", vjday::edith_spec(), vjday::edith_truth()),
        ("vjday/george", vjday::george_spec(), vjday::george_truth()),
        ("nba/27", nba_ds.spec(0), nba_ds.truth(0).clone()),
        ("career/avg", career_ds.spec(0), career_ds.truth(0).clone()),
        ("person/200", person_ds.spec(0), person_ds.truth(0).clone()),
    ];

    for (mode, incremental) in [("incremental", true), ("scratch", false)] {
        let resolver = Resolver::new(ResolutionConfig {
            max_rounds: 3,
            incremental,
            ..Default::default()
        });
        for (label, spec, truth) in &cases {
            group.bench_with_input(BenchmarkId::new(*label, mode), spec, |b, spec| {
                b.iter(|| {
                    let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
                    black_box(resolver.resolve(black_box(spec), &mut oracle))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
