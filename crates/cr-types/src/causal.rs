//! Causal metadata for correction streams: hybrid logical clocks and
//! per-source vector clocks.
//!
//! Real correction sources (the paper's Section 7 "value corrections from
//! users/curators") are concurrent, duplicated and delayed; whether two
//! corrections *conflict* is a property of causal concurrency, not arrival
//! order. This module provides the three pieces the revision pipeline tags
//! every upstream event with:
//!
//! * [`Hlc`] — a hybrid logical clock timestamp: totally ordered, and
//!   monotone along causal chains (an event that causally observed another
//!   carries a strictly larger HLC), so last-writer-wins over causally
//!   *incomparable* branch tips is well-defined and order-independent;
//! * [`VectorClock`] — one entry per [`SourceId`]: entry `s ↦ n` means the
//!   stamping source had seen source `s`'s events up to sequence `n`.
//!   Dominance decides causal order; mutual non-dominance is concurrency;
//! * [`CausalStamp`] — the `{source, hlc, vclock}` triple attached to each
//!   revision. The stamp's own entry `vclock[source]` is the event's
//!   per-source sequence number, which drives causal delivery (an event is
//!   deliverable once its predecessor from the same source and everything
//!   it causally depends on have been delivered) and `(source, hlc)`
//!   deduplicates redelivery.
//!
//! [`SourceClock`] is the emitter-side state machine (one per correction
//! source): it ticks the HLC, bumps the own vector-clock entry per event,
//! and `observe`s other sources' stamps to record causal dependencies —
//! modeled on the hlc/vector-clock pair of event-sourced conflict stores.

use std::collections::BTreeMap;

/// Identifies one correction source. `SourceId(0)` ([`SourceId::LOCAL`]) is
/// reserved for the resolution session itself (user answers are local
/// events: remote corrections never causally observe them, which is what
/// makes a late correction *concurrent* with an accepted answer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u32);

impl SourceId {
    /// The resolution session itself (stamps user answers).
    pub const LOCAL: SourceId = SourceId(0);
}

impl std::fmt::Display for SourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A monotone session version number. The resolution session seals one
/// epoch per committed mutation batch (a round of user input, a revision
/// batch); readers that must never observe a half-applied batch are
/// answered against the last *sealed* epoch while a batch is mid-flight
/// (MVCC-style snapshot reads — see the ingest module of `cr-core`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The epoch of a freshly opened session (nothing sealed yet).
    pub const ZERO: Epoch = Epoch(0);

    /// The epoch after sealing one more batch.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A hybrid logical clock timestamp: `(physical, logical)` with
/// lexicographic total order. [`SourceClock`] guarantees the HLC property —
/// if event `b` causally observed event `a` then `a.hlc < b.hlc` — so
/// last-writer-wins by `(hlc, source)` over concurrent branch tips never
/// prefers a causally-overwritten value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hlc {
    /// Physical component (any monotone per-source counter; wall-clock
    /// milliseconds in deployments, a deterministic tick in tests).
    pub physical: u64,
    /// Logical component, breaking ties when events share a physical tick.
    pub logical: u32,
}

impl Hlc {
    /// Builds a timestamp.
    pub fn new(physical: u64, logical: u32) -> Self {
        Hlc { physical, logical }
    }
}

impl std::fmt::Display for Hlc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.physical, self.logical)
    }
}

/// A vector clock: `source ↦ highest sequence number seen`. Absent entries
/// read as 0 (nothing seen from that source).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct VectorClock {
    entries: BTreeMap<SourceId, u64>,
}

impl VectorClock {
    /// The empty clock (seen nothing).
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// The highest sequence number seen from `source` (0 if none).
    pub fn get(&self, source: SourceId) -> u64 {
        self.entries.get(&source).copied().unwrap_or(0)
    }

    /// Sets `source`'s entry to `max(current, seq)`.
    pub fn observe(&mut self, source: SourceId, seq: u64) {
        let e = self.entries.entry(source).or_insert(0);
        *e = (*e).max(seq);
    }

    /// Increments `source`'s entry and returns the new sequence number.
    pub fn bump(&mut self, source: SourceId) -> u64 {
        let e = self.entries.entry(source).or_insert(0);
        *e += 1;
        *e
    }

    /// Pointwise maximum with `other` (causal join).
    pub fn merge(&mut self, other: &VectorClock) {
        for (&s, &n) in &other.entries {
            self.observe(s, n);
        }
    }

    /// True iff `self ≥ other` pointwise: everything `other` has seen,
    /// `self` has seen too.
    pub fn dominates(&self, other: &VectorClock) -> bool {
        other.entries.iter().all(|(&s, &n)| self.get(s) >= n)
    }

    /// True iff neither clock dominates the other — the stamped events are
    /// causally concurrent.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.dominates(other) && !other.dominates(self)
    }

    /// Iterates `(source, seq)` entries (absent = 0 entries are skipped).
    pub fn iter(&self) -> impl Iterator<Item = (SourceId, u64)> + '_ {
        self.entries.iter().map(|(&s, &n)| (s, n))
    }
}

/// The causal stamp carried by every upstream revision: who asserted it,
/// its HLC timestamp, and the asserting source's causal knowledge at the
/// time ([`VectorClock`], whose own entry is the event's sequence number).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CausalStamp {
    /// The asserting source.
    pub source: SourceId,
    /// HLC timestamp (dedup key together with `source`; LWW tiebreak over
    /// concurrent branch tips).
    pub hlc: Hlc,
    /// Causal knowledge at emission; `vclock[source]` is this event's
    /// per-source sequence number.
    pub vclock: VectorClock,
}

impl CausalStamp {
    /// This event's per-source sequence number (`vclock[source]`). A
    /// well-formed stamp has `seq ≥ 1`; `seq == 0` marks a malformed stamp
    /// (no causal constraints expressible — the frontier delivers it
    /// immediately and validation decides its fate).
    pub fn seq(&self) -> u64 {
        self.vclock.get(self.source)
    }

    /// The redelivery-dedup key.
    pub fn dedup_key(&self) -> (SourceId, Hlc) {
        (self.source, self.hlc)
    }

    /// True iff this stamp causally observed `other` (its clock covers
    /// `other`'s sequence number). An event trivially saw itself.
    pub fn saw(&self, other: &CausalStamp) -> bool {
        other.seq() > 0 && self.vclock.get(other.source) >= other.seq()
    }

    /// True iff the two stamped events are causally concurrent: neither
    /// observed the other.
    pub fn concurrent_with(&self, other: &CausalStamp) -> bool {
        !self.saw(other) && !other.saw(self)
    }

    /// Last-writer-wins key over concurrent branch tips: HLC first, source
    /// id as the deterministic tiebreak.
    pub fn lww_key(&self) -> (Hlc, SourceId) {
        (self.hlc, self.source)
    }
}

/// Emitter-side clock state of one correction source: stamps events with
/// monotone HLCs and a per-source-sequenced vector clock, and records
/// causal dependencies on other sources' events via [`SourceClock::observe`].
#[derive(Clone, Debug)]
pub struct SourceClock {
    source: SourceId,
    hlc: Hlc,
    vclock: VectorClock,
}

impl SourceClock {
    /// A fresh clock for `source`.
    pub fn new(source: SourceId) -> Self {
        SourceClock { source, hlc: Hlc::default(), vclock: VectorClock::new() }
    }

    /// The source this clock stamps for.
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// Records that this source saw `stamp`'s event (e.g. replicated from
    /// another source): merges the vector clock and advances the HLC past
    /// the observed timestamp, so later stamps causally dominate it.
    pub fn observe(&mut self, stamp: &CausalStamp) {
        self.vclock.merge(&stamp.vclock);
        if stamp.hlc >= self.hlc {
            self.hlc = Hlc::new(stamp.hlc.physical, stamp.hlc.logical + 1);
        }
    }

    /// Stamps the next event at physical time `physical` (any monotone
    /// tick). The HLC advances strictly; the own vector-clock entry bumps
    /// to this event's sequence number.
    pub fn stamp(&mut self, physical: u64) -> CausalStamp {
        self.hlc = if physical > self.hlc.physical {
            Hlc::new(physical, 0)
        } else {
            Hlc::new(self.hlc.physical, self.hlc.logical + 1)
        };
        self.vclock.bump(self.source);
        CausalStamp { source: self.source, hlc: self.hlc, vclock: self.vclock.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hlc_orders_lexicographically() {
        assert!(Hlc::new(1, 5) < Hlc::new(2, 0));
        assert!(Hlc::new(2, 0) < Hlc::new(2, 1));
        assert_eq!(Hlc::new(3, 3), Hlc::new(3, 3));
    }

    #[test]
    fn source_clock_hlc_is_strictly_monotone() {
        let mut c = SourceClock::new(SourceId(1));
        let a = c.stamp(10);
        let b = c.stamp(10); // same physical tick: logical breaks the tie
        let d = c.stamp(5); // physical regression: logical keeps advancing
        assert!(a.hlc < b.hlc);
        assert!(b.hlc < d.hlc);
        assert_eq!(a.seq(), 1);
        assert_eq!(b.seq(), 2);
        assert_eq!(d.seq(), 3);
    }

    #[test]
    fn vector_clock_dominance_and_concurrency() {
        let mut a = VectorClock::new();
        a.observe(SourceId(1), 2);
        let mut b = VectorClock::new();
        b.observe(SourceId(1), 2);
        b.observe(SourceId(2), 1);
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
        assert!(!a.concurrent_with(&b));
        let mut c = VectorClock::new();
        c.observe(SourceId(3), 1);
        assert!(a.concurrent_with(&c));
    }

    #[test]
    fn unobserved_stamps_are_concurrent_observed_are_ordered() {
        let mut s1 = SourceClock::new(SourceId(1));
        let mut s2 = SourceClock::new(SourceId(2));
        let a = s1.stamp(1);
        let b = s2.stamp(2);
        assert!(a.concurrent_with(&b), "independent sources are concurrent");

        s2.observe(&a);
        let c = s2.stamp(2);
        assert!(c.saw(&a), "after observe, later stamps cover the event");
        assert!(!a.saw(&c));
        assert!(!c.concurrent_with(&a));
        assert!(a.hlc < c.hlc, "HLC respects causality through observe");
    }

    #[test]
    fn lww_key_is_total_and_deterministic() {
        let mut s1 = SourceClock::new(SourceId(1));
        let mut s2 = SourceClock::new(SourceId(2));
        let a = s1.stamp(7);
        let b = s2.stamp(7);
        // Same physical tick: source id breaks the tie deterministically.
        assert_ne!(a.lww_key(), b.lww_key());
        let winner = if a.lww_key() > b.lww_key() { &a } else { &b };
        assert_eq!(winner.lww_key(), a.lww_key().max(b.lww_key()));
    }

    #[test]
    fn malformed_stamp_has_seq_zero() {
        let stamp = CausalStamp {
            source: SourceId(4),
            hlc: Hlc::new(1, 0),
            vclock: VectorClock::new(),
        };
        assert_eq!(stamp.seq(), 0);
        assert!(!stamp.saw(&stamp));
    }
}
