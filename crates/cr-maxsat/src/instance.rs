//! Partial MaxSAT instances and results.

use cr_sat::{Cnf, Lit};

/// A soft clause with a positive weight.
#[derive(Clone, Debug)]
pub struct SoftClause {
    /// Disjunction of literals.
    pub lits: Vec<Lit>,
    /// Reward for satisfying the clause.
    pub weight: u64,
}

/// A partial MaxSAT instance: hard clauses that must hold plus weighted soft
/// clauses to maximise.
///
/// The hard clauses come in two parts: an optional **borrowed base** — a
/// clause arena owned by someone else, typically the resolution engine's
/// already-encoded `Φ(Se)` — plus instance-owned extras. The `GetSug`
/// MaxSAT repair used to copy the whole of `Φ(Se)` into every instance; the
/// borrowed base makes instance construction `O(1)` in `|Φ(Se)|`, so the
/// repair can be re-issued on every suggestion round of a resolve without
/// re-copying the formula.
#[derive(Clone, Debug)]
pub struct MaxSatInstance<'a> {
    num_vars: u32,
    base: Option<&'a Cnf>,
    hard: Vec<Vec<Lit>>,
    soft: Vec<SoftClause>,
}

impl Default for MaxSatInstance<'_> {
    fn default() -> Self {
        Self::new(0)
    }
}

impl<'a> MaxSatInstance<'a> {
    /// An instance over `num_vars` variables (more are added on demand).
    pub fn new(num_vars: u32) -> Self {
        MaxSatInstance { num_vars, base: None, hard: Vec::new(), soft: Vec::new() }
    }

    /// An instance whose hard clauses start as a **borrowed** formula (not
    /// copied); further `add_hard` clauses are owned extras on top. The
    /// instance starts with the formula's variable count.
    pub fn with_hard_base(base: &'a Cnf) -> Self {
        MaxSatInstance {
            num_vars: base.num_vars(),
            base: Some(base),
            hard: Vec::new(),
            soft: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// All hard clauses: the borrowed base followed by the owned extras.
    pub fn hard_iter(&self) -> impl Iterator<Item = &[Lit]> {
        self.base
            .into_iter()
            .flat_map(Cnf::clauses)
            .chain(self.hard.iter().map(Vec::as_slice))
    }

    /// Number of hard clauses.
    pub fn hard_len(&self) -> usize {
        self.base.map_or(0, Cnf::num_clauses) + self.hard.len()
    }

    /// Soft clauses.
    pub fn soft(&self) -> &[SoftClause] {
        &self.soft
    }

    /// Number of soft clauses.
    pub fn soft_len(&self) -> usize {
        self.soft.len()
    }

    /// True iff every soft clause has weight 1.
    pub fn has_unit_weights(&self) -> bool {
        self.soft.iter().all(|s| s.weight == 1)
    }

    /// Total soft weight available.
    pub fn total_soft_weight(&self) -> u64 {
        self.soft.iter().map(|s| s.weight).sum()
    }

    fn grow_vars(&mut self, lits: &[Lit]) {
        for l in lits {
            self.num_vars = self.num_vars.max(l.var().0 + 1);
        }
    }

    /// Adds a hard clause.
    pub fn add_hard(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let lits: Vec<Lit> = lits.into_iter().collect();
        self.grow_vars(&lits);
        self.hard.push(lits);
    }

    /// Adds a soft clause with the given weight (must be ≥ 1).
    pub fn add_soft(&mut self, lits: impl IntoIterator<Item = Lit>, weight: u64) {
        assert!(weight >= 1, "soft weights must be positive");
        let lits: Vec<Lit> = lits.into_iter().collect();
        self.grow_vars(&lits);
        self.soft.push(SoftClause { lits, weight });
    }

    /// True iff `assignment` satisfies every hard clause.
    pub fn hard_satisfied(&self, assignment: &[bool]) -> bool {
        self.hard_iter().all(|c| clause_satisfied(c, assignment))
    }

    /// Weight of soft clauses satisfied by `assignment`.
    pub fn soft_weight(&self, assignment: &[bool]) -> u64 {
        self.soft
            .iter()
            .filter(|s| clause_satisfied(&s.lits, assignment))
            .map(|s| s.weight)
            .sum()
    }
}

/// Evaluates one clause under a total assignment.
pub(crate) fn clause_satisfied(clause: &[Lit], assignment: &[bool]) -> bool {
    clause
        .iter()
        .any(|l| assignment[l.var().index()] == l.is_positive())
}

/// Result of a MaxSAT solve.
#[derive(Clone, Debug)]
pub struct MaxSatResult {
    /// The best feasible assignment found (one `bool` per variable).
    pub assignment: Vec<bool>,
    /// Per-soft-clause satisfaction flags under that assignment.
    pub satisfied_soft: Vec<bool>,
    /// Total satisfied soft weight.
    pub total_weight: u64,
    /// True iff the result is provably optimal.
    pub optimal: bool,
}

impl MaxSatResult {
    /// Builds a result by evaluating `assignment` against `instance`.
    pub fn from_assignment(
        instance: &MaxSatInstance<'_>,
        assignment: Vec<bool>,
        optimal: bool,
    ) -> Self {
        let satisfied_soft: Vec<bool> = instance
            .soft()
            .iter()
            .map(|s| clause_satisfied(&s.lits, &assignment))
            .collect();
        let total_weight = instance
            .soft()
            .iter()
            .zip(&satisfied_soft)
            .filter(|(_, sat)| **sat)
            .map(|(s, _)| s.weight)
            .sum();
        MaxSatResult { assignment, satisfied_soft, total_weight, optimal }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_sat::Var;

    #[test]
    fn bookkeeping() {
        let mut inst = MaxSatInstance::new(0);
        inst.add_hard([Var(2).positive()]);
        inst.add_soft([Var(0).negative(), Var(1).positive()], 3);
        assert_eq!(inst.num_vars(), 3);
        assert!(!inst.has_unit_weights());
        assert_eq!(inst.total_soft_weight(), 3);
        let a = vec![false, false, true];
        assert!(inst.hard_satisfied(&a));
        assert_eq!(inst.soft_weight(&a), 3);
        let r = MaxSatResult::from_assignment(&inst, a, true);
        assert_eq!(r.total_weight, 3);
        assert_eq!(r.satisfied_soft, vec![true]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        MaxSatInstance::new(1).add_soft([Var(0).positive()], 0);
    }

    #[test]
    fn borrowed_hard_base_is_not_copied_but_counts() {
        let mut base = Cnf::new();
        base.add_clause([Var(0).positive(), Var(1).positive()]);
        base.add_clause([Var(0).negative(), Var(1).negative()]);
        let mut inst = MaxSatInstance::with_hard_base(&base);
        assert_eq!(inst.num_vars(), 2);
        assert_eq!(inst.hard_len(), 2);
        inst.add_hard([Var(2).positive()]);
        inst.add_soft([Var(0).positive()], 1);
        assert_eq!(inst.hard_len(), 3);
        assert_eq!(inst.hard_iter().count(), 3);
        assert!(inst.hard_satisfied(&[true, false, true]));
        assert!(!inst.hard_satisfied(&[true, true, true]));
        // Both solvers honour the borrowed base.
        let res = crate::solve(&inst, crate::MaxSatStrategy::Exact).unwrap();
        assert_eq!(res.total_weight, 1);
        assert!(inst.hard_satisfied(&res.assignment));
        let ls = crate::solve(
            &inst,
            crate::MaxSatStrategy::LocalSearch { max_flips: 1000, seed: 1 },
        )
        .unwrap();
        assert!(inst.hard_satisfied(&ls.assignment));
    }
}
