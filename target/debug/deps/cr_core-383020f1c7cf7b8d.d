/root/repo/target/debug/deps/cr_core-383020f1c7cf7b8d.d: crates/cr-core/src/lib.rs crates/cr-core/src/bruteforce.rs crates/cr-core/src/compat.rs crates/cr-core/src/deduce.rs crates/cr-core/src/encode/mod.rs crates/cr-core/src/encode/cnf.rs crates/cr-core/src/encode/omega.rs crates/cr-core/src/framework.rs crates/cr-core/src/implication.rs crates/cr-core/src/isvalid.rs crates/cr-core/src/metrics.rs crates/cr-core/src/orders.rs crates/cr-core/src/pick.rs crates/cr-core/src/rules.rs crates/cr-core/src/spec.rs crates/cr-core/src/suggest.rs crates/cr-core/src/truevalue.rs Cargo.toml

/root/repo/target/debug/deps/libcr_core-383020f1c7cf7b8d.rmeta: crates/cr-core/src/lib.rs crates/cr-core/src/bruteforce.rs crates/cr-core/src/compat.rs crates/cr-core/src/deduce.rs crates/cr-core/src/encode/mod.rs crates/cr-core/src/encode/cnf.rs crates/cr-core/src/encode/omega.rs crates/cr-core/src/framework.rs crates/cr-core/src/implication.rs crates/cr-core/src/isvalid.rs crates/cr-core/src/metrics.rs crates/cr-core/src/orders.rs crates/cr-core/src/pick.rs crates/cr-core/src/rules.rs crates/cr-core/src/spec.rs crates/cr-core/src/suggest.rs crates/cr-core/src/truevalue.rs Cargo.toml

crates/cr-core/src/lib.rs:
crates/cr-core/src/bruteforce.rs:
crates/cr-core/src/compat.rs:
crates/cr-core/src/deduce.rs:
crates/cr-core/src/encode/mod.rs:
crates/cr-core/src/encode/cnf.rs:
crates/cr-core/src/encode/omega.rs:
crates/cr-core/src/framework.rs:
crates/cr-core/src/implication.rs:
crates/cr-core/src/isvalid.rs:
crates/cr-core/src/metrics.rs:
crates/cr-core/src/orders.rs:
crates/cr-core/src/pick.rs:
crates/cr-core/src/rules.rs:
crates/cr-core/src/spec.rs:
crates/cr-core/src/suggest.rs:
crates/cr-core/src/truevalue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
