//! Push-based correction ingestion: revision-replay ≡ from-scratch
//! re-resolution on the post-revision specification.
//!
//! Every test drives a revisable [`ResolutionSession`] through
//! [`resolve_with_revisions_checked`], which — after **every** revision
//! batch — encodes the mirrored post-revision specification from scratch
//! and asserts that validity, the deduced value orders and the extracted
//! true values coincide with the replayed warm engine. The deterministic
//! cases additionally pin down the *cone* behaviour: withdrawing a fired
//! CFD or a load-bearing order must invalidate a non-empty derivation cone
//! (the partial-invalidation path PR 4 could only exercise at the cr-sat
//! unit level), while the engine never rebuilds and never falls back to a
//! full propagation reset.

use cr_constraints::parser::{parse_cfd_file, parse_currency_file};
use cr_core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use cr_core::ingest::{
    resolve_with_revisions_checked, Revision, ScriptedRevisions,
};
use cr_core::Specification;
use cr_types::{AttrId, EntityInstance, Schema, Tuple, TupleId, Value};

/// A spec whose CFD *fires* automatically at round 0 (status chain → AC
/// order → ωX satisfied → city derived) while `job` stays ambiguous, so
/// resolution needs at least one interaction round — the window in which
/// upstream corrections arrive.
fn firing_cfd_spec() -> (Specification, Tuple) {
    let s = Schema::new("p", ["status", "AC", "city", "job"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([
                Value::str("working"),
                Value::int(1),
                Value::str("NY"),
                Value::str("nurse"),
            ]),
            Tuple::of([
                Value::str("retired"),
                Value::int(2),
                Value::str("LA"),
                Value::str("n/a"),
            ]),
        ],
    )
    .unwrap();
    let sigma = parse_currency_file(
        &s,
        r#"
        phi1: t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2
        phi2: t1 <[status] t2 -> t1 <[AC] t2
        "#,
    )
    .unwrap();
    let gamma = parse_cfd_file(&s, "psi1: AC = 2 -> city = \"LA\"").unwrap();
    let truth = Tuple::of([
        Value::str("retired"),
        Value::int(2),
        Value::str("LA"),
        Value::str("n/a"),
    ]);
    (Specification::without_orders(e, sigma, gamma), truth)
}

fn config() -> ResolutionConfig {
    ResolutionConfig::default()
}

#[test]
fn retracting_a_fired_cfd_has_a_nonempty_cone_and_matches_scratch() {
    let (spec, truth) = firing_cfd_spec();
    let mut oracle = GroundTruthOracle::new(truth);
    let mut source =
        ScriptedRevisions::new(vec![(1, Revision::RetractCfd { cfd: 0 })]);
    let checked =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle, &mut source)
            .expect("replay must match scratch");
    assert!(checked.valid);
    assert!(checked.complete, "oracle answers the re-opened attributes");
    assert_eq!(checked.revisions.events, 1);
    assert!(
        checked.revisions.invalidated > 0,
        "the CFD had fired: its derivation cone must be non-empty, got {:?}",
        checked.revisions
    );
    assert_eq!(checked.replay_stats.2, 0, "no full propagation resets");
    assert!(checked.checks >= 2);
}

#[test]
fn withdrawing_a_load_bearing_order_reopens_the_attribute() {
    let (mut_spec, truth) = firing_cfd_spec();
    // Assert the city order explicitly instead of relying on the CFD, then
    // withdraw it mid-resolution.
    let city = mut_spec.schema().attr_id("city").unwrap();
    let mut orders = cr_core::PartialOrders::empty(mut_spec.schema().arity());
    orders.add(city, TupleId(0), TupleId(1));
    let spec = Specification::new(
        mut_spec.entity().clone(),
        orders,
        mut_spec.sigma().to_vec(),
        vec![], // no CFD: the explicit order carries the city derivation
    );
    let mut oracle = GroundTruthOracle::new(truth);
    let mut source = ScriptedRevisions::new(vec![(
        1,
        Revision::WithdrawOrder { attr: city, lo: TupleId(0), hi: TupleId(1) },
    )]);
    let checked =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle, &mut source)
            .expect("replay must match scratch");
    assert!(checked.valid);
    assert!(checked.complete);
    assert!(
        checked.revisions.invalidated > 0,
        "the base order was load-bearing: non-empty cone expected, got {:?}",
        checked.revisions
    );
    assert_eq!(checked.replay_stats.2, 0);
}

#[test]
fn value_replacement_shared_new_and_null_all_match_scratch() {
    let (spec, truth) = firing_cfd_spec();
    let city = spec.schema().attr_id("city").unwrap();
    let job = spec.schema().attr_id("job").unwrap();
    for (label, value) in [
        ("shared", Value::str("LA")),      // t0.city := LA (city space shrinks)
        ("fresh", Value::str("Boston")),   // brand-new value mid-resolution
        ("null", Value::Null),             // the source withdraws the cell
    ] {
        let mut oracle = GroundTruthOracle::new(truth.clone());
        let mut source = ScriptedRevisions::new(vec![(
            1,
            Revision::ReplaceValue { tuple: TupleId(0), attr: city, value },
        )]);
        let checked =
            resolve_with_revisions_checked(&config(), &spec, &mut oracle, &mut source)
                .unwrap_or_else(|e| panic!("{label}: replay diverged: {e}"));
        assert!(checked.valid, "{label}");
        assert_eq!(checked.revisions.events, 1, "{label}");
    }
    // Replacing the ambiguous job value away entirely: the attribute
    // settles without asking the user (its space collapses to one live
    // value), matching scratch.
    let mut oracle = GroundTruthOracle::new(truth);
    let mut source = ScriptedRevisions::new(vec![(
        1,
        Revision::ReplaceValue { tuple: TupleId(0), attr: job, value: Value::str("n/a") },
    )]);
    let checked =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle, &mut source)
            .expect("job replacement must match scratch");
    assert!(checked.valid);
}

#[test]
fn withdrawing_an_answer_reopens_it_and_matches_scratch() {
    let (spec, truth) = firing_cfd_spec();
    let job = spec.schema().attr_id("job").unwrap();
    // Round 0: the oracle answers `job` (the only ambiguous attr);
    // round 1 withdraws that answer — the engine must re-open the
    // attribute exactly like a spec that never got the answer, and the
    // oracle then re-answers.
    let to = TupleId(spec.entity().len() as u32);
    let mut oracle = GroundTruthOracle::new(truth);
    let mut source = ScriptedRevisions::new(vec![(
        1,
        Revision::WithdrawAnswer { attr: job, tuple: to },
    )]);
    let checked =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle, &mut source)
            .expect("answer withdrawal must match scratch");
    assert!(checked.valid);
    assert!(checked.complete, "the oracle re-answers after the withdrawal");
    assert!(checked.interactions >= 2, "withdrawal forces a second interaction");
}

#[test]
fn resolve_with_revisions_reports_telemetry_and_agrees_with_checked() {
    let (spec, truth) = firing_cfd_spec();
    let events = vec![(1, Revision::RetractCfd { cfd: 0 })];
    let mut oracle = GroundTruthOracle::new(truth.clone());
    let mut source = ScriptedRevisions::new(events.clone());
    let outcome = Resolver::new(config()).resolve_with_revisions(
        &spec,
        &mut oracle,
        &mut source,
    );
    assert!(outcome.valid);
    assert!(outcome.complete);
    assert_eq!(outcome.rebuilds, 0, "revisions must never rebuild");
    assert_eq!(outcome.revisions.events, 1);
    assert!(outcome.revisions.retracted_groups >= 1);
    assert!(outcome.revisions.invalidated > 0, "non-empty cone end-to-end");
    assert!(
        outcome.rounds.iter().any(|r| r.revision_events > 0),
        "per-round revision telemetry must be stamped"
    );
    // The production path resolves to the same tuple as the checked one.
    let mut oracle2 = GroundTruthOracle::new(truth);
    let mut source2 = ScriptedRevisions::new(events);
    let checked =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle2, &mut source2)
            .expect("checked replay");
    assert_eq!(outcome.resolved, checked.resolved);
    assert_eq!(outcome.interactions, checked.interactions);
}

#[test]
fn retired_values_drop_out_of_candidates_and_suggestions() {
    // Two city values; revising the only "NY" cell away must retire NY:
    // the attribute then has a single live value and settles without any
    // user interaction — exactly like the revised spec from scratch.
    let s = Schema::new("p", ["name", "city"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([Value::str("X"), Value::str("NY")]),
            Tuple::of([Value::str("X"), Value::str("LA")]),
        ],
    )
    .unwrap();
    let spec = Specification::without_orders(e, vec![], vec![]);
    let city = s.attr_id("city").unwrap();
    let mut oracle = cr_core::framework::SilentOracle;
    let mut source = ScriptedRevisions::new(vec![(
        0,
        Revision::ReplaceValue { tuple: TupleId(0), attr: city, value: Value::str("LA") },
    )]);
    let checked =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle, &mut source)
            .expect("retirement must match scratch");
    assert!(checked.valid);
    assert!(
        checked.complete,
        "after NY retires, LA is the unique live value: {:?}",
        checked.resolved
    );
    assert_eq!(checked.resolved.get(city), Some(&Value::str("LA")));
}

#[test]
fn revived_value_returns_to_the_query_surface() {
    // Retire LA (replace it with NY), then replace it back: the session
    // must agree with scratch at both steps — including the revival, where
    // LA re-enters candidates through its *original* (still allocated)
    // order variables. Driven manually on the public session API: the
    // resolution loop would settle after the retirement and never see the
    // revival.
    use cr_core::framework::DeductionMethod;
    use cr_core::ingest::{check_session_against_scratch, ResolutionSession, SpecMirror};
    let s = Schema::new("p", ["name", "city"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([Value::str("X"), Value::str("NY")]),
            Tuple::of([Value::str("X"), Value::str("LA")]),
        ],
    )
    .unwrap();
    let spec = Specification::without_orders(e, vec![], vec![]);
    let city = s.attr_id("city").unwrap();
    let mut session = ResolutionSession::new_revisable(&config(), &spec);
    let mut mirror = SpecMirror::new(&spec);

    let retire =
        Revision::ReplaceValue { tuple: TupleId(1), attr: city, value: Value::str("NY") };
    session.apply_revision(&retire).expect("retirement is well-formed");
    mirror.apply(&retire);
    check_session_against_scratch(&mut session, &mirror).expect("retirement step");
    assert!(session.is_valid());
    let od = session.deduce(DeductionMethod::UnitPropagation).unwrap();
    assert_eq!(
        session.true_values(&od).get(city),
        Some(&Value::str("NY")),
        "NY is the unique live city after LA retires"
    );

    let revive =
        Revision::ReplaceValue { tuple: TupleId(1), attr: city, value: Value::str("LA") };
    session.apply_revision(&revive).expect("revival is well-formed");
    mirror.apply(&revive);
    check_session_against_scratch(&mut session, &mirror).expect("revival step");
    let od = session.deduce(DeductionMethod::UnitPropagation).unwrap();
    assert_eq!(
        session.true_values(&od).get(city),
        None,
        "LA is back: the city is ambiguous again"
    );
    assert_eq!(session.revision_telemetry().events, 2);
    assert_eq!(session.rebuilds(), 0);
}

#[test]
fn nulling_every_cell_of_an_attribute_interns_null_late_and_matches_scratch() {
    // Regression (review finding): the attribute has no nulls initially,
    // so its space lacks a null id; revising *every* cell to null must
    // intern null late (with its bottom units) — a from-scratch encode of
    // the revised spec has space {null} and trivially resolves the
    // attribute to Null, and the replay must agree instead of leaving the
    // attribute unresolved over an all-retired live set.
    let s = Schema::new("p", ["name", "city"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([Value::str("X"), Value::str("NY")]),
            Tuple::of([Value::str("X"), Value::str("LA")]),
        ],
    )
    .unwrap();
    let spec = Specification::without_orders(e, vec![], vec![]);
    let city = s.attr_id("city").unwrap();
    let mut oracle = cr_core::framework::SilentOracle;
    let mut source = ScriptedRevisions::new(vec![
        (0, Revision::ReplaceValue { tuple: TupleId(0), attr: city, value: Value::Null }),
        (0, Revision::ReplaceValue { tuple: TupleId(1), attr: city, value: Value::Null }),
    ]);
    let checked =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle, &mut source)
            .expect("late-null interning must match scratch");
    assert!(checked.valid);
    assert!(checked.complete);
    assert_eq!(checked.resolved.get(city), Some(&Value::Null));
}

#[test]
fn revisions_that_invalidate_the_spec_agree_with_scratch() {
    // Conflicting base orders at the value level, introduced by a value
    // revision: t0 ≺ t1 and t1 ≺ t0 on `a` are fine while the values
    // differ pairwise consistently... make them contradict by revising a
    // value so both pairs map to the same value pair in opposite
    // directions.
    let s = Schema::new("p", ["a"]).unwrap();
    let e = EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([Value::int(1)]),
            Tuple::of([Value::int(2)]),
            Tuple::of([Value::int(3)]),
        ],
    )
    .unwrap();
    let mut orders = cr_core::PartialOrders::empty(1);
    orders.add(AttrId(0), TupleId(0), TupleId(1)); // 1 ≺ 2
    orders.add(AttrId(0), TupleId(1), TupleId(2)); // 2 ≺ 3
    let spec = Specification::new(e, orders, vec![], vec![]);
    // Revise t2.a from 3 to 1: now 2 ≺ 1 joins 1 ≺ 2 — a cycle.
    let mut oracle = cr_core::framework::SilentOracle;
    let mut source = ScriptedRevisions::new(vec![(
        0,
        Revision::ReplaceValue { tuple: TupleId(2), attr: AttrId(0), value: Value::int(1) },
    )]);
    let checked =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle, &mut source)
            .expect("replay and scratch must agree on invalidity");
    assert!(!checked.valid, "the revision introduces a value-level cycle");
}

#[test]
fn randomized_timelines_replay_equals_scratch() {
    // Seeded scenarios × seeded revision timelines, checked after every
    // batch. Covers CFD retraction, order withdrawal, value replacement
    // (shared / fresh / null) and answer withdrawal interleaved with
    // ordinary (including out-of-domain) oracle answers.
    let mut nonempty_cones = 0;
    for seed in 0..12u64 {
        let scenario = cr_data::gen::scenario(&cr_data::gen::ScenarioConfig {
            seed,
            attrs: 4,
            tuples: 8,
            domain: 6,
            sigma: 5,
            gamma: 2,
            order_density: 0.2,
            conflict_density: 0.7,
            null_density: 0.05,
            new_value_answers: seed % 3 == 0,
        });
        let mut source = cr_data::gen::revision_timeline(
            &scenario.spec,
            &cr_data::gen::RevisionTimelineConfig {
                seed: seed.wrapping_mul(31).wrapping_add(7),
                events: 5,
                rounds: 3,
                withdraw_answer_rounds: if seed % 2 == 0 { vec![2] } else { vec![] },
                ..Default::default()
            },
        );
        let mut oracle = GroundTruthOracle::with_cap(scenario.truth.clone(), 1);
        let checked = resolve_with_revisions_checked(
            &config(),
            &scenario.spec,
            &mut oracle,
            &mut source,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: replay diverged from scratch: {e}"));
        if checked.revisions.invalidated > 0 {
            nonempty_cones += 1;
        }
    }
    assert!(
        nonempty_cones > 0,
        "the randomized timelines must exercise non-empty retraction cones"
    );
}

#[test]
fn empty_timeline_is_a_plain_resolution_with_a_final_check() {
    // A revision source that never delivers anything must behave exactly
    // like the plain interactive loop — zero events, zero cones, and the
    // final scratch check still runs.
    let (spec, truth) = firing_cfd_spec();
    let mut oracle = GroundTruthOracle::new(truth);
    let mut source = ScriptedRevisions::new(vec![]);
    let checked =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle, &mut source)
            .expect("empty timeline must match scratch");
    assert!(checked.valid);
    assert!(checked.complete);
    assert_eq!(checked.revisions.events, 0);
    assert_eq!(checked.revisions.invalidated, 0);
    assert!(checked.checks >= 1, "the closing equivalence check always runs");
}

#[test]
fn batch_targeting_an_already_retired_value_matches_scratch() {
    // One round-1 batch: the first event retires "NY" (the only cell
    // carrying it is replaced), the second — in the same batch — targets
    // the now-retired value, writing it back. The revival must go through
    // the ordinary extension path — never divergence from scratch.
    let (spec, truth) = firing_cfd_spec();
    let city = spec.schema().attr_id("city").unwrap();
    let mut oracle = GroundTruthOracle::new(truth);
    let mut source = ScriptedRevisions::new(vec![
        (1, Revision::ReplaceValue { tuple: TupleId(0), attr: city, value: Value::str("LA") }),
        (1, Revision::ReplaceValue { tuple: TupleId(0), attr: city, value: Value::str("NY") }),
    ]);
    let checked =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle, &mut source)
            .expect("retire-then-revive must match scratch");
    assert!(checked.valid);
    assert!(checked.complete);
    assert_eq!(checked.revisions.events, 2);
    assert_eq!(checked.replay_stats.2, 0, "no full propagation resets");
}

#[test]
fn withdrawing_a_never_asked_answer_is_a_noop() {
    // The round-1 batch first nulls t0.job, then withdraws the "answer" on
    // that now-null cell: no order pairs rank t0 on job and the cell is
    // already null, so the withdrawal is a permissive no-op. The run must
    // end exactly where a run with only the nulling event ends — same
    // resolution, same cone, one extra (no-op) event.
    let (spec, truth) = firing_cfd_spec();
    let job = spec.schema().attr_id("job").unwrap();
    let null_job =
        Revision::ReplaceValue { tuple: TupleId(0), attr: job, value: Value::Null };
    let mut oracle = GroundTruthOracle::new(truth.clone());
    let mut source = ScriptedRevisions::new(vec![
        (1, null_job.clone()),
        (1, Revision::WithdrawAnswer { attr: job, tuple: TupleId(0) }),
    ]);
    let checked =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle, &mut source)
            .expect("no-op withdrawal must match scratch");
    assert!(checked.valid);
    assert!(checked.complete);

    let mut oracle2 = GroundTruthOracle::new(truth);
    let mut baseline_src = ScriptedRevisions::new(vec![(1, null_job)]);
    let baseline =
        resolve_with_revisions_checked(&config(), &spec, &mut oracle2, &mut baseline_src)
            .expect("baseline");
    assert_eq!(checked.resolved, baseline.resolved);
    assert_eq!(checked.interactions, baseline.interactions);
    assert_eq!(
        checked.revisions.invalidated, baseline.revisions.invalidated,
        "the no-op withdrawal must add nothing to the retraction cone"
    );
    assert_eq!(checked.revisions.events, baseline.revisions.events + 1);
}
