//! `ConvertToCNF`: from instance constraints to the CNF Φ(Se).

use cr_constraints::{Predicate, TupleRef};
use cr_sat::{Cnf, Lit, Var};
use cr_types::{AttrId, AttrValueSpace, Value, ValueId};

use super::omega::{instantiate, instantiate_pair, Conclusion, InstanceConstraint, OrderAtom};
use super::EncodeOptions;
use crate::spec::{Specification, UserInput};

/// Sentinel for an unallocated slot in [`VarTable`].
const NO_VAR: u32 = u32::MAX;

/// Dense `attr × lo × hi → Var` index. Order-variable lookup sits on the
/// hot path of clause generation, deduction and suggestion; a flat
/// row-major table per attribute answers it with two bounds checks and one
/// load instead of hashing a 10-byte key.
#[derive(Clone, Debug, Default)]
struct VarTable {
    /// One `n × n` slot table per attribute (`lo.index() * n + hi.index()`).
    per_attr: Vec<Vec<u32>>,
    /// `n` (number of interned values) per attribute.
    width: Vec<usize>,
}

impl VarTable {
    /// A table sized for the given per-attribute value-space widths.
    fn new(widths: Vec<usize>) -> Self {
        VarTable {
            per_attr: widths.iter().map(|&n| vec![NO_VAR; n * n]).collect(),
            width: widths,
        }
    }

    #[inline]
    fn get(&self, attr: AttrId, lo: ValueId, hi: ValueId) -> Option<Var> {
        let n = self.width[attr.index()];
        if lo.index() >= n || hi.index() >= n {
            return None;
        }
        let raw = self.per_attr[attr.index()][lo.index() * n + hi.index()];
        (raw != NO_VAR).then_some(Var(raw))
    }

    #[inline]
    fn set(&mut self, attr: AttrId, lo: ValueId, hi: ValueId, var: Var) {
        let n = self.width[attr.index()];
        self.per_attr[attr.index()][lo.index() * n + hi.index()] = var.0;
    }
}

/// Outcome of [`EncodedSpec::extend_with_input`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExtendOutcome {
    /// The encoding was extended in place; new clauses were appended to the
    /// CNF (sync solvers with the clause tail).
    Extended,
    /// The input cannot be expressed as a pure extension (it introduces
    /// values outside the interned space, or the encoding was built with
    /// lazy transitivity). The caller must re-encode from scratch.
    NeedsRebuild,
}

/// The encoded form of a specification: the CNF `Φ(Se)`, the value spaces,
/// the variable table for order atoms and the instance constraints Ω(Se)
/// they came from. All downstream algorithms (`IsValid`, `DeduceOrder`,
/// `Suggest`, the exact true-value queries) run off this struct.
///
/// The encoding supports **delta extension** with user input
/// ([`EncodedSpec::extend_with_input`]): value spaces and the Ω(Se)
/// instantiation of the original tuples are unchanged by user answers, so a
/// round of the Fig. 4 loop only appends the clauses induced by the fresh
/// user-input tuple instead of re-deriving the whole CNF.
pub struct EncodedSpec {
    space: AttrValueSpace,
    vars: VarTable,
    atoms: Vec<OrderAtom>,
    cnf: Cnf,
    omega: Vec<InstanceConstraint>,
    options: EncodeOptions,
}

impl EncodedSpec {
    /// Encodes `spec` with default options.
    pub fn encode(spec: &Specification) -> Self {
        Self::encode_with(spec, EncodeOptions::default())
    }

    /// Encodes `spec` with explicit [`EncodeOptions`].
    pub fn encode_with(spec: &Specification, options: EncodeOptions) -> Self {
        let inst = instantiate(spec);
        let widths: Vec<usize> = (0..inst.space.arity())
            .map(|i| inst.space.attr(AttrId(i as u16)).len())
            .collect();
        let mut enc = EncodedSpec {
            vars: VarTable::new(widths),
            space: inst.space,
            atoms: Vec::new(),
            cnf: Cnf::new(),
            omega: Vec::new(),
            options,
        };

        // Variables for every ordered pair of distinct values — either over
        // the whole space (paper encoding) or lazily over the values that
        // occur in Ω(Se).
        if options.full_transitivity {
            for attr in (0..enc.space.arity() as u16).map(AttrId) {
                let n = enc.space.attr(attr).len() as u32;
                for a in 0..n {
                    for b in 0..n {
                        if a != b {
                            enc.var(OrderAtom { attr, lo: ValueId(a), hi: ValueId(b) });
                        }
                    }
                }
            }
        } else {
            for c in &inst.omega {
                for atom in &c.premise {
                    enc.var(*atom);
                    enc.var(OrderAtom { attr: atom.attr, lo: atom.hi, hi: atom.lo });
                }
                if let Conclusion::Atom(atom) = c.conclusion {
                    enc.var(atom);
                    enc.var(OrderAtom { attr: atom.attr, lo: atom.hi, hi: atom.lo });
                }
            }
        }

        // Ω(Se) clauses.
        for c in inst.omega {
            enc.add_omega_constraint(c);
        }

        // Transitivity and asymmetry per attribute, over the realised
        // variable set.
        let mut per_attr: Vec<Vec<ValueId>> = vec![Vec::new(); enc.space.arity()];
        for atom in &enc.atoms {
            per_attr[atom.attr.index()].push(atom.lo);
            per_attr[atom.attr.index()].push(atom.hi);
        }
        for (ai, vals) in per_attr.iter_mut().enumerate() {
            vals.sort_unstable();
            vals.dedup();
            let attr = AttrId(ai as u16);
            // Asymmetry: ¬x_ab ∨ ¬x_ba for unordered pairs; optionally
            // totality: x_ab ∨ x_ba (see EncodeOptions::totality).
            for (i, &a) in vals.iter().enumerate() {
                for &b in &vals[i + 1..] {
                    if let (Some(xab), Some(xba)) =
                        (enc.vars.get(attr, a, b), enc.vars.get(attr, b, a))
                    {
                        enc.cnf.add_clause([xab.negative(), xba.negative()]);
                        if options.totality {
                            enc.cnf.add_clause([xab.positive(), xba.positive()]);
                        }
                    }
                }
            }
            // Transitivity over realised triples.
            for &a in vals.iter() {
                for &b in vals.iter() {
                    if a == b {
                        continue;
                    }
                    let Some(xab) = enc.vars.get(attr, a, b) else {
                        continue;
                    };
                    for &c in vals.iter() {
                        if c == a || c == b {
                            continue;
                        }
                        let (Some(xbc), Some(xac)) =
                            (enc.vars.get(attr, b, c), enc.vars.get(attr, a, c))
                        else {
                            continue;
                        };
                        enc.cnf
                            .add_clause([xab.negative(), xbc.negative(), xac.positive()]);
                    }
                }
            }
        }
        enc
    }

    /// Extends the encoding in place with the effect of
    /// [`Specification::apply_user_input`]: the fresh tuple `to` carrying
    /// the answered values is ranked strictly above every existing tuple on
    /// each answered attribute, which translates to
    ///
    /// 1. unit clauses `w ≺v_A v` for every other interned value `w` of each
    ///    answered attribute `A` (the base-order extension `Ot`), and
    /// 2. the instance constraints of Σ on the tuple pairs involving `to`
    ///    (pairs among the original tuples are already instantiated, and
    ///    user input changes neither the value spaces nor the Γ
    ///    instantiation when the answers are in-domain).
    ///
    /// `spec` must be the specification this encoding currently represents
    /// (i.e. *before* the input is applied). Returns
    /// [`ExtendOutcome::NeedsRebuild`] — with `self` untouched — when an
    /// answer lies outside the interned value space (new values change the
    /// space, the CFD instantiation and the axiom set, so the caller must
    /// re-encode) or when the encoding was built with lazy transitivity.
    pub fn extend_with_input(
        &mut self,
        spec: &Specification,
        input: &UserInput,
    ) -> ExtendOutcome {
        if !self.options.full_transitivity {
            return ExtendOutcome::NeedsRebuild;
        }
        let mut answered: Vec<(AttrId, ValueId)> = Vec::new();
        for (attr, v) in &input.values {
            if v.is_null() {
                continue;
            }
            match self.space.get(*attr, v) {
                Some(id) => answered.push((*attr, id)),
                None => return ExtendOutcome::NeedsRebuild,
            }
        }

        // (1) Base-order units: the answered value tops its attribute.
        for &(attr, vid) in &answered {
            let below: Vec<ValueId> = self
                .space
                .attr(attr)
                .iter()
                .filter(|(id, v)| *id != vid && !v.is_null())
                .map(|(id, _)| id)
                .collect();
            for lo in below {
                self.add_omega_constraint(InstanceConstraint {
                    premise: Vec::new(),
                    conclusion: Conclusion::Atom(OrderAtom { attr, lo, hi: vid }),
                    origin: super::Origin::BaseOrder,
                });
            }
        }

        // (2) Σ instances on pairs involving the user-input tuple. Tuples
        // sharing a projection on a constraint's referenced attributes
        // produce identical instances (same grouping as `instantiate`), so
        // only one representative per projection is paired with `to`.
        let arity = spec.schema().arity();
        let mut values = vec![Value::Null; arity];
        for (attr, v) in &input.values {
            values[attr.index()] = v.clone();
        }
        let to = cr_types::Tuple::from_values(values);
        let answered_attr = |attr: AttrId| answered.iter().any(|&(a, _)| a == attr);
        for (ci, constraint) in spec.sigma().iter().enumerate() {
            // A pair involving `to` instantiates only if the conclusion is
            // non-null on `to`'s side, and order / tuple-comparison
            // premises need both sides non-null — so those attributes must
            // all be among the answered ones. Σ can be large (hundreds of
            // constraints on generated workloads); these O(|ω|) checks skip
            // the per-tuple work for the vast majority.
            if !answered_attr(constraint.conclusion_attr()) {
                continue;
            }
            if constraint.premises().iter().any(|p| match p {
                Predicate::Order { attr } | Predicate::TupleCmp { attr, .. } => {
                    !answered_attr(*attr)
                }
                Predicate::ConstCmp { .. } => false,
            }) {
                continue;
            }
            // Constant comparisons against `to`'s side have one fixed
            // operand: evaluate them once per direction instead of per
            // tuple ((to, to) is safe — a ConstCmp only reads the tuple
            // its `TupleRef` picks).
            let direction_open = |to_ref: TupleRef| {
                constraint.premises().iter().all(|p| match p {
                    Predicate::ConstCmp { tuple, .. } if *tuple == to_ref => {
                        p.eval_comparison(&to, &to) == Some(true)
                    }
                    _ => true,
                })
            };
            let to_second = direction_open(TupleRef::T2); // pairs (t, to)
            let to_first = direction_open(TupleRef::T1); // pairs (to, t)
            if !to_first && !to_second {
                continue;
            }
            let mut attrs: Vec<AttrId> = constraint
                .premises()
                .iter()
                .map(|p| p.attr())
                .chain(std::iter::once(constraint.conclusion_attr()))
                .collect();
            attrs.sort_unstable();
            attrs.dedup();
            let mut seen: std::collections::HashSet<Vec<&Value>> = std::collections::HashSet::new();
            for (_, t) in spec.entity().iter() {
                let projection: Vec<&Value> = attrs.iter().map(|&a| t.get(a)).collect();
                if !seen.insert(projection) {
                    continue;
                }
                if to_second {
                    if let Some(c) = instantiate_pair(&self.space, constraint, ci, t, &to) {
                        self.add_omega_constraint(c);
                    }
                }
                if to_first {
                    if let Some(c) = instantiate_pair(&self.space, constraint, ci, &to, t) {
                        self.add_omega_constraint(c);
                    }
                }
            }
        }
        ExtendOutcome::Extended
    }

    /// Records an instance constraint and adds its clause to the CNF.
    ///
    /// Delta constraints from [`EncodedSpec::extend_with_input`] may
    /// duplicate already-instantiated projections — harmless: duplicate
    /// clauses are absorbed by the solvers, and rule derivation
    /// canonicalises its premise pools (`true_der` sorts and dedups them),
    /// so deriving rules from Ω(Se) is insensitive to duplicates and
    /// ordering.
    fn add_omega_constraint(&mut self, c: InstanceConstraint) {
        let premise: Vec<Lit> = c.premise.iter().map(|a| self.var(*a).positive()).collect();
        match c.conclusion {
            Conclusion::Atom(atom) => {
                let concl = self.var(atom).positive();
                self.cnf.add_implication(&premise, concl);
            }
            Conclusion::False => self.cnf.add_negated_conjunction(&premise),
        }
        self.omega.push(c);
    }

    /// Allocates (or returns) the variable for an order atom.
    fn var(&mut self, atom: OrderAtom) -> Var {
        if let Some(v) = self.vars.get(atom.attr, atom.lo, atom.hi) {
            return v;
        }
        let v = self.cnf.new_var();
        debug_assert_eq!(v.index(), self.atoms.len());
        self.vars.set(atom.attr, atom.lo, atom.hi, v);
        self.atoms.push(atom);
        v
    }

    /// The CNF `Φ(Se)`.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// The options this specification was encoded with.
    pub fn options(&self) -> EncodeOptions {
        self.options
    }

    /// The instance constraints Ω(Se).
    pub fn omega(&self) -> &[InstanceConstraint] {
        &self.omega
    }

    /// The per-attribute value spaces (active domain + null).
    pub fn space(&self) -> &AttrValueSpace {
        &self.space
    }

    /// The variable encoding `lo ≺v_attr hi`, if allocated.
    pub fn var_of(&self, attr: AttrId, lo: ValueId, hi: ValueId) -> Option<Var> {
        self.vars.get(attr, lo, hi)
    }

    /// The order atom behind a variable.
    pub fn atom_of(&self, var: Var) -> OrderAtom {
        self.atoms[var.index()]
    }

    /// Number of order variables.
    pub fn num_order_vars(&self) -> usize {
        self.atoms.len()
    }

    /// Interned id of `value` in `attr`'s space.
    pub fn value_id(&self, attr: AttrId, value: &Value) -> Option<ValueId> {
        self.space.get(attr, value)
    }

    /// The value behind `(attr, id)`.
    pub fn value(&self, attr: AttrId, id: ValueId) -> &Value {
        self.space.value(attr, id)
    }

    /// Assumption literals asserting "`v` is the most current value of
    /// `attr`": every other value of the space sits strictly below `v`.
    /// Returns `None` if some required variable was not allocated (lazy
    /// encoding) — callers should fall back to the full encoding.
    pub fn top_assumptions(&self, attr: AttrId, v: ValueId) -> Option<Vec<Lit>> {
        let n = self.space.attr(attr).len() as u32;
        let mut lits = Vec::with_capacity(n as usize - 1);
        for o in 0..n {
            let o = ValueId(o);
            if o == v {
                continue;
            }
            lits.push(self.var_of(attr, o, v)?.positive());
        }
        Some(lits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
    use cr_sat::{SolveResult, Solver};
    use cr_types::{EntityInstance, Schema, Tuple};

    fn tiny_spec() -> Specification {
        let s = Schema::new("p", ["status", "job"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::str("nurse")]),
                Tuple::of([Value::str("retired"), Value::str("n/a")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[job] t2").unwrap(),
        ];
        Specification::without_orders(e, sigma, vec![])
    }

    #[test]
    fn full_encoding_allocates_all_pairs() {
        let spec = tiny_spec();
        let enc = EncodedSpec::encode(&spec);
        // Two attributes, two values each → 2·2·1 = 4 order vars.
        assert_eq!(enc.num_order_vars(), 4);
        // Sat: the chain working≺retired, nurse≺n/a is consistent.
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_derives_the_chain() {
        let spec = tiny_spec();
        let enc = EncodedSpec::encode(&spec);
        let mut up = cr_sat::UnitPropagator::new(enc.cnf());
        let implied = match up.run() {
            cr_sat::UpOutcome::Fixpoint { implied } => implied,
            cr_sat::UpOutcome::Conflict => panic!("valid spec"),
        };
        let status = spec.schema().attr_id("status").unwrap();
        let job = spec.schema().attr_id("job").unwrap();
        let sid = |v: &str| enc.value_id(status, &Value::str(v)).unwrap();
        let jid = |v: &str| enc.value_id(job, &Value::str(v)).unwrap();
        let x_status = enc.var_of(status, sid("working"), sid("retired")).unwrap();
        let x_job = enc.var_of(job, jid("nurse"), jid("n/a")).unwrap();
        assert!(implied.contains(&x_status.positive()));
        assert!(implied.contains(&x_job.positive()));
    }

    #[test]
    fn contradictory_base_orders_are_unsat() {
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![Tuple::of([Value::int(1)]), Tuple::of([Value::int(2)])],
        )
        .unwrap();
        let mut orders = crate::orders::PartialOrders::empty(1);
        orders.add(AttrId(0), cr_types::TupleId(0), cr_types::TupleId(1));
        orders.add(AttrId(0), cr_types::TupleId(1), cr_types::TupleId(0));
        let spec = Specification::new(e, orders, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn transitivity_closes_chains() {
        // a<b, b<c base orders; check a<c is implied (Φ ∧ ¬x_ac unsat).
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::int(1)]),
                Tuple::of([Value::int(2)]),
                Tuple::of([Value::int(3)]),
            ],
        )
        .unwrap();
        let mut orders = crate::orders::PartialOrders::empty(1);
        orders.add(AttrId(0), cr_types::TupleId(0), cr_types::TupleId(1));
        orders.add(AttrId(0), cr_types::TupleId(1), cr_types::TupleId(2));
        let spec = Specification::new(e, orders, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let a = AttrId(0);
        let id = |v: i64| enc.value_id(a, &Value::int(v)).unwrap();
        let x_ac = enc.var_of(a, id(1), id(3)).unwrap();
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(
            solver.solve_with_assumptions(&[x_ac.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn lazy_encoding_matches_full_on_validity() {
        let spec = tiny_spec();
        let full = EncodedSpec::encode(&spec);
        let lazy = EncodedSpec::encode_with(&spec, EncodeOptions { full_transitivity: false, ..Default::default() });
        assert!(lazy.cnf().num_clauses() <= full.cnf().num_clauses());
        let mut s1 = Solver::from_cnf(full.cnf());
        let mut s2 = Solver::from_cnf(lazy.cnf());
        assert_eq!(s1.solve(), s2.solve());
    }

    #[test]
    fn cfd_plus_currency_derives_cross_attribute_values() {
        // Miniature of Example 2 steps (c)-(d): status chain forces the AC,
        // then the CFD forces the city.
        let s = Schema::new("p", ["status", "AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::int(212), Value::str("NY")]),
                Tuple::of([Value::str("retired"), Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[AC] t2").unwrap(),
        ];
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, sigma, gamma);
        let enc = EncodedSpec::encode(&spec);
        let city = spec.schema().attr_id("city").unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        let x = enc.var_of(city, ny, la).unwrap();
        // NY ≺ LA must be implied.
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(
            solver.solve_with_assumptions(&[x.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn extension_with_in_domain_answer_matches_scratch_deduction() {
        // Answering city=LA must make LA the deduced top of `city` exactly
        // as a from-scratch re-encode of the extended spec would.
        let s = Schema::new("p", ["name", "city"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::str("X"), Value::str("NY")]),
                Tuple::of([Value::str("X"), Value::str("LA")]),
            ],
        )
        .unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        let mut enc = EncodedSpec::encode(&spec);
        let city = spec.schema().attr_id("city").unwrap();
        let input = UserInput::single(city, Value::str("LA"));

        let before = enc.cnf().num_clauses();
        assert_eq!(enc.extend_with_input(&spec, &input), ExtendOutcome::Extended);
        assert!(enc.cnf().num_clauses() > before, "unit clauses appended");

        let (extended, _, _) = spec.apply_user_input(&input);
        let scratch = EncodedSpec::encode(&extended);
        let od_inc = crate::deduce::deduce_order(&enc).unwrap();
        let od_scr = crate::deduce::deduce_order(&scratch).unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        assert!(od_inc.contains(city, ny, la));
        assert!(od_scr.contains(city, ny, la));
    }

    #[test]
    fn extension_instantiates_sigma_on_the_new_tuple() {
        // σ: t1 <[status] t2 → t1 <[job] t2. Answering status=retired
        // creates the pair (t_working, to) whose instance forces the job
        // order too.
        let spec = tiny_spec();
        let mut enc = EncodedSpec::encode(&spec);
        let status = spec.schema().attr_id("status").unwrap();
        let job = spec.schema().attr_id("job").unwrap();
        let input = UserInput::single(status, Value::str("retired"));
        assert_eq!(enc.extend_with_input(&spec, &input), ExtendOutcome::Extended);
        let od = crate::deduce::deduce_order(&enc).unwrap();
        let jid = |v: &str| enc.value_id(job, &Value::str(v)).unwrap();
        assert!(od.contains(job, jid("nurse"), jid("n/a")));
    }

    #[test]
    fn extension_rejects_out_of_domain_values() {
        let spec = tiny_spec();
        let mut enc = EncodedSpec::encode(&spec);
        let clauses = enc.cnf().num_clauses();
        let status = spec.schema().attr_id("status").unwrap();
        let input = UserInput::single(status, Value::str("deceased"));
        assert_eq!(
            enc.extend_with_input(&spec, &input),
            ExtendOutcome::NeedsRebuild
        );
        assert_eq!(enc.cnf().num_clauses(), clauses, "encoding untouched");
    }

    #[test]
    fn extension_rejects_lazy_encodings() {
        let spec = tiny_spec();
        let mut enc = EncodedSpec::encode_with(
            &spec,
            EncodeOptions { full_transitivity: false, ..Default::default() },
        );
        let status = spec.schema().attr_id("status").unwrap();
        let input = UserInput::single(status, Value::str("retired"));
        assert_eq!(
            enc.extend_with_input(&spec, &input),
            ExtendOutcome::NeedsRebuild
        );
    }
}
