//! Perf-regression gate CLI (see `cr_bench::perf` for the comparison
//! semantics and the baseline-refresh recipe).
//!
//! ```text
//! perf_gate check [--baseline perf/baseline.jsonl] [--current target/criterion.jsonl]
//!                 [--tolerance 5.0] [--inject-regression]
//! perf_gate bless [--baseline perf/baseline.jsonl] [--current target/criterion.jsonl]
//! ```
//!
//! `check` exits nonzero on any out-of-tolerance regression or missing
//! benchmark. `--inject-regression` multiplies every current median by
//! 100× before comparing — CI runs it with inverted expectations to
//! prove the gate actually trips. `bless` rewrites the baseline from the
//! current run (deduplicated, sorted by id).

use cr_bench::perf::{compare, parse_jsonl, to_jsonl, GateConfig, Verdict};
use cr_bench::{arg_flag, arg_value};
use std::process::ExitCode;

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let baseline_path =
        arg_value("baseline").unwrap_or_else(|| "perf/baseline.jsonl".to_string());
    let current_path =
        arg_value("current").unwrap_or_else(|| "target/criterion.jsonl".to_string());

    let run = || -> Result<ExitCode, String> {
        match mode.as_str() {
            "bless" => {
                let mut records = parse_jsonl(&read(&current_path)?)?;
                if records.is_empty() {
                    return Err(format!("{current_path} holds no benchmark records"));
                }
                records.sort_by(|a, b| a.id.cmp(&b.id));
                if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
                }
                std::fs::write(&baseline_path, to_jsonl(&records))
                    .map_err(|e| format!("cannot write {baseline_path}: {e}"))?;
                println!("blessed {} benchmarks into {baseline_path}", records.len());
                Ok(ExitCode::SUCCESS)
            }
            "check" => {
                let baseline = parse_jsonl(&read(&baseline_path)?)?;
                if baseline.is_empty() {
                    return Err(format!("{baseline_path} holds no benchmark records"));
                }
                let mut current = parse_jsonl(&read(&current_path)?)?;
                if arg_flag("inject-regression") {
                    println!("injecting a synthetic 100x regression into every benchmark");
                    for r in &mut current {
                        r.median_ns = r.median_ns.saturating_mul(100);
                        r.mean_ns = r.mean_ns.saturating_mul(100);
                    }
                }
                let mut cfg = GateConfig::default();
                if let Some(t) = arg_value("tolerance").and_then(|v| v.parse().ok()) {
                    cfg.tolerance = t;
                }
                let (rows, pass) = compare(&baseline, &current, &cfg);
                println!(
                    "perf gate: {} baseline benchmarks, tolerance {:.1}x, floor {:.3}ms",
                    baseline.len(),
                    cfg.tolerance,
                    cfg.floor_ns as f64 / 1e6
                );
                for row in &rows {
                    println!("  {row}");
                }
                if pass {
                    println!("perf gate: PASS");
                    Ok(ExitCode::SUCCESS)
                } else {
                    let bad = rows
                        .iter()
                        .filter(|r| matches!(r.verdict, Verdict::Regressed | Verdict::Missing))
                        .count();
                    println!("perf gate: FAIL ({bad} regressed/missing)");
                    Ok(ExitCode::FAILURE)
                }
            }
            other => Err(format!(
                "usage: perf_gate <check|bless> [--baseline P] [--current P] \
                 [--tolerance X] [--inject-regression] (got {other:?})"
            )),
        }
    };
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
