/root/repo/target/debug/deps/end_to_end-f45cb58020b44bbd.d: crates/cr-bench/benches/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f45cb58020b44bbd: crates/cr-bench/benches/end_to_end.rs

crates/cr-bench/benches/end_to_end.rs:
