/root/repo/target/release/deps/cr_core-0362edf913c50569.d: crates/cr-core/src/lib.rs crates/cr-core/src/bruteforce.rs crates/cr-core/src/compat.rs crates/cr-core/src/deduce.rs crates/cr-core/src/encode/mod.rs crates/cr-core/src/encode/cnf.rs crates/cr-core/src/encode/omega.rs crates/cr-core/src/framework.rs crates/cr-core/src/implication.rs crates/cr-core/src/isvalid.rs crates/cr-core/src/metrics.rs crates/cr-core/src/orders.rs crates/cr-core/src/pick.rs crates/cr-core/src/rules.rs crates/cr-core/src/spec.rs crates/cr-core/src/suggest.rs crates/cr-core/src/truevalue.rs

/root/repo/target/release/deps/libcr_core-0362edf913c50569.rlib: crates/cr-core/src/lib.rs crates/cr-core/src/bruteforce.rs crates/cr-core/src/compat.rs crates/cr-core/src/deduce.rs crates/cr-core/src/encode/mod.rs crates/cr-core/src/encode/cnf.rs crates/cr-core/src/encode/omega.rs crates/cr-core/src/framework.rs crates/cr-core/src/implication.rs crates/cr-core/src/isvalid.rs crates/cr-core/src/metrics.rs crates/cr-core/src/orders.rs crates/cr-core/src/pick.rs crates/cr-core/src/rules.rs crates/cr-core/src/spec.rs crates/cr-core/src/suggest.rs crates/cr-core/src/truevalue.rs

/root/repo/target/release/deps/libcr_core-0362edf913c50569.rmeta: crates/cr-core/src/lib.rs crates/cr-core/src/bruteforce.rs crates/cr-core/src/compat.rs crates/cr-core/src/deduce.rs crates/cr-core/src/encode/mod.rs crates/cr-core/src/encode/cnf.rs crates/cr-core/src/encode/omega.rs crates/cr-core/src/framework.rs crates/cr-core/src/implication.rs crates/cr-core/src/isvalid.rs crates/cr-core/src/metrics.rs crates/cr-core/src/orders.rs crates/cr-core/src/pick.rs crates/cr-core/src/rules.rs crates/cr-core/src/spec.rs crates/cr-core/src/suggest.rs crates/cr-core/src/truevalue.rs

crates/cr-core/src/lib.rs:
crates/cr-core/src/bruteforce.rs:
crates/cr-core/src/compat.rs:
crates/cr-core/src/deduce.rs:
crates/cr-core/src/encode/mod.rs:
crates/cr-core/src/encode/cnf.rs:
crates/cr-core/src/encode/omega.rs:
crates/cr-core/src/framework.rs:
crates/cr-core/src/implication.rs:
crates/cr-core/src/isvalid.rs:
crates/cr-core/src/metrics.rs:
crates/cr-core/src/orders.rs:
crates/cr-core/src/pick.rs:
crates/cr-core/src/rules.rs:
crates/cr-core/src/spec.rs:
crates/cr-core/src/suggest.rs:
crates/cr-core/src/truevalue.rs:
