/root/repo/target/debug/deps/fig8_accuracy-e5f7e32a65aedd3b.d: crates/cr-bench/src/bin/fig8_accuracy.rs

/root/repo/target/debug/deps/fig8_accuracy-e5f7e32a65aedd3b: crates/cr-bench/src/bin/fig8_accuracy.rs

crates/cr-bench/src/bin/fig8_accuracy.rs:
