/root/repo/target/debug/deps/cr_data-d31c3bb52a9335c9.d: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs

/root/repo/target/debug/deps/cr_data-d31c3bb52a9335c9: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs

crates/cr-data/src/lib.rs:
crates/cr-data/src/career.rs:
crates/cr-data/src/gen_util.rs:
crates/cr-data/src/nba.rs:
crates/cr-data/src/person.rs:
crates/cr-data/src/vjday.rs:
