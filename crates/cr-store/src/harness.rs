//! The crash-and-rehydrate differential.
//!
//! This module packages the crate's recovery invariant as an executable
//! check: **a restored session must be equivalent to a from-scratch
//! resolve of the surviving event prefix**. Given the records recovery
//! managed to read back, [`reference_of`] replays them into a *fresh*
//! session (and a [`SpecMirror`] of cumulative effects), and
//! [`verify_recovery`] compares the rehydrated session against it — first
//! semantically via [`check_session_against_scratch`] (validity, deduced
//! orders, true values against the mirror's materialised specification),
//! then structurally on the logical [`cr_core::ingest::SessionState`] (entity rows, order
//! pairs, retired CFDs, accepted answers, causal frontier). Telemetry cost
//! counters are deliberately excluded: snapshot-plus-tail replay legally
//! does less engine work than a full replay.
//!
//! The `cr-store` recovery tests and the `crash_soak` CI binary drive this
//! differential at every event boundary under every [`crate::fault::Fault`]
//! mode.

use cr_core::ingest::{
    check_session_against_scratch, ResolutionSession, RevisionPolicy, SpecMirror,
};
use cr_core::spec::Specification;
use cr_core::ResolutionConfig;

use crate::event::LogRecord;

/// A fresh session plus effect mirror built by replaying surviving records
/// from scratch — the "ground truth" side of the recovery differential.
pub struct ReplayedReference {
    /// The from-scratch session after replaying every surviving record.
    pub session: ResolutionSession,
    /// Mirror of the cumulative *effective* revisions and inputs, whose
    /// materialisation is the surviving prefix's specification.
    pub mirror: SpecMirror,
}

/// Replays `records` (as recovered from a damaged log) into a fresh
/// session over `base`, mirroring every effective revision. Snapshot
/// records are skipped: they are derived state, not inputs.
///
/// `policy` must not be [`RevisionPolicy::Reject`] — replay of a durable
/// log is total by construction.
pub fn reference_of(
    config: &ResolutionConfig,
    policy: RevisionPolicy,
    base: &Specification,
    records: &[LogRecord],
) -> ReplayedReference {
    assert!(
        !matches!(policy, RevisionPolicy::Reject),
        "reference replay requires a non-Reject policy"
    );
    let mut session = ResolutionSession::new_revisable(config, base);
    session.set_revision_policy(policy);
    let mut mirror = SpecMirror::new(base);
    for rec in records {
        match rec {
            LogRecord::Input(input) => {
                session.apply_input(input);
                mirror.apply_input(input);
            }
            LogRecord::Causal(ev) => {
                let effective = session
                    .ingest_causal(vec![ev.clone()])
                    .expect("non-Reject policy never propagates errors");
                for rev in &effective {
                    mirror.apply(rev);
                }
            }
            LogRecord::Revision(rev) => {
                let applied = session
                    .absorb_revision(rev)
                    .expect("non-Reject policy never propagates errors");
                if applied {
                    mirror.apply(rev);
                }
            }
            LogRecord::Snapshot(_) => {}
        }
    }
    ReplayedReference { session, mirror }
}

/// Checks the recovery invariant: `rehydrated` (a session rebuilt from
/// snapshot + log tail) must be equivalent to `reference` (the same
/// surviving records replayed from scratch).
///
/// Equivalence is checked two ways: both sessions against the reference
/// mirror's materialised specification (validity / deduced orders / true
/// values), then field-by-field on the logical state — entity rows, order
/// pairs, retired CFDs, accepted answers and the causal frontier.
/// Telemetry is *not* compared (cost counters depend on engine history).
pub fn verify_recovery(
    rehydrated: &mut ResolutionSession,
    reference: &mut ReplayedReference,
) -> Result<(), String> {
    check_session_against_scratch(rehydrated, &reference.mirror)
        .map_err(|e| format!("rehydrated session diverged from surviving prefix: {e}"))?;
    check_session_against_scratch(&mut reference.session, &reference.mirror)
        .map_err(|e| format!("reference replay diverged from its own mirror: {e}"))?;

    let got = rehydrated.state();
    let want = reference.session.state();
    if got.tuples != want.tuples {
        return Err(format!(
            "entity rows diverged: rehydrated {:?} vs scratch {:?}",
            got.tuples, want.tuples
        ));
    }
    if got.orders != want.orders {
        return Err(format!(
            "order pairs diverged: rehydrated {:?} vs scratch {:?}",
            got.orders, want.orders
        ));
    }
    if got.retired_cfds != want.retired_cfds {
        return Err(format!(
            "retired CFDs diverged: rehydrated {:?} vs scratch {:?}",
            got.retired_cfds, want.retired_cfds
        ));
    }
    if got.answers != want.answers {
        return Err(format!(
            "accepted answers diverged: rehydrated {:?} vs scratch {:?}",
            got.answers, want.answers
        ));
    }
    if got.frontier != want.frontier {
        return Err(format!(
            "causal frontier diverged: rehydrated {:?} vs scratch {:?}",
            got.frontier, want.frontier
        ));
    }
    Ok(())
}
