//! Criterion bench for the overall framework loop (Fig. 8(c)/(d) totals):
//! validity + deduction + suggestion + simulated user rounds, per entity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cr_core::framework::{GroundTruthOracle, ResolutionConfig, Resolver};
use cr_data::{career, nba, person, vjday};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolve");
    group.sample_size(15);
    let resolver = Resolver::new(ResolutionConfig { max_rounds: 3, ..Default::default() });

    // Paper running examples.
    let edith = vjday::edith_spec();
    let edith_truth = vjday::edith_truth();
    group.bench_function("vjday/edith", |b| {
        b.iter(|| {
            let mut oracle = GroundTruthOracle::with_cap(edith_truth.clone(), 1);
            black_box(resolver.resolve(black_box(&edith), &mut oracle))
        })
    });
    let george = vjday::george_spec();
    let george_truth = vjday::george_truth();
    group.bench_function("vjday/george", |b| {
        b.iter(|| {
            let mut oracle = GroundTruthOracle::with_cap(george_truth.clone(), 1);
            black_box(resolver.resolve(black_box(&george), &mut oracle))
        })
    });

    // One representative entity per dataset.
    let nba_ds = nba::generate_with_sizes(&[27], 7);
    let career_ds = career::generate(career::CareerConfig {
        entities: 1,
        seed: 7,
        ..Default::default()
    });
    let person_ds = person::generate_with_sizes(&[200], 7);
    for (label, spec, truth) in [
        ("nba/27", nba_ds.spec(0), nba_ds.truth(0).clone()),
        ("career/avg", career_ds.spec(0), career_ds.truth(0).clone()),
        ("person/200", person_ds.spec(0), person_ds.truth(0).clone()),
    ] {
        group.bench_with_input(BenchmarkId::new("dataset", label), &spec, |b, spec| {
            b.iter(|| {
                let mut oracle = GroundTruthOracle::with_cap(truth.clone(), 1);
                black_box(resolver.resolve(black_box(spec), &mut oracle))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
