/root/repo/target/debug/deps/summary-bd6ddce45bc35994.d: crates/cr-bench/src/bin/summary.rs Cargo.toml

/root/repo/target/debug/deps/libsummary-bd6ddce45bc35994.rmeta: crates/cr-bench/src/bin/summary.rs Cargo.toml

crates/cr-bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
