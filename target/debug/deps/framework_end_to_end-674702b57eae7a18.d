/root/repo/target/debug/deps/framework_end_to_end-674702b57eae7a18.d: tests/framework_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libframework_end_to_end-674702b57eae7a18.rmeta: tests/framework_end_to_end.rs Cargo.toml

tests/framework_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
