//! Variables and literals.

use std::fmt;

/// A propositional variable, numbered densely from zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The variable index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given sign
    /// (`true` → positive).
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }
}

/// A literal: a variable with a sign, encoded as `var << 1 | negated`.
///
/// The encoding makes negation a single XOR and lets watcher lists be
/// indexed directly by `Lit::index`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True iff the literal is the positive occurrence of its variable.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index for literal-indexed arrays (watcher lists).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a literal from a DIMACS-style signed integer (`3` → positive
    /// literal of variable 2, `-1` → negative literal of variable 0).
    /// Returns `None` for zero.
    pub fn from_dimacs(code: i64) -> Option<Lit> {
        if code == 0 {
            return None;
        }
        let var = Var((code.unsigned_abs() - 1) as u32);
        Some(var.lit(code > 0))
    }

    /// The DIMACS-style signed integer for this literal.
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().0 + 1) as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_positive() { "" } else { "¬" }, self.var().0)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// Ternary assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Undef,
}

impl LBool {
    /// Converts a `bool`.
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Flips true/false, leaves `Undef` untouched.
    #[must_use]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// `Some(bool)` when assigned.
    pub fn to_option(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
        assert_eq!(v.positive().negate(), v.negative());
        assert_eq!(v.negative().negate(), v.positive());
        assert_eq!(v.lit(true), v.positive());
    }

    #[test]
    fn dimacs_round_trip() {
        for code in [-5i64, -1, 1, 9] {
            let lit = Lit::from_dimacs(code).unwrap();
            assert_eq!(lit.to_dimacs(), code);
        }
        assert!(Lit::from_dimacs(0).is_none());
    }

    #[test]
    fn lbool_ops() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::from_bool(true).to_option(), Some(true));
        assert_eq!(LBool::Undef.to_option(), None);
    }
}
