//! `ConvertToCNF`: from instance constraints to the CNF Φ(Se).
//!
//! # Guard-literal clause groups
//!
//! With [`EncodeOptions::guarded_cfds`] the CFD instance constraints are
//! emitted as **retractable clause groups**, one group per CFD. The
//! lifecycle:
//!
//! 1. *Emission* — a group allocates a fresh guard variable `g`; every
//!    clause of the group carries the extra literal `¬g`, so the clauses
//!    are vacuous until `g` is asserted.
//! 2. *Activation* — consumers assert `g`: fresh solvers/propagators add
//!    the unit clauses [`EncodedSpec::active_guards`]
//!    (see [`EncodedSpec::fresh_solver`]); the incremental engine's warm
//!    solver instead carries the guards as persistent *assumptions*
//!    (`cr_sat::Solver::set_persistent_assumptions`), which keeps them
//!    retractable.
//! 3. *Retraction* — when a user answer introduces a new value on an
//!    attribute referenced by a CFD, that CFD's ωX premise (and possibly
//!    its domination conclusions) are stale: the group is retracted by
//!    appending the root unit `¬g` to the CNF, which permanently satisfies
//!    the group's clauses *and* every clause the warm solver learnt from
//!    them (learnt clauses depending on the group contain `¬g` by
//!    construction of conflict analysis). The CFD is then re-emitted over
//!    the grown value space under a fresh guard.
//!
//! The CNF therefore remains the single append-only source of truth:
//! solvers sync by ingesting the clause tail, and the retraction unit
//! travels through the same channel. Only CFD instances need groups — Σ
//! instances, base orders, null-bottom axioms and the order axioms are
//! never invalidated by user input; new values only *add* to them.

use cr_constraints::{Predicate, TupleRef};
use cr_sat::{Cnf, Lit, Var};
use cr_types::{AttrId, AttrValueSpace, Value, ValueId};

use super::omega::{
    cfd_instances, instantiate, instantiate_pair, Conclusion, InstanceConstraint, OrderAtom,
};
use super::EncodeOptions;
use crate::spec::{Specification, UserInput};

/// Sentinel for an unallocated slot in [`VarTable`].
const NO_VAR: u32 = u32::MAX;

/// Sentinel for a variable that is not an order atom (guard variables).
const NO_ATOM: u32 = u32::MAX;

/// Identifier of a retractable clause group (index into the encoding's
/// group table). Also used as the group tag handed to
/// `cr_sat::UnitPropagator::add_clause_grouped`.
pub type GroupId = u32;

/// Group tag of permanent clauses.
const NO_GROUP: GroupId = cr_sat::NO_GROUP;

/// Dense `attr × lo × hi → Var` index. Order-variable lookup sits on the
/// hot path of clause generation, deduction and suggestion; a flat
/// row-major table per attribute answers it with two bounds checks and one
/// load instead of hashing a 10-byte key.
#[derive(Clone, Debug, Default)]
struct VarTable {
    /// One `n × n` slot table per attribute (`lo.index() * n + hi.index()`).
    per_attr: Vec<Vec<u32>>,
    /// `n` (number of interned values) per attribute.
    width: Vec<usize>,
}

impl VarTable {
    /// A table sized for the given per-attribute value-space widths.
    fn new(widths: Vec<usize>) -> Self {
        VarTable {
            per_attr: widths.iter().map(|&n| vec![NO_VAR; n * n]).collect(),
            width: widths,
        }
    }

    #[inline]
    fn get(&self, attr: AttrId, lo: ValueId, hi: ValueId) -> Option<Var> {
        let n = self.width[attr.index()];
        if lo.index() >= n || hi.index() >= n {
            return None;
        }
        let raw = self.per_attr[attr.index()][lo.index() * n + hi.index()];
        (raw != NO_VAR).then_some(Var(raw))
    }

    #[inline]
    fn set(&mut self, attr: AttrId, lo: ValueId, hi: ValueId, var: Var) {
        let n = self.width[attr.index()];
        self.per_attr[attr.index()][lo.index() * n + hi.index()] = var.0;
    }

    /// Regrows `attr`'s table to `new_n` values, preserving the existing
    /// slots (row-major relayout). Used when a user answer appends a new
    /// value to an attribute's space.
    fn grow(&mut self, attr: AttrId, new_n: usize) {
        let old_n = self.width[attr.index()];
        if new_n <= old_n {
            return;
        }
        let old = std::mem::replace(&mut self.per_attr[attr.index()], vec![NO_VAR; new_n * new_n]);
        for lo in 0..old_n {
            self.per_attr[attr.index()][lo * new_n..lo * new_n + old_n]
                .copy_from_slice(&old[lo * old_n..(lo + 1) * old_n]);
        }
        self.width[attr.index()] = new_n;
    }
}

/// A retractable clause group: its guard variable and liveness.
#[derive(Clone, Copy, Debug)]
struct GroupState {
    guard: Var,
    active: bool,
}

/// Outcome of [`EncodedSpec::extend_with_input`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExtendOutcome {
    /// The encoding was extended in place; new clauses were appended to the
    /// CNF (sync solvers with the clause tail). `retracted_groups` lists
    /// the clause groups withdrawn in the process (stale CFD emissions) —
    /// callers holding a live `UnitPropagator` must forward them to
    /// `retract_group` before syncing the tail.
    Extended {
        /// Groups retracted by this extension, in retraction order.
        retracted_groups: Vec<GroupId>,
    },
    /// The input cannot be expressed as a pure extension: the encoding was
    /// built with lazy transitivity, or an answer introduces a new value
    /// while CFDs are unguarded (`EncodeOptions::guarded_cfds` off). The
    /// caller must re-encode from scratch.
    NeedsRebuild,
}

/// The encoded form of a specification: the CNF `Φ(Se)`, the value spaces,
/// the variable table for order atoms and the instance constraints Ω(Se)
/// they came from. All downstream algorithms (`IsValid`, `DeduceOrder`,
/// `Suggest`, the exact true-value queries) run off this struct.
///
/// The encoding supports **delta extension** with user input
/// ([`EncodedSpec::extend_with_input`]): a round of the Fig. 4 loop only
/// appends the clauses induced by the fresh user-input tuple instead of
/// re-deriving the whole CNF. With guarded CFDs (see the module docs) this
/// covers *every* input, including answers outside the interned value
/// space: the new value's order variables and axioms are appended, and the
/// affected CFDs are retracted and re-emitted under fresh guards.
pub struct EncodedSpec {
    space: AttrValueSpace,
    vars: VarTable,
    /// Order atoms in allocation order, with their variables.
    atoms: Vec<OrderAtom>,
    atom_vars: Vec<Var>,
    /// Var index → index into `atoms` (`NO_ATOM` for guard variables).
    var_atom: Vec<u32>,
    cnf: Cnf,
    /// Group tag per CNF clause (`NO_GROUP` = permanent), parallel to
    /// `cnf.clauses()`.
    clause_groups: Vec<GroupId>,
    groups: Vec<GroupState>,
    /// Per CFD index: its currently active group, if emitted.
    cfd_groups: Vec<Option<GroupId>>,
    omega: Vec<InstanceConstraint>,
    options: EncodeOptions,
}

impl EncodedSpec {
    /// Encodes `spec` with default options.
    pub fn encode(spec: &Specification) -> Self {
        Self::encode_with(spec, EncodeOptions::default())
    }

    /// Encodes `spec` with explicit [`EncodeOptions`].
    pub fn encode_with(spec: &Specification, options: EncodeOptions) -> Self {
        let inst = instantiate(spec);
        let widths: Vec<usize> = (0..inst.space.arity())
            .map(|i| inst.space.attr(AttrId(i as u16)).len())
            .collect();
        let mut enc = EncodedSpec {
            vars: VarTable::new(widths),
            space: inst.space,
            atoms: Vec::new(),
            atom_vars: Vec::new(),
            var_atom: Vec::new(),
            cnf: Cnf::new(),
            clause_groups: Vec::new(),
            groups: Vec::new(),
            cfd_groups: vec![None; spec.gamma().len()],
            omega: Vec::new(),
            options,
        };

        // Variables for every ordered pair of distinct values — either over
        // the whole space (paper encoding) or lazily over the values that
        // occur in Ω(Se).
        if options.full_transitivity {
            for attr in (0..enc.space.arity() as u16).map(AttrId) {
                let n = enc.space.attr(attr).len() as u32;
                for a in 0..n {
                    for b in 0..n {
                        if a != b {
                            enc.var(OrderAtom { attr, lo: ValueId(a), hi: ValueId(b) });
                        }
                    }
                }
            }
        } else {
            for c in &inst.omega {
                for atom in &c.premise {
                    enc.var(*atom);
                    enc.var(OrderAtom { attr: atom.attr, lo: atom.hi, hi: atom.lo });
                }
                if let Conclusion::Atom(atom) = c.conclusion {
                    enc.var(atom);
                    enc.var(OrderAtom { attr: atom.attr, lo: atom.hi, hi: atom.lo });
                }
            }
        }

        // Ω(Se) clauses. CFD instances optionally go into one retractable
        // group per CFD; everything else is permanent.
        for c in inst.omega {
            match c.origin {
                super::Origin::Cfd(gi) if options.guarded_cfds => {
                    let group = match enc.cfd_groups[gi] {
                        Some(g) => g,
                        None => {
                            let g = enc.new_group();
                            enc.cfd_groups[gi] = Some(g);
                            g
                        }
                    };
                    enc.add_omega_constraint_in(c, group);
                }
                _ => enc.add_omega_constraint(c),
            }
        }

        // Transitivity and asymmetry per attribute, over the realised
        // variable set.
        let mut per_attr: Vec<Vec<ValueId>> = vec![Vec::new(); enc.space.arity()];
        for atom in &enc.atoms {
            per_attr[atom.attr.index()].push(atom.lo);
            per_attr[atom.attr.index()].push(atom.hi);
        }
        for (ai, vals) in per_attr.iter_mut().enumerate() {
            vals.sort_unstable();
            vals.dedup();
            let attr = AttrId(ai as u16);
            // Asymmetry: ¬x_ab ∨ ¬x_ba for unordered pairs; optionally
            // totality: x_ab ∨ x_ba (see EncodeOptions::totality).
            for (i, &a) in vals.iter().enumerate() {
                for &b in &vals[i + 1..] {
                    if let (Some(xab), Some(xba)) =
                        (enc.vars.get(attr, a, b), enc.vars.get(attr, b, a))
                    {
                        enc.push_clause([xab.negative(), xba.negative()], NO_GROUP);
                        if options.totality {
                            enc.push_clause([xab.positive(), xba.positive()], NO_GROUP);
                        }
                    }
                }
            }
            // Transitivity over realised triples.
            for &a in vals.iter() {
                for &b in vals.iter() {
                    if a == b {
                        continue;
                    }
                    let Some(xab) = enc.vars.get(attr, a, b) else {
                        continue;
                    };
                    for &c in vals.iter() {
                        if c == a || c == b {
                            continue;
                        }
                        let (Some(xbc), Some(xac)) =
                            (enc.vars.get(attr, b, c), enc.vars.get(attr, a, c))
                        else {
                            continue;
                        };
                        enc.push_clause(
                            [xab.negative(), xbc.negative(), xac.positive()],
                            NO_GROUP,
                        );
                    }
                }
            }
        }
        enc
    }

    /// Extends the encoding in place with the effect of
    /// [`Specification::apply_user_input`]: the fresh tuple `to` carrying
    /// the answered values is ranked strictly above every existing tuple on
    /// each answered attribute, which translates to
    ///
    /// 1. unit clauses `w ≺v_A v` for every other interned value `w` of each
    ///    answered attribute `A` (the base-order extension `Ot`), and
    /// 2. the instance constraints of Σ on the tuple pairs involving `to`
    ///    (pairs among the original tuples are already instantiated).
    ///
    /// Answers **outside** the interned value space are handled additively
    /// when the encoding was built with guarded CFDs: the new value id
    /// appends a row to the dense attr×lo×hi variable table, its order
    /// axioms (asymmetry, totality, transitivity triples, null-bottom) are
    /// appended, and every CFD referencing the grown attribute is retracted
    /// and re-emitted over the new space under a fresh guard group (see the
    /// module docs for the lifecycle).
    ///
    /// `spec` must be the specification this encoding currently represents
    /// (i.e. *before* the input is applied). Returns
    /// [`ExtendOutcome::NeedsRebuild`] — with `self` untouched — when the
    /// encoding was built with lazy transitivity, or when an answer lies
    /// outside the interned space and CFDs are unguarded.
    pub fn extend_with_input(
        &mut self,
        spec: &Specification,
        input: &UserInput,
    ) -> ExtendOutcome {
        if !self.options.full_transitivity {
            return ExtendOutcome::NeedsRebuild;
        }
        let mut answered: Vec<(AttrId, ValueId)> = Vec::new();
        let mut grown: Vec<AttrId> = Vec::new();
        for (attr, v) in &input.values {
            if v.is_null() {
                continue;
            }
            match self.space.get(*attr, v) {
                Some(id) => answered.push((*attr, id)),
                None if self.options.guarded_cfds => grown.push(*attr),
                None => return ExtendOutcome::NeedsRebuild,
            }
        }

        // Out-of-domain answers: append the new values and their axioms,
        // then retract + re-emit every CFD whose premise or conclusion
        // ranges over a grown attribute.
        let mut retracted_groups: Vec<GroupId> = Vec::new();
        if !grown.is_empty() {
            for &attr in &grown {
                let v = &input.values[&attr];
                let vid = self.append_value(attr, v);
                answered.push((attr, vid));
            }
            grown.sort_unstable();
            grown.dedup();
            for (gi, cfd) in spec.gamma().iter().enumerate() {
                let touched = cfd
                    .lhs()
                    .iter()
                    .any(|(a, _)| grown.binary_search(a).is_ok())
                    || grown.binary_search(&cfd.rhs().0).is_ok();
                if !touched {
                    continue;
                }
                if let Some(group) = self.cfd_groups[gi].take() {
                    self.retract_group(group);
                    retracted_groups.push(group);
                    self.omega.retain(|c| c.origin != super::Origin::Cfd(gi));
                }
                let instances = cfd_instances(&self.space, gi, cfd);
                if !instances.is_empty() {
                    let group = self.new_group();
                    self.cfd_groups[gi] = Some(group);
                    for c in instances {
                        self.add_omega_constraint_in(c, group);
                    }
                }
            }
        }

        // (1) Base-order units: the answered value tops its attribute.
        for &(attr, vid) in &answered {
            let below: Vec<ValueId> = self
                .space
                .attr(attr)
                .iter()
                .filter(|(id, v)| *id != vid && !v.is_null())
                .map(|(id, _)| id)
                .collect();
            for lo in below {
                self.add_omega_constraint(InstanceConstraint {
                    premise: Vec::new(),
                    conclusion: Conclusion::Atom(OrderAtom { attr, lo, hi: vid }),
                    origin: super::Origin::BaseOrder,
                });
            }
        }

        // (2) Σ instances on pairs involving the user-input tuple. Tuples
        // sharing a projection on a constraint's referenced attributes
        // produce identical instances (same grouping as `instantiate`), so
        // only one representative per projection is paired with `to`.
        let entity = spec.entity();
        let arity = spec.schema().arity();
        let mut values = vec![Value::Null; arity];
        for (attr, v) in &input.values {
            values[attr.index()] = v.clone();
        }
        let to = cr_types::Tuple::from_values(values);
        let answered_attr = |attr: AttrId| answered.iter().any(|&(a, _)| a == attr);
        for (ci, constraint) in spec.sigma().iter().enumerate() {
            // A pair involving `to` instantiates only if the conclusion is
            // non-null on `to`'s side, and order / tuple-comparison
            // premises need both sides non-null — so those attributes must
            // all be among the answered ones. Σ can be large (hundreds of
            // constraints on generated workloads); these O(|ω|) checks skip
            // the per-tuple work for the vast majority.
            if !answered_attr(constraint.conclusion_attr()) {
                continue;
            }
            if constraint.premises().iter().any(|p| match p {
                Predicate::Order { attr } | Predicate::TupleCmp { attr, .. } => {
                    !answered_attr(*attr)
                }
                Predicate::ConstCmp { .. } => false,
            }) {
                continue;
            }
            // Constant comparisons against `to`'s side have one fixed
            // operand: evaluate them once per direction instead of per
            // tuple ((to, to) is safe — a ConstCmp only reads the tuple
            // its `TupleRef` picks).
            let direction_open = |to_ref: TupleRef| {
                constraint.premises().iter().all(|p| match p {
                    Predicate::ConstCmp { tuple, .. } if *tuple == to_ref => {
                        p.eval_comparison(&to, &to) == Some(true)
                    }
                    _ => true,
                })
            };
            let to_second = direction_open(TupleRef::T2); // pairs (t, to)
            let to_first = direction_open(TupleRef::T1); // pairs (to, t)
            if !to_first && !to_second {
                continue;
            }
            let mut attrs: Vec<AttrId> = constraint
                .premises()
                .iter()
                .map(|p| p.attr())
                .chain(std::iter::once(constraint.conclusion_attr()))
                .collect();
            attrs.sort_unstable();
            attrs.dedup();
            // Distinct projections over the dense id rows — integer keys,
            // no Value hashing.
            let mut seen: std::collections::HashSet<Vec<u32>> =
                std::collections::HashSet::new();
            for tid in entity.tuple_ids() {
                let projection: Vec<u32> =
                    attrs.iter().map(|&a| entity.dense_id(tid, a)).collect();
                if !seen.insert(projection) {
                    continue;
                }
                let t = entity.tuple(tid);
                if to_second {
                    if let Some(c) = instantiate_pair(&self.space, constraint, ci, t, &to) {
                        self.add_omega_constraint(c);
                    }
                }
                if to_first {
                    if let Some(c) = instantiate_pair(&self.space, constraint, ci, &to, t) {
                        self.add_omega_constraint(c);
                    }
                }
            }
        }
        ExtendOutcome::Extended { retracted_groups }
    }

    /// Appends a brand-new value to `attr`'s space: interns it, regrows the
    /// variable table, allocates the order variables of every pair
    /// involving it and emits the asymmetry/totality/transitivity axioms
    /// for those pairs plus the null-bottom unit. Exactly the delta a
    /// from-scratch re-encode of the grown space would produce for the
    /// order-axiom part of Φ(Se).
    fn append_value(&mut self, attr: AttrId, v: &Value) -> ValueId {
        debug_assert!(self.space.get(attr, v).is_none());
        let vid = self.space.intern(attr, v);
        let n = self.space.attr(attr).len();
        debug_assert_eq!(vid.index(), n - 1);
        self.vars.grow(attr, n);
        let olds: Vec<ValueId> = (0..(n - 1) as u32).map(ValueId).collect();
        for &w in &olds {
            self.var(OrderAtom { attr, lo: w, hi: vid });
            self.var(OrderAtom { attr, lo: vid, hi: w });
        }
        // Asymmetry and (optional) totality for the new pairs.
        for &w in &olds {
            let xwv = self.vars.get(attr, w, vid).expect("just allocated");
            let xvw = self.vars.get(attr, vid, w).expect("just allocated");
            self.push_clause([xwv.negative(), xvw.negative()], NO_GROUP);
            if self.options.totality {
                self.push_clause([xwv.positive(), xvw.positive()], NO_GROUP);
            }
        }
        // Transitivity: all triples containing the new value, i.e. the
        // three placements of `vid` over each ordered pair of old values.
        for &a in &olds {
            for &b in &olds {
                if a == b {
                    continue;
                }
                let xab = self.vars.get(attr, a, b).expect("full encoding");
                let xav = self.vars.get(attr, a, vid).expect("just allocated");
                let xvb = self.vars.get(attr, vid, b).expect("just allocated");
                let xbv = self.vars.get(attr, b, vid).expect("just allocated");
                let xva = self.vars.get(attr, vid, a).expect("just allocated");
                // (vid, a, b): x_va ∧ x_ab → x_vb
                self.push_clause([xva.negative(), xab.negative(), xvb.positive()], NO_GROUP);
                // (a, vid, b): x_av ∧ x_vb → x_ab
                self.push_clause([xav.negative(), xvb.negative(), xab.positive()], NO_GROUP);
                // (a, b, vid): x_ab ∧ x_bv → x_av
                self.push_clause([xab.negative(), xbv.negative(), xav.positive()], NO_GROUP);
            }
        }
        // Null stays a strict bottom below the new value.
        if let Some(null_id) = self.space.get(attr, &Value::Null) {
            self.add_omega_constraint(InstanceConstraint {
                premise: Vec::new(),
                conclusion: Conclusion::Atom(OrderAtom { attr, lo: null_id, hi: vid }),
                origin: super::Origin::NullBottom,
            });
        }
        vid
    }

    /// Records an instance constraint and adds its clause to the CNF.
    ///
    /// Delta constraints from [`EncodedSpec::extend_with_input`] may
    /// duplicate already-instantiated projections — harmless: duplicate
    /// clauses are absorbed by the solvers, and rule derivation
    /// canonicalises its premise pools (`true_der` sorts and dedups them),
    /// so deriving rules from Ω(Se) is insensitive to duplicates and
    /// ordering.
    fn add_omega_constraint(&mut self, c: InstanceConstraint) {
        self.add_omega_constraint_in(c, NO_GROUP);
    }

    /// [`EncodedSpec::add_omega_constraint`] into a clause group: the
    /// group's guard literal `¬g` is appended to the clause.
    fn add_omega_constraint_in(&mut self, c: InstanceConstraint, group: GroupId) {
        let mut clause: Vec<Lit> = c.premise.iter().map(|a| self.var(*a).negative()).collect();
        if let Conclusion::Atom(atom) = c.conclusion {
            let concl = self.var(atom).positive();
            clause.push(concl);
        }
        self.push_clause(clause, group);
        self.omega.push(c);
    }

    /// Appends one clause to the CNF, tagging it with its group (the
    /// group's guard literal is appended automatically). Every clause of
    /// the encoding goes through here so `clause_groups` stays parallel to
    /// the clause list.
    fn push_clause(&mut self, lits: impl IntoIterator<Item = Lit>, group: GroupId) {
        if group == NO_GROUP {
            self.cnf.add_clause(lits);
        } else {
            let guard = self.groups[group as usize].guard;
            let mut clause: Vec<Lit> = lits.into_iter().collect();
            clause.push(guard.negative());
            self.cnf.add_clause(clause);
        }
        self.clause_groups.push(group);
    }

    /// Allocates a fresh, active clause group with its guard variable.
    fn new_group(&mut self) -> GroupId {
        let guard = self.cnf.new_var();
        debug_assert_eq!(guard.index(), self.var_atom.len());
        self.var_atom.push(NO_ATOM);
        let id = self.groups.len() as GroupId;
        self.groups.push(GroupState { guard, active: true });
        id
    }

    /// Retracts a clause group: marks it inactive and appends the root unit
    /// `¬g` to the CNF, which permanently satisfies the group's clauses
    /// (and any clauses a solver learnt from them) once synced.
    fn retract_group(&mut self, group: GroupId) {
        let state = &mut self.groups[group as usize];
        debug_assert!(state.active, "group retracted twice");
        state.active = false;
        let guard = state.guard;
        self.push_clause([guard.negative()], NO_GROUP);
    }

    /// Allocates (or returns) the variable for an order atom.
    fn var(&mut self, atom: OrderAtom) -> Var {
        if let Some(v) = self.vars.get(atom.attr, atom.lo, atom.hi) {
            return v;
        }
        let v = self.cnf.new_var();
        debug_assert_eq!(v.index(), self.var_atom.len());
        self.vars.set(atom.attr, atom.lo, atom.hi, v);
        self.var_atom.push(self.atoms.len() as u32);
        self.atoms.push(atom);
        self.atom_vars.push(v);
        v
    }

    /// The CNF `Φ(Se)`.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// The options this specification was encoded with.
    pub fn options(&self) -> EncodeOptions {
        self.options
    }

    /// The instance constraints Ω(Se). Instances of retracted CFD groups
    /// are removed on re-emission, so this always reflects the live
    /// constraint set.
    pub fn omega(&self) -> &[InstanceConstraint] {
        &self.omega
    }

    /// The per-attribute value spaces (active domain + null).
    pub fn space(&self) -> &AttrValueSpace {
        &self.space
    }

    /// The variable encoding `lo ≺v_attr hi`, if allocated.
    pub fn var_of(&self, attr: AttrId, lo: ValueId, hi: ValueId) -> Option<Var> {
        self.vars.get(attr, lo, hi)
    }

    /// The order atom behind a variable, or `None` for auxiliary (guard)
    /// variables.
    pub fn order_atom(&self, var: Var) -> Option<OrderAtom> {
        let idx = *self.var_atom.get(var.index())?;
        (idx != NO_ATOM).then(|| self.atoms[idx as usize])
    }

    /// All order variables with their atoms, in allocation order.
    pub fn order_vars(&self) -> impl Iterator<Item = (Var, OrderAtom)> + '_ {
        self.atom_vars.iter().copied().zip(self.atoms.iter().copied())
    }

    /// Number of order variables (guard variables excluded).
    pub fn num_order_vars(&self) -> usize {
        self.atoms.len()
    }

    /// Positive literals of the guards of every **active** clause group.
    /// Fresh solvers/propagators over [`EncodedSpec::cnf`] must assert
    /// these (retracted groups are already neutralised by `¬g` units inside
    /// the CNF); the incremental engine instead carries them as persistent
    /// assumptions so they stay retractable.
    pub fn active_guards(&self) -> Vec<Lit> {
        self.groups
            .iter()
            .filter(|g| g.active)
            .map(|g| g.guard.positive())
            .collect()
    }

    /// The group and guard variable of CNF clause `idx`, or `None` for
    /// permanent clauses. Used by the engine to strip guard literals when
    /// syncing its group-aware unit propagator.
    pub fn clause_group(&self, idx: usize) -> Option<(GroupId, Var)> {
        let g = self.clause_groups[idx];
        (g != NO_GROUP).then(|| (g, self.groups[g as usize].guard))
    }

    /// A CDCL solver over `Φ(Se)` with all active guard groups asserted as
    /// root units — correct for any consumer that never retracts.
    pub fn fresh_solver(&self) -> cr_sat::Solver {
        let mut solver = cr_sat::Solver::from_cnf(&self.cnf);
        for g in self.active_guards() {
            solver.add_clause([g]);
        }
        solver
    }

    /// A root-level unit propagator over `Φ(Se)` with all active guard
    /// groups asserted as units — correct for any consumer that never
    /// retracts.
    pub fn fresh_propagator(&self) -> cr_sat::UnitPropagator {
        let mut up = cr_sat::UnitPropagator::new(&self.cnf);
        for g in self.active_guards() {
            up.add_clause(&[g]);
        }
        up
    }

    /// Interned id of `value` in `attr`'s space.
    pub fn value_id(&self, attr: AttrId, value: &Value) -> Option<ValueId> {
        self.space.get(attr, value)
    }

    /// The value behind `(attr, id)`.
    pub fn value(&self, attr: AttrId, id: ValueId) -> &Value {
        self.space.value(attr, id)
    }

    /// Assumption literals asserting "`v` is the most current value of
    /// `attr`": every other value of the space sits strictly below `v`.
    /// Returns `None` if some required variable was not allocated (lazy
    /// encoding) — callers should fall back to the full encoding.
    pub fn top_assumptions(&self, attr: AttrId, v: ValueId) -> Option<Vec<Lit>> {
        let n = self.space.attr(attr).len() as u32;
        let mut lits = Vec::with_capacity(n as usize - 1);
        for o in 0..n {
            let o = ValueId(o);
            if o == v {
                continue;
            }
            lits.push(self.var_of(attr, o, v)?.positive());
        }
        Some(lits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
    use cr_sat::{SolveResult, Solver};
    use cr_types::{EntityInstance, Schema, Tuple};

    fn tiny_spec() -> Specification {
        let s = Schema::new("p", ["status", "job"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::str("nurse")]),
                Tuple::of([Value::str("retired"), Value::str("n/a")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[job] t2").unwrap(),
        ];
        Specification::without_orders(e, sigma, vec![])
    }

    fn extended_ok(outcome: ExtendOutcome) -> Vec<GroupId> {
        match outcome {
            ExtendOutcome::Extended { retracted_groups } => retracted_groups,
            ExtendOutcome::NeedsRebuild => panic!("expected pure extension"),
        }
    }

    #[test]
    fn full_encoding_allocates_all_pairs() {
        let spec = tiny_spec();
        let enc = EncodedSpec::encode(&spec);
        // Two attributes, two values each → 2·2·1 = 4 order vars.
        assert_eq!(enc.num_order_vars(), 4);
        // Sat: the chain working≺retired, nurse≺n/a is consistent.
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_derives_the_chain() {
        let spec = tiny_spec();
        let enc = EncodedSpec::encode(&spec);
        let mut up = cr_sat::UnitPropagator::new(enc.cnf());
        let implied = match up.run() {
            cr_sat::UpOutcome::Fixpoint { implied } => implied,
            cr_sat::UpOutcome::Conflict => panic!("valid spec"),
        };
        let status = spec.schema().attr_id("status").unwrap();
        let job = spec.schema().attr_id("job").unwrap();
        let sid = |v: &str| enc.value_id(status, &Value::str(v)).unwrap();
        let jid = |v: &str| enc.value_id(job, &Value::str(v)).unwrap();
        let x_status = enc.var_of(status, sid("working"), sid("retired")).unwrap();
        let x_job = enc.var_of(job, jid("nurse"), jid("n/a")).unwrap();
        assert!(implied.contains(&x_status.positive()));
        assert!(implied.contains(&x_job.positive()));
    }

    #[test]
    fn contradictory_base_orders_are_unsat() {
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![Tuple::of([Value::int(1)]), Tuple::of([Value::int(2)])],
        )
        .unwrap();
        let mut orders = crate::orders::PartialOrders::empty(1);
        orders.add(AttrId(0), cr_types::TupleId(0), cr_types::TupleId(1));
        orders.add(AttrId(0), cr_types::TupleId(1), cr_types::TupleId(0));
        let spec = Specification::new(e, orders, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn transitivity_closes_chains() {
        // a<b, b<c base orders; check a<c is implied (Φ ∧ ¬x_ac unsat).
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::int(1)]),
                Tuple::of([Value::int(2)]),
                Tuple::of([Value::int(3)]),
            ],
        )
        .unwrap();
        let mut orders = crate::orders::PartialOrders::empty(1);
        orders.add(AttrId(0), cr_types::TupleId(0), cr_types::TupleId(1));
        orders.add(AttrId(0), cr_types::TupleId(1), cr_types::TupleId(2));
        let spec = Specification::new(e, orders, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let a = AttrId(0);
        let id = |v: i64| enc.value_id(a, &Value::int(v)).unwrap();
        let x_ac = enc.var_of(a, id(1), id(3)).unwrap();
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(
            solver.solve_with_assumptions(&[x_ac.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn lazy_encoding_matches_full_on_validity() {
        let spec = tiny_spec();
        let full = EncodedSpec::encode(&spec);
        let lazy = EncodedSpec::encode_with(&spec, EncodeOptions { full_transitivity: false, ..Default::default() });
        assert!(lazy.cnf().num_clauses() <= full.cnf().num_clauses());
        let mut s1 = Solver::from_cnf(full.cnf());
        let mut s2 = Solver::from_cnf(lazy.cnf());
        assert_eq!(s1.solve(), s2.solve());
    }

    #[test]
    fn cfd_plus_currency_derives_cross_attribute_values() {
        // Miniature of Example 2 steps (c)-(d): status chain forces the AC,
        // then the CFD forces the city.
        let s = Schema::new("p", ["status", "AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::int(212), Value::str("NY")]),
                Tuple::of([Value::str("retired"), Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[AC] t2").unwrap(),
        ];
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, sigma, gamma);
        let enc = EncodedSpec::encode(&spec);
        let city = spec.schema().attr_id("city").unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        let x = enc.var_of(city, ny, la).unwrap();
        // NY ≺ LA must be implied.
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(
            solver.solve_with_assumptions(&[x.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn guarded_encoding_matches_unguarded_once_activated() {
        // Same spec as above, but with guarded CFDs: the bare CNF no longer
        // forces the CFD (guards free), while the activated encoding does.
        let s = Schema::new("p", ["status", "AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::int(212), Value::str("NY")]),
                Tuple::of([Value::str("retired"), Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[AC] t2").unwrap(),
        ];
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, sigma, gamma);
        let enc = EncodedSpec::encode_with(&spec, EncodeOptions::default().with_guarded_cfds());
        assert_eq!(enc.active_guards().len(), 1);
        let city = spec.schema().attr_id("city").unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        let x = enc.var_of(city, ny, la).unwrap();
        let mut activated = enc.fresh_solver();
        assert_eq!(
            activated.solve_with_assumptions(&[x.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(activated.solve(), SolveResult::Sat);
        // Guard variables are not order atoms.
        let guard = enc.active_guards()[0].var();
        assert!(enc.order_atom(guard).is_none());
        assert!(enc.order_atom(x).is_some());
    }

    #[test]
    fn extension_with_in_domain_answer_matches_scratch_deduction() {
        // Answering city=LA must make LA the deduced top of `city` exactly
        // as a from-scratch re-encode of the extended spec would.
        let s = Schema::new("p", ["name", "city"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::str("X"), Value::str("NY")]),
                Tuple::of([Value::str("X"), Value::str("LA")]),
            ],
        )
        .unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        let mut enc = EncodedSpec::encode(&spec);
        let city = spec.schema().attr_id("city").unwrap();
        let input = UserInput::single(city, Value::str("LA"));

        let before = enc.cnf().num_clauses();
        assert!(extended_ok(enc.extend_with_input(&spec, &input)).is_empty());
        assert!(enc.cnf().num_clauses() > before, "unit clauses appended");

        let (extended, _, _) = spec.apply_user_input(&input);
        let scratch = EncodedSpec::encode(&extended);
        let od_inc = crate::deduce::deduce_order(&enc).unwrap();
        let od_scr = crate::deduce::deduce_order(&scratch).unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        assert!(od_inc.contains(city, ny, la));
        assert!(od_scr.contains(city, ny, la));
    }

    #[test]
    fn extension_instantiates_sigma_on_the_new_tuple() {
        // σ: t1 <[status] t2 → t1 <[job] t2. Answering status=retired
        // creates the pair (t_working, to) whose instance forces the job
        // order too.
        let spec = tiny_spec();
        let mut enc = EncodedSpec::encode(&spec);
        let status = spec.schema().attr_id("status").unwrap();
        let job = spec.schema().attr_id("job").unwrap();
        let input = UserInput::single(status, Value::str("retired"));
        assert!(extended_ok(enc.extend_with_input(&spec, &input)).is_empty());
        let od = crate::deduce::deduce_order(&enc).unwrap();
        let jid = |v: &str| enc.value_id(job, &Value::str(v)).unwrap();
        assert!(od.contains(job, jid("nurse"), jid("n/a")));
    }

    #[test]
    fn unguarded_extension_rejects_out_of_domain_values() {
        let spec = tiny_spec();
        let mut enc = EncodedSpec::encode(&spec);
        let clauses = enc.cnf().num_clauses();
        let status = spec.schema().attr_id("status").unwrap();
        let input = UserInput::single(status, Value::str("deceased"));
        assert_eq!(
            enc.extend_with_input(&spec, &input),
            ExtendOutcome::NeedsRebuild
        );
        assert_eq!(enc.cnf().num_clauses(), clauses, "encoding untouched");
    }

    #[test]
    fn guarded_extension_absorbs_out_of_domain_values() {
        // The answered value is new: the space grows, the new value tops
        // the attribute, and deduction still works on the extended CNF.
        let spec = tiny_spec();
        let mut enc =
            EncodedSpec::encode_with(&spec, EncodeOptions::default().with_guarded_cfds());
        let status = spec.schema().attr_id("status").unwrap();
        let input = UserInput::single(status, Value::str("deceased"));
        // No CFDs → nothing to retract, but the extension must succeed.
        assert!(extended_ok(enc.extend_with_input(&spec, &input)).is_empty());
        let deceased = enc.value_id(status, &Value::str("deceased")).expect("interned");
        let od = crate::deduce::deduce_order(&enc).unwrap();
        for old in ["working", "retired"] {
            let oid = enc.value_id(status, &Value::str(old)).unwrap();
            assert!(od.contains(status, oid, deceased), "{old} must sit below");
        }
        // The grown space stays internally consistent (asymmetry +
        // transitivity were appended).
        let mut solver = enc.fresh_solver();
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn guarded_extension_retracts_and_reemits_cfd_on_lhs_growth() {
        // CFD: AC = 213 → city = "LA". A new AC value must invalidate the
        // old ωX premise (which didn't mention it) — after answering
        // AC=999, the CFD may no longer fire, because 999 tops AC.
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        let mut enc =
            EncodedSpec::encode_with(&spec, EncodeOptions::default().with_guarded_cfds());
        let ac = spec.schema().attr_id("AC").unwrap();
        let city = spec.schema().attr_id("city").unwrap();
        let old_cfd_instances = enc
            .omega()
            .iter()
            .filter(|c| c.origin == super::super::Origin::Cfd(0))
            .count();
        assert!(old_cfd_instances > 0);

        let input = UserInput::single(ac, Value::int(999));
        let retracted = extended_ok(enc.extend_with_input(&spec, &input));
        assert_eq!(retracted.len(), 1, "the CFD's group must be retracted");

        // Re-emitted instances now range over the grown AC space: the ωX
        // premise contains 999 ≺ 213, which contradicts the base-order unit
        // 213 ≺ 999 — so the CFD is dead and city stays ambiguous.
        let nid = enc.value_id(ac, &Value::int(999)).unwrap();
        let cid213 = enc.value_id(ac, &Value::int(213)).unwrap();
        let reemitted: Vec<_> = enc
            .omega()
            .iter()
            .filter(|c| c.origin == super::super::Origin::Cfd(0))
            .collect();
        assert!(!reemitted.is_empty());
        assert!(
            reemitted.iter().all(|c| c
                .premise
                .contains(&OrderAtom { attr: ac, lo: nid, hi: cid213 })),
            "re-emitted ωX must mention the new value"
        );
        let od = crate::deduce::deduce_order(&enc).unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        assert!(!od.contains(city, ny, la), "CFD must not fire after retraction");
        assert!(!od.contains(city, la, ny));
        // And the scratch re-encode agrees.
        let (extended, _, _) = spec.apply_user_input(&input);
        let scratch = EncodedSpec::encode(&extended);
        let od_scr = crate::deduce::deduce_order(&scratch).unwrap();
        let ny_s = scratch.value_id(city, &Value::str("NY")).unwrap();
        let la_s = scratch.value_id(city, &Value::str("LA")).unwrap();
        assert!(!od_scr.contains(city, ny_s, la_s));
        assert!(!od_scr.contains(city, la_s, ny_s));
    }

    #[test]
    fn guarded_extension_activates_previously_dead_cfd() {
        // CFD: AC = 999 → city = "LA". 999 is outside the domain at encode
        // time (CFD vacuous); answering AC=999 must bring it to life:
        // 999 tops AC, the ωX premise holds, NY ≺ LA becomes deducible.
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let gamma = parse_cfds(&s, "AC = 999 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        let mut enc =
            EncodedSpec::encode_with(&spec, EncodeOptions::default().with_guarded_cfds());
        assert!(enc.omega().iter().all(|c| c.origin != super::super::Origin::Cfd(0)));
        assert!(enc.active_guards().is_empty());

        let ac = spec.schema().attr_id("AC").unwrap();
        let input = UserInput::single(ac, Value::int(999));
        let retracted = extended_ok(enc.extend_with_input(&spec, &input));
        assert!(retracted.is_empty(), "nothing was emitted before");
        assert_eq!(enc.active_guards().len(), 1, "the CFD now has a live group");

        let city = spec.schema().attr_id("city").unwrap();
        let od = crate::deduce::deduce_order(&enc).unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        assert!(od.contains(city, ny, la), "revived CFD must fire");
    }

    #[test]
    fn extension_rejects_lazy_encodings() {
        let spec = tiny_spec();
        let mut enc = EncodedSpec::encode_with(
            &spec,
            EncodeOptions { full_transitivity: false, ..Default::default() },
        );
        let status = spec.schema().attr_id("status").unwrap();
        let input = UserInput::single(status, Value::str("retired"));
        assert_eq!(
            enc.extend_with_input(&spec, &input),
            ExtendOutcome::NeedsRebuild
        );
    }
}
