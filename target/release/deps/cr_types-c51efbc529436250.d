/root/repo/target/release/deps/cr_types-c51efbc529436250.d: crates/cr-types/src/lib.rs crates/cr-types/src/csv.rs crates/cr-types/src/entity.rs crates/cr-types/src/error.rs crates/cr-types/src/interner.rs crates/cr-types/src/schema.rs crates/cr-types/src/tuple.rs crates/cr-types/src/value.rs

/root/repo/target/release/deps/libcr_types-c51efbc529436250.rlib: crates/cr-types/src/lib.rs crates/cr-types/src/csv.rs crates/cr-types/src/entity.rs crates/cr-types/src/error.rs crates/cr-types/src/interner.rs crates/cr-types/src/schema.rs crates/cr-types/src/tuple.rs crates/cr-types/src/value.rs

/root/repo/target/release/deps/libcr_types-c51efbc529436250.rmeta: crates/cr-types/src/lib.rs crates/cr-types/src/csv.rs crates/cr-types/src/entity.rs crates/cr-types/src/error.rs crates/cr-types/src/interner.rs crates/cr-types/src/schema.rs crates/cr-types/src/tuple.rs crates/cr-types/src/value.rs

crates/cr-types/src/lib.rs:
crates/cr-types/src/csv.rs:
crates/cr-types/src/entity.rs:
crates/cr-types/src/error.rs:
crates/cr-types/src/interner.rs:
crates/cr-types/src/schema.rs:
crates/cr-types/src/tuple.rs:
crates/cr-types/src/value.rs:
