//! CNF formula builder.

use crate::lit::{Lit, Var};

/// A CNF formula under construction: a variable counter plus a clause list.
///
/// `Cnf` is the interchange format between the encoder (`cr-core`), the CDCL
/// [`crate::Solver`], the root-level [`crate::UnitPropagator`] and the MaxSAT
/// solvers. Clauses are stored exactly as added; normalisation (duplicate and
/// tautology removal) happens when a solver ingests the formula.
///
/// Clauses live in one **flat literal arena** (`lits` plus a bounds index):
/// appending a clause is an arena extend instead of a per-clause `Vec`
/// allocation — the encoder converts tens of thousands of instance
/// constraints per entity, and the per-clause mallocs of the boxed
/// representation dominated round-0 encode on wide workloads — and
/// consumers iterate contiguous memory.
#[derive(Clone, Debug)]
pub struct Cnf {
    num_vars: u32,
    /// All clause literals, concatenated.
    lits: Vec<Lit>,
    /// Clause `i` is `lits[bounds[i] as usize..bounds[i + 1] as usize]`;
    /// always one longer than the clause count (starts as `[0]`).
    bounds: Vec<u32>,
}

impl Default for Cnf {
    fn default() -> Self {
        Cnf { num_vars: 0, lits: Vec::new(), bounds: vec![0] }
    }
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of literal occurrences (the `|Φ(Se)|` size measure used
    /// in the paper's complexity analysis).
    pub fn num_literals(&self) -> usize {
        self.lits.len()
    }

    /// Approximate heap footprint of the formula in bytes (the literal
    /// arena plus the clause-bounds index, counted at capacity). Feeds the
    /// bytes-per-entity accounting of `bench_incremental`.
    pub fn approx_bytes(&self) -> usize {
        self.lits.capacity() * std::mem::size_of::<Lit>()
            + self.bounds.capacity() * std::mem::size_of::<u32>()
    }

    /// Adds a clause (a disjunction of literals). An empty clause makes the
    /// formula trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let start = self.lits.len();
        self.lits.extend(lits);
        for i in start..self.lits.len() {
            let v = self.lits[i].var().0 + 1;
            self.ensure_vars(v);
        }
        self.bounds.push(self.lits.len() as u32);
    }

    /// [`Cnf::add_clause`] for clauses whose variables are already
    /// allocated: skips the per-literal variable-count scan. The encoder's
    /// bulk clause conversion (tens of thousands of clauses over a
    /// pre-allocated dense variable table) goes through here.
    pub fn add_clause_prealloc(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let start = self.lits.len();
        self.lits.extend(lits);
        debug_assert!(
            self.lits[start..].iter().all(|l| l.var().0 < self.num_vars),
            "add_clause_prealloc requires pre-allocated variables"
        );
        self.bounds.push(self.lits.len() as u32);
    }

    /// Reserves capacity for `n` additional clauses.
    pub fn reserve_clauses(&mut self, n: usize) {
        self.bounds.reserve(n);
    }

    /// Appends one literal of the clause under construction directly to the
    /// arena; [`Cnf::finish_clause`] terminates it. The literal's variable
    /// must already be allocated (bulk encoders only).
    #[inline]
    pub fn push_clause_lit(&mut self, l: Lit) {
        debug_assert!(l.var().0 < self.num_vars, "push_clause_lit requires an allocated variable");
        self.lits.push(l);
    }

    /// Terminates the clause whose literals were appended with
    /// [`Cnf::push_clause_lit`] (an empty clause if none were).
    #[inline]
    pub fn finish_clause(&mut self) {
        self.bounds.push(self.lits.len() as u32);
    }

    /// Adds the implication `premises → conclusion` as the clause
    /// `¬p1 ∨ … ∨ ¬pk ∨ conclusion`. This is exactly the `ConvertToCNF`
    /// rewrite of Section V-A.
    pub fn add_implication(&mut self, premises: &[Lit], conclusion: Lit) {
        let mut clause: Vec<Lit> = premises.iter().map(|p| p.negate()).collect();
        clause.push(conclusion);
        self.add_clause(clause);
    }

    /// Adds `premises → false`, i.e. the clause `¬p1 ∨ … ∨ ¬pk`.
    pub fn add_negated_conjunction(&mut self, premises: &[Lit]) {
        self.add_clause(premises.iter().map(|p| p.negate()).collect::<Vec<_>>());
    }

    /// The clause at index `idx`, as a slice into the literal arena.
    #[inline]
    pub fn clause(&self, idx: usize) -> &[Lit] {
        &self.lits[self.bounds[idx] as usize..self.bounds[idx + 1] as usize]
    }

    /// Iterates the clauses in insertion order.
    pub fn clauses(&self) -> impl Iterator<Item = &[Lit]> + '_ {
        self.clauses_from(0)
    }

    /// Iterates the clauses starting at index `from` — the tail-sync
    /// primitive of the incremental consumers (solver, unit propagator).
    pub fn clauses_from(&self, from: usize) -> impl Iterator<Item = &[Lit]> + '_ {
        self.bounds[from..]
            .windows(2)
            .map(|w| &self.lits[w[0] as usize..w[1] as usize])
    }

    /// Evaluates the formula under a total assignment (indexed by variable).
    /// Used by tests and by the MaxSAT local search.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] == l.is_positive())
        })
    }

    /// Counts clauses satisfied under a total assignment.
    pub fn count_satisfied(&self, assignment: &[bool]) -> usize {
        self.clauses()
            .filter(|c| {
                c.iter()
                    .any(|l| assignment[l.var().index()] == l.is_positive())
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_allocation_and_counts() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), b.negative()]);
        cnf.add_clause([b.positive()]);
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_literals(), 3);
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var(9).positive()]);
        assert_eq!(cnf.num_vars(), 10);
    }

    #[test]
    fn implication_encoding() {
        let mut cnf = Cnf::new();
        let (a, b, c) = (cnf.new_var(), cnf.new_var(), cnf.new_var());
        cnf.add_implication(&[a.positive(), b.positive()], c.positive());
        assert_eq!(
            cnf.clause(0),
            [a.negative(), b.negative(), c.positive()]
        );
        cnf.add_negated_conjunction(&[a.positive()]);
        assert_eq!(cnf.clause(1), [a.negative()]);
    }

    #[test]
    fn eval_and_count() {
        let mut cnf = Cnf::new();
        let (a, b) = (cnf.new_var(), cnf.new_var());
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative()]);
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, false]));
        assert_eq!(cnf.count_satisfied(&[true, false]), 1);
    }
}
