//! The crash-and-rehydrate differential.
//!
//! This module packages the crate's recovery invariant as an executable
//! check: **a restored session must be equivalent to a from-scratch
//! resolve of the surviving event prefix**. Given the records recovery
//! managed to read back, [`reference_of`] replays them into a *fresh*
//! session (and a [`SpecMirror`] of cumulative effects), and
//! [`verify_recovery`] compares the rehydrated session against it — first
//! semantically via [`check_session_against_scratch`] (validity, deduced
//! orders, true values against the mirror's materialised specification),
//! then structurally on the logical [`cr_core::ingest::SessionState`] (entity rows, order
//! pairs, retired CFDs, accepted answers, causal frontier, competing
//! cells, quarantine log and epoch). Telemetry cost counters are
//! deliberately excluded: snapshot-plus-tail replay legally does less
//! engine work than a full replay.
//!
//! The `cr-store` recovery tests and the `crash_soak` CI binary drive this
//! differential at every event boundary under every [`crate::fault::Fault`]
//! mode.

use cr_core::ingest::{
    check_session_against_scratch, ResolutionSession, RevisionPolicy, SpecMirror,
};
use cr_core::spec::Specification;
use cr_core::ResolutionConfig;

use crate::event::{plan_replay, LogRecord, ReplayStep};

/// A fresh session plus effect mirror built by replaying surviving records
/// from scratch — the "ground truth" side of the recovery differential.
pub struct ReplayedReference {
    /// The from-scratch session after replaying every surviving record.
    pub session: ResolutionSession,
    /// Mirror of the cumulative *effective* revisions and inputs, whose
    /// materialisation is the surviving prefix's specification.
    pub mirror: SpecMirror,
}

/// Replays `records` (as recovered from a damaged log) into a fresh
/// session over `base`, mirroring every effective revision. Records are
/// grouped into whole batches by [`plan_replay`] — the same planner
/// rehydration uses — so an uncommitted trailing batch run is dropped on
/// both sides of the differential. Snapshot records are skipped: they are
/// derived state, not inputs.
///
/// `policy` must not be [`RevisionPolicy::Reject`] — replay of a durable
/// log is total by construction.
pub fn reference_of(
    config: &ResolutionConfig,
    policy: RevisionPolicy,
    base: &Specification,
    records: &[LogRecord],
) -> ReplayedReference {
    assert!(
        !matches!(policy, RevisionPolicy::Reject),
        "reference replay requires a non-Reject policy"
    );
    let mut session = ResolutionSession::new_revisable(config, base);
    session.set_revision_policy(policy);
    let mut mirror = SpecMirror::new(base);
    for step in plan_replay(records).steps {
        match step {
            ReplayStep::Input(input) => {
                session.apply_input(&input);
                mirror.apply_input(&input);
            }
            ReplayStep::CausalBatch(batch) => {
                let effective = session
                    .ingest_causal(batch)
                    .expect("non-Reject policy never propagates errors");
                for rev in &effective {
                    mirror.apply(rev);
                }
            }
            ReplayStep::RevisionBatch(batch) => {
                let (_, applied) = session
                    .absorb_revision_batch(&batch)
                    .expect("non-Reject policy never propagates errors");
                for (rev, applied) in batch.iter().zip(applied) {
                    if applied {
                        mirror.apply(rev);
                    }
                }
            }
            ReplayStep::Snapshot(_) => {}
        }
    }
    ReplayedReference { session, mirror }
}

/// Checks the recovery invariant: `rehydrated` (a session rebuilt from
/// snapshot + log tail) must be equivalent to `reference` (the same
/// surviving records replayed from scratch).
///
/// Equivalence is checked two ways: both sessions against the reference
/// mirror's materialised specification (validity / deduced orders / true
/// values), then field-by-field on the logical state — entity rows, order
/// pairs, retired CFDs, accepted answers, the causal frontier, competing
/// cells, the quarantine log and the epoch.
/// Telemetry is *not* compared (cost counters depend on engine history).
pub fn verify_recovery(
    rehydrated: &mut ResolutionSession,
    reference: &mut ReplayedReference,
) -> Result<(), String> {
    check_session_against_scratch(rehydrated, &reference.mirror)
        .map_err(|e| format!("rehydrated session diverged from surviving prefix: {e}"))?;
    check_session_against_scratch(&mut reference.session, &reference.mirror)
        .map_err(|e| format!("reference replay diverged from its own mirror: {e}"))?;

    let got = rehydrated.state();
    let want = reference.session.state();
    if got.tuples != want.tuples {
        return Err(format!(
            "entity rows diverged: rehydrated {:?} vs scratch {:?}",
            got.tuples, want.tuples
        ));
    }
    if got.orders != want.orders {
        return Err(format!(
            "order pairs diverged: rehydrated {:?} vs scratch {:?}",
            got.orders, want.orders
        ));
    }
    if got.retired_cfds != want.retired_cfds {
        return Err(format!(
            "retired CFDs diverged: rehydrated {:?} vs scratch {:?}",
            got.retired_cfds, want.retired_cfds
        ));
    }
    if got.answers != want.answers {
        return Err(format!(
            "accepted answers diverged: rehydrated {:?} vs scratch {:?}",
            got.answers, want.answers
        ));
    }
    if got.frontier != want.frontier {
        return Err(format!(
            "causal frontier diverged: rehydrated {:?} vs scratch {:?}",
            got.frontier, want.frontier
        ));
    }
    // Eviction must not lose the user-facing side channels either. These
    // comparisons assume the replay never drained `take_competing` — true
    // for log replay, which only feeds ingestion paths.
    if got.competing != want.competing {
        return Err(format!(
            "competing cells diverged: rehydrated {:?} vs scratch {:?}",
            got.competing, want.competing
        ));
    }
    if got.quarantine != want.quarantine {
        return Err(format!(
            "quarantine log diverged: rehydrated {:?} vs scratch {:?}",
            got.quarantine, want.quarantine
        ));
    }
    if got.quarantine_cap != want.quarantine_cap {
        return Err(format!(
            "quarantine cap diverged: rehydrated {} vs scratch {}",
            got.quarantine_cap, want.quarantine_cap
        ));
    }
    if got.epoch != want.epoch {
        return Err(format!(
            "epoch diverged: rehydrated {} vs scratch {}",
            got.epoch, want.epoch
        ));
    }
    Ok(())
}
