/root/repo/target/debug/deps/fig8a_validity-388d3820e68c439b.d: crates/cr-bench/src/bin/fig8a_validity.rs

/root/repo/target/debug/deps/fig8a_validity-388d3820e68c439b: crates/cr-bench/src/bin/fig8a_validity.rs

crates/cr-bench/src/bin/fig8a_validity.rs:
