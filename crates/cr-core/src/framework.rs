//! The interactive conflict-resolution framework (Fig. 4).
//!
//! Each round: (1) validity checking, (2) true-value deducing, (3) check
//! whether `T(Se ⊕ Ot)` exists, (4) otherwise generate a suggestion, obtain
//! user input and extend the specification. The user is abstracted behind
//! [`UserOracle`]; experiments plug in [`GroundTruthOracle`] (the paper
//! "simulated user interactions by providing true values for suggested
//! attributes, some with new values").
//!
//! # Incremental resolution engine
//!
//! The Fig. 4 loop is the system's hot path: every user interaction
//! re-enters validity checking and deduction on a specification that grew
//! by one tuple. With [`ResolutionConfig::incremental`] (the default) the
//! loop runs on an engine that keeps three pieces of state alive across
//! rounds instead of rebuilding them:
//!
//! * the [`EncodedSpec`] — user answers drawn from the interned value
//!   space are absorbed by [`EncodedSpec::extend_with_input`], which
//!   appends the unit clauses and Σ instances induced by the fresh
//!   user-input tuple (value spaces and the Ω(Se) instantiation of the
//!   original tuples are invariant under such input);
//! * one CDCL [`cr_sat::Solver`] shared by the validity check and (for
//!   [`DeductionMethod::NaiveSat`]) the deduction probes — clauses learnt
//!   in any phase of any round prune the search in all later ones;
//! * one root-level [`cr_sat::UnitPropagator`] that resumes from its
//!   previous fixpoint when the per-round clause delta arrives, so
//!   `DeduceOrder` does work proportional to the delta's consequences.
//!
//! # Zero-rebuild interaction loop: the guard-group lifecycle
//!
//! Answers outside the interned space ("new values" in the paper's
//! terminology) change the value spaces and the Γ instantiation. The
//! engine encodes with guarded CFDs (`EncodeOptions::guarded_cfds`), which
//! makes those changes expressible as a pure extension — the loop **never
//! rebuilds**:
//!
//! * every CFD's instance constraints form a *clause group* guarded by a
//!   literal `g`; the engine keeps the active guards asserted on the warm
//!   solver as persistent assumptions
//!   (`cr_sat::Solver::set_persistent_assumptions`) and feeds the
//!   guard-stripped clauses to its unit propagator under the group's tag;
//! * a new value appends order variables and axioms to the encoding, and
//!   every CFD referencing the grown attribute is *retracted* (the root
//!   unit `¬g` travels to the solver through the ordinary clause-tail sync,
//!   killing the group's clauses and everything learnt from them) and
//!   *re-emitted* over the grown space under a fresh guard;
//! * the unit propagator is told to [`cr_sat::UnitPropagator::retract_group`]
//!   the stale groups; its **per-group implication provenance** (see the
//!   `cr_sat::unit_propagation` module docs) undoes exactly the retracted
//!   derivation cone and re-queues its frontier, so the replay cost is
//!   proportional to what the retraction actually disturbed — usually
//!   nothing, because a fired CFD's attributes are already settled — and
//!   never `O(|Φ|)` ([`ResolutionOutcome::retraction_replays`] /
//!   [`RoundReport::retraction_invalidated`] report it per resolution and
//!   per round).
//!
//! At each round boundary the engine also compacts the solver's learnt
//! database (`cr_sat::Solver::compact_learnts`), bounding memory over
//! arbitrarily long interactions.
//!
//! # Lazy axiom instantiation (engine default)
//!
//! The engine encodes with [`AxiomMode::Lazy`](crate::encode::AxiomMode)
//! (`ResolutionConfig::default`): the `O(n³)`-per-attribute order axioms
//! are never materialised at encode time. Validity checks run the solver's
//! CEGAR loop (`cr_sat::Solver::solve_lazy_with_assumptions`), deduction
//! interleaves root propagation with on-demand instantiation
//! (`cr_sat::UnitPropagator::propagate_to_fixpoint_lazy`), and both consult
//! the encoding through a [`RecordingAxiomSource`], which appends every
//! handed-out axiom clause to `Φ(Se)` — so the warm solver and the unit
//! propagator exchange injected axioms via the ordinary clause-tail sync,
//! and the MaxSAT repair's borrowed hard base sees them for free. The
//! suggestion step records too (`suggest_with_engine`): the clique probe's
//! CEGAR injections and the MaxSAT repair's discoveries all land in the
//! CNF, so later probes start from the full already-injected theory and
//! the tail sync can never re-feed the warm solver a duplicate instance.
//! [`ResolutionOutcome::injected_axioms`] counts the recorded clauses; see
//! the "Encoding modes" section of the encode module docs for the
//! eager/lazy/guarded matrix and the differential-test coverage.
//!
//! The legacy rebuild fallback survives only behind the
//! [`ResolutionConfig::rebuild_fallback`] debug/differential flag (it
//! disables guarded CFDs, so out-of-domain answers rebuild the engine, as
//! in the first incremental version); [`ResolutionOutcome::rebuilds`]
//! counts how often that path fired. The from-scratch loop is kept (set
//! `incremental: false`) for differential testing — see
//! `tests/incremental_differential.rs` — and as the paper-faithful
//! baseline for benchmarks.
//!
//! Independent entities share no *mutable* state;
//! [`Resolver::resolve_all_parallel`] fans a batch of resolutions across
//! the sharded work-stealing scheduler of [`crate::sched`]: each worker
//! owns a deque of deterministically pre-built tasks (small entities
//! batched together, oversized entities' Ω instantiation split into
//! stealable subtasks) and steals from its siblings when its own deque
//! runs dry, so a handful of giant entities cannot strand the other
//! cores. What entities do share is the dataset's immutable
//! `Arc<CompiledProgram>` (stamped by the dataset generators): Σ/Γ are
//! compiled once per dataset and every entity on every thread only
//! projects through the shared program — see the "Compiled constraint
//! programs" section of the encode module docs. Workers additionally pool
//! per-entity solver scratch ([`ResolutionSession`] teardown feeds the
//! next resolution's solver construction), and streaming ingestion can be
//! coupled to resolution through the scheduler's bounded queue
//! ([`crate::sched::resolve_stream`]) so unresolved entities never pile
//! up unboundedly ahead of the workers.

use std::time::{Duration, Instant};

use cr_types::{Schema, Tuple};

use crate::deduce::{
    deduce_order_recording, deduce_order_from, naive_deduce_recording, naive_deduce_with,
    DeducedOrders,
};
use crate::encode::{EncodeOptions, EncodedSpec, RecordingAxiomSource};
use crate::ingest::{CompetingCell, ResolutionSession, RevisionSource, RevisionTelemetry};
use crate::spec::{Specification, UserInput};
use crate::suggest::{suggest_with_engine, Suggestion};
use crate::truevalue::{true_values_from_orders, TrueValues};

/// How implied orders are deduced in step (2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeductionMethod {
    /// `DeduceOrder` — unit propagation (fast, sound, incomplete).
    #[default]
    UnitPropagation,
    /// `NaiveDeduce` — complete via per-variable SAT probes.
    NaiveSat,
}

/// Configuration of the resolution loop.
#[derive(Clone, Copy, Debug)]
pub struct ResolutionConfig {
    /// Maximum user-interaction rounds before settling with partial values.
    pub max_rounds: usize,
    /// Deduction algorithm.
    pub deduction: DeductionMethod,
    /// CNF generation options.
    pub encode: EncodeOptions,
    /// Reuse the encoding, solver and unit propagator across rounds (see
    /// the module docs). `false` re-derives everything from scratch every
    /// round, exactly as the paper describes the loop.
    pub incremental: bool,
    /// Debug/differential flag: run the incremental engine **without**
    /// guarded CFD groups, restoring the legacy behaviour where an
    /// out-of-domain answer rebuilds the engine for that round (counted in
    /// [`ResolutionOutcome::rebuilds`]). Kept for differential testing of
    /// the guarded-extension path; production configurations leave it off
    /// and never rebuild.
    pub rebuild_fallback: bool,
}

impl Default for ResolutionConfig {
    fn default() -> Self {
        ResolutionConfig {
            max_rounds: 10,
            deduction: DeductionMethod::UnitPropagation,
            // The engine default is *lazy* axiom instantiation
            // (`EncodeOptions::default()` stays eager for standalone
            // consumers — see the "Encoding modes" section of the encode
            // module docs). Set `encode: EncodeOptions::eager()` for the
            // fully materialised differential baseline.
            encode: EncodeOptions::lazy(),
            incremental: true,
            rebuild_fallback: false,
        }
    }
}

/// Per-round measurements (the breakdown plotted in Fig. 8(c)/(d)).
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Round number (0 = before any interaction).
    pub round: usize,
    /// Time spent in validity checking (encode + SAT).
    pub validity: Duration,
    /// Time spent deducing orders and true values.
    pub deduce: Duration,
    /// Time spent generating the suggestion (zero on the final round).
    pub suggest: Duration,
    /// Attributes with known true values after this round's deduction.
    pub known_after_deduce: usize,
    /// Size `|A|` of the suggestion shown to the user (0 if none needed).
    pub suggestion_size: usize,
    /// Attributes the user answered.
    pub user_answers: usize,
    /// Root literals invalidated by provenance-scoped retraction replay
    /// while absorbing this round's user input (0 on rounds without CFD
    /// retraction and on the scratch path). Compare against the fixpoint
    /// size to see the replay staying sub-linear.
    pub retraction_invalidated: usize,
    /// Upstream revision events absorbed before this round's validity
    /// check (push-based correction ingestion; 0 without a revision
    /// source).
    pub revision_events: usize,
    /// Root literals the revision replays of this round invalidated — the
    /// *cone size* of the round's corrections (non-empty when a fired CFD
    /// or a load-bearing order was withdrawn).
    pub revision_invalidated: usize,
    /// Revision events of this round that failed validation and were
    /// quarantined per the session's
    /// [`RevisionPolicy`](crate::ingest::RevisionPolicy) (0 on clean
    /// streams and without a revision source).
    pub revision_quarantined: usize,
    /// Revision events of this round that shared a multi-event batch's
    /// single settle/replay/re-emission pass (0 when every poll held at
    /// most one event).
    pub revision_coalesced: usize,
    /// Deduplicated union-cone size of this round's multi-event batches —
    /// groups retracted in one coalesced replay.
    pub revision_cone_union: usize,
    /// Settle + provenance-replay passes the round's batching saved over
    /// event-at-a-time ingestion.
    pub revision_replays_saved: usize,
    /// Cells holding causally-concurrent competing candidates after this
    /// round's revision drain — the branch tips (plus any re-opened local
    /// answer) a caller should present to the user instead of a bare
    /// re-open. Empty on non-causal streams.
    pub competing: Vec<CompetingCell>,
}

impl RoundReport {
    /// A report for a round that ended without a suggestion: invalid
    /// specification, complete true values, or the final allowed round.
    pub(crate) fn settled(round: usize, validity: Duration, deduce: Duration, known: usize) -> Self {
        RoundReport {
            round,
            validity,
            deduce,
            suggest: Duration::ZERO,
            known_after_deduce: known,
            suggestion_size: 0,
            user_answers: 0,
            retraction_invalidated: 0,
            revision_events: 0,
            revision_invalidated: 0,
            revision_quarantined: 0,
            revision_coalesced: 0,
            revision_cone_union: 0,
            revision_replays_saved: 0,
            competing: Vec::new(),
        }
    }
}

/// Outcome of a resolution run.
#[derive(Clone, Debug)]
pub struct ResolutionOutcome {
    /// Final per-attribute true values (possibly partial).
    pub resolved: TrueValues,
    /// True iff the initial specification (and every extension) was valid.
    pub valid: bool,
    /// True iff `T(Se ⊕ Ot)` was found for all attributes.
    pub complete: bool,
    /// Number of interaction rounds that involved the user.
    pub interactions: usize,
    /// Total attributes answered by the user across rounds.
    pub user_values: usize,
    /// Total size of the order extension `|Ot|` accumulated from input.
    pub ot_size: usize,
    /// Engine rebuilds the incremental path performed (always 0 unless the
    /// [`ResolutionConfig::rebuild_fallback`] debug flag forced the legacy
    /// fallback; 0 by definition on the scratch path, which re-encodes
    /// every round by design).
    pub rebuilds: usize,
    /// Axiom clauses lazily instantiated *and recorded* into `Φ(Se)` over
    /// the whole resolution ([`AxiomMode::Lazy`](crate::encode::AxiomMode)
    /// encodings; 0 in eager mode). Suggestion probes and MaxSAT repair
    /// rounds record their injections too (`suggest_with_engine`), so every
    /// instantiated axiom is counted exactly once.
    pub injected_axioms: usize,
    /// Provenance-scoped retraction replays the warm unit propagator
    /// performed (out-of-domain answers retracting CFD groups; 0 on the
    /// scratch path).
    pub retraction_replays: usize,
    /// Total root literals those replays invalidated — the re-derivation
    /// work actually paid, versus re-deriving the whole fixpoint per
    /// retraction.
    pub retraction_invalidated: usize,
    /// Full `O(|Φ|)` fallback resets (conflicting or mid-propagation
    /// retractions; 0 on healthy interactive runs).
    pub retraction_full_resets: usize,
    /// Push-based correction telemetry: upstream revision events absorbed,
    /// clause groups they retracted, the replay cone sizes and the
    /// re-emitted clauses (all 0 without a revision source — see
    /// [`Resolver::resolve_with_revisions`]).
    pub revisions: RevisionTelemetry,
    /// Per-round timing/progress reports.
    pub rounds: Vec<RoundReport>,
}

/// A source of true values for suggested attributes.
pub trait UserOracle {
    /// Answers (a subset of) the suggestion. Returning an empty input makes
    /// the framework settle with the true values derived so far.
    fn provide(&mut self, schema: &Schema, suggestion: &Suggestion) -> UserInput;
}

/// An oracle that never answers — resolution is purely automatic (the
/// "0-interaction" configuration of the experiments).
pub struct SilentOracle;

impl UserOracle for SilentOracle {
    fn provide(&mut self, _schema: &Schema, _suggestion: &Suggestion) -> UserInput {
        UserInput::empty()
    }
}

/// Answers from a ground-truth tuple, like the paper's simulated users. Can
/// be capped to `max_attrs_per_round` to exercise multi-round interaction.
pub struct GroundTruthOracle {
    truth: Tuple,
    /// Maximum attributes answered per round (`usize::MAX` = all asked).
    pub max_attrs_per_round: usize,
}

impl GroundTruthOracle {
    /// An oracle answering every asked attribute from `truth`.
    pub fn new(truth: Tuple) -> Self {
        GroundTruthOracle { truth, max_attrs_per_round: usize::MAX }
    }

    /// An oracle answering at most `cap` attributes per round.
    pub fn with_cap(truth: Tuple, cap: usize) -> Self {
        GroundTruthOracle { truth, max_attrs_per_round: cap }
    }
}

impl UserOracle for GroundTruthOracle {
    fn provide(&mut self, _schema: &Schema, suggestion: &Suggestion) -> UserInput {
        // Answer the most *influential* attributes first: users naturally
        // validate the values other facts hinge on (George's `status` in
        // Example 12). Influence = number of selected derivation rules
        // mentioning the attribute on their left-hand side.
        let mut ranked: Vec<cr_types::AttrId> = suggestion.ask.keys().copied().collect();
        let influence = |attr: cr_types::AttrId| {
            suggestion
                .rules
                .iter()
                .filter(|r| r.lhs.iter().any(|(a, _)| *a == attr))
                .count()
        };
        ranked.sort_by_key(|&a| (std::cmp::Reverse(influence(a)), a));
        let mut input = UserInput::empty();
        for attr in ranked.into_iter().take(self.max_attrs_per_round) {
            let v = self.truth.get(attr).clone();
            if !v.is_null() {
                input.values.insert(attr, v);
            }
        }
        input
    }
}

/// The framework driver.
pub struct Resolver {
    config: ResolutionConfig,
}

impl Resolver {
    /// A resolver with the given configuration.
    pub fn new(config: ResolutionConfig) -> Self {
        Resolver { config }
    }

    /// A resolver with default configuration.
    pub fn default_config() -> Self {
        Resolver::new(ResolutionConfig::default())
    }

    /// Runs the loop of Fig. 4 on `spec` with `oracle` as the user,
    /// dispatching to the incremental engine or the from-scratch loop per
    /// [`ResolutionConfig::incremental`].
    pub fn resolve(&self, spec: &Specification, oracle: &mut dyn UserOracle) -> ResolutionOutcome {
        if self.config.incremental {
            self.resolve_incremental(spec, oracle, None)
        } else {
            self.resolve_scratch(spec, oracle)
        }
    }

    /// [`Resolver::resolve`] for the scheduler's shard workers: an
    /// optional pre-built encoding (split tasks encode oversized entities
    /// off the worker's critical path) and a pooled solver scratch cycled
    /// across the worker's resolutions. Outcome-identical to
    /// [`Resolver::resolve`] — the scratch-built solver starts in the same
    /// state as a fresh one, and a pre-built encoding is byte-identical to
    /// the inline encode (see `EncodedSpec::encode_with_omega_chunks`).
    /// The from-scratch loop (`incremental: false`) rebuilds per round, so
    /// it takes neither and falls through unchanged.
    pub(crate) fn resolve_pooled(
        &self,
        spec: &Specification,
        oracle: &mut dyn UserOracle,
        enc: Option<EncodedSpec>,
        scratch: &mut Option<cr_sat::SolverScratch>,
    ) -> ResolutionOutcome {
        if !self.config.incremental {
            return self.resolve_scratch(spec, oracle);
        }
        let enc = enc.unwrap_or_else(|| {
            EncodedSpec::encode_with(spec, ResolutionSession::engine_options(&self.config))
        });
        let session = ResolutionSession::from_encoded(&self.config, spec, enc, scratch.take());
        let (outcome, session) = self.drive_session(spec, oracle, None, session);
        *scratch = Some(session.into_solver_scratch());
        outcome
    }

    /// The [`EncodeOptions`] [`Resolver::resolve`] encodes with on the
    /// incremental path — what split tasks must use for their pre-built
    /// encodings to match.
    pub(crate) fn engine_encode_options(&self) -> EncodeOptions {
        ResolutionSession::engine_options(&self.config)
    }

    /// This resolver's configuration.
    pub fn config(&self) -> &ResolutionConfig {
        &self.config
    }

    /// [`Resolver::resolve`] with a **push stream of upstream corrections**:
    /// before each interaction round the `source` is polled and every
    /// pending [`crate::ingest::Revision`] — a retracted CFD, a withdrawn
    /// currency order or user answer, a corrected value — is absorbed by
    /// the warm engine *without rebuilding*, through guard-group
    /// retraction, provenance-scoped replay and compiled-program-aware
    /// re-emission (see the [`crate::ingest`] module docs).
    /// [`ResolutionOutcome::revisions`] reports the events applied, the
    /// retracted groups, the replay cone sizes and the re-emitted clauses.
    ///
    /// Always runs the incremental engine (streaming corrections into a
    /// from-scratch loop would just re-encode — the paper-faithful baseline
    /// for that comparison is a fresh [`Resolver::resolve`] on the
    /// post-revision specification, which is exactly what the differential
    /// harness [`crate::ingest::resolve_with_revisions_checked`] proves
    /// equivalent).
    pub fn resolve_with_revisions(
        &self,
        spec: &Specification,
        oracle: &mut dyn UserOracle,
        source: &mut dyn RevisionSource,
    ) -> ResolutionOutcome {
        self.resolve_incremental(spec, oracle, Some(source))
    }

    /// The Fig. 4 loop on a round-persistent [`ResolutionSession`],
    /// optionally fed by a revision stream (which forces the revisable
    /// encoding — per-order and per-constraint guard groups).
    fn resolve_incremental(
        &self,
        spec: &Specification,
        oracle: &mut dyn UserOracle,
        source: Option<&mut dyn RevisionSource>,
    ) -> ResolutionOutcome {
        let session = if source.is_some() {
            ResolutionSession::new_revisable(&self.config, spec)
        } else {
            ResolutionSession::new(&self.config, spec)
        };
        self.drive_session(spec, oracle, source, session).0
    }

    /// The Fig. 4 loop body over a pre-built session, returning the spent
    /// session alongside the outcome so callers can recycle its solver
    /// allocations ([`ResolutionSession::into_solver_scratch`]) — the
    /// scheduler's shard workers resolve thousands of entities each and
    /// pool their scratch across resolutions.
    pub(crate) fn drive_session(
        &self,
        spec: &Specification,
        oracle: &mut dyn UserOracle,
        mut source: Option<&mut dyn RevisionSource>,
        mut session: ResolutionSession,
    ) -> (ResolutionOutcome, ResolutionSession) {
        let mut rounds = Vec::new();
        let mut interactions = 0;
        let mut user_values = 0;
        let mut ot_size = 0;
        let arity = spec.schema().arity();
        let mut last_values = TrueValues::new(vec![None; arity]);

        let outcome = |session: &ResolutionSession,
                       resolved: TrueValues,
                       valid: bool,
                       complete: bool,
                       interactions: usize,
                       user_values: usize,
                       ot_size: usize,
                       rounds: Vec<RoundReport>| {
            ResolutionOutcome {
                resolved,
                valid,
                complete,
                interactions,
                user_values,
                ot_size,
                rebuilds: session.rebuilds(),
                injected_axioms: session.injected_axioms(),
                retraction_replays: session.replays().0,
                retraction_invalidated: session.replays().1,
                retraction_full_resets: session.replays().2,
                revisions: session.revision_telemetry(),
                rounds,
            }
        };

        for round in 0..=self.config.max_rounds {
            // (0) Drain the correction stream: upstream events that arrived
            // since the last round are absorbed before validity is
            // re-checked (their retraction cones replay here).
            let revision_deltas = match source.as_deref_mut() {
                Some(src) => {
                    let revs = src.poll(round, session.current());
                    let before = session.revision_telemetry();
                    if !revs.is_empty() {
                        // The whole poll is one batch: one union-cone
                        // settle/replay/re-emission pass regardless of the
                        // poll size. The production session runs under its
                        // degradation policy (default: quarantine), so a
                        // malformed event is logged and counted, not
                        // propagated.
                        session
                            .apply_revision_batch(&revs)
                            .expect("default policy never rejects");
                    }
                    let after = session.revision_telemetry();
                    (
                        after.events - before.events,
                        after.invalidated - before.invalidated,
                        after.quarantined - before.quarantined,
                        after.events_coalesced - before.events_coalesced,
                        after.cone_union - before.cone_union,
                        after.replays_saved - before.replays_saved,
                    )
                }
                None => (0, 0, 0, 0, 0, 0),
            };
            // Competing-candidate cells drained once per round (populated
            // only by causally-stamped streams; empty here unless a custom
            // driver interleaved `ingest_causal` calls).
            let mut competing = session.take_competing();
            let mut stamp_revisions = |report: &mut RoundReport| {
                report.revision_events = revision_deltas.0;
                report.revision_invalidated = revision_deltas.1;
                report.revision_quarantined = revision_deltas.2;
                report.revision_coalesced = revision_deltas.3;
                report.revision_cone_union = revision_deltas.4;
                report.revision_replays_saved = revision_deltas.5;
                report.competing = std::mem::take(&mut competing);
            };

            // (1) Validity checking. Round 0 pays the encode + solver
            // construction; later rounds only re-solve after the delta.
            let t0 = Instant::now();
            let valid = session.is_valid();
            let validity = t0.elapsed();
            if !valid {
                let mut report = RoundReport::settled(round, validity, Duration::ZERO, 0);
                stamp_revisions(&mut report);
                rounds.push(report);
                let o = outcome(
                    &session, last_values, false, false, interactions, user_values, ot_size,
                    rounds,
                );
                return (o, session);
            }

            // (2) True value deducing.
            let t1 = Instant::now();
            let od: DeducedOrders = session
                .deduce(self.config.deduction)
                .expect("deduction cannot conflict on a valid specification");
            let values = session.true_values(&od);
            let deduce = t1.elapsed();
            last_values = values.clone();

            // (3) T(Se ⊕ Ot) exists?
            if values.complete() {
                let mut report =
                    RoundReport::settled(round, validity, deduce, values.known_count());
                stamp_revisions(&mut report);
                rounds.push(report);
                let o = outcome(
                    &session, values, true, true, interactions, user_values, ot_size, rounds,
                );
                return (o, session);
            }
            if round == self.config.max_rounds {
                let mut report =
                    RoundReport::settled(round, validity, deduce, values.known_count());
                stamp_revisions(&mut report);
                rounds.push(report);
                break;
            }

            // (4) Generate a suggestion and ask the user. The warm solver
            // must hold every CNF clause first (lazy deduction may have
            // recorded axioms the solver has not seen yet). The probe and
            // the MaxSAT repair *record* their axiom injections
            // (`suggest_with_engine`), so later rounds start from the full
            // already-injected theory and the tail sync never re-feeds the
            // solver an instance it already holds.
            let t2 = Instant::now();
            let sug = session.suggest(&od, &values);
            let suggest_time = t2.elapsed();
            let input = oracle.provide(spec.schema(), &sug);
            let mut report = RoundReport {
                round,
                validity,
                deduce,
                suggest: suggest_time,
                known_after_deduce: values.known_count(),
                suggestion_size: sug.len(),
                user_answers: input.values.len(),
                retraction_invalidated: 0,
                revision_events: 0,
                revision_invalidated: 0,
                revision_quarantined: 0,
                revision_coalesced: 0,
                revision_cone_union: 0,
                revision_replays_saved: 0,
                competing: Vec::new(),
            };
            stamp_revisions(&mut report);
            rounds.push(report);
            if input.is_empty() {
                break; // user settles with partial true values
            }
            interactions += 1;
            user_values += input.values.len();
            let invalidated_before = session.replays().1;
            ot_size += session.apply_input(&input);
            if let Some(report) = rounds.last_mut() {
                report.retraction_invalidated = session.replays().1 - invalidated_before;
            }
        }

        let o = outcome(
            &session,
            last_values.clone(),
            true,
            last_values.complete(),
            interactions,
            user_values,
            ot_size,
            rounds,
        );
        (o, session)
    }

    /// The Fig. 4 loop exactly as the paper describes it: every round
    /// re-encodes the extended specification and constructs fresh solvers.
    /// Kept as the differential-testing baseline for the incremental path
    /// (with either axiom mode — a lazy scratch round runs the same CEGAR
    /// loops on its throwaway solver/propagator).
    fn resolve_scratch(&self, spec: &Specification, oracle: &mut dyn UserOracle) -> ResolutionOutcome {
        let mut current = spec.clone();
        let mut rounds = Vec::new();
        let mut interactions = 0;
        let mut user_values = 0;
        let mut ot_size = 0;
        let mut injected_axioms = 0;
        let arity = spec.schema().arity();
        let mut last_values = TrueValues::new(vec![None; arity]);
        let lazy = self.config.encode.is_lazy();

        for round in 0..=self.config.max_rounds {
            // (1) Validity checking.
            let t0 = Instant::now();
            let mut enc = EncodedSpec::encode_with(&current, self.config.encode);
            // fresh_solver asserts active guard groups — required if the
            // caller configured the scratch path with guarded CFDs.
            let mut solver = enc.fresh_solver();
            let valid = if lazy {
                let mut source = RecordingAxiomSource::new(&mut enc);
                solver.solve_lazy(&mut source) == cr_sat::SolveResult::Sat
            } else {
                solver.solve() == cr_sat::SolveResult::Sat
            };
            // Clauses the solver holds (lazy-solve recordings included).
            let mut synced = enc.cnf().num_clauses();
            let validity = t0.elapsed();
            if !valid {
                // With a trusted oracle this means the *initial* Se has
                // conflicts; report invalid.
                rounds.push(RoundReport::settled(round, validity, Duration::ZERO, 0));
                return ResolutionOutcome {
                    resolved: last_values,
                    valid: false,
                    complete: false,
                    interactions,
                    user_values,
                    ot_size,
                    rebuilds: 0,
                    injected_axioms: injected_axioms + enc.injected_axioms(),
                    retraction_replays: 0,
                    retraction_invalidated: 0,
                    retraction_full_resets: 0,
                    revisions: RevisionTelemetry::default(),
                    rounds,
                };
            }

            // (2) True value deducing.
            let t1 = Instant::now();
            let od: DeducedOrders = match self.config.deduction {
                DeductionMethod::UnitPropagation => {
                    let mut up = enc.fresh_propagator();
                    if lazy {
                        deduce_order_recording(&mut up, &mut enc)
                    } else {
                        deduce_order_from(&mut up, &enc)
                    }
                }
                DeductionMethod::NaiveSat => {
                    let od = if lazy {
                        naive_deduce_recording(&mut solver, &mut enc)
                    } else {
                        naive_deduce_with(&mut solver, &enc)
                    };
                    // Probe-time recordings went through this solver too.
                    synced = enc.cnf().num_clauses();
                    od
                }
            }
            .expect("deduction cannot conflict on a valid specification");
            let values = true_values_from_orders(&enc, &od);
            let deduce = t1.elapsed();
            last_values = values.clone();

            // (3) T(Se ⊕ Ot) exists?
            if values.complete() {
                rounds.push(RoundReport::settled(round, validity, deduce, values.known_count()));
                return ResolutionOutcome {
                    resolved: values,
                    valid: true,
                    complete: true,
                    interactions,
                    user_values,
                    ot_size,
                    rebuilds: 0,
                    injected_axioms: injected_axioms + enc.injected_axioms(),
                    retraction_replays: 0,
                    retraction_invalidated: 0,
                    retraction_full_resets: 0,
                    revisions: RevisionTelemetry::default(),
                    rounds,
                };
            }
            if round == self.config.max_rounds {
                rounds.push(RoundReport::settled(round, validity, deduce, values.known_count()));
                injected_axioms += enc.injected_axioms();
                break;
            }

            // (4) Generate a suggestion and ask the user. Deduction may
            // have recorded axioms the solver has not seen; sync the tail
            // first (the engine invariant suggest_with_engine relies on).
            let t2 = Instant::now();
            if synced < enc.cnf().num_clauses() {
                solver.extend_from_cnf(enc.cnf(), synced);
            }
            let (sug, _solver_synced) =
                suggest_with_engine(&current, &mut enc, &od, &values, &mut solver);
            injected_axioms += enc.injected_axioms();
            let suggest_time = t2.elapsed();
            let input = oracle.provide(spec.schema(), &sug);
            rounds.push(RoundReport {
                round,
                validity,
                deduce,
                suggest: suggest_time,
                known_after_deduce: values.known_count(),
                suggestion_size: sug.len(),
                user_answers: input.values.len(),
                retraction_invalidated: 0,
                revision_events: 0,
                revision_invalidated: 0,
                revision_quarantined: 0,
                revision_coalesced: 0,
                revision_cone_union: 0,
                revision_replays_saved: 0,
                competing: Vec::new(),
            });
            if input.is_empty() {
                break; // user settles with partial true values
            }
            interactions += 1;
            user_values += input.values.len();
            let (extended, _to, added) = current.apply_user_input(&input);
            ot_size += added;
            current = extended;
        }

        ResolutionOutcome {
            complete: last_values.complete(),
            resolved: last_values,
            valid: true,
            interactions,
            user_values,
            ot_size,
            rebuilds: 0,
            injected_axioms,
            retraction_replays: 0,
            retraction_invalidated: 0,
            retraction_full_resets: 0,
            revisions: RevisionTelemetry::default(),
            rounds,
        }
    }
}

impl Resolver {
    /// Resolves a batch of independent entities in parallel on the sharded
    /// work-stealing scheduler ([`crate::sched`]): per-worker deques with
    /// deterministic task construction — small entities batched into one
    /// task, oversized entities' instantiation split across stealable
    /// subtasks — and stealing between workers when a deque runs dry
    /// (entity costs vary wildly, so static chunking would leave cores
    /// idle). `make_oracle` builds the per-entity user oracle from the
    /// entity's index. Results are returned in input order, and are
    /// identical at every width: tasks only vary *where* work runs, never
    /// what is encoded or solved.
    ///
    /// This is the entry point `cr-bench` and the fig8 binaries use for
    /// dataset-wide sweeps. For telemetry (steals, batches, splits) or
    /// backpressured streaming ingestion, drive [`crate::sched`] directly.
    pub fn resolve_all_parallel_with_threads<O, F>(
        &self,
        specs: &[Specification],
        make_oracle: F,
        threads: usize,
    ) -> Vec<ResolutionOutcome>
    where
        O: UserOracle,
        F: Fn(usize) -> O + Sync,
    {
        let config = crate::sched::SchedulerConfig::with_workers(threads);
        crate::sched::resolve_batch(self, specs, &make_oracle, &config).0
    }

    /// [`Resolver::resolve_all_parallel_with_threads`] with one thread per
    /// available core.
    pub fn resolve_all_parallel<O, F>(
        &self,
        specs: &[Specification],
        make_oracle: F,
    ) -> Vec<ResolutionOutcome>
    where
        O: UserOracle,
        F: Fn(usize) -> O + Sync,
    {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.resolve_all_parallel_with_threads(specs, make_oracle, threads)
    }
}

/// Convenience: resolve with the default configuration and a ground-truth
/// oracle, returning the outcome.
pub fn resolve_with_truth(spec: &Specification, truth: &Tuple) -> ResolutionOutcome {
    let mut oracle = GroundTruthOracle::new(truth.clone());
    Resolver::default_config().resolve(spec, &mut oracle)
}

/// Fraction of attributes resolved, used by the Fig. 8(e)/(i)/(m) plots.
pub fn resolved_fraction(outcome: &ResolutionOutcome, schema: &Schema) -> f64 {
    outcome.resolved.known_count() as f64 / schema.arity() as f64
}

/// Pretty-prints a resolved tuple (`?` for unresolved attributes).
pub fn render_resolved(schema: &Schema, values: &TrueValues) -> String {
    let parts: Vec<String> = schema
        .iter()
        .map(|(id, a)| {
            format!(
                "{}: {}",
                a.name(),
                values
                    .get(id)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "?".to_string())
            )
        })
        .collect();
    format!("({})", parts.join(", "))
}


#[cfg(test)]
mod tests {
    use super::*;
    use cr_constraints::parser::{parse_cfd_file, parse_currency_file};
    use cr_types::{EntityInstance, Schema, Value};

    fn edith_spec_and_truth() -> (Specification, Tuple) {
        let s = Schema::new(
            "person",
            ["name", "status", "job", "kids", "city", "AC", "zip", "county"],
        )
        .unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([
                    Value::str("Edith"),
                    Value::str("working"),
                    Value::str("nurse"),
                    Value::int(0),
                    Value::str("NY"),
                    Value::int(212),
                    Value::str("10036"),
                    Value::str("Manhattan"),
                ]),
                Tuple::of([
                    Value::str("Edith"),
                    Value::str("retired"),
                    Value::str("n/a"),
                    Value::int(3),
                    Value::str("SFC"),
                    Value::int(415),
                    Value::str("94924"),
                    Value::str("Dogtown"),
                ]),
                Tuple::of([
                    Value::str("Edith"),
                    Value::str("deceased"),
                    Value::str("n/a"),
                    Value::Null,
                    Value::str("LA"),
                    Value::int(213),
                    Value::str("90058"),
                    Value::str("Vermont"),
                ]),
            ],
        )
        .unwrap();
        let sigma = parse_currency_file(
            &s,
            r#"
            phi1: t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2
            phi2: t1[status] = "retired" && t2[status] = "deceased" -> t1 <[status] t2
            phi3: t1[job] = "sailor" && t2[job] = "veteran" -> t1 <[job] t2
            phi4: t1[kids] < t2[kids] -> t1 <[kids] t2
            phi5: t1 <[status] t2 -> t1 <[job] t2
            phi6: t1 <[status] t2 -> t1 <[AC] t2
            phi7: t1 <[status] t2 -> t1 <[zip] t2
            phi8: t1 <[city] t2 && t1 <[zip] t2 -> t1 <[county] t2
            "#,
        )
        .unwrap();
        let gamma = parse_cfd_file(
            &s,
            r#"
            psi1: AC = 213 -> city = "LA"
            psi2: AC = 212 -> city = "NY"
            "#,
        )
        .unwrap();
        let truth = Tuple::of([
            Value::str("Edith"),
            Value::str("deceased"),
            Value::str("n/a"),
            Value::int(3),
            Value::str("LA"),
            Value::int(213),
            Value::str("90058"),
            Value::str("Vermont"),
        ]);
        (Specification::without_orders(e, sigma, gamma), truth)
    }

    /// Example 2: Edith's true tuple is derived fully automatically —
    /// no user interaction at all.
    #[test]
    fn edith_resolves_with_zero_interactions() {
        let (spec, truth) = edith_spec_and_truth();
        let mut oracle = SilentOracle;
        let outcome = Resolver::default_config().resolve(&spec, &mut oracle);
        assert!(outcome.valid);
        assert!(outcome.complete, "Edith must resolve automatically");
        assert_eq!(outcome.interactions, 0);
        let resolved = outcome.resolved.to_tuple().unwrap();
        assert_eq!(resolved.values(), truth.values());
    }

    #[test]
    fn invalid_spec_is_reported_not_panicked() {
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![Tuple::of([Value::int(1)]), Tuple::of([Value::int(2)])],
        )
        .unwrap();
        let sigma = parse_currency_file(
            &s,
            "t1[a] = 1 && t2[a] = 2 -> t1 <[a] t2\nt1[a] = 2 && t2[a] = 1 -> t1 <[a] t2\n",
        )
        .unwrap();
        let spec = Specification::without_orders(e, sigma, vec![]);
        let outcome = Resolver::default_config().resolve(&spec, &mut SilentOracle);
        assert!(!outcome.valid);
        assert!(!outcome.complete);
    }

    #[test]
    fn silent_oracle_settles_with_partial_values() {
        let s = Schema::new("p", ["name", "city"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::str("X"), Value::str("NY")]),
                Tuple::of([Value::str("X"), Value::str("LA")]),
            ],
        )
        .unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        let outcome = Resolver::default_config().resolve(&spec, &mut SilentOracle);
        assert!(outcome.valid);
        assert!(!outcome.complete);
        assert_eq!(outcome.resolved.known_count(), 1); // name only
        assert_eq!(outcome.interactions, 0);
        assert_eq!(outcome.rounds.len(), 1);
    }

    #[test]
    fn ground_truth_oracle_completes_ambiguous_specs() {
        let s = Schema::new("p", ["name", "city"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::str("X"), Value::str("NY")]),
                Tuple::of([Value::str("X"), Value::str("LA")]),
            ],
        )
        .unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        let truth = Tuple::of([Value::str("X"), Value::str("LA")]);
        let outcome = resolve_with_truth(&spec, &truth);
        assert!(outcome.complete);
        assert_eq!(outcome.interactions, 1);
        assert_eq!(
            outcome.resolved.to_tuple().unwrap().values(),
            truth.values()
        );
        assert!(outcome.ot_size > 0);
    }

    #[test]
    fn out_of_domain_answer_triggers_provenance_replay() {
        // CFD: AC = 213 → city = "LA". The truth's AC is outside the active
        // domain, so the oracle's answer grows the space, retracts the
        // CFD's guard group and must show up as a provenance replay.
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let gamma = parse_cfd_file(&s, "psi: AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        let truth = Tuple::of([Value::int(999), Value::str("NY")]);
        let outcome = resolve_with_truth(&spec, &truth);
        assert!(outcome.complete, "resolution must finish");
        assert!(
            outcome.retraction_replays > 0,
            "the CFD retraction must be a provenance replay: {outcome:?}"
        );
        assert_eq!(outcome.retraction_full_resets, 0);
        assert_eq!(outcome.rebuilds, 0);
    }

    #[test]
    fn render_resolved_marks_unknowns() {
        let s = Schema::new("p", ["a", "b"]).unwrap();
        let values = TrueValues::new(vec![Some(Value::int(1)), None]);
        assert_eq!(render_resolved(&s, &values), "(a: 1, b: ?)");
    }
}
