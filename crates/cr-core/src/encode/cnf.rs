//! `ConvertToCNF`: from instance constraints to the CNF Φ(Se).
//!
//! # Guard-literal clause groups
//!
//! With [`EncodeOptions::guarded_cfds`] the CFD instance constraints are
//! emitted as **retractable clause groups**, one group per CFD. The
//! lifecycle:
//!
//! 1. *Emission* — a group allocates a fresh guard variable `g`; every
//!    clause of the group carries the extra literal `¬g`, so the clauses
//!    are vacuous until `g` is asserted.
//! 2. *Activation* — consumers assert `g`: fresh solvers/propagators add
//!    the unit clauses [`EncodedSpec::active_guards`]
//!    (see [`EncodedSpec::fresh_solver`]); the incremental engine's warm
//!    solver instead carries the guards as persistent *assumptions*
//!    (`cr_sat::Solver::set_persistent_assumptions`), which keeps them
//!    retractable.
//! 3. *Retraction* — when a user answer introduces a new value on an
//!    attribute referenced by a CFD, that CFD's ωX premise (and possibly
//!    its domination conclusions) are stale: the group is retracted by
//!    appending the root unit `¬g` to the CNF, which permanently satisfies
//!    the group's clauses *and* every clause the warm solver learnt from
//!    them (learnt clauses depending on the group contain `¬g` by
//!    construction of conflict analysis). The CFD is then re-emitted over
//!    the grown value space under a fresh guard.
//!
//! The CNF therefore remains the single append-only source of truth:
//! solvers sync by ingesting the clause tail, and the retraction unit
//! travels through the same channel. Only CFD instances need groups — Σ
//! instances, base orders, null-bottom axioms and the order axioms are
//! never invalidated by user input; new values only *add* to them.
//!
//! # Lazy axiom instantiation
//!
//! With [`AxiomMode::Lazy`] the order axioms are not part of the CNF at
//! all: [`EncodedSpec::violated_axioms`] answers a
//! [`cr_sat::LazyAxiomSource`] consultation by scanning the candidate
//! assignment against the dense `attr × lo × hi` variable table and
//! returning exactly the asymmetry/totality/transitivity instances the
//! candidate violates (total models) or that became unit under it (root
//! fixpoints). Two adapters integrate it:
//! [`RecordingAxiomSource`] additionally appends every handed-out clause
//! to the encoding's CNF — keeping it the single source of truth, so the
//! engine's other consumers (the warm solver ↔ unit propagator, and the
//! MaxSAT repair's borrowed hard base) pick injected axioms up through the
//! ordinary clause-tail sync — while [`TransientAxiomSource`] leaves the
//! encoding untouched for throwaway solvers over a shared `&EncodedSpec`.
//! Injected clauses are permanent (`NO_GROUP`): axioms hold regardless of
//! any CFD group, so retraction never touches them.

use std::collections::{HashMap, HashSet};

use cr_sat::{Cnf, Lit, Var};
use cr_types::{AttrId, AttrValueSpace, TupleId, Value, ValueId};

use super::AxiomMode;

use super::omega::{
    base_order_instance, build_spaces, cfd_instances, emit_base_orders, emit_null_bottoms,
    emit_sigma_gamma, instantiate_pair, sigma_constraint_instances, Conclusion,
    InstanceConstraint, OmegaSink, OrderAtom, Premise,
};
use super::EncodeOptions;
use crate::spec::{Specification, UserInput};

/// Sentinel for an unallocated slot in [`VarTable`].
const NO_VAR: u32 = u32::MAX;

/// Sentinel for a variable that is not an order atom (guard variables).
const NO_ATOM: u32 = u32::MAX;

/// Identifier of a retractable clause group (index into the encoding's
/// group table). Also used as the group tag handed to
/// `cr_sat::UnitPropagator::add_clause_grouped`.
pub type GroupId = u32;

/// Group tag of permanent clauses.
const NO_GROUP: GroupId = cr_sat::NO_GROUP;

/// Classification of one CNF clause, parallel to the clause list. One byte
/// per clause is what lets the suggestion path drop the retained Ω(Se)
/// instance list (`EncodeOptions::retain_omega` off, the default): rule
/// derivation re-reads its Currency/BaseOrder implications straight from
/// the flat literal arena via [`EncodedSpec::for_each_order_rule`] instead
/// of keeping a second materialised copy of every instance constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum ClauseKind {
    /// Axioms, CFD instances, guard units, deltas — everything rule
    /// derivation ignores.
    General = 0,
    /// A Σ-currency or base-order implication with an order-atom
    /// conclusion: exactly the Ω instances the paper's `TrueDer` rule
    /// derivation (Section VI) consumes.
    OrderRule = 1,
}

/// Dense `attr × lo × hi → Var` index. Order-variable lookup sits on the
/// hot path of clause generation, deduction and suggestion; a flat
/// row-major table per attribute answers it with two bounds checks and one
/// load instead of hashing a 10-byte key.
#[derive(Clone, Debug, Default)]
struct VarTable {
    /// One `n × n` slot table per attribute (`lo.index() * n + hi.index()`).
    per_attr: Vec<Vec<u32>>,
    /// `n` (number of interned values) per attribute.
    width: Vec<usize>,
}

impl VarTable {
    /// A table sized for the given per-attribute value-space widths.
    fn new(widths: Vec<usize>) -> Self {
        VarTable {
            per_attr: widths.iter().map(|&n| vec![NO_VAR; n * n]).collect(),
            width: widths,
        }
    }

    #[inline]
    fn get(&self, attr: AttrId, lo: ValueId, hi: ValueId) -> Option<Var> {
        let n = self.width[attr.index()];
        if lo.index() >= n || hi.index() >= n {
            return None;
        }
        let raw = self.per_attr[attr.index()][lo.index() * n + hi.index()];
        (raw != NO_VAR).then_some(Var(raw))
    }

    #[inline]
    fn set(&mut self, attr: AttrId, lo: ValueId, hi: ValueId, var: Var) {
        let n = self.width[attr.index()];
        self.per_attr[attr.index()][lo.index() * n + hi.index()] = var.0;
    }

    /// Regrows `attr`'s table to `new_n` values, preserving the existing
    /// slots (row-major relayout). Used when a user answer appends a new
    /// value to an attribute's space.
    fn grow(&mut self, attr: AttrId, new_n: usize) {
        let old_n = self.width[attr.index()];
        if new_n <= old_n {
            return;
        }
        let old = std::mem::replace(&mut self.per_attr[attr.index()], vec![NO_VAR; new_n * new_n]);
        for lo in 0..old_n {
            self.per_attr[attr.index()][lo * new_n..lo * new_n + old_n]
                .copy_from_slice(&old[lo * old_n..(lo + 1) * old_n]);
        }
        self.width[attr.index()] = new_n;
    }
}

/// A retractable clause group: its guard variable and liveness.
#[derive(Clone, Copy, Debug)]
struct GroupState {
    guard: Var,
    active: bool,
}

/// [`OmegaSink`] adapter converting streamed instances to clauses on the
/// spot (see [`EncodedSpec::encode_with`]).
struct EncoderSink<'a> {
    enc: &'a mut EncodedSpec,
    guarded: bool,
}

impl OmegaSink for EncoderSink<'_> {
    fn hint(&mut self, additional: usize) {
        // `additional` is a pair-count *upper bound* (vacuous pairs emit
        // nothing); reserving it in full routinely over-allocates the Ω
        // storage 2–3× and pushes every encode into fresh large mappings.
        // Cap the hint and let amortised growth cover dense constraints.
        let capped = additional.min(4096);
        if self.enc.options.retain_omega {
            self.enc.omega.reserve(capped);
        }
        self.enc.clause_groups.reserve(capped);
        self.enc.clause_kinds.reserve(capped);
        self.enc.cnf.reserve_clauses(capped);
    }
    fn emit(&mut self, c: InstanceConstraint) {
        self.enc.route_omega(c, self.guarded);
    }
}

/// Outcome of [`EncodedSpec::extend_with_input`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExtendOutcome {
    /// The encoding was extended in place; new clauses were appended to the
    /// CNF (sync solvers with the clause tail). `retracted_groups` lists
    /// the clause groups withdrawn in the process (stale CFD emissions) —
    /// callers holding a live `UnitPropagator` must forward them to
    /// `retract_group` before syncing the tail.
    Extended {
        /// Groups retracted by this extension, in retraction order.
        retracted_groups: Vec<GroupId>,
    },
    /// The input cannot be expressed as a pure extension: an answer
    /// introduces a new value while CFDs are unguarded
    /// (`EncodeOptions::guarded_cfds` off). The caller must re-encode from
    /// scratch.
    NeedsRebuild,
}

/// The encoded form of a specification: the CNF `Φ(Se)`, the value spaces,
/// the variable table for order atoms and the instance constraints Ω(Se)
/// they came from. All downstream algorithms (`IsValid`, `DeduceOrder`,
/// `Suggest`, the exact true-value queries) run off this struct.
///
/// The encoding supports **delta extension** with user input
/// ([`EncodedSpec::extend_with_input`]): a round of the Fig. 4 loop only
/// appends the clauses induced by the fresh user-input tuple instead of
/// re-deriving the whole CNF. With guarded CFDs (see the module docs) this
/// covers *every* input, including answers outside the interned value
/// space: the new value's order variables and axioms are appended, and the
/// affected CFDs are retracted and re-emitted under fresh guards.
pub struct EncodedSpec {
    space: AttrValueSpace,
    vars: VarTable,
    /// Order atoms in allocation order, with their variables.
    atoms: Vec<OrderAtom>,
    atom_vars: Vec<Var>,
    /// Var index → index into `atoms` (`NO_ATOM` for guard variables).
    var_atom: Vec<u32>,
    cnf: Cnf,
    /// Group tag per CNF clause (`NO_GROUP` = permanent), parallel to
    /// `cnf.clauses()`.
    clause_groups: Vec<GroupId>,
    /// [`ClauseKind`] per CNF clause, parallel to `clause_groups` — the
    /// one-byte tag behind the Ω-free rule scan.
    clause_kinds: Vec<ClauseKind>,
    groups: Vec<GroupState>,
    /// Per CFD index: its currently active group, if emitted.
    cfd_groups: Vec<Option<GroupId>>,
    /// Per CFD index: withdrawn by an upstream correction
    /// ([`EncodedSpec::retract_cfd`]); never re-emitted. All `false` on
    /// non-revisable encodings.
    cfd_retired: Vec<bool>,
    /// Revisable mode: the active clause group of each tuple-level base
    /// order pair `(attr, t1, t2)` (vacuous pairs have none).
    order_groups: HashMap<(AttrId, TupleId, TupleId), GroupId>,
    /// Revisable mode: the active clause group of each Σ constraint.
    sigma_groups: Vec<Option<GroupId>>,
    /// Revisable mode: per-attribute refcounts of the entity cells (and
    /// user answers) realising each interned value — drives the space's
    /// liveness mask. Indexed `[attr][value id]`; empty on non-revisable
    /// encodings.
    live_counts: Vec<Vec<u32>>,
    omega: Vec<InstanceConstraint>,
    /// Group tag per Ω instance, parallel to `omega` (`NO_GROUP` =
    /// permanent) — retracting a group removes exactly its instances.
    omega_groups: Vec<GroupId>,
    options: EncodeOptions,
    /// Axiom clauses recorded into the CNF by lazy instantiation
    /// ([`RecordingAxiomSource`]); 0 for eager encodings.
    injected_axioms: usize,
    /// Revisable mode: values whose liveness flipped retired → live since
    /// the last [`EncodedSpec::take_revived`] drain. Revival re-admits the
    /// value's order axioms to the lazy scheme without any of its atoms
    /// re-entering the propagator's delta, so the engine redelivers its
    /// order variables to the lazy source (see the ingest module).
    revived: Vec<(AttrId, ValueId)>,
}

impl EncodedSpec {
    /// Encodes `spec` with default options.
    pub fn encode(spec: &Specification) -> Self {
        Self::encode_with(spec, EncodeOptions::default())
    }

    /// Encodes `spec` with explicit [`EncodeOptions`].
    pub fn encode_with(spec: &Specification, options: EncodeOptions) -> Self {
        Self::encode_impl(spec, options, None)
    }

    /// Encodes `spec` with the Σ/Γ instance constraints supplied by the
    /// caller instead of instantiated inline. `chunks` must be the
    /// instantiations of adjacent ranges covering the combined constraint
    /// index space `[0, |Σ| + |Γ|)` in order (see
    /// `super::omega::SplitPlan`); the result is then byte-identical to
    /// [`EncodedSpec::encode_with`]. This is the merge half of the
    /// scheduler's split tasks: subtasks instantiate ranges in parallel,
    /// the finisher replays them here through the ordinary sink path.
    pub(crate) fn encode_with_omega_chunks(
        spec: &Specification,
        options: EncodeOptions,
        chunks: Vec<Vec<InstanceConstraint>>,
    ) -> Self {
        Self::encode_impl(spec, options, Some(chunks))
    }

    fn encode_impl(
        spec: &Specification,
        options: EncodeOptions,
        chunks: Option<Vec<Vec<InstanceConstraint>>>,
    ) -> Self {
        let program = spec.compiled_program().clone();
        let (space, g2l) = build_spaces(spec);
        let widths: Vec<usize> = (0..space.arity())
            .map(|i| space.attr(AttrId(i as u16)).len())
            .collect();
        let mut enc = EncodedSpec {
            vars: VarTable::new(widths.clone()),
            // Placeholder until Ω emission (which only reads the local
            // `space`) completes; swapped in below.
            space: AttrValueSpace::new(0),
            atoms: Vec::new(),
            atom_vars: Vec::new(),
            var_atom: Vec::new(),
            cnf: Cnf::new(),
            clause_groups: Vec::new(),
            clause_kinds: Vec::new(),
            groups: Vec::new(),
            cfd_groups: vec![None; spec.gamma().len()],
            cfd_retired: vec![false; spec.gamma().len()],
            order_groups: HashMap::new(),
            sigma_groups: vec![None; spec.sigma().len()],
            live_counts: Vec::new(),
            omega: Vec::new(),
            omega_groups: Vec::new(),
            options,
            injected_axioms: 0,
            revived: Vec::new(),
        };

        // Variables for every ordered pair of distinct values. Both axiom
        // modes allocate the full dense table (`O(n²)` per attribute): the
        // lazy mode needs it to detect violated instances, and downstream
        // consumers (`top_assumptions`, suggestion literals) rely on every
        // pair variable existing. The table is empty here, so the atoms can
        // be bulk-allocated in row-major walk order without the per-atom
        // existence check `var()` pays.
        let total: usize = widths.iter().map(|&n| n * n.saturating_sub(1)).sum();
        enc.atoms.reserve(total);
        let mut idx: u32 = 0;
        for (ai, &width) in widths.iter().enumerate() {
            let attr = AttrId(ai as u16);
            let n = width as u32;
            let row = &mut enc.vars.per_attr[ai];
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        row[(a * n + b) as usize] = idx;
                        enc.atoms.push(OrderAtom { attr, lo: ValueId(a), hi: ValueId(b) });
                        idx += 1;
                    }
                }
            }
        }
        debug_assert_eq!(idx as usize, total);
        // Variable ↔ atom mappings are the identity over the bulk range.
        enc.cnf.ensure_vars(idx);
        enc.atom_vars = (0..idx).map(Var).collect();
        enc.var_atom = (0..idx).collect();

        // Ω(Se), streamed straight from the compiled-program projection
        // into clause emission — instance construction, clause conversion
        // and Ω recording happen in one pass with no intermediate buffer.
        // CFD instances optionally go into one retractable group per CFD;
        // in revisable mode Σ instances are grouped per constraint (routed
        // by `route_omega`) and base orders per order pair (below);
        // everything else is permanent.
        {
            let mut sink = EncoderSink { enc: &mut enc, guarded: options.guarded_cfds };
            emit_null_bottoms(spec, &space, &mut sink);
            if !options.revisable {
                emit_base_orders(spec, &g2l, &mut sink);
            }
            match chunks {
                None => emit_sigma_gamma(spec, &program, &space, &g2l, &mut sink),
                // Split subtasks already instantiated the Σ/Γ ranges;
                // replaying them in range order through the same sink
                // reproduces the inline emission stream exactly.
                Some(chunks) => {
                    for chunk in chunks {
                        sink.hint(chunk.len().min(4096));
                        for c in chunk {
                            sink.emit(c);
                        }
                    }
                }
            }
        }
        if options.revisable {
            // Base currency orders, one retractable group per tuple-level
            // pair, so upstream corrections can withdraw a single asserted
            // order (or re-derive the pairs a value revision touches).
            let entity = spec.entity();
            for attr in spec.schema().attr_ids() {
                for (t1, t2) in spec.orders().pairs(attr) {
                    let instance = base_order_instance(
                        &space,
                        attr,
                        entity.tuple(t1).get(attr),
                        entity.tuple(t2).get(attr),
                    );
                    if let Some(c) = instance {
                        let group = enc.new_group();
                        enc.order_groups.insert((attr, t1, t2), group);
                        enc.add_omega_constraint_in(c, group);
                    }
                }
            }
            // Liveness refcounts: one count per cell realising the value.
            enc.live_counts = (0..space.arity())
                .map(|ai| vec![0u32; space.attr(AttrId(ai as u16)).len()])
                .collect();
            for tid in entity.tuple_ids() {
                for attr in spec.schema().attr_ids() {
                    let v = entity.tuple(tid).get(attr);
                    if !v.is_null() {
                        let vid = space.get(attr, v).expect("cell values are interned");
                        enc.live_counts[attr.index()][vid.index()] += 1;
                    }
                }
            }
        }
        enc.space = space;

        // Transitivity and asymmetry per attribute, over the realised
        // variable set. Lazy mode emits nothing here: the axioms flow in on
        // demand through `violated_axioms` (see the module docs).
        if options.axioms == AxiomMode::Lazy {
            return enc;
        }
        let mut per_attr: Vec<Vec<ValueId>> = vec![Vec::new(); enc.space.arity()];
        for atom in &enc.atoms {
            per_attr[atom.attr.index()].push(atom.lo);
            per_attr[atom.attr.index()].push(atom.hi);
        }
        for (ai, vals) in per_attr.iter_mut().enumerate() {
            vals.sort_unstable();
            vals.dedup();
            let attr = AttrId(ai as u16);
            // Asymmetry: ¬x_ab ∨ ¬x_ba for unordered pairs; optionally
            // totality: x_ab ∨ x_ba (see EncodeOptions::totality).
            for (i, &a) in vals.iter().enumerate() {
                for &b in &vals[i + 1..] {
                    if let (Some(xab), Some(xba)) =
                        (enc.vars.get(attr, a, b), enc.vars.get(attr, b, a))
                    {
                        enc.push_clause([xab.negative(), xba.negative()], NO_GROUP);
                        if options.totality {
                            enc.push_clause([xab.positive(), xba.positive()], NO_GROUP);
                        }
                    }
                }
            }
            // Transitivity over realised triples.
            for &a in vals.iter() {
                for &b in vals.iter() {
                    if a == b {
                        continue;
                    }
                    let Some(xab) = enc.vars.get(attr, a, b) else {
                        continue;
                    };
                    for &c in vals.iter() {
                        if c == a || c == b {
                            continue;
                        }
                        let (Some(xbc), Some(xac)) =
                            (enc.vars.get(attr, b, c), enc.vars.get(attr, a, c))
                        else {
                            continue;
                        };
                        enc.push_clause(
                            [xab.negative(), xbc.negative(), xac.positive()],
                            NO_GROUP,
                        );
                    }
                }
            }
        }
        enc
    }

    /// Extends the encoding in place with the effect of
    /// [`Specification::apply_user_input`]: the fresh tuple `to` carrying
    /// the answered values is ranked strictly above every existing tuple on
    /// each answered attribute, which translates to
    ///
    /// 1. unit clauses `w ≺v_A v` for every other interned value `w` of each
    ///    answered attribute `A` (the base-order extension `Ot`), and
    /// 2. the instance constraints of Σ on the tuple pairs involving `to`
    ///    (pairs among the original tuples are already instantiated).
    ///
    /// Answers **outside** the interned value space are handled additively
    /// when the encoding was built with guarded CFDs: the new value id
    /// appends a row to the dense attr×lo×hi variable table, its order
    /// axioms are appended (eager mode; lazy mode only allocates the new
    /// pair variables — the lazy source reads the grown table and
    /// instantiates their axioms on demand) together with the null-bottom
    /// unit, and every CFD referencing the grown attribute is retracted
    /// and re-emitted over the new space under a fresh guard group (see the
    /// module docs for the lifecycle).
    ///
    /// `spec` must be the specification this encoding currently represents
    /// (i.e. *before* the input is applied). Returns
    /// [`ExtendOutcome::NeedsRebuild`] — with `self` untouched — when an
    /// answer lies outside the interned space and CFDs are unguarded.
    pub fn extend_with_input(
        &mut self,
        spec: &Specification,
        input: &UserInput,
    ) -> ExtendOutcome {
        let mut answered: Vec<(AttrId, ValueId)> = Vec::new();
        let mut grown: Vec<AttrId> = Vec::new();
        for (attr, v) in &input.values {
            if v.is_null() {
                continue;
            }
            match self.space.get(*attr, v) {
                // A retired value (revisable mode) is interned but out of the
                // live domain; answering it revives it, which grows the live
                // space exactly like an out-of-domain answer — the attribute's
                // CFD instances must be re-emitted over the wider space.
                Some(id) => {
                    if !self.space.is_live(*attr, id) {
                        grown.push(*attr);
                    }
                    answered.push((*attr, id));
                }
                None if self.options.guarded_cfds => grown.push(*attr),
                None => return ExtendOutcome::NeedsRebuild,
            }
        }

        // Out-of-domain answers: append the new values and their axioms.
        // Then — for grown *and* revived attributes alike — retract and
        // re-emit every CFD whose premise or conclusion ranges over the
        // attribute, so ωX premises and domination sets quantify over the
        // current live space. The revival itself (`cell_added`) must happen
        // before `cfd_instances` reads the space.
        let mut retracted_groups: Vec<GroupId> = Vec::new();
        for (attr, v) in &input.values {
            if !v.is_null() && self.space.get(*attr, v).is_none() {
                let vid = self.append_value(*attr, v);
                answered.push((*attr, vid));
            }
        }
        // The fresh tuple's cells realise the answered values (reviving any
        // retired ones — before `cfd_instances` reads the live space below).
        for &(attr, vid) in &answered {
            self.cell_added(attr, vid);
        }
        if !grown.is_empty() {
            grown.sort_unstable();
            grown.dedup();
            for (gi, cfd) in spec.gamma().iter().enumerate() {
                if self.cfd_retired[gi] {
                    continue; // withdrawn upstream: never re-emitted
                }
                let touched = cfd
                    .lhs()
                    .iter()
                    .any(|(a, _)| grown.binary_search(a).is_ok())
                    || grown.binary_search(&cfd.rhs().0).is_ok();
                if !touched {
                    continue;
                }
                if let Some(group) = self.cfd_groups[gi].take() {
                    self.retract_group(group);
                    retracted_groups.push(group);
                    self.remove_omega_group(group);
                }
                let instances = cfd_instances(&self.space, gi, cfd);
                if !instances.is_empty() {
                    let group = self.new_group();
                    self.cfd_groups[gi] = Some(group);
                    for c in instances {
                        self.add_omega_constraint_in(c, group);
                    }
                }
            }
        }

        // (1) Base-order units: the answered value tops its attribute. In
        // revisable mode each induced tuple-level pair `(attr, t, to)` gets
        // its own retractable group, mirroring the order extension
        // `Specification::apply_user_input` records — so an upstream
        // correction can later withdraw the answer pair by pair (and a
        // value revision of `t` re-derives exactly the touched pairs).
        if self.options.revisable {
            let to = TupleId(spec.entity().len() as u32);
            for &(attr, vid) in &answered {
                let hi = self.space.value(attr, vid).clone();
                for t in spec.entity().tuple_ids() {
                    let lo = spec.entity().tuple(t).get(attr);
                    if let Some(c) = base_order_instance(&self.space, attr, lo, &hi) {
                        let group = self.new_group();
                        self.order_groups.insert((attr, t, to), group);
                        self.add_omega_constraint_in(c, group);
                    }
                }
            }
        } else {
            for &(attr, vid) in &answered {
                let below: Vec<ValueId> = self
                    .space
                    .attr(attr)
                    .iter()
                    .filter(|(id, v)| *id != vid && !v.is_null())
                    .map(|(id, _)| id)
                    .collect();
                for lo in below {
                    self.add_omega_constraint(InstanceConstraint {
                        premise: Premise::new(),
                        conclusion: Conclusion::Atom(OrderAtom { attr, lo, hi: vid }),
                        origin: super::Origin::BaseOrder,
                    });
                }
            }
        }

        // (2) Σ instances on pairs involving the user-input tuple. Tuples
        // sharing a projection on a constraint's referenced attributes
        // produce identical instances (same grouping as `instantiate`), so
        // only one representative per projection is paired with `to`.
        let entity = spec.entity();
        let arity = spec.schema().arity();
        let mut values = vec![Value::Null; arity];
        for (attr, v) in &input.values {
            values[attr.index()] = v.clone();
        }
        let to = cr_types::Tuple::from_values(values);
        let answered_attr = |attr: AttrId| answered.iter().any(|&(a, _)| a == attr);
        let program = spec.compiled_program().clone();
        for (ci, cc) in program.sigma.iter().enumerate() {
            // A pair involving `to` instantiates only if the conclusion is
            // non-null on `to`'s side, and order / tuple-comparison
            // premises need both sides non-null — so those attributes must
            // all be among the answered ones. Σ can be large (hundreds of
            // constraints on generated workloads); these O(|ω|) checks —
            // over the compiled premise shapes, nothing re-derived — skip
            // the per-tuple work for the vast majority.
            if !answered_attr(cc.conclusion_attr) {
                continue;
            }
            if cc.order_premises.iter().any(|a| !answered_attr(*a))
                || cc.tuple_cmps.iter().any(|(a, _)| !answered_attr(*a))
            {
                continue;
            }
            // Constant comparisons against `to`'s side have one fixed
            // operand: evaluate them once per direction instead of per
            // tuple.
            let to_second = cc.t2_consts.iter().all(|c| c.eval_tuple(&to)); // pairs (t, to)
            let to_first = cc.t1_consts.iter().all(|c| c.eval_tuple(&to)); // pairs (to, t)
            if !to_first && !to_second {
                continue;
            }
            let constraint = &spec.sigma()[ci];
            // Distinct projections over the dense id rows — integer keys,
            // no Value hashing; the projection key comes precomputed from
            // the compiled program.
            let mut seen: std::collections::HashSet<Vec<u32>> =
                std::collections::HashSet::new();
            for tid in entity.tuple_ids() {
                let projection: Vec<u32> = cc
                    .referenced_attrs
                    .iter()
                    .map(|&a| entity.dense_id(tid, a))
                    .collect();
                if !seen.insert(projection) {
                    continue;
                }
                let t = entity.tuple(tid);
                // Revisable mode: delta instances join the constraint's
                // retractable group, so a later revision touching the
                // constraint withdraws and re-derives them with the rest.
                let group = if self.options.revisable {
                    self.sigma_group(ci)
                } else {
                    NO_GROUP
                };
                if to_second {
                    if let Some(c) = instantiate_pair(&self.space, constraint, ci, t, &to) {
                        self.add_omega_constraint_in(c, group);
                    }
                }
                if to_first {
                    if let Some(c) = instantiate_pair(&self.space, constraint, ci, &to, t) {
                        self.add_omega_constraint_in(c, group);
                    }
                }
            }
        }
        ExtendOutcome::Extended { retracted_groups }
    }

    /// Appends a brand-new value to `attr`'s space: interns it, regrows the
    /// variable table, allocates the order variables of every pair
    /// involving it and (in eager mode) emits the
    /// asymmetry/totality/transitivity axioms for those pairs plus the
    /// null-bottom unit — exactly the delta a from-scratch re-encode of the
    /// grown space would produce for the order-axiom part of Φ(Se). In lazy
    /// mode the axioms stay unmaterialised: the lazy source's scans read
    /// the grown table and value space directly.
    fn append_value(&mut self, attr: AttrId, v: &Value) -> ValueId {
        debug_assert!(self.space.get(attr, v).is_none());
        let vid = self.space.intern(attr, v);
        let n = self.space.attr(attr).len();
        debug_assert_eq!(vid.index(), n - 1);
        self.vars.grow(attr, n);
        let olds: Vec<ValueId> = (0..(n - 1) as u32).map(ValueId).collect();
        for &w in &olds {
            self.var(OrderAtom { attr, lo: w, hi: vid });
            self.var(OrderAtom { attr, lo: vid, hi: w });
        }
        if self.options.axioms == AxiomMode::Eager {
            // Asymmetry and (optional) totality for the new pairs.
            for &w in &olds {
                let xwv = self.vars.get(attr, w, vid).expect("just allocated");
                let xvw = self.vars.get(attr, vid, w).expect("just allocated");
                self.push_clause([xwv.negative(), xvw.negative()], NO_GROUP);
                if self.options.totality {
                    self.push_clause([xwv.positive(), xvw.positive()], NO_GROUP);
                }
            }
            // Transitivity: all triples containing the new value, i.e. the
            // three placements of `vid` over each ordered pair of old values.
            for &a in &olds {
                for &b in &olds {
                    if a == b {
                        continue;
                    }
                    let xab = self.vars.get(attr, a, b).expect("full encoding");
                    let xav = self.vars.get(attr, a, vid).expect("just allocated");
                    let xvb = self.vars.get(attr, vid, b).expect("just allocated");
                    let xbv = self.vars.get(attr, b, vid).expect("just allocated");
                    let xva = self.vars.get(attr, vid, a).expect("just allocated");
                    // (vid, a, b): x_va ∧ x_ab → x_vb
                    self.push_clause([xva.negative(), xab.negative(), xvb.positive()], NO_GROUP);
                    // (a, vid, b): x_av ∧ x_vb → x_ab
                    self.push_clause([xav.negative(), xvb.negative(), xab.positive()], NO_GROUP);
                    // (a, b, vid): x_ab ∧ x_bv → x_av
                    self.push_clause([xab.negative(), xbv.negative(), xav.positive()], NO_GROUP);
                }
            }
        }
        if v.is_null() {
            // Null joining late (a value revision nulled a cell of a
            // previously all-non-null attribute): it is a strict bottom
            // below every existing value, exactly as a from-scratch encode
            // of the revised specification would emit.
            for &w in &olds {
                self.add_omega_constraint(InstanceConstraint {
                    premise: Premise::new(),
                    conclusion: Conclusion::Atom(OrderAtom { attr, lo: vid, hi: w }),
                    origin: super::Origin::NullBottom,
                });
            }
        } else if let Some(null_id) = self.space.get(attr, &Value::Null) {
            // Null stays a strict bottom below the new value.
            self.add_omega_constraint(InstanceConstraint {
                premise: Premise::new(),
                conclusion: Conclusion::Atom(OrderAtom { attr, lo: null_id, hi: vid }),
                origin: super::Origin::NullBottom,
            });
        }
        vid
    }

    /// Withdraws CFD `gamma[gi]` permanently — the encoding-level half of an
    /// upstream **CFD retraction** (see [`crate::ingest`]). The CFD's clause
    /// group is retracted (root `¬g` unit, Ω instances dropped) and the CFD
    /// is marked retired so no later extension or revision re-emits it.
    /// Requires a revisable encoding. Returns the retracted groups (callers
    /// holding a live `UnitPropagator` forward them to `retract_groups`
    /// before syncing the clause tail).
    pub fn retract_cfd(&mut self, gi: usize) -> Vec<GroupId> {
        debug_assert!(self.options.revisable, "CFD retraction needs a revisable encoding");
        self.cfd_retired[gi] = true;
        match self.cfd_groups[gi].take() {
            Some(group) => {
                self.retract_group(group);
                self.remove_omega_group(group);
                vec![group]
            }
            None => Vec::new(),
        }
    }

    /// True iff CFD `gamma[gi]` was withdrawn by [`EncodedSpec::retract_cfd`].
    /// Rule derivation (`TrueDer`) skips retired CFDs.
    pub fn is_cfd_retired(&self, gi: usize) -> bool {
        self.cfd_retired.get(gi).copied().unwrap_or(false)
    }

    /// Withdraws the base order `t1 ≺_attr t2` — the encoding-level half of
    /// an upstream **order withdrawal** (initial orders and answer-induced
    /// pairs alike). A vacuous pair (equal or null-sided values — no clause
    /// was ever emitted) is a no-op. Requires a revisable encoding. Returns
    /// the retracted groups.
    pub fn withdraw_order(&mut self, attr: AttrId, t1: TupleId, t2: TupleId) -> Vec<GroupId> {
        debug_assert!(self.options.revisable, "order withdrawal needs a revisable encoding");
        match self.order_groups.remove(&(attr, t1, t2)) {
            Some(group) => {
                self.retract_group(group);
                self.remove_omega_group(group);
                vec![group]
            }
            None => Vec::new(),
        }
    }

    /// Applies a **value revision**: the cell `(tuple, attr)` changed from
    /// `old` to its current value in `after` (the specification *after* the
    /// spec-level replacement — [`Specification::with_replaced_value`]).
    /// Requires a revisable encoding.
    ///
    /// The revision is absorbed without rebuilding anything:
    ///
    /// * the new value joins the space if unseen
    ///   (order variables + axioms appended, exactly like an out-of-domain
    ///   user answer), and the liveness refcounts shift — a value whose
    ///   last occurrence was revised away is *retired* from the query
    ///   surface while its variables stay allocated;
    /// * every base-order pair group touching `(attr, tuple)` is retracted
    ///   and re-derived from the revised values (pairs that became vacuous
    ///   stay retracted, pairs that became meaningful gain a fresh group);
    /// * every Σ constraint referencing `attr` has its clause group
    ///   retracted and re-projected over the revised entity through the
    ///   compiled program's projection keys;
    /// * every live CFD referencing `attr` is retracted and re-emitted over
    ///   the revised (live-masked) space.
    ///
    /// Returns the retracted groups in retraction order.
    pub fn replace_value(
        &mut self,
        after: &Specification,
        tuple: TupleId,
        attr: AttrId,
        old: &Value,
    ) -> Vec<GroupId> {
        debug_assert!(self.options.revisable, "value revision needs a revisable encoding");
        let mut retracted = Vec::new();

        // Liveness swap: count the new value in before discounting the old
        // one, so a self-replacement can never transiently retire a value.
        let new_value = after.entity().tuple(tuple).get(attr).clone();
        if new_value.is_null() {
            // A from-scratch encode of the revised specification interns
            // null for this attribute now — mirror it (with its bottom
            // units); null is never refcounted and never retires.
            if self.space.get(attr, &Value::Null).is_none() {
                self.append_value(attr, &Value::Null);
            }
        } else {
            let vid = match self.space.get(attr, &new_value) {
                Some(id) => id,
                None => self.append_value(attr, &new_value),
            };
            self.cell_added(attr, vid);
        }
        if !old.is_null() {
            let vid = self.space.get(attr, old).expect("revised-away value was interned");
            self.cell_removed(attr, vid);
        }

        // Base-order pairs touching the revised cell: retract and re-derive
        // with the updated values.
        let entity = after.entity();
        let pairs: Vec<(TupleId, TupleId)> = after
            .orders()
            .pairs(attr)
            .filter(|&(t1, t2)| t1 == tuple || t2 == tuple)
            .collect();
        for (t1, t2) in pairs {
            if let Some(group) = self.order_groups.remove(&(attr, t1, t2)) {
                self.retract_group(group);
                retracted.push(group);
            }
            let instance = base_order_instance(
                &self.space,
                attr,
                entity.tuple(t1).get(attr),
                entity.tuple(t2).get(attr),
            );
            if let Some(c) = instance {
                let group = self.new_group();
                self.order_groups.insert((attr, t1, t2), group);
                self.add_omega_constraint_in(c, group);
            }
        }

        // Σ constraints referencing the revised attribute: their instances
        // are derived from the referenced attributes' values, so only those
        // groups can have changed. Re-projection reuses the compiled
        // program's referenced-attribute keys.
        let program = after.compiled_program().clone();
        for (ci, cc) in program.sigma.iter().enumerate() {
            if !cc.referenced_attrs.contains(&attr) {
                continue;
            }
            if let Some(group) = self.sigma_groups[ci].take() {
                self.retract_group(group);
                retracted.push(group);
            }
            let instances = sigma_constraint_instances(after, ci, &cc.referenced_attrs, &self.space);
            if !instances.is_empty() {
                let group = self.new_group();
                self.sigma_groups[ci] = Some(group);
                for c in instances {
                    self.add_omega_constraint_in(c, group);
                }
            }
        }

        // Live CFDs referencing the revised attribute: ωX premises and
        // domination sets quantify over the (live) space, which just moved.
        for (gi, cfd) in after.gamma().iter().enumerate() {
            if self.cfd_retired[gi] {
                continue;
            }
            let touched =
                cfd.lhs().iter().any(|(a, _)| *a == attr) || cfd.rhs().0 == attr;
            if !touched {
                continue;
            }
            if let Some(group) = self.cfd_groups[gi].take() {
                self.retract_group(group);
                retracted.push(group);
            }
            let instances = cfd_instances(&self.space, gi, cfd);
            if !instances.is_empty() {
                let group = self.new_group();
                self.cfd_groups[gi] = Some(group);
                for c in instances {
                    self.add_omega_constraint_in(c, group);
                }
            }
        }
        // Drop every retracted group's Ω instances in one pass (re-emitted
        // instances above carry fresh group ids, so deferring is safe).
        self.remove_omega_groups(&retracted);
        retracted
    }

    /// Records an instance constraint and adds its clause to the CNF.
    ///
    /// Delta constraints from [`EncodedSpec::extend_with_input`] may
    /// duplicate already-instantiated projections — harmless: duplicate
    /// clauses are absorbed by the solvers, and rule derivation
    /// canonicalises its premise pools (`true_der` sorts and dedups them),
    /// so deriving rules from Ω(Se) is insensitive to duplicates and
    /// ordering.
    fn add_omega_constraint(&mut self, c: InstanceConstraint) {
        self.add_omega_constraint_in(c, NO_GROUP);
    }

    /// [`EncodedSpec::add_omega_constraint`] into a clause group: the
    /// group's guard literal `¬g` is appended to the clause. The instance
    /// itself is only recorded under [`EncodeOptions::retain_omega`] — on
    /// the default memory diet the clause (tagged with its [`ClauseKind`])
    /// is the sole representation.
    fn add_omega_constraint_in(&mut self, c: InstanceConstraint, group: GroupId) {
        self.emit_omega_clause(&c, group);
        if self.options.retain_omega {
            self.omega.push(c);
            self.omega_groups.push(group);
        }
    }

    /// Removes the Ω instances of one retracted clause group.
    fn remove_omega_group(&mut self, group: GroupId) {
        self.remove_omega_groups(&[group]);
    }

    /// Removes the Ω instances of a batch of retracted clause groups in one
    /// pass (a value revision can retract several Σ/Γ/order groups at
    /// once; scanning Ω per group would be `O(k·|Ω|)`).
    fn remove_omega_groups(&mut self, groups: &[GroupId]) {
        if groups.is_empty() {
            return;
        }
        let tags = std::mem::take(&mut self.omega_groups);
        let mut it = tags.iter();
        self.omega.retain(|_| !groups.contains(it.next().expect("parallel")));
        self.omega_groups = tags.into_iter().filter(|g| !groups.contains(g)).collect();
    }

    /// The active clause group of Σ constraint `ci` (revisable mode),
    /// allocating one on first use.
    fn sigma_group(&mut self, ci: usize) -> GroupId {
        match self.sigma_groups[ci] {
            Some(g) => g,
            None => {
                let g = self.new_group();
                self.sigma_groups[ci] = Some(g);
                g
            }
        }
    }

    /// Routes one streamed Ω instance to its clause group: CFD instances go
    /// into their (lazily created) retractable group when `guarded`, Σ
    /// instances into their per-constraint group in revisable mode,
    /// everything else is permanent.
    fn route_omega(&mut self, c: InstanceConstraint, guarded: bool) {
        match c.origin {
            super::Origin::Cfd(gi) if guarded => {
                let group = match self.cfd_groups[gi] {
                    Some(g) => g,
                    None => {
                        let g = self.new_group();
                        self.cfd_groups[gi] = Some(g);
                        g
                    }
                };
                self.add_omega_constraint_in(c, group);
            }
            super::Origin::Currency(ci) if self.options.revisable => {
                let group = self.sigma_group(ci);
                self.add_omega_constraint_in(c, group);
            }
            _ => self.add_omega_constraint(c),
        }
    }

    /// Revisable-mode liveness bookkeeping: one more cell (or user answer)
    /// realises `(attr, vid)`. No-op on ordinary encodings.
    fn cell_added(&mut self, attr: AttrId, vid: ValueId) {
        if !self.options.revisable {
            return;
        }
        let counts = &mut self.live_counts[attr.index()];
        if counts.len() <= vid.index() {
            counts.resize(vid.index() + 1, 0);
        }
        counts[vid.index()] += 1;
        if !self.space.is_live(attr, vid) {
            // Retired → live flip: queue for axiom-scheme redelivery.
            self.revived.push((attr, vid));
        }
        self.space.set_live(attr, vid, true);
    }

    /// Drains the values revived (retired → live) since the last call. The
    /// engine redelivers their order variables to the warm propagator's
    /// lazy source after each revision/input so the re-admitted axiom
    /// instances are scanned (their atoms never re-enter the delta on
    /// their own — revival is the second non-monotone step next to group
    /// retraction).
    pub fn take_revived(&mut self) -> Vec<(AttrId, ValueId)> {
        std::mem::take(&mut self.revived)
    }

    /// Revisable-mode liveness bookkeeping: one fewer cell realises
    /// `(attr, vid)`; the value is *retired* when its last occurrence goes
    /// (null is exempt — null-bottom units are permanent clauses and a live
    /// null is always dominated, so keeping it live can never change a
    /// query result; see the ingest module docs).
    fn cell_removed(&mut self, attr: AttrId, vid: ValueId) {
        if !self.options.revisable {
            return;
        }
        let counts = &mut self.live_counts[attr.index()];
        debug_assert!(counts[vid.index()] > 0, "liveness refcount underflow");
        counts[vid.index()] -= 1;
        if counts[vid.index()] == 0 && !self.space.value(attr, vid).is_null() {
            self.space.set_live(attr, vid, false);
        }
    }

    /// Emits the clause of one instance constraint (without recording the
    /// instance): literals go straight into the CNF's flat arena — no
    /// per-clause allocation, no intermediate buffer.
    fn emit_omega_clause(&mut self, c: &InstanceConstraint, group: GroupId) {
        for a in c.premise.iter() {
            let lit = self.var(*a).negative();
            self.cnf.push_clause_lit(lit);
        }
        let mut kind = ClauseKind::General;
        if let Conclusion::Atom(atom) = c.conclusion {
            let concl = self.var(atom).positive();
            self.cnf.push_clause_lit(concl);
            if matches!(c.origin, super::Origin::Currency(_) | super::Origin::BaseOrder) {
                kind = ClauseKind::OrderRule;
            }
        }
        if group != NO_GROUP {
            let guard = self.groups[group as usize].guard;
            self.cnf.push_clause_lit(guard.negative());
        }
        self.cnf.finish_clause();
        self.clause_groups.push(group);
        self.clause_kinds.push(kind);
    }

    /// Appends one clause to the CNF, tagging it with its group (the
    /// group's guard literal is appended automatically). Every clause of
    /// the encoding goes through here so `clause_groups` stays parallel to
    /// the clause list; every caller allocates its variables through
    /// [`EncodedSpec::var`] / [`EncodedSpec::new_group`] first, so the CNF
    /// skips its per-literal variable scan.
    fn push_clause(&mut self, lits: impl IntoIterator<Item = Lit>, group: GroupId) {
        if group == NO_GROUP {
            self.cnf.add_clause_prealloc(lits);
        } else {
            let guard = self.groups[group as usize].guard;
            self.cnf
                .add_clause_prealloc(lits.into_iter().chain(std::iter::once(guard.negative())));
        }
        self.clause_groups.push(group);
        self.clause_kinds.push(ClauseKind::General);
    }

    /// Allocates a fresh, active clause group with its guard variable.
    fn new_group(&mut self) -> GroupId {
        let guard = self.cnf.new_var();
        debug_assert_eq!(guard.index(), self.var_atom.len());
        self.var_atom.push(NO_ATOM);
        let id = self.groups.len() as GroupId;
        self.groups.push(GroupState { guard, active: true });
        id
    }

    /// Retracts a clause group: marks it inactive and appends the root unit
    /// `¬g` to the CNF, which permanently satisfies the group's clauses
    /// (and any clauses a solver learnt from them) once synced.
    fn retract_group(&mut self, group: GroupId) {
        let state = &mut self.groups[group as usize];
        debug_assert!(state.active, "group retracted twice");
        state.active = false;
        let guard = state.guard;
        self.push_clause([guard.negative()], NO_GROUP);
    }

    /// Allocates (or returns) the variable for an order atom.
    fn var(&mut self, atom: OrderAtom) -> Var {
        if let Some(v) = self.vars.get(atom.attr, atom.lo, atom.hi) {
            return v;
        }
        let v = self.cnf.new_var();
        debug_assert_eq!(v.index(), self.var_atom.len());
        self.vars.set(atom.attr, atom.lo, atom.hi, v);
        self.var_atom.push(self.atoms.len() as u32);
        self.atoms.push(atom);
        self.atom_vars.push(v);
        v
    }

    /// The CNF `Φ(Se)`.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// The options this specification was encoded with.
    pub fn options(&self) -> EncodeOptions {
        self.options
    }

    /// The instance constraints Ω(Se) — **empty unless the encoding was
    /// built with [`EncodeOptions::retain_omega`]**. On the default memory
    /// diet the clauses of the CNF are the only representation of Ω;
    /// rule derivation walks them through
    /// [`EncodedSpec::for_each_order_rule`]. When retained, instances of
    /// retracted CFD groups are removed on re-emission, so the slice
    /// always reflects the live constraint set.
    pub fn omega(&self) -> &[InstanceConstraint] {
        &self.omega
    }

    /// Walks every **live** order-rule clause — the Σ-currency and
    /// base-order implications with an order-atom conclusion, i.e. exactly
    /// the Ω(Se) subset the paper's rule derivation (`TrueDer`,
    /// Section VI) consumes — reconstructing each rule's premise atoms and
    /// conclusion atom from the flat literal arena via the var → atom
    /// table. Guard literals are skipped (they map to no atom); clauses of
    /// retracted groups are skipped, so the visit order is the same
    /// subsequence of emission order a retained Ω slice would yield.
    ///
    /// The premise slice is a scratch buffer reused across clauses; copy
    /// out whatever must outlive the callback.
    pub fn for_each_order_rule<F: FnMut(&[OrderAtom], OrderAtom)>(&self, mut f: F) {
        let mut premise: Vec<OrderAtom> = Vec::new();
        for idx in 0..self.clause_kinds.len() {
            if self.clause_kinds[idx] != ClauseKind::OrderRule {
                continue;
            }
            let group = self.clause_groups[idx];
            if group != NO_GROUP && !self.groups[group as usize].active {
                continue;
            }
            premise.clear();
            let mut conclusion = None;
            for &lit in self.cnf.clause(idx) {
                // Guard literals have no atom behind their variable.
                let Some(atom) = self.order_atom(lit.var()) else {
                    continue;
                };
                if lit.is_positive() {
                    conclusion = Some(atom);
                } else {
                    premise.push(atom);
                }
            }
            let concl = conclusion.expect("OrderRule clauses have an atom conclusion");
            f(&premise, concl);
        }
    }

    /// Approximate heap footprint of the encoding in bytes: the CNF arena,
    /// the per-clause group/kind tags, the dense variable table, the atom
    /// tables and — when retained — the materialised Ω(Se) instance list
    /// (see [`EncodedSpec::omega_bytes`]). Feeds the bytes-per-entity
    /// accounting of `bench_incremental`.
    pub fn approx_bytes(&self) -> usize {
        let vars: usize = self
            .vars
            .per_attr
            .iter()
            .map(|t| t.capacity() * std::mem::size_of::<u32>())
            .sum();
        self.cnf.approx_bytes()
            + self.clause_groups.capacity() * std::mem::size_of::<GroupId>()
            + self.clause_kinds.capacity() * std::mem::size_of::<ClauseKind>()
            + vars
            + self.atoms.capacity() * std::mem::size_of::<OrderAtom>()
            + self.atom_vars.capacity() * std::mem::size_of::<Var>()
            + self.var_atom.capacity() * std::mem::size_of::<u32>()
            + self.omega_bytes()
    }

    /// Approximate heap bytes of the retained Ω(Se) instance list (0 on
    /// the default Ω-free diet): the instance vector, its group tags, and
    /// each instance's boxed premise. This is exactly the memory the
    /// Ω-free rule scan saves per entity.
    pub fn omega_bytes(&self) -> usize {
        let premises: usize = self.omega.iter().map(|c| c.premise.heap_bytes()).sum();
        self.omega.capacity() * std::mem::size_of::<InstanceConstraint>()
            + self.omega_groups.capacity() * std::mem::size_of::<GroupId>()
            + premises
    }

    /// The per-attribute value spaces (active domain + null).
    pub fn space(&self) -> &AttrValueSpace {
        &self.space
    }

    /// The variable encoding `lo ≺v_attr hi`, if allocated.
    pub fn var_of(&self, attr: AttrId, lo: ValueId, hi: ValueId) -> Option<Var> {
        self.vars.get(attr, lo, hi)
    }

    /// The order atom behind a variable, or `None` for auxiliary (guard)
    /// variables.
    pub fn order_atom(&self, var: Var) -> Option<OrderAtom> {
        let idx = *self.var_atom.get(var.index())?;
        (idx != NO_ATOM).then(|| self.atoms[idx as usize])
    }

    /// All order variables with their atoms, in allocation order.
    pub fn order_vars(&self) -> impl Iterator<Item = (Var, OrderAtom)> + '_ {
        self.atom_vars.iter().copied().zip(self.atoms.iter().copied())
    }

    /// Number of order variables (guard variables excluded).
    pub fn num_order_vars(&self) -> usize {
        self.atoms.len()
    }

    /// Positive literals of the guards of every **active** clause group.
    /// Fresh solvers/propagators over [`EncodedSpec::cnf`] must assert
    /// these (retracted groups are already neutralised by `¬g` units inside
    /// the CNF); the incremental engine instead carries them as persistent
    /// assumptions so they stay retractable.
    pub fn active_guards(&self) -> Vec<Lit> {
        self.groups
            .iter()
            .filter(|g| g.active)
            .map(|g| g.guard.positive())
            .collect()
    }

    /// Whether `group` is still active (not yet retracted). The engine's
    /// tail sync consults this so clauses emitted for a group that was
    /// retracted *later in the same batch* are never fed live to the
    /// group-aware propagator — the solver side is already safe because
    /// the group's `¬g` unit travels in the same tail.
    pub fn is_group_active(&self, group: GroupId) -> bool {
        self.groups[group as usize].active
    }

    /// The group and guard variable of CNF clause `idx`, or `None` for
    /// permanent clauses. Used by the engine to strip guard literals when
    /// syncing its group-aware unit propagator.
    pub fn clause_group(&self, idx: usize) -> Option<(GroupId, Var)> {
        let g = self.clause_groups[idx];
        (g != NO_GROUP).then(|| (g, self.groups[g as usize].guard))
    }

    /// A CDCL solver over `Φ(Se)` with all active guard groups asserted as
    /// root units — correct for any consumer that never retracts.
    pub fn fresh_solver(&self) -> cr_sat::Solver {
        let mut solver = cr_sat::Solver::from_cnf(&self.cnf);
        for g in self.active_guards() {
            solver.add_clause([g]);
        }
        solver
    }

    /// A root-level unit propagator over `Φ(Se)` with all active guard
    /// groups asserted as units — correct for any consumer that never
    /// retracts.
    pub fn fresh_propagator(&self) -> cr_sat::UnitPropagator {
        let mut up = cr_sat::UnitPropagator::new(&self.cnf);
        for g in self.active_guards() {
            up.add_clause(&[g]);
        }
        up
    }

    /// Interned id of `value` in `attr`'s space.
    pub fn value_id(&self, attr: AttrId, value: &Value) -> Option<ValueId> {
        self.space.get(attr, value)
    }

    /// The value behind `(attr, id)`.
    pub fn value(&self, attr: AttrId, id: ValueId) -> &Value {
        self.space.value(attr, id)
    }

    /// Assumption literals asserting "`v` is the most current value of
    /// `attr`": every other **live** value of the space sits strictly below
    /// `v` (on ordinary encodings every value is live; on revisable ones
    /// retired values are out of the active domain and impose nothing).
    /// (The dense variable table is fully allocated in every axiom mode, so
    /// the lookup always succeeds for interned ids; `None` is kept for
    /// defensive callers.)
    pub fn top_assumptions(&self, attr: AttrId, v: ValueId) -> Option<Vec<Lit>> {
        let interner = self.space.attr(attr);
        let mut lits = Vec::with_capacity(interner.len().saturating_sub(1));
        for o in interner.live_ids() {
            if o == v {
                continue;
            }
            lits.push(self.var_of(attr, o, v)?.positive());
        }
        Some(lits)
    }

    /// Axiom clauses recorded into the CNF by lazy instantiation so far
    /// (monotone; 0 for eager encodings and for consumers that only used
    /// [`TransientAxiomSource`]).
    pub fn injected_axioms(&self) -> usize {
        self.injected_axioms
    }

    /// Appends lazily instantiated axiom clauses to the CNF as permanent
    /// clauses (axioms are theory-valid independently of any CFD group).
    pub(crate) fn record_axiom_clauses(&mut self, clauses: &[Vec<Lit>]) {
        for clause in clauses {
            self.push_clause(clause.iter().copied(), NO_GROUP);
        }
        self.injected_axioms += clauses.len();
    }

    /// The order-axiom instances violated by (or unit under) a candidate
    /// assignment — the detection half of [`cr_sat::LazyAxiomSource`] for
    /// [`AxiomMode::Lazy`] encodings.
    ///
    /// `value(v)` is the candidate truth of variable `v`. With
    /// `delta = Some(lits)` (a root fixpoint's newly assigned literals) the
    /// scan is restricted to axiom instances touching a delta variable and
    /// returns every instance with no true literal and at most one
    /// unassigned literal — i.e. exactly the clauses eager unit propagation
    /// could fire next; completeness across rounds follows because a clause
    /// can only *become* unit through a new assignment. With `delta = None`
    /// (a total model) all instances with no true literal are returned;
    /// per attribute the scan is `O(n²)` on theory-satisfying models (a
    /// total asymmetric relation is transitive iff its score sequence is a
    /// permutation) and only walks triples when a violation exists.
    ///
    /// Returned clauses are **not** recorded — see [`RecordingAxiomSource`]
    /// vs [`TransientAxiomSource`] for the two integration policies.
    pub fn violated_axioms(
        &self,
        value: &dyn Fn(Var) -> Option<bool>,
        delta: Option<&[Lit]>,
    ) -> Vec<Vec<Lit>> {
        debug_assert_eq!(self.options.axioms, AxiomMode::Lazy);
        let mut out = Vec::new();
        match delta {
            Some(lits) => self.violated_axioms_delta(value, lits, &mut out),
            None => self.violated_axioms_total(value, &mut out),
        }
        out
    }

    /// Delta scan for partial (root-fixpoint) assignments: for each newly
    /// assigned order atom, enumerate the `O(n)` axiom instances it
    /// participates in and keep those that are unit or conflicting.
    fn violated_axioms_delta(
        &self,
        value: &dyn Fn(Var) -> Option<bool>,
        delta: &[Lit],
        out: &mut Vec<Vec<Lit>>,
    ) {
        // Dedup within the call: the same instance can be reached from two
        // delta atoms. Key: (attr, a, b, c) for triples ("x_ab ∧ x_bc →
        // x_ac"), (attr, a, b, MAX) for asymmetry on {a, b} and (attr, a,
        // b, MAX-1) for totality (a < b). Asymmetry and totality need
        // distinct keys: retraction redelivery presents *both* polarities
        // of an unassigned variable, and a shared key would let the
        // asymmetry emission starve the totality instance for the pair.
        let mut seen: HashSet<(AttrId, u32, u32, u32)> = HashSet::new();
        for &lit in delta {
            let Some(OrderAtom { attr, lo: a, hi: b }) = self.order_atom(lit.var()) else {
                continue; // guard or other auxiliary variable
            };
            // The active axiom scheme ranges over *live* values only — a
            // from-scratch encode of the materialised specification never
            // interns a retired value, so instantiating its axioms here
            // (most visibly totality) would let the replay derive order
            // facts the scratch encoding cannot.
            let live = |x: ValueId| self.space.is_live(attr, x);
            if !live(a) || !live(b) {
                continue;
            }
            let n = self.space.attr(attr).len() as u32;
            let var = |x: ValueId, y: ValueId| self.vars.get(attr, x, y).expect("dense table");
            let val = |x: ValueId, y: ValueId| value(var(x, y));
            let asym_key = (attr, a.0.min(b.0), a.0.max(b.0), u32::MAX);
            let total_key = (attr, a.0.min(b.0), a.0.max(b.0), u32::MAX - 1);
            if lit.is_positive() {
                // x_ab = true. Asymmetry ¬x_ab ∨ ¬x_ba is unit (or
                // conflicting) unless x_ba is already false.
                if val(b, a) != Some(false) && seen.insert(asym_key) {
                    out.push(vec![var(a, b).negative(), var(b, a).negative()]);
                }
                for c in (0..n).map(ValueId) {
                    if c == a || c == b || !live(c) {
                        continue;
                    }
                    // (a, b, c): ¬x_ab ∨ ¬x_bc ∨ x_ac.
                    let bc = val(b, c);
                    let ac = val(a, c);
                    if bc != Some(false)
                        && ac != Some(true)
                        && usize::from(bc.is_none()) + usize::from(ac.is_none()) <= 1
                        && seen.insert((attr, a.0, b.0, c.0))
                    {
                        out.push(vec![
                            var(a, b).negative(),
                            var(b, c).negative(),
                            var(a, c).positive(),
                        ]);
                    }
                    // (c, a, b): ¬x_ca ∨ ¬x_ab ∨ x_cb.
                    let ca = val(c, a);
                    let cb = val(c, b);
                    if ca != Some(false)
                        && cb != Some(true)
                        && usize::from(ca.is_none()) + usize::from(cb.is_none()) <= 1
                        && seen.insert((attr, c.0, a.0, b.0))
                    {
                        out.push(vec![
                            var(c, a).negative(),
                            var(a, b).negative(),
                            var(c, b).positive(),
                        ]);
                    }
                }
            } else {
                // x_ab = false. Totality x_ab ∨ x_ba is unit unless x_ba is
                // already true.
                if self.options.totality
                    && val(b, a) != Some(true)
                    && seen.insert(total_key)
                {
                    out.push(vec![var(a, b).positive(), var(b, a).positive()]);
                }
                // x_ab is the conclusion of the triples (a, c, b):
                // ¬x_ac ∨ ¬x_cb ∨ x_ab.
                for c in (0..n).map(ValueId) {
                    if c == a || c == b || !live(c) {
                        continue;
                    }
                    let ac = val(a, c);
                    let cb = val(c, b);
                    if ac != Some(false)
                        && cb != Some(false)
                        && usize::from(ac.is_none()) + usize::from(cb.is_none()) <= 1
                        && seen.insert((attr, a.0, c.0, b.0))
                    {
                        out.push(vec![
                            var(a, c).negative(),
                            var(c, b).negative(),
                            var(a, b).positive(),
                        ]);
                    }
                }
            }
        }
    }

    /// Total-model scan: per attribute, check pair axioms in `O(n²)`, then
    /// transitivity via the tournament score-sequence criterion — only a
    /// genuinely intransitive relation pays the `O(n³)` triple walk.
    fn violated_axioms_total(&self, value: &dyn Fn(Var) -> Option<bool>, out: &mut Vec<Vec<Lit>>) {
        for attr in (0..self.space.arity() as u16).map(AttrId) {
            // Restrict to live values: retired values are outside the
            // active axiom scheme (a from-scratch encode never interns
            // them), so constraining their pairs — totality above all —
            // would over-constrain the model relative to scratch.
            let ids: Vec<ValueId> = self.space.attr(attr).live_ids().collect();
            let n = ids.len();
            if n < 2 {
                continue;
            }
            let var = |x: usize, y: usize| {
                self.vars.get(attr, ids[x], ids[y]).expect("dense table")
            };
            // Truth matrix (unassigned model slots read as false, matching
            // `Solver::model` semantics for unconstrained variables).
            let mut m = vec![false; n * n];
            for x in 0..n {
                for y in 0..n {
                    if x != y {
                        m[x * n + y] = value(var(x, y)) == Some(true);
                    }
                }
            }
            let mut tournament = true;
            for x in 0..n {
                for y in x + 1..n {
                    let xy = m[x * n + y];
                    let yx = m[y * n + x];
                    if xy && yx {
                        out.push(vec![var(x, y).negative(), var(y, x).negative()]);
                        tournament = false;
                    } else if !xy && !yx {
                        tournament = false;
                        if self.options.totality {
                            out.push(vec![var(x, y).positive(), var(y, x).positive()]);
                        }
                    }
                }
            }
            if tournament {
                // A tournament is transitive iff its score sequence is a
                // permutation of 0..n.
                let mut score_seen = vec![false; n];
                let mut transitive = true;
                for x in 0..n {
                    let s = (0..n).filter(|&y| y != x && m[x * n + y]).count();
                    if score_seen[s] {
                        transitive = false;
                        break;
                    }
                    score_seen[s] = true;
                }
                if transitive {
                    continue;
                }
            }
            for x in 0..n {
                for y in 0..n {
                    if y == x || !m[x * n + y] {
                        continue;
                    }
                    for z in 0..n {
                        if z != x && z != y && m[y * n + z] && !m[x * n + z] {
                            out.push(vec![
                                var(x, y).negative(),
                                var(y, z).negative(),
                                var(x, z).positive(),
                            ]);
                        }
                    }
                }
            }
        }
    }
}

/// A [`cr_sat::LazyAxiomSource`] over an [`AxiomMode::Lazy`] encoding that
/// **records** every handed-out axiom clause into the encoding's CNF (as a
/// permanent, ungrouped clause). The incremental resolution engine uses
/// this adapter so the CNF stays the single source of truth: its warm
/// solver and unit propagator exchange injected axioms through the ordinary
/// clause-tail sync, and the MaxSAT repair's borrowed hard base sees them
/// for free.
pub struct RecordingAxiomSource<'a> {
    enc: &'a mut EncodedSpec,
}

impl<'a> RecordingAxiomSource<'a> {
    /// A recording source over `enc` (which must be a lazy encoding).
    pub fn new(enc: &'a mut EncodedSpec) -> Self {
        debug_assert_eq!(enc.options().axioms, AxiomMode::Lazy);
        RecordingAxiomSource { enc }
    }
}

impl cr_sat::LazyAxiomSource for RecordingAxiomSource<'_> {
    fn instantiate(
        &mut self,
        value: &dyn Fn(Var) -> Option<bool>,
        delta: Option<&[Lit]>,
    ) -> Vec<Vec<Lit>> {
        let clauses = self.enc.violated_axioms(value, delta);
        self.enc.record_axiom_clauses(&clauses);
        clauses
    }
}

/// A [`cr_sat::LazyAxiomSource`] over a **shared** lazy encoding: handed-out
/// clauses go only to the consulting solver/propagator, the encoding is
/// untouched. Used by the standalone entry points (`deduce_order`,
/// `is_valid`, the exact true-value queries, `suggest`'s probe) that only
/// hold `&EncodedSpec`.
pub struct TransientAxiomSource<'a> {
    enc: &'a EncodedSpec,
}

impl<'a> TransientAxiomSource<'a> {
    /// A non-recording source over `enc` (which must be a lazy encoding).
    pub fn new(enc: &'a EncodedSpec) -> Self {
        debug_assert_eq!(enc.options().axioms, AxiomMode::Lazy);
        TransientAxiomSource { enc }
    }

    /// `Some(Self::new(enc))` when `lazy`, else `None` — for probe loops
    /// that branch on the encoding mode around one optional source.
    pub fn new_if(enc: &'a EncodedSpec, lazy: bool) -> Option<Self> {
        lazy.then(|| Self::new(enc))
    }
}

impl cr_sat::LazyAxiomSource for TransientAxiomSource<'_> {
    fn instantiate(
        &mut self,
        value: &dyn Fn(Var) -> Option<bool>,
        delta: Option<&[Lit]>,
    ) -> Vec<Vec<Lit>> {
        self.enc.violated_axioms(value, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_constraints::parser::{parse_cfds, parse_currency_constraint};
    use cr_sat::{SolveResult, Solver};
    use cr_types::{EntityInstance, Schema, Tuple};

    fn tiny_spec() -> Specification {
        let s = Schema::new("p", ["status", "job"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::str("nurse")]),
                Tuple::of([Value::str("retired"), Value::str("n/a")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[job] t2").unwrap(),
        ];
        Specification::without_orders(e, sigma, vec![])
    }

    fn extended_ok(outcome: ExtendOutcome) -> Vec<GroupId> {
        match outcome {
            ExtendOutcome::Extended { retracted_groups } => retracted_groups,
            ExtendOutcome::NeedsRebuild => panic!("expected pure extension"),
        }
    }

    #[test]
    fn full_encoding_allocates_all_pairs() {
        let spec = tiny_spec();
        let enc = EncodedSpec::encode(&spec);
        // Two attributes, two values each → 2·2·1 = 4 order vars.
        assert_eq!(enc.num_order_vars(), 4);
        // Sat: the chain working≺retired, nurse≺n/a is consistent.
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_derives_the_chain() {
        let spec = tiny_spec();
        let enc = EncodedSpec::encode(&spec);
        let mut up = cr_sat::UnitPropagator::new(enc.cnf());
        let implied = match up.run() {
            cr_sat::UpOutcome::Fixpoint { implied } => implied,
            cr_sat::UpOutcome::Conflict => panic!("valid spec"),
        };
        let status = spec.schema().attr_id("status").unwrap();
        let job = spec.schema().attr_id("job").unwrap();
        let sid = |v: &str| enc.value_id(status, &Value::str(v)).unwrap();
        let jid = |v: &str| enc.value_id(job, &Value::str(v)).unwrap();
        let x_status = enc.var_of(status, sid("working"), sid("retired")).unwrap();
        let x_job = enc.var_of(job, jid("nurse"), jid("n/a")).unwrap();
        assert!(implied.contains(&x_status.positive()));
        assert!(implied.contains(&x_job.positive()));
    }

    #[test]
    fn redelivered_pair_gets_both_asymmetry_and_totality() {
        // Retraction redelivery presents BOTH polarities of a variable to
        // the lazy source in one delta. With x_ab false and x_ba undef,
        // the positive polarity emits the asymmetry instance and the
        // negative one the (unit) totality instance; a shared dedup key
        // used to let the first emission starve the second, permanently
        // losing the totality clause.
        let spec = tiny_spec();
        let enc = EncodedSpec::encode_with(&spec, EncodeOptions::lazy());
        let status = spec.schema().attr_id("status").unwrap();
        let a = enc.value_id(status, &Value::str("working")).unwrap();
        let b = enc.value_id(status, &Value::str("retired")).unwrap();
        let x_ab = enc.var_of(status, a, b).unwrap();
        let x_ba = enc.var_of(status, b, a).unwrap();
        let value = |v: cr_sat::Var| if v == x_ab { Some(false) } else { None };
        let delta = [x_ab.positive(), x_ab.negative()];
        let out = enc.violated_axioms(&value, Some(&delta));
        let mut asym = vec![x_ab.negative(), x_ba.negative()];
        let mut total = vec![x_ab.positive(), x_ba.positive()];
        asym.sort_unstable_by_key(|l| l.index());
        total.sort_unstable_by_key(|l| l.index());
        let normalised: Vec<Vec<Lit>> = out
            .into_iter()
            .map(|mut c| {
                c.sort_unstable_by_key(|l| l.index());
                c
            })
            .collect();
        assert!(normalised.contains(&asym), "asymmetry instance missing");
        assert!(normalised.contains(&total), "totality instance starved by asymmetry dedup key");
    }

    #[test]
    fn contradictory_base_orders_are_unsat() {
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![Tuple::of([Value::int(1)]), Tuple::of([Value::int(2)])],
        )
        .unwrap();
        let mut orders = crate::orders::PartialOrders::empty(1);
        orders.add(AttrId(0), cr_types::TupleId(0), cr_types::TupleId(1));
        orders.add(AttrId(0), cr_types::TupleId(1), cr_types::TupleId(0));
        let spec = Specification::new(e, orders, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn transitivity_closes_chains() {
        // a<b, b<c base orders; check a<c is implied (Φ ∧ ¬x_ac unsat).
        let s = Schema::new("p", ["a"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::int(1)]),
                Tuple::of([Value::int(2)]),
                Tuple::of([Value::int(3)]),
            ],
        )
        .unwrap();
        let mut orders = crate::orders::PartialOrders::empty(1);
        orders.add(AttrId(0), cr_types::TupleId(0), cr_types::TupleId(1));
        orders.add(AttrId(0), cr_types::TupleId(1), cr_types::TupleId(2));
        let spec = Specification::new(e, orders, vec![], vec![]);
        let enc = EncodedSpec::encode(&spec);
        let a = AttrId(0);
        let id = |v: i64| enc.value_id(a, &Value::int(v)).unwrap();
        let x_ac = enc.var_of(a, id(1), id(3)).unwrap();
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(
            solver.solve_with_assumptions(&[x_ac.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn lazy_encoding_matches_eager_on_validity() {
        let spec = tiny_spec();
        let eager = EncodedSpec::encode(&spec);
        let lazy = EncodedSpec::encode_with(&spec, EncodeOptions::lazy());
        // Same variables, strictly fewer clauses (no axioms materialised).
        assert_eq!(lazy.num_order_vars(), eager.num_order_vars());
        assert!(lazy.cnf().num_clauses() < eager.cnf().num_clauses());
        let mut s1 = Solver::from_cnf(eager.cnf());
        let mut s2 = Solver::from_cnf(lazy.cnf());
        let mut src = TransientAxiomSource::new(&lazy);
        assert_eq!(s1.solve(), s2.solve_lazy(&mut src));
    }

    #[test]
    fn lazy_up_deduction_matches_eager() {
        // The φ-chain of `tiny_spec` must propagate identically whether the
        // axioms are materialised or pulled on demand.
        let spec = tiny_spec();
        let eager = EncodedSpec::encode(&spec);
        let lazy = EncodedSpec::encode_with(&spec, EncodeOptions::lazy());
        let od_eager = crate::deduce::deduce_order(&eager).unwrap();
        let od_lazy = crate::deduce::deduce_order(&lazy).unwrap();
        assert_eq!(od_eager.size(), od_lazy.size());
        for attr in spec.schema().attr_ids() {
            for (lo, hi) in od_eager.pairs(attr) {
                assert!(od_lazy.contains(attr, lo, hi));
            }
        }
    }

    #[test]
    fn recording_source_appends_to_the_cnf() {
        let spec = tiny_spec();
        let mut enc = EncodedSpec::encode_with(&spec, EncodeOptions::lazy());
        let before = enc.cnf().num_clauses();
        assert_eq!(enc.injected_axioms(), 0);
        let mut up = enc.fresh_propagator();
        let implied = {
            let mut src = RecordingAxiomSource::new(&mut enc);
            up.propagate_to_fixpoint_lazy(&mut src).expect("valid").len()
        };
        assert!(implied > 0);
        assert!(enc.injected_axioms() > 0, "the chain forces axiom injection");
        assert_eq!(enc.cnf().num_clauses(), before + enc.injected_axioms());
        // Recorded clauses are permanent: a fresh solver over the CNF sees
        // them without any lazy cooperation.
        let status = spec.schema().attr_id("status").unwrap();
        let sid = |v: &str| enc.value_id(status, &Value::str(v)).unwrap();
        let x = enc.var_of(status, sid("working"), sid("retired")).unwrap();
        let mut solver = enc.fresh_solver();
        assert_eq!(solver.solve_with_assumptions(&[x.negative()]), SolveResult::Unsat);
    }

    #[test]
    fn cfd_plus_currency_derives_cross_attribute_values() {
        // Miniature of Example 2 steps (c)-(d): status chain forces the AC,
        // then the CFD forces the city.
        let s = Schema::new("p", ["status", "AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::int(212), Value::str("NY")]),
                Tuple::of([Value::str("retired"), Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[AC] t2").unwrap(),
        ];
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, sigma, gamma);
        let enc = EncodedSpec::encode(&spec);
        let city = spec.schema().attr_id("city").unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        let x = enc.var_of(city, ny, la).unwrap();
        // NY ≺ LA must be implied.
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(
            solver.solve_with_assumptions(&[x.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn guarded_encoding_matches_unguarded_once_activated() {
        // Same spec as above, but with guarded CFDs: the bare CNF no longer
        // forces the CFD (guards free), while the activated encoding does.
        let s = Schema::new("p", ["status", "AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::str("working"), Value::int(212), Value::str("NY")]),
                Tuple::of([Value::str("retired"), Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let sigma = vec![
            parse_currency_constraint(
                &s,
                r#"t1[status] = "working" && t2[status] = "retired" -> t1 <[status] t2"#,
            )
            .unwrap(),
            parse_currency_constraint(&s, "t1 <[status] t2 -> t1 <[AC] t2").unwrap(),
        ];
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, sigma, gamma);
        let enc = EncodedSpec::encode_with(&spec, EncodeOptions::default().with_guarded_cfds());
        assert_eq!(enc.active_guards().len(), 1);
        let city = spec.schema().attr_id("city").unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        let x = enc.var_of(city, ny, la).unwrap();
        let mut activated = enc.fresh_solver();
        assert_eq!(
            activated.solve_with_assumptions(&[x.negative()]),
            SolveResult::Unsat
        );
        assert_eq!(activated.solve(), SolveResult::Sat);
        // Guard variables are not order atoms.
        let guard = enc.active_guards()[0].var();
        assert!(enc.order_atom(guard).is_none());
        assert!(enc.order_atom(x).is_some());
    }

    #[test]
    fn extension_with_in_domain_answer_matches_scratch_deduction() {
        // Answering city=LA must make LA the deduced top of `city` exactly
        // as a from-scratch re-encode of the extended spec would.
        let s = Schema::new("p", ["name", "city"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::str("X"), Value::str("NY")]),
                Tuple::of([Value::str("X"), Value::str("LA")]),
            ],
        )
        .unwrap();
        let spec = Specification::without_orders(e, vec![], vec![]);
        let mut enc = EncodedSpec::encode(&spec);
        let city = spec.schema().attr_id("city").unwrap();
        let input = UserInput::single(city, Value::str("LA"));

        let before = enc.cnf().num_clauses();
        assert!(extended_ok(enc.extend_with_input(&spec, &input)).is_empty());
        assert!(enc.cnf().num_clauses() > before, "unit clauses appended");

        let (extended, _, _) = spec.apply_user_input(&input);
        let scratch = EncodedSpec::encode(&extended);
        let od_inc = crate::deduce::deduce_order(&enc).unwrap();
        let od_scr = crate::deduce::deduce_order(&scratch).unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        assert!(od_inc.contains(city, ny, la));
        assert!(od_scr.contains(city, ny, la));
    }

    #[test]
    fn extension_instantiates_sigma_on_the_new_tuple() {
        // σ: t1 <[status] t2 → t1 <[job] t2. Answering status=retired
        // creates the pair (t_working, to) whose instance forces the job
        // order too.
        let spec = tiny_spec();
        let mut enc = EncodedSpec::encode(&spec);
        let status = spec.schema().attr_id("status").unwrap();
        let job = spec.schema().attr_id("job").unwrap();
        let input = UserInput::single(status, Value::str("retired"));
        assert!(extended_ok(enc.extend_with_input(&spec, &input)).is_empty());
        let od = crate::deduce::deduce_order(&enc).unwrap();
        let jid = |v: &str| enc.value_id(job, &Value::str(v)).unwrap();
        assert!(od.contains(job, jid("nurse"), jid("n/a")));
    }

    #[test]
    fn unguarded_extension_rejects_out_of_domain_values() {
        let spec = tiny_spec();
        let mut enc = EncodedSpec::encode(&spec);
        let clauses = enc.cnf().num_clauses();
        let status = spec.schema().attr_id("status").unwrap();
        let input = UserInput::single(status, Value::str("deceased"));
        assert_eq!(
            enc.extend_with_input(&spec, &input),
            ExtendOutcome::NeedsRebuild
        );
        assert_eq!(enc.cnf().num_clauses(), clauses, "encoding untouched");
    }

    #[test]
    fn guarded_extension_absorbs_out_of_domain_values() {
        // The answered value is new: the space grows, the new value tops
        // the attribute, and deduction still works on the extended CNF.
        let spec = tiny_spec();
        let mut enc =
            EncodedSpec::encode_with(&spec, EncodeOptions::default().with_guarded_cfds());
        let status = spec.schema().attr_id("status").unwrap();
        let input = UserInput::single(status, Value::str("deceased"));
        // No CFDs → nothing to retract, but the extension must succeed.
        assert!(extended_ok(enc.extend_with_input(&spec, &input)).is_empty());
        let deceased = enc.value_id(status, &Value::str("deceased")).expect("interned");
        let od = crate::deduce::deduce_order(&enc).unwrap();
        for old in ["working", "retired"] {
            let oid = enc.value_id(status, &Value::str(old)).unwrap();
            assert!(od.contains(status, oid, deceased), "{old} must sit below");
        }
        // The grown space stays internally consistent (asymmetry +
        // transitivity were appended).
        let mut solver = enc.fresh_solver();
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn guarded_extension_retracts_and_reemits_cfd_on_lhs_growth() {
        // CFD: AC = 213 → city = "LA". A new AC value must invalidate the
        // old ωX premise (which didn't mention it) — after answering
        // AC=999, the CFD may no longer fire, because 999 tops AC.
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let gamma = parse_cfds(&s, "AC = 213 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        let mut enc = EncodedSpec::encode_with(
            &spec,
            EncodeOptions::default().with_guarded_cfds().with_retained_omega(),
        );
        let ac = spec.schema().attr_id("AC").unwrap();
        let city = spec.schema().attr_id("city").unwrap();
        let old_cfd_instances = enc
            .omega()
            .iter()
            .filter(|c| c.origin == super::super::Origin::Cfd(0))
            .count();
        assert!(old_cfd_instances > 0);

        let input = UserInput::single(ac, Value::int(999));
        let retracted = extended_ok(enc.extend_with_input(&spec, &input));
        assert_eq!(retracted.len(), 1, "the CFD's group must be retracted");

        // Re-emitted instances now range over the grown AC space: the ωX
        // premise contains 999 ≺ 213, which contradicts the base-order unit
        // 213 ≺ 999 — so the CFD is dead and city stays ambiguous.
        let nid = enc.value_id(ac, &Value::int(999)).unwrap();
        let cid213 = enc.value_id(ac, &Value::int(213)).unwrap();
        let reemitted: Vec<_> = enc
            .omega()
            .iter()
            .filter(|c| c.origin == super::super::Origin::Cfd(0))
            .collect();
        assert!(!reemitted.is_empty());
        assert!(
            reemitted.iter().all(|c| c
                .premise
                .contains(&OrderAtom { attr: ac, lo: nid, hi: cid213 })),
            "re-emitted ωX must mention the new value"
        );
        let od = crate::deduce::deduce_order(&enc).unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        assert!(!od.contains(city, ny, la), "CFD must not fire after retraction");
        assert!(!od.contains(city, la, ny));
        // And the scratch re-encode agrees.
        let (extended, _, _) = spec.apply_user_input(&input);
        let scratch = EncodedSpec::encode(&extended);
        let od_scr = crate::deduce::deduce_order(&scratch).unwrap();
        let ny_s = scratch.value_id(city, &Value::str("NY")).unwrap();
        let la_s = scratch.value_id(city, &Value::str("LA")).unwrap();
        assert!(!od_scr.contains(city, ny_s, la_s));
        assert!(!od_scr.contains(city, la_s, ny_s));
    }

    #[test]
    fn guarded_extension_activates_previously_dead_cfd() {
        // CFD: AC = 999 → city = "LA". 999 is outside the domain at encode
        // time (CFD vacuous); answering AC=999 must bring it to life:
        // 999 tops AC, the ωX premise holds, NY ≺ LA becomes deducible.
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(212), Value::str("NY")]),
                Tuple::of([Value::int(213), Value::str("LA")]),
            ],
        )
        .unwrap();
        let gamma = parse_cfds(&s, "AC = 999 -> city = \"LA\"").unwrap();
        let spec = Specification::without_orders(e, vec![], gamma);
        let mut enc = EncodedSpec::encode_with(
            &spec,
            EncodeOptions::default().with_guarded_cfds().with_retained_omega(),
        );
        assert!(enc.omega().iter().all(|c| c.origin != super::super::Origin::Cfd(0)));
        assert!(enc.active_guards().is_empty());

        let ac = spec.schema().attr_id("AC").unwrap();
        let input = UserInput::single(ac, Value::int(999));
        let retracted = extended_ok(enc.extend_with_input(&spec, &input));
        assert!(retracted.is_empty(), "nothing was emitted before");
        assert_eq!(enc.active_guards().len(), 1, "the CFD now has a live group");

        let city = spec.schema().attr_id("city").unwrap();
        let od = crate::deduce::deduce_order(&enc).unwrap();
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        assert!(od.contains(city, ny, la), "revived CFD must fire");
    }

    #[test]
    fn lazy_extension_is_a_pure_extension_too() {
        // In-domain answers extend lazily encoded specs exactly like eager
        // ones; out-of-domain answers grow the table without emitting
        // axiom clauses (the lazy source covers the grown space).
        let spec = tiny_spec();
        let mut enc = EncodedSpec::encode_with(&spec, EncodeOptions::lazy().with_guarded_cfds());
        let status = spec.schema().attr_id("status").unwrap();
        let job = spec.schema().attr_id("job").unwrap();
        assert!(extended_ok(
            enc.extend_with_input(&spec, &UserInput::single(status, Value::str("retired")))
        )
        .is_empty());
        let od = crate::deduce::deduce_order(&enc).unwrap();
        let jid = |v: &str| enc.value_id(job, &Value::str(v)).unwrap();
        assert!(od.contains(job, jid("nurse"), jid("n/a")));

        // Out-of-domain growth: only Ω clauses are appended, never triples.
        let clauses_before = enc.cnf().num_clauses();
        let (extended, _, _) =
            spec.apply_user_input(&UserInput::single(status, Value::str("retired")));
        assert!(extended_ok(enc.extend_with_input(
            &extended,
            &UserInput::single(status, Value::str("deceased"))
        ))
        .is_empty());
        let appended = enc.cnf().num_clauses() - clauses_before;
        // 3 base-order units for the grown space (working, retired and the
        // previous user tuple's value are all interned already) — nothing
        // cubic.
        assert!(appended <= 4, "lazy growth appended {appended} clauses");
        let deceased = enc.value_id(status, &Value::str("deceased")).expect("interned");
        let od = crate::deduce::deduce_order(&enc).unwrap();
        for old in ["working", "retired"] {
            let oid = enc.value_id(status, &Value::str(old)).unwrap();
            assert!(od.contains(status, oid, deceased), "{old} must sit below");
        }
    }

    /// A revisable spec whose CFD fires: AC order via the base order pair,
    /// city via the CFD's domination.
    fn revisable_cfd_spec() -> Specification {
        let s = Schema::new("p", ["AC", "city"]).unwrap();
        let e = EntityInstance::new(
            s.clone(),
            vec![
                Tuple::of([Value::int(1), Value::str("NY")]),
                Tuple::of([Value::int(2), Value::str("LA")]),
            ],
        )
        .unwrap();
        let mut orders = crate::orders::PartialOrders::empty(2);
        orders.add(AttrId(0), cr_types::TupleId(0), cr_types::TupleId(1));
        let gamma = parse_cfds(&s, "AC = 2 -> city = \"LA\"").unwrap();
        Specification::new(e, orders, vec![], gamma)
    }

    #[test]
    fn retract_cfd_neutralises_the_group_and_blocks_reemission() {
        let spec = revisable_cfd_spec();
        let mut enc = EncodedSpec::encode_with(
            &spec,
            EncodeOptions::default().with_revisable().with_retained_omega(),
        );
        let city = AttrId(1);
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        // The CFD fires (AC base order implies 1 ≺ 2): NY ≺ LA implied.
        let od = crate::deduce::deduce_order(&enc).unwrap();
        assert!(od.contains(city, ny, la));
        assert!(enc.omega().iter().any(|c| c.origin == super::super::Origin::Cfd(0)));

        let groups = enc.retract_cfd(0);
        assert_eq!(groups.len(), 1);
        assert!(enc.is_cfd_retired(0));
        assert!(
            enc.omega().iter().all(|c| c.origin != super::super::Origin::Cfd(0)),
            "retired CFD instances must leave Ω"
        );
        let od = crate::deduce::deduce_order(&enc).unwrap();
        assert!(!od.contains(city, ny, la), "the domination dies with the CFD");

        // An out-of-domain answer growing `AC` must NOT re-emit the CFD.
        let input = UserInput::single(AttrId(0), Value::int(9));
        assert!(matches!(
            enc.extend_with_input(&spec, &input),
            ExtendOutcome::Extended { .. }
        ));
        assert!(enc.omega().iter().all(|c| c.origin != super::super::Origin::Cfd(0)));
    }

    #[test]
    fn withdraw_order_removes_exactly_one_pair() {
        let spec = revisable_cfd_spec();
        let mut enc = EncodedSpec::encode_with(
            &spec,
            EncodeOptions::default().with_revisable().with_retained_omega(),
        );
        let ac = AttrId(0);
        let one = enc.value_id(ac, &Value::int(1)).unwrap();
        let two = enc.value_id(ac, &Value::int(2)).unwrap();
        let od = crate::deduce::deduce_order(&enc).unwrap();
        assert!(od.contains(ac, one, two));

        let groups = enc.withdraw_order(ac, cr_types::TupleId(0), cr_types::TupleId(1));
        assert_eq!(groups.len(), 1);
        assert!(
            enc.omega().iter().all(|c| c.origin != super::super::Origin::BaseOrder),
            "the withdrawn pair's unit must leave Ω"
        );
        let od = crate::deduce::deduce_order(&enc).unwrap();
        assert!(!od.contains(ac, one, two));
        // Withdrawing again (or a vacuous pair) is a no-op.
        assert!(enc.withdraw_order(ac, cr_types::TupleId(0), cr_types::TupleId(1)).is_empty());
    }

    #[test]
    fn replace_value_retires_revives_and_regrows_the_query_surface() {
        let spec = revisable_cfd_spec();
        let mut enc =
            EncodedSpec::encode_with(&spec, EncodeOptions::default().with_revisable());
        let city = AttrId(1);
        let ny = enc.value_id(city, &Value::str("NY")).unwrap();
        assert!(enc.space().is_live(city, ny));
        assert_eq!(enc.top_assumptions(city, ny).unwrap().len(), 1);

        // Revise the only NY cell to LA: NY retires, its order variables
        // stay allocated, and top-assumption probes stop quantifying over
        // it.
        let after = spec.with_replaced_value(cr_types::TupleId(0), city, Value::str("LA"));
        let groups =
            enc.replace_value(&after, cr_types::TupleId(0), city, &Value::str("NY"));
        // The CFD references city (RHS): its group was re-derived.
        assert!(!groups.is_empty());
        assert!(!enc.space().is_live(city, ny));
        assert!(enc.var_of(city, ny, enc.value_id(city, &Value::str("LA")).unwrap()).is_some());
        let la = enc.value_id(city, &Value::str("LA")).unwrap();
        assert!(enc.top_assumptions(city, la).unwrap().is_empty(), "LA dominates nothing live");

        // Revise back: NY revives through its original variables.
        let back = after.with_replaced_value(cr_types::TupleId(0), city, Value::str("NY"));
        enc.replace_value(&back, cr_types::TupleId(0), city, &Value::str("LA"));
        assert!(enc.space().is_live(city, ny));
        assert_eq!(enc.top_assumptions(city, la).unwrap().len(), 1);
    }
}
