//! Specifications `Se = (It, Σ, Γ)` and their extension with user input.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use cr_constraints::{ConstantCfd, CurrencyConstraint};
use cr_types::{AttrId, EntityInstance, Schema, Tuple, TupleId, Value};

use crate::encode::CompiledProgram;
use crate::orders::PartialOrders;

/// A specification of an entity (Section II-C): the temporal instance
/// `It = (Ie, ⪯_A1, …, ⪯_An)` plus the currency constraints `Σ` and constant
/// CFDs `Γ`.
///
/// Alongside the constraints themselves, a specification caches their
/// **compiled constraint program** ([`CompiledProgram`]) — the per-dataset
/// derivations (referenced-attribute sets, premise shapes, CFD pattern
/// tableaus) the SAT encoder projects every entity through. The cache is
/// shared by clones, so the per-round specifications of one resolution and
/// all entities stamped by a dataset generator
/// ([`Specification::set_compiled_program`]) reuse one program; mutating
/// Σ/Γ ([`Specification::with_constraint_fraction`]) clears it.
#[derive(Clone, Debug)]
pub struct Specification {
    entity: EntityInstance,
    orders: PartialOrders,
    sigma: Vec<CurrencyConstraint>,
    gamma: Vec<ConstantCfd>,
    program: OnceLock<Arc<CompiledProgram>>,
}

impl Specification {
    /// Builds a specification. The orders' arity must match the schema.
    pub fn new(
        entity: EntityInstance,
        orders: PartialOrders,
        sigma: Vec<CurrencyConstraint>,
        gamma: Vec<ConstantCfd>,
    ) -> Self {
        assert_eq!(
            orders.arity(),
            entity.schema().arity(),
            "order arity must match schema arity"
        );
        Specification { entity, orders, sigma, gamma, program: OnceLock::new() }
    }

    /// A specification with empty currency orders (the setting of all the
    /// paper's experiments: "we assumed empty currency orders in all the
    /// experiments even when partial timestamps were given").
    pub fn without_orders(
        entity: EntityInstance,
        sigma: Vec<CurrencyConstraint>,
        gamma: Vec<ConstantCfd>,
    ) -> Self {
        let arity = entity.schema().arity();
        Specification::new(entity, PartialOrders::empty(arity), sigma, gamma)
    }

    /// The entity instance `Ie`.
    pub fn entity(&self) -> &EntityInstance {
        &self.entity
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.entity.schema()
    }

    /// The partial currency orders of `It`.
    pub fn orders(&self) -> &PartialOrders {
        &self.orders
    }

    /// The currency constraints `Σ`.
    pub fn sigma(&self) -> &[CurrencyConstraint] {
        &self.sigma
    }

    /// The constant CFDs `Γ`.
    pub fn gamma(&self) -> &[ConstantCfd] {
        &self.gamma
    }

    /// The compiled constraint program for Σ/Γ, compiling on first use.
    ///
    /// The lazy fallback compiles **without** a value table (constants keep
    /// `Value`-based matching); dataset generators instead stamp a program
    /// compiled once against the dataset's shared table via
    /// [`Specification::set_compiled_program`], which every clone of the
    /// specification then reuses.
    pub fn compiled_program(&self) -> &Arc<CompiledProgram> {
        self.program
            .get_or_init(|| Arc::new(CompiledProgram::compile(&self.sigma, &self.gamma, None)))
    }

    /// Installs a pre-compiled (dataset-shared) constraint program. No-op
    /// if a program is already cached. The program must have been compiled
    /// from this specification's Σ/Γ.
    pub fn set_compiled_program(&self, program: Arc<CompiledProgram>) {
        debug_assert_eq!(
            program.sizes(),
            (self.sigma.len(), self.gamma.len()),
            "compiled program does not match this specification's Σ/Γ"
        );
        let _ = self.program.set(program);
    }

    /// Extends the specification with a partial temporal order `Ot`
    /// (`Se ⊕ Ot` over the existing tuples; for user-supplied *values* see
    /// [`Specification::apply_user_input`]).
    #[must_use]
    pub fn extend_with_orders(&self, ot: &PartialOrders) -> Specification {
        let mut out = self.clone();
        out.orders.merge(ot);
        out
    }

    /// Applies user input per Section III Remark (1): a fresh tuple `to`
    /// carrying the answered values (null elsewhere) is appended, ranked
    /// strictly above every existing tuple on each non-null attribute.
    /// Returns the extended specification, the new tuple's id and the size
    /// `|Ot|` of the induced order extension.
    #[must_use]
    pub fn apply_user_input(&self, input: &UserInput) -> (Specification, TupleId, usize) {
        let mut out = self.clone();
        let arity = out.entity.schema().arity();
        let mut values = vec![Value::Null; arity];
        for (attr, v) in &input.values {
            values[attr.index()] = v.clone();
        }
        let existing: Vec<TupleId> = out.entity.tuple_ids().collect();
        let to = out
            .entity
            .push(Tuple::from_values(values))
            .expect("arity checked above");
        let mut added = 0;
        for (attr, v) in &input.values {
            if v.is_null() {
                continue;
            }
            for t in &existing {
                out.orders.add(*attr, *t, to);
                added += 1;
            }
        }
        (out, to, added)
    }

    /// Per-attribute sizes useful for reporting: `(|Ie|, |Σ|, |Γ|)`.
    pub fn sizes(&self) -> (usize, usize, usize) {
        (self.entity.len(), self.sigma.len(), self.gamma.len())
    }

    /// A copy with the value at `(tid, attr)` replaced — the spec-level
    /// effect of an upstream *value revision* (see [`crate::ingest`]). Σ/Γ
    /// are untouched, so the cached compiled program is carried over.
    #[must_use]
    pub fn with_replaced_value(&self, tid: TupleId, attr: AttrId, value: Value) -> Specification {
        let mut out = self.clone();
        out.entity.replace_value(tid, attr, value);
        out
    }

    /// A copy with the base order `t1 ≺_attr t2` withdrawn (no-op if the
    /// pair was never asserted) — the spec-level effect of an upstream
    /// *order withdrawal*. The compiled program is carried over.
    #[must_use]
    pub fn with_order_withdrawn(&self, attr: AttrId, t1: TupleId, t2: TupleId) -> Specification {
        let mut out = self.clone();
        out.orders.remove(attr, t1, t2);
        out
    }

    /// A copy with the user answer `(attr, tuple)` withdrawn — the
    /// spec-level effect of an upstream *answer withdrawal*: every order
    /// pair ranking `tuple` on top of `attr` is removed and the answered
    /// cell reverts to null (the input tuple itself remains, null-padded).
    /// Returns the copy and the removed pairs. Σ/Γ are untouched, so the
    /// cached compiled program is carried over.
    #[must_use]
    pub fn with_answer_withdrawn(
        &self,
        attr: AttrId,
        tuple: TupleId,
    ) -> (Specification, Vec<(TupleId, TupleId)>) {
        let mut out = self.clone();
        let removed = out.orders.remove_pairs_above(attr, tuple);
        out.entity.replace_value(tuple, attr, Value::Null);
        (out, removed)
    }

    /// A copy with `gamma[cfd]` removed — the spec-level effect of an
    /// upstream *CFD retraction*. Γ changes, so the cached compiled program
    /// is cleared (the from-scratch mirror of a revision differential
    /// recompiles; the incremental engine never consults the program for a
    /// retired CFD and keeps its own Γ indexing intact instead — see
    /// [`crate::ingest`]).
    #[must_use]
    pub fn without_cfd(&self, cfd: usize) -> Specification {
        let mut out = self.clone();
        out.gamma.remove(cfd);
        out.program = OnceLock::new();
        out
    }

    /// Returns a copy keeping only the first `frac·|Σ|` currency constraints
    /// and `frac·|Γ|` CFDs after a seeded shuffle — the constraint
    /// subsampling used when varying `|Σ|` and `|Γ|` in Fig. 8(f)–(p).
    #[must_use]
    pub fn with_constraint_fraction(
        &self,
        sigma_frac: f64,
        gamma_frac: f64,
        seed: u64,
    ) -> Specification {
        let mut out = self.clone();
        out.sigma = sample(&self.sigma, sigma_frac, seed);
        out.gamma = sample(&self.gamma, gamma_frac, seed.wrapping_add(1));
        // Σ/Γ changed: the cached compiled program no longer applies.
        out.program = OnceLock::new();
        out
    }
}

/// Deterministic subsample of `frac·len` items using a SplitMix64 shuffle.
fn sample<T: Clone>(items: &[T], frac: f64, seed: u64) -> Vec<T> {
    let keep = ((items.len() as f64) * frac.clamp(0.0, 1.0)).round() as usize;
    if keep >= items.len() {
        return items.to_vec();
    }
    let mut idx: Vec<usize> = (0..items.len()).collect();
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    // Fisher–Yates.
    for i in (1..idx.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx.truncate(keep);
    idx.sort_unstable();
    idx.into_iter().map(|i| items[i].clone()).collect()
}

/// True values supplied by a user for a subset of attributes (the `V` of
/// Section III). Values may be outside the active domain ("new values").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UserInput {
    /// Attribute → asserted most-current value.
    pub values: BTreeMap<AttrId, Value>,
}

impl UserInput {
    /// Empty input (the user declined to answer).
    pub fn empty() -> Self {
        UserInput::default()
    }

    /// Input with one answered attribute.
    pub fn single(attr: AttrId, value: Value) -> Self {
        let mut values = BTreeMap::new();
        values.insert(attr, value);
        UserInput { values }
    }

    /// True iff the user answered nothing.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_types::{Schema, Tuple};

    fn spec() -> Specification {
        let s = Schema::new("r", ["a", "b"]).unwrap();
        let e = EntityInstance::new(
            s,
            vec![
                Tuple::of([Value::int(1), Value::str("x")]),
                Tuple::of([Value::int(2), Value::str("y")]),
            ],
        )
        .unwrap();
        Specification::without_orders(e, vec![], vec![])
    }

    #[test]
    fn user_input_appends_ranked_tuple() {
        let sp = spec();
        let input = UserInput::single(AttrId(1), Value::str("z"));
        let (ext, to, added) = sp.apply_user_input(&input);
        assert_eq!(ext.entity().len(), 3);
        assert_eq!(to, TupleId(2));
        assert_eq!(added, 2); // above both existing tuples on attr b
        assert!(ext.entity().tuple(to).get(AttrId(0)).is_null());
        assert_eq!(ext.entity().tuple(to).get(AttrId(1)), &Value::str("z"));
        assert_eq!(ext.orders().size(), 2);
        // Original untouched.
        assert_eq!(sp.entity().len(), 2);
    }

    #[test]
    fn extend_with_orders_merges() {
        let sp = spec();
        let mut ot = PartialOrders::empty(2);
        ot.add(AttrId(0), TupleId(0), TupleId(1));
        let ext = sp.extend_with_orders(&ot);
        assert_eq!(ext.orders().size(), 1);
        assert_eq!(sp.orders().size(), 0);
    }

    #[test]
    fn constraint_sampling_is_deterministic_and_sized() {
        let s = Schema::new("r", ["a", "b"]).unwrap();
        let e = EntityInstance::new(s.clone(), vec![Tuple::of([Value::int(1), Value::int(2)])])
            .unwrap();
        let sigma: Vec<_> = (0..10)
            .map(|i| {
                cr_constraints::CurrencyConstraintBuilder::new(&s, "a")
                    .unwrap()
                    .t1_cmp_const("a", cr_constraints::CompOp::Eq, i as i64)
                    .unwrap()
                    .build()
                    .unwrap()
            })
            .collect();
        let sp = Specification::without_orders(e, sigma, vec![]);
        let half = sp.with_constraint_fraction(0.5, 1.0, 7);
        assert_eq!(half.sigma().len(), 5);
        let again = sp.with_constraint_fraction(0.5, 1.0, 7);
        let names: Vec<_> = half.sigma().iter().map(|c| c.to_string()).collect();
        let names2: Vec<_> = again.sigma().iter().map(|c| c.to_string()).collect();
        assert_eq!(names, names2);
        let full = sp.with_constraint_fraction(1.0, 1.0, 7);
        assert_eq!(full.sigma().len(), 10);
    }
}
