/root/repo/target/debug/deps/fig8b_deduce-4d6af13f6ee85ea0.d: crates/cr-bench/src/bin/fig8b_deduce.rs

/root/repo/target/debug/deps/fig8b_deduce-4d6af13f6ee85ea0: crates/cr-bench/src/bin/fig8b_deduce.rs

crates/cr-bench/src/bin/fig8b_deduce.rs:
