//! Per-tenant admission control: token buckets, bounded queues, and the
//! global in-flight budget.
//!
//! Admission is decided entirely at **submit** time, in deterministic
//! logical ticks: the tenant's token bucket must cover the request's cost
//! (cold sessions cost extra — they will pay a rehydration) and the
//! tenant's bounded queue must have room. Either failure sheds the
//! request with a typed `Overloaded { retry_after }` instead of queueing
//! it unboundedly — overload degrades into *fast, honest rejections*, and
//! the retry-after hint is computed from the bucket's actual refill rate
//! so well-behaved clients converge on the sustainable rate.
//!
//! Fairness is the dispatcher's job (`crate::server`): queues drain
//! round-robin, one request per tenant per turn, under a global in-flight
//! cap — a hot tenant can fill *its own* queue and nothing else.

/// Admission-control knobs. All rates and costs are in logical ticks and
/// abstract tokens — the serving harness advances time explicitly.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Tokens added to each tenant's bucket per tick (sustained rate).
    pub refill_per_tick: u64,
    /// Bucket capacity (burst allowance).
    pub burst: u64,
    /// Token cost of admitting one request for a live session.
    pub cost: u64,
    /// Extra tokens charged when the target session is cold (the touch
    /// will pay a rehydration; see `SessionStore::admission_probe`).
    pub cold_cost: u64,
    /// Bound on each tenant's queue; a submit that finds it full is shed.
    pub queue_cap: usize,
    /// Global bound on requests dispatched per [`crate::Server::dispatch`]
    /// call — the in-flight budget the round-robin scheduler divides
    /// fairly across tenants.
    pub max_in_flight: usize,
    /// Deadline stamped on requests whose envelope carries none, in ticks
    /// from submission.
    pub default_deadline: u64,
    /// Budget ticks charged per engine phase of a multi-phase read (see
    /// `cr_core::deadline::PhaseDeadline`).
    pub cost_per_phase: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            refill_per_tick: 2,
            burst: 16,
            cost: 1,
            cold_cost: 2,
            queue_cap: 32,
            max_in_flight: 8,
            default_deadline: 64,
            cost_per_phase: 1,
        }
    }
}

/// A deterministic token bucket refilled by tick arithmetic (no wall
/// clock): `tokens = min(burst, tokens + refill_per_tick · elapsed)`.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    tokens: u64,
    last_tick: u64,
}

impl TokenBucket {
    /// A bucket born full (burst available immediately) at tick `now`.
    pub fn full(cfg: &AdmissionConfig, now: u64) -> Self {
        TokenBucket { tokens: cfg.burst, last_tick: now }
    }

    /// Refills for the ticks elapsed since the last interaction.
    fn refill(&mut self, cfg: &AdmissionConfig, now: u64) {
        let elapsed = now.saturating_sub(self.last_tick);
        self.last_tick = self.last_tick.max(now);
        self.tokens = self
            .tokens
            .saturating_add(elapsed.saturating_mul(cfg.refill_per_tick))
            .min(cfg.burst);
    }

    /// Tries to spend `cost` tokens at tick `now`. On failure returns the
    /// minimum ticks until the bucket could cover the cost — the
    /// `retry_after` hint carried by `Overloaded`.
    pub fn try_spend(&mut self, cfg: &AdmissionConfig, now: u64, cost: u64) -> Result<(), u64> {
        self.refill(cfg, now);
        if self.tokens >= cost {
            self.tokens -= cost;
            return Ok(());
        }
        let deficit = cost - self.tokens;
        let rate = cfg.refill_per_tick.max(1);
        Err(deficit.div_ceil(rate))
    }

    /// Tokens currently available (after a refill to `now`).
    pub fn available(&mut self, cfg: &AdmissionConfig, now: u64) -> u64 {
        self.refill(cfg, now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig { refill_per_tick: 2, burst: 10, ..AdmissionConfig::default() }
    }

    #[test]
    fn burst_then_sustained_rate() {
        let cfg = cfg();
        let mut b = TokenBucket::full(&cfg, 0);
        // The burst admits 10 requests at tick 0.
        for _ in 0..10 {
            assert!(b.try_spend(&cfg, 0, 1).is_ok());
        }
        // The 11th is shed with an honest retry-after: 1 token needs
        // ceil(1/2) = 1 tick.
        assert_eq!(b.try_spend(&cfg, 0, 1), Err(1));
        // After that tick, exactly the refilled tokens are available.
        assert!(b.try_spend(&cfg, 1, 2).is_ok());
        assert_eq!(b.try_spend(&cfg, 1, 1), Err(1));
    }

    #[test]
    fn retry_after_scales_with_cost() {
        let cfg = cfg();
        let mut b = TokenBucket::full(&cfg, 0);
        assert!(b.try_spend(&cfg, 0, 10).is_ok());
        // A cold request costing 7 needs ceil(7/2) = 4 ticks.
        assert_eq!(b.try_spend(&cfg, 0, 7), Err(4));
    }

    #[test]
    fn refill_caps_at_burst() {
        let cfg = cfg();
        let mut b = TokenBucket::full(&cfg, 0);
        assert!(b.try_spend(&cfg, 0, 10).is_ok());
        assert_eq!(b.available(&cfg, 1_000_000), cfg.burst);
    }

    #[test]
    fn time_never_runs_backwards() {
        let cfg = cfg();
        let mut b = TokenBucket::full(&cfg, 100);
        assert!(b.try_spend(&cfg, 100, 10).is_ok());
        // A stale tick neither refills nor panics.
        assert_eq!(b.available(&cfg, 50), 0);
        assert_eq!(b.available(&cfg, 101), 2);
    }
}
