//! Criterion bench for the dataset-compiled constraint program: one-time
//! `CompiledProgram::compile` cost, per-entity Ω(Se) projection through the
//! compiled program, the pre-compilation per-entity reference
//! instantiation, and the full lazy encode the projection feeds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cr_core::{CompiledProgram, EncodeOptions, EncodedSpec};
use cr_data::gen::ScenarioConfig;
use cr_data::person;

fn bench_compile_program(c: &mut Criterion) {
    let person_ds = person::generate_with_sizes(&[200], 7);
    let wide = cr_data::gen::scenario(&ScenarioConfig {
        seed: 7,
        attrs: 5,
        tuples: 60,
        domain: 48,
        conflict_density: 1.0,
        null_density: 0.02,
        sigma: 8,
        gamma: 3,
        order_density: 0.1,
        new_value_answers: false,
    });
    let cases = [
        ("person/200", person_ds.spec(0)),
        ("wide/60x48", wide.spec),
    ];

    let mut group = c.benchmark_group("compile_program");
    for (label, spec) in &cases {
        // One-time per-dataset compilation (amortised over every entity).
        group.bench_with_input(BenchmarkId::new("compile", *label), spec, |b, spec| {
            b.iter(|| {
                black_box(CompiledProgram::compile(
                    black_box(spec.sigma()),
                    black_box(spec.gamma()),
                    None,
                ))
            })
        });
        // Per-entity Ω(Se): compiled projection vs the old per-entity path.
        group.bench_with_input(BenchmarkId::new("omega/compiled", *label), spec, |b, spec| {
            b.iter(|| black_box(cr_core::encode::omega_compiled(black_box(spec))))
        });
        group.bench_with_input(BenchmarkId::new("omega/reference", *label), spec, |b, spec| {
            b.iter(|| black_box(cr_core::encode::omega_reference(black_box(spec))))
        });
        // The round-0 encode the projection feeds (engine default: lazy).
        group.bench_with_input(BenchmarkId::new("encode/lazy", *label), spec, |b, spec| {
            b.iter(|| black_box(EncodedSpec::encode_with(black_box(spec), EncodeOptions::lazy())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile_program);
criterion_main!(benches);
