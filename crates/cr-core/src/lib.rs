//! Conflict resolution by inferring data currency and consistency.
//!
//! This crate implements the model, algorithms and framework of
//! *"Inferring Data Currency and Consistency for Conflict Resolution"*
//! (Fan, Geerts, Tang, Yu — ICDE 2013):
//!
//! * [`spec`] — specifications `Se = (It, Σ, Γ)`: an entity instance with
//!   partial currency orders, currency constraints and constant CFDs
//!   (Section II);
//! * [`encode`] — the `Instantiation`/`ConvertToCNF` reduction of a
//!   specification to a CNF `Φ(Se)` over value-order variables `x^A_{a1,a2}`
//!   (Section V-A);
//! * [`isvalid`] — `IsValid`, validity checking via the CDCL solver;
//! * [`deduce`] — `DeduceOrder` (unit-propagation heuristic, Fig. 5) and
//!   `NaiveDeduce` (complete, repeated SAT probes) for deriving implied
//!   currency orders (Section V-B);
//! * [`truevalue`] — true-value extraction from deduced orders, plus the
//!   exact SAT-based possible-current-value analysis;
//! * [`rules`], [`compat`], [`suggest`](mod@suggest) — `TrueDer`, compatibility graphs,
//!   `MaxClique` + `MaxSat`-repair and suggestion generation (Section V-C);
//! * [`framework`] — the interactive loop of Fig. 4 with pluggable user
//!   oracles;
//! * [`sched`] — the sharded work-stealing scheduler behind dataset-wide
//!   parallel resolution, with streaming backpressure and telemetry;
//! * [`implication`] — the `Se |= Ot` decision procedure (Section IV) and
//!   minimal-core explanations for invalid specifications;
//! * [`pick`] — the traditional `Pick` baseline used in the evaluation;
//! * [`metrics`] — precision / recall / F-measure accounting (Section VI);
//! * [`bruteforce`] — a reference implementation that enumerates all
//!   value-level completions of small specifications, used to validate the
//!   encoder and the deduction algorithms.

pub mod bruteforce;
pub mod causal;
pub mod compat;
pub mod deadline;
pub mod deduce;
pub mod encode;
pub mod framework;
pub mod implication;
pub mod ingest;
pub mod isvalid;
pub mod metrics;
pub mod orders;
pub mod pick;
pub mod rules;
pub mod sched;
pub mod spec;
pub mod suggest;
pub mod truevalue;

pub use deduce::{
    deduce_order, deduce_order_from, deduce_order_recording, naive_deduce, naive_deduce_fresh,
    naive_deduce_recording, naive_deduce_with, DeducedOrders,
};
pub use encode::{
    compile_count, AxiomMode, CompiledProgram, EncodeOptions, EncodedSpec, ExtendOutcome,
    RecordingAxiomSource, TransientAxiomSource,
};
pub use deadline::{DeadlineExceeded, PhaseDeadline};
pub use framework::{ResolutionConfig, ResolutionOutcome, Resolver, RoundReport};
pub use causal::{
    resolve_causal_checked, CausalCheckedReplay, CausalFrontier, CausalReplayConfig,
    CausalRevision, CausalRevisionSource, FrontierState, ScriptedCausalRevisions,
};
pub use ingest::{
    check_session_against_scratch, diff_logical_states, resolve_with_revisions_checked,
    AnswerState, BatchReport, CheckedReplay, CompetingCell, ResolutionSession, Revision,
    RevisionError, RevisionPolicy, RevisionSource, RevisionTelemetry, ScriptedRevisions,
    SessionState, SpecMirror, DEFAULT_QUARANTINE_CAP,
};
pub use implication::{explain_invalidity, implies, ConflictPart};
pub use isvalid::{is_valid, is_valid_encoded, Validity};
pub use metrics::{Accuracy, FMeasure};
pub use orders::PartialOrders;
pub use pick::pick_baseline;
pub use sched::{
    resolve_batch, resolve_stream, BoundedQueue, Placement, SchedTelemetry, SchedulerConfig,
};
pub use spec::{Specification, UserInput};
pub use suggest::{suggest, suggest_with_engine, suggest_with_solver, Suggestion};
pub use truevalue::{
    exact_true_values, possible_current_values, true_values_from_orders, TrueValues,
};
