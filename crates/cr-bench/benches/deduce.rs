//! Criterion bench for Fig. 8(b): `DeduceOrder` (unit propagation) vs
//! `NaiveDeduce` (per-variable SAT probes) on the same encoded specs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cr_core::encode::EncodedSpec;
use cr_core::{deduce_order, naive_deduce};
use cr_data::{nba, person};

fn bench_deduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("deduce");
    group.sample_size(15);

    for size in [27usize, 135] {
        let ds = nba::generate_with_sizes(&[size], 7);
        let enc = EncodedSpec::encode(&ds.spec(0));
        group.bench_with_input(BenchmarkId::new("nba/DeduceOrder", size), &enc, |b, enc| {
            b.iter(|| black_box(deduce_order(black_box(enc))))
        });
        group.bench_with_input(BenchmarkId::new("nba/NaiveDeduce", size), &enc, |b, enc| {
            b.iter(|| black_box(naive_deduce(black_box(enc))))
        });
    }

    for size in [200usize, 1000] {
        let ds = person::generate_with_sizes(&[size], 7);
        let enc = EncodedSpec::encode(&ds.spec(0));
        group.bench_with_input(
            BenchmarkId::new("person/DeduceOrder", size),
            &enc,
            |b, enc| b.iter(|| black_box(deduce_order(black_box(enc)))),
        );
        group.bench_with_input(
            BenchmarkId::new("person/NaiveDeduce", size),
            &enc,
            |b, enc| b.iter(|| black_box(naive_deduce(black_box(enc)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_deduction);
criterion_main!(benches);
