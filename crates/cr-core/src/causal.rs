//! Causal delivery for correction streams: the frontier that turns an
//! adversarial event stream (out-of-order, duplicated, delayed, partly
//! corrupt) into the in-order, exactly-once stream the revision engine
//! consumes, plus the checked causal resolution harness.
//!
//! The delivery rule is Birman–Schiper–Stephenson causal ordering over the
//! per-source vector clocks of [`cr_types::CausalStamp`]: an event from
//! source `s` with sequence number `n` is deliverable once `n-1` events
//! from `s` have been delivered and every cross-source dependency recorded
//! in its vector clock has been delivered too; everything else buffers.
//! Redelivered events are dropped by their `(source, hlc)` identity.
//!
//! Concurrent value corrections to the same cell form *branches*; the
//! frontier keeps a per-cell write log and the session applies the
//! last-writer-wins pick (HLC, then source id) over the causally-maximal
//! **branch tips**. Because the tip set and the LWW pick are functions of
//! the delivered event *set*, the final cell state is independent of
//! delivery order — the property the convergence differentials
//! ([`resolve_causal_checked`] under `cr_data`'s chaos adapter) verify
//! end-to-end against scratch re-resolution.

use std::collections::{BTreeMap, BTreeSet};

use cr_types::{AttrId, CausalStamp, Hlc, SourceId, TupleId, Value};
use cr_types::VectorClock;

use crate::framework::{ResolutionConfig, RoundReport, UserOracle};
use crate::ingest::{
    check_session_against_scratch, ResolutionSession, Revision, RevisionError, RevisionPolicy,
    RevisionTelemetry, SpecMirror,
};
use crate::spec::Specification;
use crate::truevalue::TrueValues;

/// One causally-stamped upstream correction.
#[derive(Clone, Debug, PartialEq)]
pub struct CausalRevision {
    /// Who asserted it, when, and with what causal knowledge.
    pub stamp: CausalStamp,
    /// The correction itself.
    pub rev: Revision,
}

/// A push stream of causally-stamped corrections. Unlike
/// [`crate::ingest::RevisionSource`], the stream also reports how many
/// events it still holds, so drivers know when draining is complete (the
/// frontier may additionally hold buffered events — see
/// [`CausalFrontier::pending`]).
pub trait CausalRevisionSource {
    /// The events that arrived before interaction round `round`.
    fn poll(&mut self, round: usize, current: &Specification) -> Vec<CausalRevision>;
    /// Events not yet handed out by `poll`.
    fn remaining(&self) -> usize;
}

/// A [`CausalRevisionSource`] replaying a fixed timeline of
/// `(round, event)` entries — the canonical-order delivery the chaos
/// adapter's permutations are compared against.
#[derive(Clone, Debug, Default)]
pub struct ScriptedCausalRevisions {
    events: Vec<(usize, CausalRevision)>,
}

impl ScriptedCausalRevisions {
    /// A scripted stream from `(round, event)` pairs (stable-sorted by
    /// round, so within-round generation order is preserved).
    pub fn new(mut events: Vec<(usize, CausalRevision)>) -> Self {
        events.sort_by_key(|(round, _)| *round);
        ScriptedCausalRevisions { events }
    }

    /// Events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }
}

impl CausalRevisionSource for ScriptedCausalRevisions {
    fn poll(&mut self, round: usize, _current: &Specification) -> Vec<CausalRevision> {
        let mut due = Vec::new();
        self.events.retain(|(r, e)| {
            if *r <= round {
                due.push(e.clone());
                false
            } else {
                true
            }
        });
        due
    }

    fn remaining(&self) -> usize {
        self.events.len()
    }
}

/// One cell's log of applied value corrections, in stamp order.
pub type StampedWrites = Vec<(CausalStamp, Value)>;

/// A plain-data snapshot of a [`CausalFrontier`], used by the durable
/// session log (`cr-store`) to persist and restore delivery state.
/// [`CausalFrontier::state`] and [`CausalFrontier::from_state`] roundtrip
/// exactly (`from_state(f.state()) == f`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FrontierState {
    /// Highest delivered sequence number per source.
    pub delivered: Vec<(SourceId, u64)>,
    /// Out-of-order events still waiting for their causal predecessors.
    pub buffered: Vec<CausalRevision>,
    /// `(source, hlc)` identities already seen (delivered *or* buffered).
    pub seen: Vec<(SourceId, Hlc)>,
    /// Per-cell logs of applied value corrections.
    pub writes: Vec<(TupleId, AttrId, StampedWrites)>,
    /// Redelivered events dropped (cumulative).
    pub duplicates: u64,
    /// Events buffered on arrival (cumulative).
    pub buffered_total: u64,
    /// Concurrent disagreeing writes observed (cumulative).
    pub concurrent_conflicts: u64,
}

/// The session's causal delivery state: per-source delivered watermarks,
/// out-of-order buffers, the redelivery dedup set, and the per-cell write
/// log concurrent corrections resolve through.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CausalFrontier {
    /// Highest delivered sequence number per source.
    delivered: BTreeMap<SourceId, u64>,
    /// Out-of-order events waiting for their causal predecessors, keyed by
    /// per-source sequence number.
    buffers: BTreeMap<SourceId, BTreeMap<u64, CausalRevision>>,
    /// `(source, hlc)` identities already seen (delivered *or* buffered).
    seen: BTreeSet<(SourceId, Hlc)>,
    /// Per-cell log of applied value corrections.
    writes: BTreeMap<(TupleId, AttrId), Vec<(CausalStamp, Value)>>,
    duplicates: usize,
    buffered: usize,
    concurrent_conflicts: usize,
}

impl CausalFrontier {
    /// An empty frontier (nothing delivered, nothing buffered).
    pub fn new() -> Self {
        CausalFrontier::default()
    }

    /// Feeds a batch of arrivals through dedup and causal gating; returns
    /// the events now deliverable (the batch's admissible ones plus any
    /// previously-buffered events they unblock), in causal order.
    pub fn ingest(&mut self, events: Vec<CausalRevision>) -> Vec<CausalRevision> {
        let mut released = Vec::new();
        for ev in events {
            if !self.seen.insert(ev.stamp.dedup_key()) {
                self.duplicates += 1;
                continue;
            }
            if self.deliverable(&ev.stamp) {
                self.mark_delivered(&ev.stamp);
                released.push(ev);
                self.drain_buffers(&mut released);
            } else {
                self.buffered += 1;
                self.buffers
                    .entry(ev.stamp.source)
                    .or_default()
                    .insert(ev.stamp.seq(), ev);
            }
        }
        released
    }

    /// True iff the stamped event's causal predecessors have all been
    /// delivered. A malformed stamp (sequence number 0) carries no
    /// expressible constraints and is deliverable immediately — validation
    /// downstream decides its fate. A sequence number at or below the
    /// delivered watermark is also released immediately (a stale
    /// re-emission; the apply path degrades it).
    fn deliverable(&self, stamp: &CausalStamp) -> bool {
        let seq = stamp.seq();
        if seq == 0 {
            return true;
        }
        let delivered = self.delivered.get(&stamp.source).copied().unwrap_or(0);
        if seq <= delivered {
            return true;
        }
        if delivered + 1 != seq {
            return false;
        }
        stamp
            .vclock
            .iter()
            .all(|(s, n)| s == stamp.source || self.delivered.get(&s).copied().unwrap_or(0) >= n)
    }

    fn mark_delivered(&mut self, stamp: &CausalStamp) {
        let seq = stamp.seq();
        if seq > 0 {
            let e = self.delivered.entry(stamp.source).or_insert(0);
            *e = (*e).max(seq);
        }
    }

    /// Releases buffered events to a fixpoint: each delivery may unblock
    /// further buffered events (same source's successor, or another
    /// source's cross-dependency).
    fn drain_buffers(&mut self, out: &mut Vec<CausalRevision>) {
        loop {
            let mut next: Option<(SourceId, u64)> = None;
            'scan: for (source, buf) in &self.buffers {
                for (seq, ev) in buf {
                    if self.deliverable(&ev.stamp) {
                        next = Some((*source, *seq));
                        break 'scan;
                    }
                }
            }
            let Some((source, seq)) = next else { break };
            let buf = self.buffers.get_mut(&source).expect("scanned entry exists");
            let ev = buf.remove(&seq).expect("scanned entry exists");
            if buf.is_empty() {
                self.buffers.remove(&source);
            }
            self.mark_delivered(&ev.stamp);
            out.push(ev);
        }
    }

    /// Events currently buffered (arrived, not yet causally deliverable).
    pub fn pending(&self) -> usize {
        self.buffers.values().map(|b| b.len()).sum()
    }

    /// Redelivered events dropped so far.
    pub fn duplicates_dropped(&self) -> usize {
        self.duplicates
    }

    /// Events that had to be buffered on arrival (cumulative).
    pub fn buffered_events(&self) -> usize {
        self.buffered
    }

    /// Causally-concurrent disagreeing writes observed on some cell
    /// (cumulative) — the conflicts a user interface would surface.
    pub fn concurrent_conflicts(&self) -> usize {
        self.concurrent_conflicts
    }

    /// The delivered watermark as a vector clock — the causal knowledge a
    /// locally-produced event (a user answer) is stamped with.
    pub fn delivered_vector(&self) -> VectorClock {
        let mut v = VectorClock::new();
        for (&s, &n) in &self.delivered {
            v.observe(s, n);
        }
        v
    }

    /// Records a delivered value correction in the cell's write log and
    /// returns the cell's canonical value: the last-writer-wins pick (HLC,
    /// then source id) over the causally-maximal branch tips. Both the tip
    /// set and the pick depend only on the accumulated write *set*, so the
    /// canonical value is independent of delivery order.
    pub fn record_write(
        &mut self,
        tuple: TupleId,
        attr: AttrId,
        stamp: &CausalStamp,
        value: &Value,
    ) -> Value {
        let log = self.writes.entry((tuple, attr)).or_default();
        self.concurrent_conflicts += log
            .iter()
            .filter(|(other, v)| other.concurrent_with(stamp) && v != value)
            .count();
        log.push((stamp.clone(), value.clone()));
        Self::tips_of(log)
            .into_iter()
            .max_by_key(|(s, _)| s.lww_key())
            .map(|(_, v)| v.clone())
            .expect("write log is non-empty")
    }

    /// The causally-maximal writes recorded for `(tuple, attr)`: every
    /// entry no *other* write causally observed. Empty if the cell was
    /// never corrected.
    pub fn branch_tips(&self, tuple: TupleId, attr: AttrId) -> Vec<(&CausalStamp, &Value)> {
        match self.writes.get(&(tuple, attr)) {
            Some(log) => Self::tips_of(log),
            None => Vec::new(),
        }
    }

    fn tips_of(log: &[(CausalStamp, Value)]) -> Vec<(&CausalStamp, &Value)> {
        let mut tips = Vec::new();
        for (i, (stamp, value)) in log.iter().enumerate() {
            let dominated = log
                .iter()
                .enumerate()
                .any(|(j, (other, _))| j != i && other.saw(stamp));
            if !dominated {
                tips.push((stamp, value));
            }
        }
        tips
    }

    /// Snapshots the full delivery state as plain data (for persistence).
    pub fn state(&self) -> FrontierState {
        FrontierState {
            delivered: self.delivered.iter().map(|(&s, &n)| (s, n)).collect(),
            buffered: self
                .buffers
                .values()
                .flat_map(|b| b.values().cloned())
                .collect(),
            seen: self.seen.iter().copied().collect(),
            writes: self
                .writes
                .iter()
                .map(|(&(t, a), log)| (t, a, log.clone()))
                .collect(),
            duplicates: self.duplicates as u64,
            buffered_total: self.buffered as u64,
            concurrent_conflicts: self.concurrent_conflicts as u64,
        }
    }

    /// Rebuilds a frontier from a snapshot. Inverse of
    /// [`CausalFrontier::state`]: `from_state(f.state()) == f`.
    pub fn from_state(state: FrontierState) -> Self {
        let mut f = CausalFrontier::new();
        for (s, n) in state.delivered {
            if n > 0 {
                f.delivered.insert(s, n);
            }
        }
        for ev in state.buffered {
            f.buffers
                .entry(ev.stamp.source)
                .or_default()
                .insert(ev.stamp.seq(), ev);
        }
        f.seen = state.seen.into_iter().collect();
        for (t, a, log) in state.writes {
            f.writes.insert((t, a), log);
        }
        f.duplicates = state.duplicates as usize;
        f.buffered = state.buffered_total as usize;
        f.concurrent_conflicts = state.concurrent_conflicts as usize;
        f
    }
}

/// How [`resolve_causal_checked`] drives the session.
#[derive(Clone, Copy, Debug)]
pub struct CausalReplayConfig {
    /// Degradation policy for events that fail validation.
    /// [`RevisionPolicy::Reject`] makes the harness strict (any bad event
    /// is a harness error); [`RevisionPolicy::Quarantine`] lets corrupt
    /// chaos events through into the quarantine log.
    pub policy: RevisionPolicy,
    /// When `false`, the user-interaction loop is held off until the
    /// stream is fully drained (source exhausted *and* frontier empty):
    /// the post-drain state is then a pure function of the event set, so
    /// *arbitrary* delivery schedules (cross-round delays included)
    /// converge. When `true`, interactions interleave with delivery —
    /// convergence then holds for schedule-preserving permutations
    /// (within-round reorder, duplicates), and late concurrent corrections
    /// exercise the re-open path.
    pub interact_while_streaming: bool,
    /// Maximum events per [`ResolutionSession::ingest_causal`] call: `0`
    /// feeds the whole poll as one batch (the production shape — one
    /// union-cone engine pass per poll), `1` feeds events one at a time
    /// (each a batch of one), `k` splits the poll into chunks of at most
    /// `k`. Soaks seed this to interleave batched and per-event
    /// ingestion; the delivered state must not depend on it.
    pub max_batch: usize,
}

impl Default for CausalReplayConfig {
    fn default() -> Self {
        CausalReplayConfig {
            policy: RevisionPolicy::Reject,
            interact_while_streaming: true,
            max_batch: 0,
        }
    }
}

/// Result of a checked causal replay (see [`resolve_causal_checked`]).
pub struct CausalCheckedReplay {
    /// Final resolution of the revision-driven session. All-`None` when
    /// the final specification is invalid: an invalid spec has no
    /// resolution, and reporting the last valid round's values would make
    /// `resolved` depend on delivery *timing* rather than on the delivered
    /// event set (breaking convergence comparisons between runs that go
    /// invalid at different points of their drains).
    pub resolved: TrueValues,
    /// True iff the final specification was valid.
    pub valid: bool,
    /// True iff all attributes resolved.
    pub complete: bool,
    /// Interaction rounds that involved the user.
    pub interactions: usize,
    /// Total driver rounds (delivery + interaction).
    pub rounds: usize,
    /// Per-round reports (zero durations — the checked harness measures
    /// nothing), carrying the revision deltas and the competing-candidate
    /// cells ([`RoundReport::competing`]) each round surfaced: the branch
    /// tips a caller presents instead of a bare re-open.
    pub round_reports: Vec<RoundReport>,
    /// Revision telemetry of the session (applied / duplicate-dropped /
    /// buffered / quarantined / reopened).
    pub revisions: RevisionTelemetry,
    /// Provenance-replay telemetry `(replays, invalidated, full resets)`.
    pub replay_stats: (usize, usize, usize),
    /// Engine rebuilds (always 0 on the revisable path — re-opening an
    /// attribute is retraction + replay, never a rebuild).
    pub rebuilds: usize,
    /// Engine-vs-scratch equivalence checks performed.
    pub checks: usize,
    /// The session's quarantine log (empty in clean runs).
    pub quarantined: Vec<(Revision, RevisionError)>,
}

/// Runs the Fig. 4 loop on a revisable [`ResolutionSession`] fed by a
/// causally-stamped stream, and after every effective revision batch
/// differentially verifies the replayed engine against a from-scratch
/// re-resolution of the mirrored post-revision specification.
///
/// Unlike [`crate::ingest::resolve_with_revisions_checked`], transient
/// invalidity does **not** end the run: a later delivery may withdraw the
/// offending constraint, so the loop skips deduction for that round and
/// keeps draining; it only concludes once the source is exhausted and the
/// frontier holds nothing undeliverable.
pub fn resolve_causal_checked(
    config: &ResolutionConfig,
    spec: &Specification,
    oracle: &mut dyn UserOracle,
    source: &mut dyn CausalRevisionSource,
    causal: &CausalReplayConfig,
) -> Result<CausalCheckedReplay, String> {
    let mut session = ResolutionSession::new_revisable(config, spec);
    session.set_revision_policy(causal.policy);
    let mut mirror = SpecMirror::new(spec);
    let mut interactions = 0;
    let mut checks = 0;
    let arity = spec.schema().arity();
    let mut last_values = TrueValues::new(vec![None; arity]);
    // Assigned on every loop iteration before any break.
    let mut valid;
    let mut round = 0;
    // Interaction budget plus slack for delayed deliveries: scripted and
    // chaos schedules bound their round assignments well below this.
    let cap = config.max_rounds + source.remaining() + 8;
    let mut round_reports: Vec<RoundReport> = Vec::new();
    loop {
        let events = source.poll(round, session.current());
        let telemetry_before = session.revision_telemetry();
        let effective = if causal.max_batch == 0 || events.len() <= causal.max_batch {
            session
                .ingest_causal(events)
                .map_err(|e| format!("causal revision rejected: {e}"))?
        } else {
            // Seeded batch split: the poll is fed in chunks of at most
            // `max_batch` events, interleaving batched and per-event
            // ingestion — the delivered state must be identical either way
            // (the scratch check below proves it).
            let mut effective = Vec::new();
            for chunk in events.chunks(causal.max_batch) {
                effective.extend(
                    session
                        .ingest_causal(chunk.to_vec())
                        .map_err(|e| format!("causal revision rejected: {e}"))?,
                );
            }
            effective
        };
        for rev in &effective {
            mirror.apply(rev);
        }
        if !effective.is_empty() {
            check_session_against_scratch(&mut session, &mirror)?;
            checks += 1;
        }
        {
            let after = session.revision_telemetry();
            let mut report = RoundReport::settled(
                round,
                std::time::Duration::ZERO,
                std::time::Duration::ZERO,
                0,
            );
            report.revision_events = after.events - telemetry_before.events;
            report.revision_invalidated = after.invalidated - telemetry_before.invalidated;
            report.revision_quarantined = after.quarantined - telemetry_before.quarantined;
            report.revision_coalesced =
                after.events_coalesced - telemetry_before.events_coalesced;
            report.revision_cone_union = after.cone_union - telemetry_before.cone_union;
            report.revision_replays_saved =
                after.replays_saved - telemetry_before.replays_saved;
            report.competing = session.take_competing();
            round_reports.push(report);
        }
        let streaming = source.remaining() > 0 || session.frontier().pending() > 0;
        valid = session.is_valid();
        if valid {
            let od = session
                .deduce(config.deduction)
                .expect("deduction cannot conflict on a valid specification");
            let values = session.true_values(&od);
            last_values = values.clone();
            if values.complete() && !streaming {
                break;
            }
            let may_interact = causal.interact_while_streaming || !streaming;
            if may_interact && !values.complete() && interactions < config.max_rounds {
                let sug = session.suggest(&od, &values);
                let input = oracle.provide(spec.schema(), &sug);
                if input.is_empty() {
                    if !streaming {
                        break;
                    }
                } else {
                    interactions += 1;
                    if let Some(r) = round_reports.last_mut() {
                        r.user_answers = input.values.len();
                    }
                    session.apply_input(&input);
                    mirror.apply_input(&input);
                }
            } else if !streaming {
                break; // interaction budget exhausted, stream drained
            }
        } else if !streaming {
            break; // invalid with nothing left that could cure it
        }
        round += 1;
        if round > cap {
            if streaming {
                return Err(format!(
                    "stream not drained after {round} rounds: {} undelivered, {} buffered",
                    source.remaining(),
                    session.frontier().pending()
                ));
            }
            break;
        }
    }

    // Final state check — covers runs that ended on an interaction round.
    check_session_against_scratch(&mut session, &mirror)?;
    checks += 1;

    Ok(CausalCheckedReplay {
        complete: valid && last_values.complete(),
        resolved: if valid { last_values } else { TrueValues::new(vec![None; arity]) },
        valid,
        interactions,
        rounds: round,
        round_reports,
        revisions: session.revision_telemetry(),
        replay_stats: session.replays(),
        rebuilds: session.rebuilds(),
        checks,
        quarantined: session.quarantined().to_vec(),
    })
}
