//! Push-based correction ingestion: streaming upstream revisions applied
//! mid-resolution.
//!
//! The Fig. 4 loop of the paper only ever *adds* user facts, so the
//! provenance-scoped retraction replay of the incremental engine runs with
//! empty cones on every end-to-end path (a fired CFD's attributes are
//! already settled and never re-asked). Real deployments also receive
//! **corrections**: upstream sources withdraw previously-trusted constant
//! CFDs and currency orders, or revise a reported value (cf. trust-mapping
//! revisions in Gatterbauer & Suciu and priority updates in Staworko &
//! Chomicki). This module makes those corrections first-class:
//!
//! * [`Revision`] — one upstream event: retract a CFD from Γ, withdraw a
//!   previously-asserted currency order or a whole user answer, or replace
//!   a tuple's attribute value;
//! * [`RevisionSource`] — a push stream of revisions polled between
//!   interaction rounds ([`ScriptedRevisions`] replays a fixed timeline);
//! * [`ResolutionSession`] — the round-persistent resolution engine
//!   (encoding + warm CDCL solver + root unit propagator), now stepwise
//!   drivable and able to absorb revisions **without rebuilding**: every
//!   event routes through guard-group retraction
//!   ([`EncodedSpec::retract_cfd`] / [`EncodedSpec::withdraw_order`] /
//!   [`EncodedSpec::replace_value`]), the unit propagator's
//!   provenance-scoped replay (which undoes exactly the retracted
//!   derivation cone — *non-empty* for a fired CFD or a load-bearing order
//!   — and rolls the lazy-instantiation cursor back by the invalidated
//!   prefix), and compiled-program-aware re-emission of the disturbed Σ/Γ
//!   clause groups;
//! * [`resolve_with_revisions_checked`] — the differential harness: drives
//!   a session against a revision stream and, after every revision batch,
//!   proves the replayed engine state equivalent to a **from-scratch
//!   re-resolution of the post-revision specification** (validity, deduced
//!   value orders and true values all compared on a fresh eager encoding of
//!   the [`SpecMirror`]).
//!
//! # Equivalence and value liveness
//!
//! A revision can shrink an attribute's active domain (the last occurrence
//! of a value is revised away). Dense variable tables never shrink —
//! instead the encoding *retires* the value (`cr_types::ValueInterner`
//! liveness): its order variables stay allocated but it drops out of every
//! query that quantifies over "the values of the attribute" (true-value
//! tops, suggestion candidates, CFD ωX premises, top-assumption probes).
//! Retired variables appear only in permanent order axioms and null-bottom
//! units, which cannot imply any literal over live variables at the root,
//! and any model over the live variables extends to the full variable set —
//! so validity, root implications over live pairs, and MaxSAT repairs all
//! coincide exactly with the from-scratch encoding of the revised
//! specification. That is what the checked differential asserts.
//!
//! CFD retraction keeps Γ's *indexing* intact on the session side (the
//! encoding flags the entry retired; `TrueDer` and extension skip it) so
//! the cached compiled program — keyed to the original Σ/Γ — stays valid
//! and nothing recompiles; the mirror's materialised specification drops
//! the CFD for real.
//!
//! # Causal correction streams
//!
//! Real correction sources are concurrent, duplicated, delayed and
//! sometimes wrong; [`crate::causal`] makes the session robust against all
//! four. Events arrive as [`CausalRevision`]s — a [`Revision`] tagged with a
//! `cr_types::CausalStamp` (source id, HLC timestamp, per-source vector
//! clock) — and route through [`ResolutionSession::ingest_causal`]:
//!
//! * a [`CausalFrontier`] deduplicates redelivery by `(source, hlc)`,
//!   buffers events whose causal predecessors have not arrived, and
//!   releases them in causal order (Birman–Schiper–Stephenson delivery);
//! * concurrent [`Revision::ReplaceValue`] writes to the same cell go into
//!   a per-cell write log; the applied value is the last-writer-wins pick
//!   over the causally-maximal **branch tips** (exposed via
//!   [`ResolutionSession::branch_tips`]), which makes the final cell state
//!   a function of the delivered event *set*, independent of arrival order;
//! * malformed events degrade per [`RevisionPolicy`]: rejected with a typed
//!   [`RevisionError`], quarantined into a per-session log, or silently
//!   counted — one bad event never poisons the stream (its stamp still
//!   advances the frontier, so later events from that source stay
//!   deliverable).
//!
//! # Re-opening a resolved attribute
//!
//! User answers are *local* events (source [`cr_types::SourceId::LOCAL`]):
//! remote corrections never causally observe them. When a correction to an
//! attribute's cell arrives that the accepted answer did not causally see
//! (the answer's recorded delivery frontier is behind the correction's
//! sequence number) and its asserted value contradicts the accepted one,
//! the two are causally concurrent and the session **re-opens** the
//! attribute: it withdraws the accepted answer (a
//! [`Revision::WithdrawAnswer`], retracting the answer-induced order cone —
//! non-empty whenever the answer was load-bearing), applies the correction,
//! and the interaction loop re-asks. Corrections the answer *did* see, and
//! concurrent corrections that agree (or assert null), leave the answer
//! standing — so whether the correction lands before or after the answer,
//! both delivery orders converge to the same final resolution.
//!
//! Re-opening composes with the value-liveness argument above unchanged:
//! withdrawing an answer only *removes* occurrences (the answer-induced
//! pairs retract, the answered cell reverts to null, the input tuple stays
//! null-padded), so a value whose last live occurrence was the withdrawn
//! cell is retired exactly as under any other revision — retired variables
//! appear only in permanent order axioms and null-bottom units and cannot
//! leak into the re-opened attribute's query surface. A later re-answer
//! re-activates values through the ordinary extension path, identical to a
//! fresh answer on a specification that never held the withdrawn one.
//!
//! # Batched ingestion and the union-cone equivalence
//!
//! A bursty upstream delivers many corrections per poll. Applying them
//! one at a time pays one propagator settle and one provenance replay
//! *per event*; the batch path ([`ResolutionSession::apply_revision_batch`],
//! the staged [`ResolutionSession::begin_batch`] API, and everything
//! routed through [`ResolutionSession::ingest_causal`]) pays them once
//! per batch. Events are validated and folded into the specification and
//! the encoding strictly in event order — identical checks, identical
//! quarantine decisions, identical spec mutations as the sequential
//! path, because every mid-stream decision (validation, the re-open
//! predicate, the write-log LWW pick) reads only spec-level state, never
//! the solver or the propagator. What is deferred to the seal is
//! exclusively the *engine* work: the per-event retraction cones are
//! collected into one deduplicated **union cone**, and the seal performs
//! a single `retract_groups(union)` + revived-value redelivery + solver
//! and propagator tail sync + guard-assumption refresh.
//!
//! Why one union replay is equivalent to N sequential replays: group
//! retraction is idempotent and order-independent — a clause group is
//! dead iff its guard's `¬g` unit is in the CNF, and the `¬g` units the
//! batch appends are exactly the union of the per-event retraction sets
//! (encoding mutations never retract a group twice, so the union is a
//! disjoint union). The propagator's provenance replay is a function of
//! *(synced clause set, retracted set)*: replaying the union once
//! invalidates exactly the union of the per-event cones, and the
//! re-derivation fixpoint over the final clause set is the same fixpoint
//! the sequential path reaches after its last event. One hazard is
//! specific to batching: a group can be freshly *emitted* by event `i`
//! and retracted by event `j > i` before any tail sync ran. The solver
//! side is safe unconditionally (the group's `¬g` unit travels in the
//! same tail); the propagator-side tail sync skips clauses whose group is
//! already inactive ([`EncodedSpec::is_group_active`]) so it never
//! ingests a live clause of a dead group.
//!
//! # Epoch-snapshot reads
//!
//! The session carries a monotone [`cr_types::Epoch`], sealed once per
//! committed mutation batch (an input round, a revision batch that
//! applied at least one event). The staged batch API
//! ([`ResolutionSession::begin_batch`] / [`ResolutionSession::batch_push`]
//! / [`ResolutionSession::seal_batch`]) captures a copy-on-write summary
//! of the *settled* outcome — validity, deduced orders, true values,
//! undrained competing cells — before opening the batch; while the batch
//! is mid-flight, `is_valid`, `deduce`, `true_values` and
//! `take_competing` answer from that sealed snapshot, so a reader never
//! observes a half-applied batch. Sealed reads are equivalent to
//! quiescent reads at the previous epoch by construction: the snapshot
//! *is* the quiescent answer, captured while the engine was settled, and
//! nothing mutates it afterwards. The atomic wrappers
//! (`apply_revision_batch`, `ingest_causal`) hold `&mut self` for the
//! whole batch — their intermediate states are unobservable, so they
//! skip the capture and pay nothing for it.

use std::collections::{BTreeMap, BTreeSet};

use cr_types::{AttrId, EntityInstance, Epoch, SourceId, Tuple, TupleId, Value, VectorClock};

use crate::causal::{CausalFrontier, CausalRevision, FrontierState};
use crate::deadline::{DeadlineExceeded, PhaseDeadline};
use crate::orders::PartialOrders;

use crate::deduce::{
    deduce_order, deduce_order_from, deduce_order_recording, naive_deduce_recording,
    naive_deduce_with, DeducedOrders,
};
use crate::encode::{EncodeOptions, EncodedSpec, ExtendOutcome, GroupId, RecordingAxiomSource};
use crate::framework::{DeductionMethod, ResolutionConfig, UserOracle};
use crate::spec::{Specification, UserInput};
use crate::suggest::{suggest_with_engine, Suggestion};
use crate::truevalue::{true_values_from_orders, TrueValues};

/// One upstream correction event.
#[derive(Clone, Debug, PartialEq)]
pub enum Revision {
    /// The source that asserted CFD `gamma[cfd]` withdrew it. The index
    /// refers to the *original* Γ of the specification the session was
    /// opened on (session-side indexing never shifts).
    RetractCfd {
        /// Index into the original Γ.
        cfd: usize,
    },
    /// A previously-asserted currency order `lo ≺_attr hi` is withdrawn —
    /// an initial base order of `It` or a single answer-induced pair.
    WithdrawOrder {
        /// The attribute whose order is revised.
        attr: AttrId,
        /// The formerly-less-current tuple.
        lo: TupleId,
        /// The formerly-more-current tuple.
        hi: TupleId,
    },
    /// A whole user answer is withdrawn: every order pair ranking `tuple`
    /// on top of `attr` goes, and the answered cell reverts to null (the
    /// input tuple itself remains, null-padded, exactly as a from-scratch
    /// specification that never received the answer on that attribute
    /// would look after `Se ⊕ Ot` with the remaining answers).
    WithdrawAnswer {
        /// The answered attribute being withdrawn.
        attr: AttrId,
        /// The user-input tuple carrying the answer.
        tuple: TupleId,
    },
    /// The upstream source corrected a reported cell: `(tuple, attr)` now
    /// carries `value` (possibly a brand-new value, possibly null).
    ReplaceValue {
        /// The revised tuple.
        tuple: TupleId,
        /// The revised attribute.
        attr: AttrId,
        /// The corrected value.
        value: Value,
    },
}

/// Why a revision could not be applied. Returned by
/// [`ResolutionSession::apply_revision`] instead of panicking; under
/// [`RevisionPolicy::Quarantine`] the `(revision, error)` pair lands in the
/// per-session quarantine log. An `Err` always means the session state is
/// untouched by the offending event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RevisionError {
    /// `RetractCfd` names an index outside the original Γ.
    UnknownCfd {
        /// The offending index.
        cfd: usize,
        /// `|Γ|` of the specification the session was opened on.
        gamma_len: usize,
    },
    /// `RetractCfd` names a CFD that was already retracted — a stale or
    /// duplicated withdrawal.
    StaleCfd {
        /// The already-retired index.
        cfd: usize,
    },
    /// The event names an attribute outside the schema.
    UnknownAttr {
        /// The offending attribute.
        attr: AttrId,
        /// The schema's arity.
        arity: usize,
    },
    /// The event names a tuple outside the current entity instance.
    UnknownTuple {
        /// The offending tuple id.
        tuple: TupleId,
        /// Tuples currently in the instance.
        len: usize,
    },
    /// `WithdrawOrder` names a pair the current order relation does not
    /// contain — never asserted, or already withdrawn.
    UnknownOrder {
        /// The attribute of the withdrawn pair.
        attr: AttrId,
        /// The formerly-less-current tuple.
        lo: TupleId,
        /// The formerly-more-current tuple.
        hi: TupleId,
    },
}

impl std::fmt::Display for RevisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RevisionError::UnknownCfd { cfd, gamma_len } => {
                write!(f, "unknown CFD index {cfd} (|Γ| = {gamma_len})")
            }
            RevisionError::StaleCfd { cfd } => {
                write!(f, "CFD {cfd} already retracted (stale/duplicate withdrawal)")
            }
            RevisionError::UnknownAttr { attr, arity } => {
                write!(f, "unknown attribute {attr:?} (arity {arity})")
            }
            RevisionError::UnknownTuple { tuple, len } => {
                write!(f, "unknown tuple {tuple:?} ({len} tuples in instance)")
            }
            RevisionError::UnknownOrder { attr, lo, hi } => {
                write!(f, "order {lo:?} ≺_{attr:?} {hi:?} not present (never asserted or already withdrawn)")
            }
        }
    }
}

impl std::error::Error for RevisionError {}

/// What to do with a revision that fails validation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RevisionPolicy {
    /// Propagate the [`RevisionError`] to the caller; the stream stops at
    /// the first bad event. The strict choice for differential harnesses.
    Reject,
    /// Log the `(revision, error)` pair in the per-session quarantine log
    /// ([`ResolutionSession::quarantined`]), count it, and keep going. The
    /// production default: one bad event never poisons the stream.
    #[default]
    Quarantine,
    /// Count the event as quarantined but keep no log — best-effort
    /// ingestion for memory-constrained deployments.
    BestEffort,
}

/// Default bound on the per-session quarantine log (see
/// [`ResolutionSession::set_quarantine_cap`]): a hostile stream of
/// malformed events grows the eviction *counter*, not session memory.
pub const DEFAULT_QUARANTINE_CAP: usize = 256;

/// A push stream of upstream corrections, polled by the resolution loop
/// between rounds. `current` is the specification the session presently
/// represents, letting sources target state that only exists mid-resolution
/// (e.g. the tuple id of an earlier answer).
pub trait RevisionSource {
    /// The events that arrived before interaction round `round`.
    fn poll(&mut self, round: usize, current: &Specification) -> Vec<Revision>;
}

/// A [`RevisionSource`] replaying a fixed timeline of `(round, event)`
/// entries (the seeded generators in `cr_data::gen` produce these).
#[derive(Clone, Debug, Default)]
pub struct ScriptedRevisions {
    events: Vec<(usize, Revision)>,
}

impl ScriptedRevisions {
    /// A scripted stream from `(round, event)` pairs (any order).
    pub fn new(mut events: Vec<(usize, Revision)>) -> Self {
        events.sort_by_key(|(round, _)| *round);
        ScriptedRevisions { events }
    }

    /// Events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }
}

impl RevisionSource for ScriptedRevisions {
    fn poll(&mut self, round: usize, _current: &Specification) -> Vec<Revision> {
        let mut due = Vec::new();
        self.events.retain(|(r, e)| {
            if *r <= round {
                due.push(e.clone());
                false
            } else {
                true
            }
        });
        due
    }
}

/// Revision telemetry of one resolution: how many events were absorbed and
/// what the provenance-scoped replay actually paid for them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RevisionTelemetry {
    /// Upstream events applied.
    pub events: usize,
    /// Clause groups the events retracted (stale CFD emissions, withdrawn
    /// order pairs, Σ groups disturbed by value revisions).
    pub retracted_groups: usize,
    /// Root literals invalidated by the replays — the *cone sizes*: the
    /// re-derivation work actually paid, versus resetting the fixpoint.
    pub invalidated: usize,
    /// Clauses appended while absorbing the events (retraction units plus
    /// compiled-program re-emissions).
    pub reemitted_clauses: usize,
    /// Redelivered events dropped by `(source, hlc)` dedup at the causal
    /// frontier (0 on non-causal streams).
    pub duplicates_dropped: usize,
    /// Events that arrived before their causal predecessors and had to be
    /// buffered at the frontier (each counted once, at buffering time; 0 on
    /// non-causal streams).
    pub buffered: usize,
    /// Events that failed validation and were quarantined (or best-effort
    /// dropped) per [`RevisionPolicy`].
    pub quarantined: usize,
    /// Resolved attributes re-opened because a late causally-concurrent
    /// correction contradicted the accepted answer.
    pub reopened: usize,
    /// Quarantined `(revision, error)` pairs evicted (oldest first) once
    /// the bounded quarantine log exceeded its cap
    /// ([`ResolutionSession::set_quarantine_cap`]) — a hostile stream can
    /// grow the *count*, never the memory.
    pub quarantine_evicted: usize,
    /// Revision batches sealed with at least one applied event (a
    /// per-event apply counts as a batch of one).
    pub batches: usize,
    /// Events that shared a multi-event batch's single settle + replay +
    /// re-emission pass: Σ of the applied sizes of every sealed batch
    /// with ≥ 2 applied events. 0 means ingestion never actually
    /// coalesced anything.
    pub events_coalesced: usize,
    /// Deduplicated union-cone sizes of multi-event batches: groups
    /// retracted in one pass where a sequential ingest would have spread
    /// them over per-event replays.
    pub cone_union: usize,
    /// Settle + provenance-replay passes saved by coalescing: Σ over
    /// multi-event batches of (applied events − 1).
    pub replays_saved: usize,
}

impl std::fmt::Display for RevisionTelemetry {
    /// One human-readable row per session, for soak and harness failure
    /// output — e.g.
    /// `revisions: 12 events in 5 batches (3 coalesced, 2 replays saved), cone 7/9 union, 4 clauses reemitted, dropped 1 dup, 0 buffered, 2 quarantined (1 evicted), 1 reopened`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "revisions: {} events in {} batches ({} coalesced, {} replays saved), \
             cone {}/{} union, {} clauses reemitted, dropped {} dup, {} buffered, \
             {} quarantined ({} evicted), {} reopened",
            self.events,
            self.batches,
            self.events_coalesced,
            self.replays_saved,
            self.invalidated,
            self.cone_union,
            self.reemitted_clauses,
            self.duplicates_dropped,
            self.buffered,
            self.quarantined,
            self.quarantine_evicted,
            self.reopened,
        )
    }
}

/// Competing concurrent candidates observed on one cell while ingesting
/// causally-stamped corrections — what a user interface should present
/// instead of a bare re-open. Candidates are the causally-maximal *branch
/// tips* of the cell's write log ([`CausalFrontier::branch_tips`]); when a
/// re-open fired, the withdrawn local answer rides along as a
/// [`SourceId::LOCAL`] candidate so the user can re-confirm it.
#[derive(Clone, Debug, PartialEq)]
pub struct CompetingCell {
    /// The contested tuple.
    pub tuple: TupleId,
    /// The contested attribute.
    pub attr: AttrId,
    /// True iff an accepted answer on this attribute was withdrawn because
    /// a causally-concurrent correction contradicted it.
    pub reopened: bool,
    /// The competing `(asserting source, value)` candidates, branch tips
    /// first, the withdrawn local answer (if any) last.
    pub candidates: Vec<(SourceId, Value)>,
}

/// Outcome of one sealed revision batch
/// ([`ResolutionSession::apply_revision_batch`] /
/// [`ResolutionSession::seal_batch`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// The epoch the seal advanced to (unchanged if nothing applied).
    pub epoch: Epoch,
    /// Events pushed into the batch (applied + degraded).
    pub events: usize,
    /// Events that applied (validated and folded into the session).
    pub applied: usize,
    /// Size of the deduplicated union retraction cone replayed at the
    /// seal. Structurally ≥ `max_member_cone`: every member cone is a
    /// subset of the union.
    pub union_cone: usize,
    /// Largest single-event retraction cone in the batch.
    pub max_member_cone: usize,
    /// Root literals invalidated by the single union replay.
    pub invalidated: usize,
}

/// Engine bookkeeping of one open revision batch: the deferred union
/// retraction cone plus the watermarks per-batch telemetry is computed
/// from at the seal.
struct BatchState {
    /// Deduplicated union of the groups retracted by the batch's events.
    union: BTreeSet<GroupId>,
    /// Largest single-event retraction cone staged so far.
    max_member: usize,
    /// Events pushed (applied + failed validation).
    pushed: usize,
    /// Events that applied (validated; spec + encoding mutated).
    applied: usize,
    /// CNF clause count at batch open (re-emission delta).
    clauses_before: usize,
    /// Propagator invalidation counter at batch open (cone-size delta).
    invalidated_before: usize,
}

/// The copy-on-write settled-outcome summary captured by
/// [`ResolutionSession::begin_batch`]; mid-flight snapshot reads answer
/// from it.
struct SealedOutcome {
    /// The epoch the summary was captured at.
    epoch: Epoch,
    /// Validity at the sealed epoch.
    valid: bool,
    /// Deduced orders at the sealed epoch (`None` iff invalid).
    orders: Option<DeducedOrders>,
    /// True values at the sealed epoch (`None` iff invalid).
    values: Option<TrueValues>,
    /// The undrained competing-cell buffer at the sealed epoch.
    competing: Vec<CompetingCell>,
}

/// Round-persistent state of the incremental resolution path: the extended
/// encoding plus the warm CDCL solver and root unit propagator kept in sync
/// with its CNF — the engine behind
/// [`Resolver::resolve`](crate::framework::Resolver::resolve), exposed as a
/// stepwise-drivable session so push-based correction ingestion (and its
/// differential harness) can interleave revisions with interaction rounds.
///
/// The solver and the propagator consume the CNF at different points, so
/// each carries its own watermark; lazily instantiated axioms recorded into
/// the CNF by one consumer (see [`RecordingAxiomSource`]) reach the other
/// through the ordinary tail sync.
pub struct ResolutionSession {
    config: ResolutionConfig,
    current: Specification,
    pub(crate) enc: EncodedSpec,
    pub(crate) solver: cr_sat::Solver,
    up: cr_sat::UnitPropagator,
    /// Clauses of `enc.cnf()` already in `solver`.
    pub(crate) synced_solver: usize,
    /// Clauses of `enc.cnf()` already in `up`.
    synced_up: usize,
    /// Engine rebuilds performed (legacy fallback path only).
    pub(crate) rebuilds: usize,
    /// Axioms recorded by encodings discarded in rebuilds.
    injected_carry: usize,
    revisions: RevisionTelemetry,
    /// Degradation policy for revisions that fail validation.
    policy: RevisionPolicy,
    /// `(revision, error)` pairs quarantined under
    /// [`RevisionPolicy::Quarantine`], bounded by `quarantine_cap`.
    quarantine: Vec<(Revision, RevisionError)>,
    /// Maximum `(revision, error)` pairs the quarantine log may hold;
    /// overflow evicts the oldest entries (counted in
    /// [`RevisionTelemetry::quarantine_evicted`]).
    quarantine_cap: usize,
    /// Competing-candidate cells observed since the last
    /// [`ResolutionSession::take_competing`] drain.
    competing: Vec<CompetingCell>,
    /// Causal delivery state (dedup, buffering, per-cell write log).
    frontier: CausalFrontier,
    /// Accepted answers per attribute, stamped with the causal frontier at
    /// answer time — what decides whether a late correction is concurrent
    /// with (and may re-open) an accepted answer.
    answers: BTreeMap<AttrId, AcceptedAnswer>,
    /// Monotone session version: advanced once per committed mutation
    /// batch (an absorbed input round, a sealed revision batch that
    /// applied at least one event).
    epoch: Epoch,
    /// Engine bookkeeping of the open revision batch, if any.
    batch: Option<BatchState>,
    /// Sealed-epoch snapshot mid-flight reads answer from; `Some` only
    /// between [`ResolutionSession::begin_batch`] and
    /// [`ResolutionSession::seal_batch`].
    sealed: Option<SealedOutcome>,
}

/// One accepted user answer, with the causal knowledge it was given under.
#[derive(Clone, Debug)]
struct AcceptedAnswer {
    /// The user-input tuple carrying the answer.
    tuple: TupleId,
    /// The accepted most-current value.
    value: Value,
    /// The frontier's delivered vector when the answer was accepted: the
    /// remote events the user had (transitively) seen. A correction with a
    /// sequence number beyond this vector is causally concurrent with the
    /// answer.
    deps: VectorClock,
}

impl ResolutionSession {
    /// Opens a session on `spec` with the ordinary interactive engine
    /// (guard-group CFDs unless the legacy rebuild fallback is forced; no
    /// revision support — no per-order guard variables are allocated).
    pub fn new(config: &ResolutionConfig, spec: &Specification) -> Self {
        Self::with_options(config, spec, Self::engine_options(config))
    }

    /// The [`EncodeOptions`] the ordinary interactive engine encodes with:
    /// guarded CFD groups are what make every user answer a pure
    /// extension; the debug flag restores the unguarded legacy encoding
    /// whose out-of-domain answers rebuild. The scheduler's split tasks
    /// pre-encode with exactly these options so the session they feed is
    /// byte-identical to one the engine would have built itself.
    pub(crate) fn engine_options(config: &ResolutionConfig) -> EncodeOptions {
        if config.rebuild_fallback {
            config.encode
        } else {
            config.encode.with_guarded_cfds()
        }
    }

    /// Opens a **revisable** session: every revision-sensitive clause is
    /// emitted retractably (see [`EncodeOptions::revisable`]) so
    /// [`ResolutionSession::apply_revision`] can absorb upstream
    /// corrections without rebuilding.
    pub fn new_revisable(config: &ResolutionConfig, spec: &Specification) -> Self {
        Self::with_options(config, spec, config.encode.with_revisable())
    }

    fn with_options(
        config: &ResolutionConfig,
        spec: &Specification,
        options: EncodeOptions,
    ) -> Self {
        let enc = EncodedSpec::encode_with(spec, options);
        Self::from_encoded(config, spec, enc, None)
    }

    /// Opens a session over a pre-built encoding — the scheduler's entry
    /// point: split tasks encode `spec` off-thread (with
    /// [`ResolutionSession::engine_options`]) and shard workers recycle
    /// per-entity solver allocations through `scratch`. A scratch-built
    /// solver is state-identical to a fresh one
    /// (`cr_sat::Solver::from_cnf_with_scratch`), so sessions opened here
    /// resolve exactly like [`ResolutionSession::new`] ones.
    pub(crate) fn from_encoded(
        config: &ResolutionConfig,
        spec: &Specification,
        enc: EncodedSpec,
        scratch: Option<cr_sat::SolverScratch>,
    ) -> Self {
        let mut solver = match scratch {
            Some(s) => cr_sat::Solver::from_cnf_with_scratch(enc.cnf(), s),
            None => cr_sat::Solver::from_cnf(enc.cnf()),
        };
        solver.set_persistent_assumptions(enc.active_guards());
        let synced_solver = enc.cnf().num_clauses();
        let mut up = cr_sat::UnitPropagator::new(&cr_sat::Cnf::new());
        let synced_up = Self::sync_propagator(&mut up, &enc, 0);
        ResolutionSession {
            config: *config,
            current: spec.clone(),
            enc,
            solver,
            up,
            synced_solver,
            synced_up,
            rebuilds: 0,
            injected_carry: 0,
            revisions: RevisionTelemetry::default(),
            policy: RevisionPolicy::default(),
            quarantine: Vec::new(),
            quarantine_cap: DEFAULT_QUARANTINE_CAP,
            competing: Vec::new(),
            frontier: CausalFrontier::new(),
            answers: BTreeMap::new(),
            epoch: Epoch::ZERO,
            batch: None,
            sealed: None,
        }
    }

    /// Tears the session down into reusable solver scratch (cleared
    /// allocations: clause arena, watch lists, literal buffers). Shard
    /// workers call this between entities so per-entity solver allocation
    /// cost is paid once per worker, not once per entity.
    pub(crate) fn into_solver_scratch(self) -> cr_sat::SolverScratch {
        self.solver.into_scratch()
    }

    /// Sets the degradation policy for revisions that fail validation
    /// (default: [`RevisionPolicy::Quarantine`]).
    pub fn set_revision_policy(&mut self, policy: RevisionPolicy) {
        self.policy = policy;
    }

    /// Bounds the quarantine log at `cap` entries (default
    /// [`DEFAULT_QUARANTINE_CAP`]). Overflow evicts the oldest entries and
    /// counts them in [`RevisionTelemetry::quarantine_evicted`]; shrinking
    /// the cap below the current length evicts immediately.
    pub fn set_quarantine_cap(&mut self, cap: usize) {
        self.quarantine_cap = cap;
        self.evict_quarantine_overflow();
    }

    /// The current quarantine-log bound.
    pub fn quarantine_cap(&self) -> usize {
        self.quarantine_cap
    }

    fn evict_quarantine_overflow(&mut self) {
        if self.quarantine.len() > self.quarantine_cap {
            let excess = self.quarantine.len() - self.quarantine_cap;
            self.quarantine.drain(..excess);
            self.revisions.quarantine_evicted += excess;
        }
    }

    /// Logs one failed event in the bounded quarantine and counts it.
    fn quarantine_push(&mut self, rev: Revision, err: RevisionError) {
        self.quarantine.push((rev, err));
        self.revisions.quarantined += 1;
        self.evict_quarantine_overflow();
    }

    /// The `(revision, error)` pairs quarantined so far (only populated
    /// under [`RevisionPolicy::Quarantine`]; bounded — see
    /// [`ResolutionSession::set_quarantine_cap`]).
    pub fn quarantined(&self) -> &[(Revision, RevisionError)] {
        &self.quarantine
    }

    /// Drains the competing-candidate cells observed since the last call —
    /// one [`CompetingCell`] per cell that currently holds multiple
    /// causally-concurrent branch tips, or whose accepted answer a
    /// concurrent correction re-opened. Surfaced per round through
    /// [`crate::framework::RoundReport::competing`].
    ///
    /// While a staged batch is mid-flight this is a **non-destructive
    /// snapshot read**: it returns the sealed epoch's buffer without
    /// draining the live one (cells the open batch already recorded are
    /// drained after the seal, so nothing is lost or double-consumed on
    /// the quiescent path).
    pub fn take_competing(&mut self) -> Vec<CompetingCell> {
        if self.batch.is_some() {
            return self.sealed_snapshot().competing.clone();
        }
        std::mem::take(&mut self.competing)
    }

    /// The causal delivery frontier (dedup, buffering, per-cell write log).
    pub fn frontier(&self) -> &CausalFrontier {
        &self.frontier
    }

    /// The causally-maximal competing writes recorded for `(tuple, attr)` —
    /// the *branch tips* a user interface would present when concurrent
    /// corrections disagree. Each entry is `(asserting source, value)`.
    pub fn branch_tips(&self, tuple: TupleId, attr: AttrId) -> Vec<(SourceId, Value)> {
        self.frontier
            .branch_tips(tuple, attr)
            .into_iter()
            .map(|(stamp, value)| (stamp.source, value.clone()))
            .collect()
    }

    /// The specification the session currently represents (initial spec
    /// plus the absorbed user input and revisions; a CFD retraction leaves
    /// Γ's indexing intact — see the module docs).
    pub fn current(&self) -> &Specification {
        &self.current
    }

    /// The live encoding (retraction-aware Ω, value liveness, guards).
    pub fn encoded(&self) -> &EncodedSpec {
        &self.enc
    }

    /// Revision telemetry accumulated so far.
    pub fn revision_telemetry(&self) -> RevisionTelemetry {
        self.revisions
    }

    /// Feeds `up` the CNF tail starting at clause `from`, stripping guard
    /// literals from grouped clauses and tagging them with their group so
    /// they stay retractable. Returns the new sync watermark.
    fn sync_propagator(
        up: &mut cr_sat::UnitPropagator,
        enc: &EncodedSpec,
        from: usize,
    ) -> usize {
        up.ensure_vars(enc.cnf().num_vars() as usize);
        for (i, clause) in enc.cnf().clauses_from(from).enumerate() {
            let idx = from + i;
            match enc.clause_group(idx) {
                Some((group, guard)) => {
                    // A group can be retracted *after* emission but before
                    // this sync (event j of a batch retracting a group
                    // event i freshly emitted). Its clauses must never
                    // enter the propagator live — the solver side is
                    // neutralised by the group's ¬g unit in the same tail.
                    if !enc.is_group_active(group) {
                        continue;
                    }
                    let stripped: Vec<cr_sat::Lit> =
                        clause.iter().copied().filter(|l| l.var() != guard).collect();
                    up.add_clause_grouped(&stripped, group);
                }
                None => up.add_clause(clause),
            }
        }
        enc.cnf().num_clauses()
    }

    /// Brings the warm solver up to date with the CNF (axioms recorded by
    /// the propagator's lazy deduction, extension deltas). Variables can
    /// grow without any new clause — an input extension may allocate guard
    /// variables for emission groups whose instances are all vacuous — and
    /// those guards still enter the persistent assumptions, so the var
    /// check cannot be folded into the clause-watermark check.
    pub(crate) fn sync_solver(&mut self) {
        if self.synced_solver < self.enc.cnf().num_clauses()
            || self.solver.num_vars() < self.enc.cnf().num_vars()
        {
            self.solver.extend_from_cnf(self.enc.cnf(), self.synced_solver);
            self.synced_solver = self.enc.cnf().num_clauses();
        }
    }

    /// Total lazily recorded axioms, including encodings lost to rebuilds.
    pub fn injected_axioms(&self) -> usize {
        self.injected_carry + self.enc.injected_axioms()
    }

    /// Engine rebuilds performed (0 unless the legacy fallback is forced).
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Retraction telemetry of the warm unit propagator: `(provenance
    /// replays, literals invalidated, full fallback resets)`.
    pub fn replays(&self) -> (usize, usize, usize) {
        self.up.replay_stats()
    }

    /// Absorbs one round of user input: extends `current` by the induced
    /// tuple/orders and the encoding by the delta clauses. Returns the size
    /// of the induced order extension `|Ot|` added.
    pub fn apply_input(&mut self, input: &UserInput) -> usize {
        assert!(
            self.batch.is_none(),
            "apply_input mid-batch: seal the open revision batch first"
        );
        let (extended, to, added) = self.current.apply_user_input(input);
        // Record each accepted answer with the causal knowledge it was
        // given under (the frontier's delivered vector): a later correction
        // beyond that vector is concurrent with the answer and may re-open
        // the attribute (see `ingest_causal`).
        let deps = self.frontier.delivered_vector();
        for (attr, value) in &input.values {
            if !value.is_null() {
                self.answers.insert(
                    *attr,
                    AcceptedAnswer { tuple: to, value: value.clone(), deps: deps.clone() },
                );
            }
        }
        match self.enc.extend_with_input(&self.current, input) {
            ExtendOutcome::Extended { retracted_groups } => {
                self.up.retract_groups(&retracted_groups);
                self.redeliver_revived();
                self.sync_solver();
                self.synced_up = Self::sync_propagator(&mut self.up, &self.enc, self.synced_up);
                // Guard set may have changed (retractions and fresh CFD
                // emissions).
                self.solver.set_persistent_assumptions(self.enc.active_guards());
                // Round-boundary sweep: learnt clauses accumulate over a
                // resolve(); keep the database proportional to the formula.
                let cap = (self.enc.cnf().num_clauses() / 2).max(2_000);
                self.solver.compact_learnts(cap);
            }
            // Legacy fallback (`rebuild_fallback`): out-of-domain answers
            // change the value spaces — rebuild once, then continue
            // incrementally from the new state.
            ExtendOutcome::NeedsRebuild => {
                let rebuilds = self.rebuilds + 1;
                let injected_carry = self.injected_axioms();
                let revisions = self.revisions;
                let policy = self.policy;
                let quarantine = std::mem::take(&mut self.quarantine);
                let quarantine_cap = self.quarantine_cap;
                let competing = std::mem::take(&mut self.competing);
                let frontier = std::mem::take(&mut self.frontier);
                let answers = std::mem::take(&mut self.answers);
                let epoch = self.epoch;
                *self = ResolutionSession::new(&self.config, &extended);
                self.rebuilds = rebuilds;
                self.injected_carry = injected_carry;
                self.revisions = revisions;
                self.policy = policy;
                self.quarantine = quarantine;
                self.quarantine_cap = quarantine_cap;
                self.competing = competing;
                self.frontier = frontier;
                self.answers = answers;
                self.epoch = epoch;
            }
        }
        self.current = extended;
        // An absorbed input round is a committed mutation batch of its
        // own: it seals an epoch.
        self.epoch = self.epoch.next();
        added
    }

    /// Redelivers the order variables of values the latest encoding
    /// mutation revived (retired → live) to the warm propagator's lazy
    /// source: revival re-admits the value's axiom instances to the active
    /// scheme, and — like group retraction, the other non-monotone step —
    /// none of its atoms re-enter the delta on their own. Called after
    /// `retract_groups` so a full-reset fallback (which clears pending
    /// redeliveries along with the rest of the derived state) cannot drop
    /// the entries.
    fn redeliver_revived(&mut self) {
        let revived = self.enc.take_revived();
        if revived.is_empty() || !self.enc.options().is_lazy() {
            return;
        }
        for (attr, vid) in revived {
            let others: Vec<_> =
                self.enc.space().attr(attr).live_ids().filter(|&o| o != vid).collect();
            for o in others {
                if let Some(v) = self.enc.var_of(attr, vid, o) {
                    self.up.redeliver_var(v);
                }
                if let Some(v) = self.enc.var_of(attr, o, vid) {
                    self.up.redeliver_var(v);
                }
            }
        }
    }

    /// Brings the warm unit propagator to a fixpoint over everything synced
    /// so far. Provenance-scoped retraction replay requires a settled
    /// propagator (mid-propagation signatures are not a faithful cone
    /// summary, and the replay would fall back to the full reset) — clauses
    /// synced after the last deduction may still sit in the queue.
    fn settle_propagator(&mut self) {
        self.synced_up = Self::sync_propagator(&mut self.up, &self.enc, self.synced_up);
        if self.enc.options().is_lazy() {
            let ResolutionSession { enc, up, .. } = self;
            let mut source = RecordingAxiomSource::new(enc);
            let _ = up.propagate_to_fixpoint_lazy(&mut source);
        } else {
            let _ = self.up.propagate_to_fixpoint();
        }
        // Lazily recorded axioms went to both the CNF and the propagator;
        // the solver picks them up at its next ordinary tail sync.
        self.synced_up = self.enc.cnf().num_clauses();
    }

    /// Validates `rev` against the current session state without touching
    /// anything: every panic path of the underlying spec application
    /// (`without_cfd`, `with_order_withdrawn`, `with_replaced_value` on ids
    /// that don't exist) is caught here and reported as a typed
    /// [`RevisionError`] instead.
    pub fn validate_revision(&self, rev: &Revision) -> Result<(), RevisionError> {
        let len = self.current.entity().len();
        let arity = self.current.schema().arity();
        let check_attr = |attr: AttrId| {
            if attr.index() >= arity {
                Err(RevisionError::UnknownAttr { attr, arity })
            } else {
                Ok(())
            }
        };
        let check_tuple = |tuple: TupleId| {
            if tuple.index() >= len {
                Err(RevisionError::UnknownTuple { tuple, len })
            } else {
                Ok(())
            }
        };
        match rev {
            Revision::RetractCfd { cfd } => {
                let gamma_len = self.current.gamma().len();
                if *cfd >= gamma_len {
                    return Err(RevisionError::UnknownCfd { cfd: *cfd, gamma_len });
                }
                if self.enc.is_cfd_retired(*cfd) {
                    return Err(RevisionError::StaleCfd { cfd: *cfd });
                }
            }
            Revision::WithdrawOrder { attr, lo, hi } => {
                check_attr(*attr)?;
                check_tuple(*lo)?;
                check_tuple(*hi)?;
                if !self.current.orders().contains(*attr, *lo, *hi) {
                    return Err(RevisionError::UnknownOrder { attr: *attr, lo: *lo, hi: *hi });
                }
            }
            Revision::WithdrawAnswer { attr, tuple } => {
                check_attr(*attr)?;
                check_tuple(*tuple)?;
                // An in-range withdrawal of a never-asked answer (null
                // cell, no pairs) is a permissive no-op, exactly like the
                // scratch spec application.
            }
            Revision::ReplaceValue { tuple, attr, .. } => {
                check_attr(*attr)?;
                check_tuple(*tuple)?;
            }
        }
        Ok(())
    }

    /// Opens the engine-side batch bookkeeping: settles the propagator
    /// (so the seal's union replay can use provenance cones instead of a
    /// full reset) and starts collecting retraction cones. Every engine
    /// sync is deferred to [`ResolutionSession::close_batch`].
    fn open_batch(&mut self) {
        assert!(self.batch.is_none(), "revision batch already open");
        self.settle_propagator();
        self.batch = Some(BatchState {
            union: BTreeSet::new(),
            max_member: 0,
            pushed: 0,
            applied: 0,
            clauses_before: self.enc.cnf().num_clauses(),
            invalidated_before: self.up.replay_stats().1,
        });
    }

    /// Validates and stages one event into the open batch. The
    /// specification and the encoding mutate immediately and in event
    /// order — later events validate against the updated state, exactly
    /// like the sequential path — while the event's retraction cone only
    /// joins the deferred union. An `Err` leaves the session untouched by
    /// the offending event.
    fn push_revision(&mut self, rev: &Revision) -> Result<(), RevisionError> {
        self.batch
            .as_mut()
            .expect("push_revision requires an open batch")
            .pushed += 1;
        self.validate_revision(rev)?;
        let groups = match rev {
            Revision::RetractCfd { cfd } => {
                // `current` keeps Γ intact: the encoding flags the entry
                // retired and every consumer skips it (module docs).
                self.enc.retract_cfd(*cfd)
            }
            Revision::WithdrawOrder { attr, lo, hi } => {
                self.current = self.current.with_order_withdrawn(*attr, *lo, *hi);
                self.enc.withdraw_order(*attr, *lo, *hi)
            }
            Revision::WithdrawAnswer { attr, tuple } => {
                let old = self.current.entity().tuple(*tuple).get(*attr).clone();
                let (next, removed) = self.current.with_answer_withdrawn(*attr, *tuple);
                self.current = next;
                if self.answers.get(attr).is_some_and(|a| a.tuple == *tuple) {
                    self.answers.remove(attr);
                }
                let mut groups = Vec::new();
                for (t1, t2) in removed {
                    groups.extend(self.enc.withdraw_order(*attr, t1, t2));
                }
                if !old.is_null() {
                    groups.extend(self.enc.replace_value(&self.current, *tuple, *attr, &old));
                }
                groups
            }
            Revision::ReplaceValue { tuple, attr, value } => {
                let old = self.current.entity().tuple(*tuple).get(*attr).clone();
                if old == *value {
                    Vec::new() // vacuous correction
                } else {
                    self.current =
                        self.current.with_replaced_value(*tuple, *attr, value.clone());
                    self.enc.replace_value(&self.current, *tuple, *attr, &old)
                }
            }
        };
        let batch = self.batch.as_mut().expect("open batch outlives the push");
        batch.applied += 1;
        batch.max_member = batch.max_member.max(groups.len());
        batch.union.extend(groups);
        Ok(())
    }

    /// Seals the open batch with the single deferred engine pass (see the
    /// module docs for the union-cone equivalence argument): one
    /// provenance replay over the deduplicated union cone, one
    /// revived-value redelivery, one solver + propagator tail sync, one
    /// guard-assumption refresh — regardless of how many events were
    /// pushed. A batch that applied nothing is a no-op and does not
    /// advance the epoch.
    fn close_batch(&mut self) -> BatchReport {
        let batch = self.batch.take().expect("close_batch requires an open batch");
        if batch.applied == 0 {
            return BatchReport {
                epoch: self.epoch,
                events: batch.pushed,
                ..BatchReport::default()
            };
        }
        let union: Vec<GroupId> = batch.union.iter().copied().collect();
        // Provenance-scoped replay: undo exactly the union of the
        // retracted cones, then pick the re-emitted groups up through the
        // ordinary tail sync.
        self.up.retract_groups(&union);
        self.redeliver_revived();
        self.sync_solver();
        self.synced_up = Self::sync_propagator(&mut self.up, &self.enc, self.synced_up);
        self.solver.set_persistent_assumptions(self.enc.active_guards());
        let invalidated = self.up.replay_stats().1 - batch.invalidated_before;
        self.revisions.events += batch.applied;
        self.revisions.retracted_groups += union.len();
        self.revisions.invalidated += invalidated;
        self.revisions.reemitted_clauses +=
            self.enc.cnf().num_clauses() - batch.clauses_before;
        self.revisions.batches += 1;
        if batch.applied > 1 {
            self.revisions.events_coalesced += batch.applied;
            self.revisions.cone_union += union.len();
            self.revisions.replays_saved += batch.applied - 1;
        }
        self.epoch = self.epoch.next();
        BatchReport {
            epoch: self.epoch,
            events: batch.pushed,
            applied: batch.applied,
            union_cone: union.len(),
            max_member_cone: batch.max_member,
            invalidated,
        }
    }

    /// Absorbs one upstream correction **without rebuilding**: the event's
    /// stale clause groups are retracted (guard units through the ordinary
    /// clause tail), the unit propagator replays exactly the retracted
    /// derivation cone (rolling its lazy cursor back by the invalidated
    /// prefix), and the disturbed constraints re-emit through the compiled
    /// program. Requires a session opened with
    /// [`ResolutionSession::new_revisable`]. Internally a batch of one —
    /// per-event and batched ingestion share a single code path.
    ///
    /// Returns a typed [`RevisionError`] (leaving the session untouched)
    /// when the event fails validation; see
    /// [`ResolutionSession::absorb_revision`] for the policy-driven wrapper.
    pub fn apply_revision(&mut self, rev: &Revision) -> Result<(), RevisionError> {
        self.open_batch();
        let result = self.push_revision(rev);
        self.close_batch();
        result
    }

    /// Absorbs a whole poll batch in one engine pass: events validate and
    /// fold into the specification strictly in event order (identical
    /// decisions to N sequential [`ResolutionSession::apply_revision`]
    /// calls), but the engine pays a single union-cone
    /// settle/replay/re-emission at the seal. Invalid events degrade per
    /// the session [`RevisionPolicy`]; under [`RevisionPolicy::Reject`]
    /// the already-pushed prefix is sealed (matching the sequential
    /// prefix-applied semantics) and the first error is returned.
    pub fn apply_revision_batch(
        &mut self,
        revs: &[Revision],
    ) -> Result<BatchReport, RevisionError> {
        self.absorb_revision_batch(revs).map(|(report, _)| report)
    }

    /// [`ResolutionSession::apply_revision_batch`] with per-event outcome
    /// flags (`true` = applied, `false` = degraded per policy) — what a
    /// replay harness needs to mirror exactly the applied subset.
    pub fn absorb_revision_batch(
        &mut self,
        revs: &[Revision],
    ) -> Result<(BatchReport, Vec<bool>), RevisionError> {
        self.open_batch();
        let mut applied = Vec::with_capacity(revs.len());
        for rev in revs {
            match self.push_revision(rev) {
                Ok(()) => applied.push(true),
                Err(err) => match self.policy {
                    RevisionPolicy::Reject => {
                        self.close_batch();
                        return Err(err);
                    }
                    RevisionPolicy::Quarantine => {
                        self.quarantine_push(rev.clone(), err);
                        applied.push(false);
                    }
                    RevisionPolicy::BestEffort => {
                        self.revisions.quarantined += 1;
                        applied.push(false);
                    }
                },
            }
        }
        Ok((self.close_batch(), applied))
    }

    /// Opens a **staged** batch with snapshot reads: captures a
    /// copy-on-write summary of the settled outcome at the current epoch
    /// — validity, deduced orders, true values, undrained competing cells
    /// — then opens the batch. Until [`ResolutionSession::seal_batch`],
    /// reads ([`ResolutionSession::is_valid`],
    /// [`ResolutionSession::deduce`], [`ResolutionSession::true_values`],
    /// [`ResolutionSession::take_competing`]) answer from the captured
    /// summary, so a reader never observes the half-applied batch. Push
    /// events with [`ResolutionSession::batch_push`].
    pub fn begin_batch(&mut self) {
        assert!(self.batch.is_none(), "revision batch already open");
        self.sealed = Some(self.seal_outcome());
        self.open_batch();
    }

    /// Pushes one event into the staged batch opened by
    /// [`ResolutionSession::begin_batch`], degrading invalid events per
    /// the session policy: `Ok(true)` applied, `Ok(false)` degraded,
    /// `Err` only under [`RevisionPolicy::Reject`].
    pub fn batch_push(&mut self, rev: &Revision) -> Result<bool, RevisionError> {
        assert!(self.batch.is_some(), "batch_push requires begin_batch");
        match self.push_revision(rev) {
            Ok(()) => Ok(true),
            Err(err) => match self.policy {
                RevisionPolicy::Reject => Err(err),
                RevisionPolicy::Quarantine => {
                    self.quarantine_push(rev.clone(), err);
                    Ok(false)
                }
                RevisionPolicy::BestEffort => {
                    self.revisions.quarantined += 1;
                    Ok(false)
                }
            },
        }
    }

    /// Seals the staged batch: performs the single union-cone engine
    /// pass, advances the epoch (if anything applied) and drops the read
    /// snapshot — subsequent reads see the new epoch live.
    pub fn seal_batch(&mut self) -> BatchReport {
        assert!(self.batch.is_some(), "seal_batch requires begin_batch");
        let report = self.close_batch();
        self.sealed = None;
        report
    }

    /// Computes the settled-outcome summary at the current (quiescent)
    /// epoch: validity, deduced orders (unit propagation), true values
    /// and a copy of the undrained competing-cell buffer.
    fn seal_outcome(&mut self) -> SealedOutcome {
        debug_assert!(self.batch.is_none(), "seal_outcome requires a quiescent engine");
        let valid = self.is_valid();
        let (orders, values) = if valid {
            let od = self
                .deduce(DeductionMethod::UnitPropagation)
                .expect("deduction cannot conflict on a valid specification");
            let tv = self.true_values(&od);
            (Some(od), Some(tv))
        } else {
            (None, None)
        };
        SealedOutcome {
            epoch: self.epoch,
            valid,
            orders,
            values,
            competing: self.competing.clone(),
        }
    }

    /// The sealed snapshot mid-flight reads answer from. Only the staged
    /// `begin_batch` path supports mid-flight reads; the atomic wrappers
    /// hold `&mut self` for the whole batch, so their intermediate states
    /// are unobservable and carry no snapshot.
    fn sealed_snapshot(&self) -> &SealedOutcome {
        self.sealed
            .as_ref()
            .expect("mid-flight reads are only supported for staged batches (begin_batch)")
    }

    /// The session's current epoch: the number of committed mutation
    /// batches (input rounds + sealed revision batches that applied at
    /// least one event) absorbed so far.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The epoch mid-flight snapshot reads answer against while a staged
    /// batch is open (`None` when quiescent or inside an atomic wrapper).
    pub fn sealed_epoch(&self) -> Option<Epoch> {
        self.sealed.as_ref().map(|s| s.epoch)
    }

    /// Policy-driven [`ResolutionSession::apply_revision`]: a valid event
    /// applies (returns `Ok(true)`); an invalid one degrades per the
    /// session's [`RevisionPolicy`] — rejected (`Err`), quarantined into
    /// the session log, or best-effort counted (`Ok(false)`).
    pub fn absorb_revision(&mut self, rev: &Revision) -> Result<bool, RevisionError> {
        match self.apply_revision(rev) {
            Ok(()) => Ok(true),
            Err(err) => match self.policy {
                RevisionPolicy::Reject => Err(err),
                RevisionPolicy::Quarantine => {
                    self.quarantine_push(rev.clone(), err);
                    Ok(false)
                }
                RevisionPolicy::BestEffort => {
                    self.revisions.quarantined += 1;
                    Ok(false)
                }
            },
        }
    }

    /// Ingests one poll's worth of causally-stamped events: the frontier
    /// deduplicates and buffers them, releases what is causally deliverable,
    /// and each delivered event is absorbed under the session policy —
    /// `ReplaceValue` through the per-cell write log (last-writer-wins over
    /// branch tips, so the applied cell state is independent of delivery
    /// order), everything else directly. A delivered correction that is
    /// causally concurrent with an accepted answer on the same attribute
    /// and contradicts it **re-opens** the attribute first (withdraws the
    /// answer; the interaction loop re-asks).
    ///
    /// Returns the *effective* plain revisions applied to the session, in
    /// application order — exactly what a [`SpecMirror`] must replay to
    /// stay equivalent. `Err` is only possible under
    /// [`RevisionPolicy::Reject`].
    ///
    /// The whole poll is one revision batch: every delivered event
    /// (including buffered predecessors the frontier just released)
    /// stages into a single batch, and the engine pays one union-cone
    /// settle/replay/re-emission pass at the seal (module docs).
    pub fn ingest_causal(
        &mut self,
        events: Vec<CausalRevision>,
    ) -> Result<Vec<Revision>, RevisionError> {
        let delivered = self.frontier.ingest(events);
        self.revisions.duplicates_dropped = self.frontier.duplicates_dropped();
        self.revisions.buffered = self.frontier.buffered_events();
        let mut effective = Vec::new();
        self.open_batch();
        for ev in delivered {
            match &ev.rev {
                Revision::ReplaceValue { tuple, attr, value } => {
                    // Validate before the write log: a malformed correction
                    // is quarantined per policy and never pollutes the
                    // branch-tip state (its stamp already advanced the
                    // frontier, so the source stays deliverable).
                    if let Err(err) = self.validate_revision(&ev.rev) {
                        // push_revision's attempt counter never saw this
                        // event; account it so `BatchReport::events` still
                        // covers degraded deliveries.
                        self.batch.as_mut().expect("open batch").pushed += 1;
                        if let Err(err) = self.degrade(ev.rev.clone(), err) {
                            self.close_batch();
                            return Err(err);
                        }
                        continue;
                    }
                    // Re-open: the accepted answer did not causally see
                    // this correction (its recorded frontier is behind the
                    // correction's sequence number) and the asserted value
                    // contradicts it.
                    let reopen = self.answers.get(attr).and_then(|ans| {
                        let concurrent = ans.deps.get(ev.stamp.source) < ev.stamp.seq();
                        let conflicts = !value.is_null() && *value != ans.value;
                        (concurrent && conflicts).then(|| (ans.tuple, ans.value.clone()))
                    });
                    let mut withdrawn_answer = None;
                    if let Some((answer_tuple, answer_value)) = reopen {
                        let withdraw =
                            Revision::WithdrawAnswer { attr: *attr, tuple: answer_tuple };
                        self.push_revision(&withdraw)
                            .expect("recorded answer tuple is always in range");
                        self.revisions.reopened += 1;
                        withdrawn_answer = Some(answer_value);
                        effective.push(withdraw);
                    }
                    let canonical =
                        self.frontier.record_write(*tuple, *attr, &ev.stamp, value);
                    let old = self.current.entity().tuple(*tuple).get(*attr);
                    if canonical != *old {
                        let rev = Revision::ReplaceValue {
                            tuple: *tuple,
                            attr: *attr,
                            value: canonical,
                        };
                        self.push_revision(&rev)
                            .expect("canonical write was validated above");
                        effective.push(rev);
                    }
                    self.record_competing(*tuple, *attr, withdrawn_answer);
                }
                _ => match self.push_revision(&ev.rev) {
                    Ok(()) => effective.push(ev.rev),
                    Err(err) => {
                        if let Err(err) = self.degrade(ev.rev.clone(), err) {
                            self.close_batch();
                            return Err(err);
                        }
                    }
                },
            }
        }
        self.close_batch();
        Ok(effective)
    }

    /// Updates the competing-candidate buffer for `(tuple, attr)` after a
    /// delivered write: a cell with multiple branch tips — or a freshly
    /// re-opened one — gets (or refreshes) a [`CompetingCell`] entry;
    /// `withdrawn_answer` is the re-opened local answer, appended as a
    /// [`SourceId::LOCAL`] candidate.
    fn record_competing(
        &mut self,
        tuple: TupleId,
        attr: AttrId,
        withdrawn_answer: Option<Value>,
    ) {
        let reopened = withdrawn_answer.is_some();
        let mut candidates: Vec<(SourceId, Value)> = self
            .frontier
            .branch_tips(tuple, attr)
            .into_iter()
            .map(|(stamp, value)| (stamp.source, value.clone()))
            .collect();
        if candidates.len() < 2 && !reopened {
            return;
        }
        if let Some(value) = withdrawn_answer {
            candidates.push((SourceId::LOCAL, value));
        }
        match self.competing.iter_mut().find(|c| c.tuple == tuple && c.attr == attr) {
            Some(cell) => {
                cell.reopened |= reopened;
                cell.candidates = candidates;
            }
            None => {
                self.competing.push(CompetingCell { tuple, attr, reopened, candidates });
            }
        }
    }

    /// Routes one failed event through the session policy (shared by the
    /// causal path, which validates before the write log).
    fn degrade(&mut self, rev: Revision, err: RevisionError) -> Result<(), RevisionError> {
        match self.policy {
            RevisionPolicy::Reject => Err(err),
            RevisionPolicy::Quarantine => {
                self.quarantine_push(rev, err);
                Ok(())
            }
            RevisionPolicy::BestEffort => {
                self.revisions.quarantined += 1;
                Ok(())
            }
        }
    }

    /// Step (1) of Fig. 4 on the warm engine: is the current specification
    /// valid?
    ///
    /// While a staged batch is mid-flight this answers at the **sealed
    /// epoch** (the snapshot captured by
    /// [`ResolutionSession::begin_batch`]) — never the half-applied state.
    pub fn is_valid(&mut self) -> bool {
        if self.batch.is_some() {
            return self.sealed_snapshot().valid;
        }
        self.sync_solver();
        let ResolutionSession { enc, solver, .. } = self;
        let sat = if enc.options().is_lazy() {
            let mut source = RecordingAxiomSource::new(enc);
            solver.solve_lazy(&mut source)
        } else {
            solver.solve()
        };
        // Everything recorded during the lazy solve is already in the
        // solver (the CEGAR loop adds each handed-out clause).
        self.synced_solver = self.enc.cnf().num_clauses();
        sat == cr_sat::SolveResult::Sat
    }

    /// Step (2) of Fig. 4: deduce implied value orders on the warm engine.
    ///
    /// While a staged batch is mid-flight this returns the **sealed
    /// epoch's** deduced orders (`None` iff that epoch was invalid); the
    /// requested `method` is irrelevant to a snapshot — nothing is
    /// recomputed.
    pub fn deduce(&mut self, method: DeductionMethod) -> Option<DeducedOrders> {
        if self.batch.is_some() {
            return self.sealed_snapshot().orders.clone();
        }
        match method {
            DeductionMethod::UnitPropagation => {
                self.synced_up = Self::sync_propagator(&mut self.up, &self.enc, self.synced_up);
                let ResolutionSession { enc, up, .. } = self;
                let od = if enc.options().is_lazy() {
                    deduce_order_recording(up, enc)
                } else {
                    deduce_order_from(up, enc)
                };
                // Lazily recorded axioms went to both the CNF and `up`.
                self.synced_up = self.enc.cnf().num_clauses();
                od
            }
            DeductionMethod::NaiveSat => {
                self.sync_solver();
                let ResolutionSession { enc, solver, .. } = self;
                let od = if enc.options().is_lazy() {
                    naive_deduce_recording(solver, enc)
                } else {
                    naive_deduce_with(solver, enc)
                };
                self.synced_solver = self.enc.cnf().num_clauses();
                od
            }
        }
    }

    /// True values extracted from deduced orders (live-masked tops).
    ///
    /// While a staged batch is mid-flight this returns the **sealed
    /// epoch's** true values and ignores `od` (the sealed values pair
    /// with the sealed orders); an invalid sealed epoch yields the
    /// all-unresolved vector.
    pub fn true_values(&self, od: &DeducedOrders) -> TrueValues {
        if self.batch.is_some() {
            let sealed = self.sealed_snapshot();
            return sealed.values.clone().unwrap_or_else(|| {
                TrueValues::new(vec![None; self.current.schema().arity()])
            });
        }
        true_values_from_orders(&self.enc, od)
    }

    /// Step (4) of Fig. 4: a suggestion against the warm solver, recording
    /// probe/repair axiom injections into the shared CNF.
    pub fn suggest(&mut self, od: &DeducedOrders, known: &TrueValues) -> Suggestion {
        assert!(
            self.batch.is_none(),
            "suggest requires a sealed epoch: close the open revision batch first"
        );
        self.sync_solver();
        let (sug, solver_synced) = {
            let ResolutionSession { current, enc, solver, .. } = self;
            suggest_with_engine(current, enc, od, known, solver)
        };
        self.synced_solver = solver_synced;
        sug
    }

    /// Deadline-aware [`ResolutionSession::is_valid`]: admits one phase
    /// against `budget` before solving, charging it after. A spent budget
    /// fails *before* touching the solver, so an expired request costs the
    /// engine nothing.
    pub fn is_valid_within(
        &mut self,
        budget: &mut PhaseDeadline,
    ) -> Result<bool, DeadlineExceeded> {
        budget.enter_phase()?;
        Ok(self.is_valid())
    }

    /// Deadline-aware [`ResolutionSession::deduce`]: one budget phase.
    pub fn deduce_within(
        &mut self,
        method: DeductionMethod,
        budget: &mut PhaseDeadline,
    ) -> Result<Option<DeducedOrders>, DeadlineExceeded> {
        budget.enter_phase()?;
        Ok(self.deduce(method))
    }

    /// Deadline-aware [`ResolutionSession::true_values`]: one budget
    /// phase. A full `TrueValues` request chains
    /// [`ResolutionSession::is_valid_within`] →
    /// [`ResolutionSession::deduce_within`] → this, so it spends three
    /// phases and can expire between any two of them — mid-request, at a
    /// deterministic tick.
    pub fn true_values_within(
        &self,
        od: &DeducedOrders,
        budget: &mut PhaseDeadline,
    ) -> Result<TrueValues, DeadlineExceeded> {
        budget.enter_phase()?;
        Ok(self.true_values(od))
    }

    /// Deadline-aware [`ResolutionSession::suggest`]: one budget phase
    /// (a full `Suggest` request spends four — validity, deduction,
    /// extraction, then the repair/probe pass here).
    pub fn suggest_within(
        &mut self,
        od: &DeducedOrders,
        known: &TrueValues,
        budget: &mut PhaseDeadline,
    ) -> Result<Suggestion, DeadlineExceeded> {
        budget.enter_phase()?;
        Ok(self.suggest(od, known))
    }

    /// Snapshots the session's *logical* state as plain data — everything
    /// needed to rebuild an equivalent session on top of the base
    /// specification it was opened on: the current entity rows and order
    /// pairs (user input and value corrections folded in), retired CFD
    /// indices, accepted answers with their causal dependency vectors, the
    /// full delivery frontier, the undrained competing-cell buffer, the
    /// quarantine log and its cap, the session epoch, and the revision
    /// telemetry. Engine internals (CNF, solver, propagator) are *derived*
    /// state and deliberately excluded.
    pub fn state(&self) -> SessionState {
        let orders = self
            .current
            .schema()
            .attr_ids()
            .flat_map(|a| self.current.orders().pairs(a).map(move |(lo, hi)| (a, lo, hi)))
            .collect();
        SessionState {
            tuples: self
                .current
                .entity()
                .tuples()
                .iter()
                .map(|t| t.values().to_vec())
                .collect(),
            orders,
            retired_cfds: (0..self.current.gamma().len())
                .filter(|&i| self.enc.is_cfd_retired(i))
                .collect(),
            answers: self
                .answers
                .iter()
                .map(|(&attr, a)| AnswerState {
                    attr,
                    tuple: a.tuple,
                    value: a.value.clone(),
                    deps: a.deps.clone(),
                })
                .collect(),
            frontier: self.frontier.state(),
            telemetry: self.revisions,
            competing: self.competing.clone(),
            quarantine: self.quarantine.clone(),
            quarantine_cap: self.quarantine_cap,
            epoch: self.epoch,
        }
    }

    /// Rebuilds a session from a [`SessionState`] snapshot taken against
    /// `base` — the specification (schema, Σ, Γ, *original* entity and
    /// orders are ignored in favour of the snapshot's) the original session
    /// was opened on. The restored session is revisable and behaviourally
    /// equivalent to the snapshotted one: the current specification,
    /// retired-CFD flags, accepted answers and delivery frontier fully
    /// determine all subsequent `ingest_causal`/`apply_input` behaviour
    /// (engine internals are re-derived; cost telemetry of later events may
    /// differ, logical outcomes cannot).
    ///
    /// Fails with a descriptive error — never panics — when the snapshot is
    /// inconsistent with `base` (wrong arity, out-of-range ids), which a
    /// checksummed log should have made impossible.
    pub fn restore(
        config: &ResolutionConfig,
        base: &Specification,
        state: SessionState,
    ) -> Result<ResolutionSession, String> {
        let schema = base.schema().clone();
        let arity = schema.arity();
        let mut tuples = Vec::with_capacity(state.tuples.len());
        for row in state.tuples {
            if row.len() != arity {
                return Err(format!(
                    "snapshot row arity {} does not match schema arity {arity}",
                    row.len()
                ));
            }
            tuples.push(Tuple::from_values(row));
        }
        let entity = EntityInstance::new(schema, tuples)
            .map_err(|e| format!("snapshot entity rejected: {e}"))?;
        let mut orders = PartialOrders::empty(arity);
        for &(attr, lo, hi) in &state.orders {
            if attr.index() >= arity
                || lo.index() >= entity.len()
                || hi.index() >= entity.len()
            {
                return Err(format!("snapshot order {lo:?} <_{attr:?} {hi:?} out of range"));
            }
            orders.add(attr, lo, hi);
        }
        let spec =
            Specification::new(entity, orders, base.sigma().to_vec(), base.gamma().to_vec());
        let mut session = ResolutionSession::new_revisable(config, &spec);
        for &cfd in &state.retired_cfds {
            session
                .apply_revision(&Revision::RetractCfd { cfd })
                .map_err(|e| format!("snapshot CFD retraction rejected: {e}"))?;
        }
        for a in state.answers {
            if a.attr.index() >= arity || a.tuple.index() >= session.current.entity().len() {
                return Err(format!(
                    "snapshot answer on {:?} at {:?} out of range",
                    a.attr, a.tuple
                ));
            }
            session
                .answers
                .insert(a.attr, AcceptedAnswer { tuple: a.tuple, value: a.value, deps: a.deps });
        }
        session.frontier = CausalFrontier::from_state(state.frontier);
        // Buffers the snapshot captured verbatim: the undrained competing
        // cells, the quarantine log and its bound, and the epoch — a
        // rehydrated session must not silently lose what its twin still
        // holds (the eviction/rehydration state-loss regression).
        session.competing = state.competing;
        session.quarantine = state.quarantine;
        session.quarantine_cap = state.quarantine_cap;
        session.epoch = state.epoch;
        // The snapshot's cumulative telemetry replaces the restore-time
        // bookkeeping (the CFD retractions above counted as fresh events).
        session.revisions = state.telemetry;
        Ok(session)
    }
}

/// One accepted answer in a [`SessionState`] snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct AnswerState {
    /// The answered attribute.
    pub attr: AttrId,
    /// The user-input tuple carrying the answer.
    pub tuple: TupleId,
    /// The accepted most-current value.
    pub value: Value,
    /// The delivery frontier the answer was accepted under.
    pub deps: VectorClock,
}

/// A plain-data snapshot of a [`ResolutionSession`]'s logical state
/// ([`ResolutionSession::state`] / [`ResolutionSession::restore`]) — what
/// the durable session log (`cr-store`) persists in snapshot records so
/// rehydration replays only the log tail.
///
/// Two sessions that processed the same events agree on every field here
/// *except possibly the engine-cost counters inside `telemetry`*
/// (invalidated cone sizes and re-emitted clause counts depend on engine
/// history); equivalence harnesses compare the logical fields.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionState {
    /// Entity rows of the current specification (base rows plus
    /// user-input tuples, value corrections folded in).
    pub tuples: Vec<Vec<Value>>,
    /// All current order pairs, flattened as `(attr, lo, hi)`.
    pub orders: Vec<(AttrId, TupleId, TupleId)>,
    /// Retired CFD indices (into the base specification's Γ).
    pub retired_cfds: Vec<usize>,
    /// Accepted answers with their causal dependency vectors.
    pub answers: Vec<AnswerState>,
    /// The causal delivery frontier.
    pub frontier: FrontierState,
    /// Cumulative revision telemetry at snapshot time.
    pub telemetry: RevisionTelemetry,
    /// Undrained competing-candidate cells (the
    /// [`ResolutionSession::take_competing`] buffer).
    pub competing: Vec<CompetingCell>,
    /// Quarantined `(revision, error)` pairs, bounded by `quarantine_cap`.
    pub quarantine: Vec<(Revision, RevisionError)>,
    /// The quarantine-log bound at snapshot time.
    pub quarantine_cap: usize,
    /// The session epoch at snapshot time.
    pub epoch: Epoch,
}

/// The *post-revision* specification, materialised: the mirror a checked
/// replay is compared against. Tracks retired CFDs separately so revision
/// events can keep referring to original Γ indices, and materialises a
/// plain [`Specification`] (with retired CFDs actually removed) on demand.
pub struct SpecMirror {
    spec: Specification,
    retired_cfds: BTreeSet<usize>,
}

impl SpecMirror {
    /// A mirror starting at `spec`.
    pub fn new(spec: &Specification) -> Self {
        SpecMirror { spec: spec.clone(), retired_cfds: BTreeSet::new() }
    }

    /// Folds one revision into the mirror.
    pub fn apply(&mut self, rev: &Revision) {
        match rev {
            Revision::RetractCfd { cfd } => {
                self.retired_cfds.insert(*cfd);
            }
            Revision::WithdrawOrder { attr, lo, hi } => {
                self.spec = self.spec.with_order_withdrawn(*attr, *lo, *hi);
            }
            Revision::WithdrawAnswer { attr, tuple } => {
                let (next, _removed) = self.spec.with_answer_withdrawn(*attr, *tuple);
                self.spec = next;
            }
            Revision::ReplaceValue { tuple, attr, value } => {
                self.spec = self.spec.with_replaced_value(*tuple, *attr, value.clone());
            }
        }
    }

    /// Folds one round of user input into the mirror (`Se ⊕ Ot`).
    pub fn apply_input(&mut self, input: &UserInput) {
        let (extended, _, _) = self.spec.apply_user_input(input);
        self.spec = extended;
    }

    /// The materialised post-revision specification: retired CFDs removed
    /// for real. Compiles its own constraint program on first encode.
    pub fn materialise(&self) -> Specification {
        let gamma: Vec<_> = self
            .spec
            .gamma()
            .iter()
            .enumerate()
            .filter(|(gi, _)| !self.retired_cfds.contains(gi))
            .map(|(_, cfd)| cfd.clone())
            .collect();
        Specification::new(
            self.spec.entity().clone(),
            self.spec.orders().clone(),
            self.spec.sigma().to_vec(),
            gamma,
        )
    }
}

/// Result of a checked replay (see [`resolve_with_revisions_checked`]).
pub struct CheckedReplay {
    /// Resolution outcome of the revision-driven session.
    pub resolved: TrueValues,
    /// True iff the final specification was valid.
    pub valid: bool,
    /// True iff all attributes resolved.
    pub complete: bool,
    /// Interaction rounds that involved the user.
    pub interactions: usize,
    /// Revision telemetry of the session.
    pub revisions: RevisionTelemetry,
    /// Provenance-replay telemetry `(replays, invalidated, full resets)`.
    pub replay_stats: (usize, usize, usize),
    /// Engine-vs-scratch equivalence checks performed.
    pub checks: usize,
}

/// Runs the Fig. 4 loop on a revisable [`ResolutionSession`] fed by
/// `source`, and after **every** revision batch differentially verifies the
/// replayed engine state against a from-scratch re-resolution of the
/// post-revision specification: validity, deduced value orders (compared at
/// the value level over the live space) and extracted true values must all
/// coincide with a fresh eager encoding of the [`SpecMirror`]. Returns an
/// error describing the first divergence, if any.
///
/// The primary session absorbs each poll through the **batched** path
/// ([`ResolutionSession::apply_revision_batch`]); an event-at-a-time twin
/// absorbs the same events through [`ResolutionSession::apply_revision`],
/// and both are checked against the scratch mirror *and* against each
/// other on the full logical state ([`diff_logical_states`]) — the
/// three-way batched ≡ sequential ≡ scratch differential.
///
/// This is the harness behind `tests/` and the `ingest`/`ingest-batch`
/// smoke invariants of `bench_incremental`; the unchecked production path
/// is
/// [`Resolver::resolve_with_revisions`](crate::framework::Resolver::resolve_with_revisions).
pub fn resolve_with_revisions_checked(
    config: &ResolutionConfig,
    spec: &Specification,
    oracle: &mut dyn UserOracle,
    source: &mut dyn RevisionSource,
) -> Result<CheckedReplay, String> {
    let mut session = ResolutionSession::new_revisable(config, spec);
    let mut twin = ResolutionSession::new_revisable(config, spec);
    let mut mirror = SpecMirror::new(spec);
    let mut interactions = 0;
    let mut checks = 0;
    let arity = spec.schema().arity();
    let mut last_values = TrueValues::new(vec![None; arity]);
    let mut valid = true;

    for round in 0..=config.max_rounds {
        let revs = source.poll(round, session.current());
        let had_revisions = !revs.is_empty();
        if had_revisions {
            session
                .apply_revision_batch(&revs)
                .map_err(|e| format!("scripted revision rejected by batch: {e}"))?;
            for rev in &revs {
                twin.apply_revision(rev)
                    .map_err(|e| format!("scripted revision rejected: {e} ({rev:?})"))?;
                mirror.apply(rev);
            }
            check_session_against_scratch(&mut session, &mirror)?;
            check_session_against_scratch(&mut twin, &mirror)?;
            diff_logical_states(&session.state(), &twin.state())
                .map_err(|e| format!("batched vs sequential ingestion diverged: {e}"))?;
            checks += 2;
        }

        if !session.is_valid() {
            valid = false;
            break;
        }
        let od = session
            .deduce(config.deduction)
            .expect("deduction cannot conflict on a valid specification");
        let values = session.true_values(&od);
        last_values = values.clone();
        if values.complete() || round == config.max_rounds {
            break;
        }
        let sug = session.suggest(&od, &values);
        let input = oracle.provide(spec.schema(), &sug);
        if input.is_empty() {
            break;
        }
        interactions += 1;
        session.apply_input(&input);
        twin.apply_input(&input);
        mirror.apply_input(&input);
    }

    // Final state check — covers the case where the last event batch
    // arrived on the closing round.
    check_session_against_scratch(&mut session, &mirror)?;
    check_session_against_scratch(&mut twin, &mirror)?;
    diff_logical_states(&session.state(), &twin.state())
        .map_err(|e| format!("batched vs sequential ingestion diverged at close: {e}"))?;
    checks += 2;

    Ok(CheckedReplay {
        complete: last_values.complete(),
        resolved: last_values,
        valid,
        interactions,
        revisions: session.revision_telemetry(),
        replay_stats: session.replays(),
        checks,
    })
}

/// Compares the batching-independent fields of two [`SessionState`]s:
/// entity rows, order pairs, retired CFDs, accepted answers, the causal
/// frontier, the competing-cell buffer, the quarantine log and its cap,
/// plus the delivery-level telemetry that must not depend on how events
/// were partitioned into batches (applied events, duplicates, buffering,
/// quarantining, re-opens, evictions). Engine-cost counters (invalidated
/// cones, re-emitted clauses) and the batch-shape counters (batches,
/// coalescing, epoch) legitimately differ between batched and sequential
/// ingestion of the same stream and are excluded.
pub fn diff_logical_states(a: &SessionState, b: &SessionState) -> Result<(), String> {
    if a.tuples != b.tuples {
        return Err(format!("entity rows diverged: {:?} vs {:?}", a.tuples, b.tuples));
    }
    if a.orders != b.orders {
        return Err(format!("order pairs diverged: {:?} vs {:?}", a.orders, b.orders));
    }
    if a.retired_cfds != b.retired_cfds {
        return Err(format!(
            "retired CFDs diverged: {:?} vs {:?}",
            a.retired_cfds, b.retired_cfds
        ));
    }
    if a.answers != b.answers {
        return Err(format!("answers diverged: {:?} vs {:?}", a.answers, b.answers));
    }
    if a.frontier != b.frontier {
        return Err(format!("frontier diverged: {:?} vs {:?}", a.frontier, b.frontier));
    }
    if a.competing != b.competing {
        return Err(format!(
            "competing cells diverged: {:?} vs {:?}",
            a.competing, b.competing
        ));
    }
    if a.quarantine != b.quarantine {
        return Err(format!(
            "quarantine logs diverged: {:?} vs {:?}",
            a.quarantine, b.quarantine
        ));
    }
    if a.quarantine_cap != b.quarantine_cap {
        return Err(format!(
            "quarantine caps diverged: {} vs {}",
            a.quarantine_cap, b.quarantine_cap
        ));
    }
    let ta = &a.telemetry;
    let tb = &b.telemetry;
    let pick = |t: &RevisionTelemetry| {
        (t.events, t.duplicates_dropped, t.buffered, t.quarantined, t.reopened,
         t.quarantine_evicted)
    };
    if pick(ta) != pick(tb) {
        return Err(format!(
            "delivery telemetry diverged: {:?} vs {:?}",
            pick(ta),
            pick(tb)
        ));
    }
    Ok(())
}

/// One engine-vs-scratch equivalence check: encode the mirror's
/// materialised specification from scratch (eager, self-contained) and
/// compare validity, deduced value orders and true values against the
/// replayed session. Public so custom drivers (tests, benches) can
/// interleave their own revision/input schedules with verification.
pub fn check_session_against_scratch(
    session: &mut ResolutionSession,
    mirror: &SpecMirror,
) -> Result<(), String> {
    let scratch_spec = mirror.materialise();
    let scratch = EncodedSpec::encode_with(&scratch_spec, EncodeOptions::eager());
    let mut scratch_solver = scratch.fresh_solver();
    let scratch_valid = scratch_solver.solve() == cr_sat::SolveResult::Sat;
    let session_valid = session.is_valid();
    if session_valid != scratch_valid {
        return Err(format!(
            "validity diverged: replay says {session_valid}, scratch says {scratch_valid}"
        ));
    }
    if !session_valid {
        return Ok(()); // both invalid: nothing further to compare
    }

    let session_od = session
        .deduce(DeductionMethod::UnitPropagation)
        .ok_or_else(|| "replay deduced a conflict on a valid spec".to_string())?;
    let scratch_od =
        deduce_order(&scratch).ok_or_else(|| "scratch deduced a conflict".to_string())?;

    // Compare at the value level over non-null lower bounds: the two
    // encodings number their variables differently, and the replay's space
    // retains retired values (which never appear in implied literals) plus
    // permanent null-bottom units for them (filtered with the null side).
    // Actual `Value`s, not renderings — `Int(3)` and `Str("3")` display
    // alike but must never be conflated.
    let project = |enc: &EncodedSpec, od: &DeducedOrders| -> BTreeSet<(AttrId, Value, Value)> {
        let mut out = BTreeSet::new();
        for ai in 0..enc.space().arity() as u16 {
            let attr = AttrId(ai);
            for (lo, hi) in od.pairs(attr) {
                let lo_v = enc.value(attr, lo);
                let hi_v = enc.value(attr, hi);
                if lo_v.is_null() || hi_v.is_null() {
                    continue;
                }
                out.insert((attr, lo_v.clone(), hi_v.clone()));
            }
        }
        out
    };
    let replay_pairs = project(session.encoded(), &session_od);
    let scratch_pairs = project(&scratch, &scratch_od);
    if replay_pairs != scratch_pairs {
        let only_replay: Vec<_> = replay_pairs.difference(&scratch_pairs).take(5).collect();
        let only_scratch: Vec<_> = scratch_pairs.difference(&replay_pairs).take(5).collect();
        return Err(format!(
            "deduced orders diverged: only-replay {only_replay:?}, only-scratch {only_scratch:?}"
        ));
    }

    let replay_tv = session.true_values(&session_od);
    let scratch_tv = true_values_from_orders(&scratch, &scratch_od);
    if replay_tv != scratch_tv {
        return Err(format!(
            "true values diverged: replay {replay_tv:?}, scratch {scratch_tv:?}"
        ));
    }
    Ok(())
}
