/root/repo/target/debug/deps/cr_data-eab3d12ecdb400e5.d: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs Cargo.toml

/root/repo/target/debug/deps/libcr_data-eab3d12ecdb400e5.rmeta: crates/cr-data/src/lib.rs crates/cr-data/src/career.rs crates/cr-data/src/gen_util.rs crates/cr-data/src/nba.rs crates/cr-data/src/person.rs crates/cr-data/src/vjday.rs Cargo.toml

crates/cr-data/src/lib.rs:
crates/cr-data/src/career.rs:
crates/cr-data/src/gen_util.rs:
crates/cr-data/src/nba.rs:
crates/cr-data/src/person.rs:
crates/cr-data/src/vjday.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
