//! Reduction of a specification to CNF (Section V-A).
//!
//! `Instantiation(Se)` expresses the currency orders, currency constraints
//! and constant CFDs of a specification as *instance constraints* over the
//! strict value orders `≺v_Ai`; `ConvertToCNF` then maps each value-order
//! atom `a1 ≺v_Ai a2` to a Boolean variable `x^Ai_{a1,a2}` and each
//! implication to a clause, adding transitivity and asymmetry axioms so that
//! satisfying assignments correspond to valid completions (Lemma 5).
//!
//! ## Encoding modes
//!
//! The axioms are the bulk of `Φ(Se)` — `O(n³)` transitivity clauses per
//! attribute over `n` realised values, versus `O(|Ω|)` instance clauses —
//! and three modes control how they are produced:
//!
//! * **Eager** ([`AxiomMode::Eager`], the [`EncodeOptions::default`]):
//!   every asymmetry/totality/transitivity instance is materialised at
//!   encode time. `Φ(Se)` is then self-contained: any SAT solver or unit
//!   propagator over [`EncodedSpec::cnf`] is complete without further
//!   cooperation. This is the right mode for one-shot consumers
//!   (`bruteforce` comparisons, `implication`, ad-hoc analysis) and the
//!   paper-faithful baseline.
//! * **Lazy** ([`AxiomMode::Lazy`], the *engine default* via
//!   [`ResolutionConfig`](crate::framework::ResolutionConfig)): the dense
//!   `attr × lo × hi` variable table is still fully allocated (`O(n²)`),
//!   but **no** axiom clauses are emitted. Consumers drive solving through
//!   the [`cr_sat::LazyAxiomSource`] hook —
//!   [`EncodedSpec::violated_axioms`] inspects a candidate assignment via
//!   the dense table and returns exactly the axiom instances the candidate
//!   violates (or that became unit under it), which the solver/propagator
//!   then injects and re-checks until the theory is satisfied. Resolution
//!   outcomes are **identical** to eager mode (differentially tested, see
//!   below); round-0 encode cost drops from `O(n³)` to `O(n²)`.
//! * **Guarded CFDs** ([`EncodeOptions::guarded_cfds`], orthogonal to the
//!   axiom mode): each CFD's instance constraints form a retractable
//!   clause group, which is what lets the incremental resolution engine
//!   absorb out-of-domain user answers without ever rebuilding. The full
//!   emission → activation → retraction lifecycle is documented in the
//!   `cnf` module docs; the engine side lives in `framework`'s module
//!   docs. Lazily injected axiom clauses are never guarded — they are
//!   theory-valid regardless of any CFD, so they survive retraction.
//!
//! ## Compiled constraint programs
//!
//! Every encode — any mode — projects the entity through a dataset-level
//! [`CompiledProgram`]. The lifecycle is **build once per dataset →
//! project per entity → extend per round**:
//!
//! 1. *Build once per dataset.* [`CompiledProgram::compile`] derives, from
//!    Σ/Γ plus the dataset's shared `ValueTable`, everything per-entity
//!    encoding would otherwise re-derive: each constraint's sorted
//!    referenced-attribute projection key, its premise decomposed into
//!    order premises, binary tuple comparisons and per-side constant
//!    comparisons (pre-resolved to dense global value ids), and each CFD's
//!    pattern tableau in dense-id form. Dataset generators compile once
//!    and stamp the program onto every entity specification
//!    (`Specification::set_compiled_program`); `Specification` otherwise
//!    compiles lazily (without a table) on first encode, and clones share
//!    the cache. [`compile_count`] counts compilations so
//!    `bench_incremental --smoke` can enforce compile-once-per-dataset in
//!    CI.
//! 2. *Project per entity.* `Instantiation(Se)` walks instance-local
//!    `u32` rows against the compiled tableaus: projection grouping sorts
//!    packed integer keys, unary conjuncts are evaluated once per distinct
//!    projection (never per ordered pair), and CFD patterns resolve by
//!    global-id lookup. A `debug_assert` rejects projecting a program
//!    compiled against one `ValueTable` onto an entity interned against
//!    another (in release the dense-id shortcuts are simply bypassed).
//! 3. *Extend per round.* [`EncodedSpec::extend_with_input`] reuses the
//!    compiled premise shapes to filter Σ and locate affected CFDs; the
//!    program itself never changes during a resolution (user input adds
//!    tuples and values, not constraints), so every round of every entity
//!    of a dataset shares one `Arc<CompiledProgram>` — including across
//!    the `resolve_all_parallel` thread fan-out (`CompiledProgram` is
//!    immutable after compile, hence freely `Send + Sync`-shared; entities
//!    only read it).
//!
//! The guarded-CFD mode interacts with the program only at *emission*: the
//! compiled tableau decides which instances a CFD produces, the guard
//! machinery decides which clause group they land in, and re-emission
//! after value growth re-reads the same compiled pattern (resolving any
//! grown, non-table value by `Value` lookup). The pre-compilation
//! per-entity derivation survives as the differential baseline
//! (`tests/lazy_differential.rs` proves compiled ≡ reference Ω(Se) exactly
//! on the seed datasets and randomized scenarios).
//!
//! **Defaults.** [`EncodeOptions::default`] is *eager and unguarded* so
//! that standalone `EncodedSpec::encode` + `Solver::from_cnf` pipelines
//! stay complete with zero cooperation. The resolution engine defaults to
//! *lazy* ([`EncodeOptions::lazy`] via `ResolutionConfig::default`) and
//! adds guarded CFDs on top; the two defaults intentionally differ and are
//! each documented where they apply. Both defaults run the compiled
//! projection — the program is orthogonal to the axiom and guard modes.
//!
//! **Differential testing.** Lazy vs eager vs from-scratch resolution are
//! proven outcome-identical on the four seed datasets
//! (`tests/incremental_differential.rs`, `bench_incremental --smoke`) and
//! on randomized scenarios from `cr_data::gen`
//! (`tests/lazy_differential.rs`), including out-of-domain and CFD-LHS
//! user answers.
//!
//! ## Semantics notes (see DESIGN.md §4)
//!
//! * The value space of attribute `Ai` is its active domain plus `null` when
//!   null occurs; nulls are *strict bottoms* (unit clauses `null ≺v a`),
//!   reflecting "an attribute with value missing is ranked the lowest".
//! * A premise order atom instantiated on equal values is `false` (a value
//!   is never strictly more current than itself) — the instance is dropped.
//! * A conclusion atom on equal values is vacuously satisfied — the instance
//!   is skipped (required for Example 2 of the paper to type-check: ϕ5 fires
//!   on Edith's (r2, r3) whose jobs are both `n/a`).
//! * A CFD whose LHS pattern constant is outside the active domain can never
//!   fire and is skipped; one whose RHS constant is outside the active
//!   domain forces `¬ωX` (the current tuple draws its values from `Ie`).

mod cnf;
mod omega;
mod program;

pub use cnf::{
    ClauseKind, EncodedSpec, ExtendOutcome, GroupId, RecordingAxiomSource, TransientAxiomSource,
};
pub use omega::{Conclusion, InstanceConstraint, OrderAtom, Origin, Premise};
pub(crate) use omega::SplitPlan;
pub use program::{compile_count, CompiledProgram};

/// The instance constraints Ω(Se) via the **reference** (pre-compilation)
/// per-entity instantiation — exposed for differential tests and the
/// `compile_program` criterion bench only.
#[doc(hidden)]
pub fn omega_reference(spec: &crate::spec::Specification) -> Vec<InstanceConstraint> {
    omega::instantiate_reference(spec).omega
}

/// The instance constraints Ω(Se) via the compiled-program projection —
/// the production path, exposed alongside [`omega_reference`] for
/// differential tests and benches.
#[doc(hidden)]
pub fn omega_compiled(spec: &crate::spec::Specification) -> Vec<InstanceConstraint> {
    omega::instantiate(spec).omega
}

use cr_types::{AttrId, ValueId};

/// How the order axioms (asymmetry, totality, transitivity) of `Φ(Se)` are
/// produced — see the "Encoding modes" section of the [module docs](self).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AxiomMode {
    /// Materialise every axiom instance at encode time: `O(n³)` transitivity
    /// clauses per attribute (the paper's encoding). `Φ(Se)` is
    /// self-contained.
    #[default]
    Eager,
    /// Allocate the dense order-variable table but emit no axiom clauses;
    /// consumers instantiate violated/unit instances on demand through
    /// [`cr_sat::LazyAxiomSource`] (see [`EncodedSpec::violated_axioms`]).
    Lazy,
}

/// Options controlling CNF generation.
#[derive(Clone, Copy, Debug)]
pub struct EncodeOptions {
    /// Eager or lazy order-axiom generation. [`EncodeOptions::default`] is
    /// [`AxiomMode::Eager`] (self-contained CNF for standalone consumers);
    /// the resolution engine defaults to [`AxiomMode::Lazy`] via
    /// [`ResolutionConfig::default`](crate::framework::ResolutionConfig).
    pub axioms: AxiomMode,
    /// Include totality clauses `x^A_{a,b} ∨ x^A_{b,a}` for every value pair
    /// (eagerly or through the lazy source, per [`EncodeOptions::axioms`]).
    ///
    /// **Reproduction finding.** The paper's encoding has transitivity and
    /// asymmetry but *not* totality, so satisfying assignments of `Φ(Se)`
    /// are partial orders that may not extend to a valid completion, and
    /// literals can hold in every valid completion without being implied by
    /// `Φ(Se)` (Lemmas 5/6 break on corner cases — see
    /// `encoding_gaps::paper_encoding_misses_disjunctive_facts` and
    /// DESIGN.md §4). With totality the models of `Φ(Se)` are exactly the
    /// value-level completions. Default `true`; set `false` for the
    /// paper-faithful ablation.
    pub totality: bool,
    /// Emit every CFD's instance constraints as a *guard-literal clause
    /// group* (see the guard-group lifecycle in the `cnf` module docs).
    /// Guarded CFD clauses carry an extra `¬g` literal and are only active
    /// while `g` is asserted — via [`EncodedSpec::active_guards`] units in
    /// fresh solvers, or as persistent assumptions on the incremental
    /// engine's warm solver — which makes them *retractable*: when a user
    /// answer introduces a new value, the affected CFDs' stale groups are
    /// withdrawn and re-emitted over the grown value space instead of
    /// rebuilding the whole encoding. Default `false` (one-shot encodings
    /// never retract and skip the guard plumbing); the incremental
    /// resolution engine turns it on. Orthogonal to the compiled
    /// constraint program (see the module docs): the compiled CFD tableau
    /// decides *which* instances are emitted, this flag decides whether
    /// they land in a retractable group.
    pub guarded_cfds: bool,
    /// Emit **every revision-sensitive** clause retractably, not just the
    /// CFDs: base currency orders land in one clause group per tuple-level
    /// order pair, Σ instances in one group per currency constraint, and
    /// user-answer rankings in per-pair groups — so push-based correction
    /// ingestion ([`crate::ingest`]) can withdraw an upstream CFD, a
    /// previously-asserted order or a user answer, or replace a tuple's
    /// attribute value, all without rebuilding the encoding. Implies the
    /// full guard-group lifecycle of [`EncodeOptions::guarded_cfds`] and
    /// additionally maintains per-value *liveness* refcounts (a value whose
    /// last occurrence is revised away is retired from the query surface —
    /// tops, candidates, ωX premises — while its order variables stay
    /// allocated). Default `false`: one-shot encodings and the ordinary
    /// interactive engine skip the extra guard variables.
    pub revisable: bool,
    /// Retain the instance constraints Ω(Se) as structured data
    /// ([`EncodedSpec::omega`]) alongside their clauses. Default `false`:
    /// after clause conversion the engine derives everything it needs —
    /// including the suggestion step's true-value derivation rules — back
    /// from the clause arena via [`EncodedSpec::order_atom`] (the Ω-free
    /// memory diet; per-entity Ω retention was the largest allocation
    /// between the engine and million-entity residency). Turn it on for
    /// differential tests and ad-hoc inspection of the instantiation
    /// (`true_der` vs its retained-Ω reference is proven
    /// suggestion-for-suggestion identical in
    /// `cr-core/tests/omega_free_rules.rs`).
    pub retain_omega: bool,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            axioms: AxiomMode::Eager,
            totality: true,
            guarded_cfds: false,
            revisable: false,
            retain_omega: false,
        }
    }
}

impl EncodeOptions {
    /// Lazy axiom instantiation with totality, unguarded — what
    /// [`ResolutionConfig::default`](crate::framework::ResolutionConfig)
    /// uses (the engine adds guarded CFDs itself).
    pub fn lazy() -> Self {
        EncodeOptions { axioms: AxiomMode::Lazy, ..Default::default() }
    }

    /// The fully materialised encoding (synonym of [`EncodeOptions::default`],
    /// spelled out for differential-test call sites).
    pub fn eager() -> Self {
        EncodeOptions::default()
    }

    /// The encoding exactly as described in Section V-A of the paper
    /// (eager, no totality clauses).
    pub fn paper_faithful() -> Self {
        EncodeOptions { totality: false, ..Default::default() }
    }

    /// These options with guarded CFD emission enabled.
    pub fn with_guarded_cfds(self) -> Self {
        EncodeOptions { guarded_cfds: true, ..self }
    }

    /// These options with full revision support enabled (implies guarded
    /// CFDs — see [`EncodeOptions::revisable`]).
    pub fn with_revisable(self) -> Self {
        EncodeOptions { revisable: true, guarded_cfds: true, ..self }
    }

    /// These options with Ω(Se) retained as structured data (differential
    /// tests and inspection — see [`EncodeOptions::retain_omega`]).
    pub fn with_retained_omega(self) -> Self {
        EncodeOptions { retain_omega: true, ..self }
    }

    /// True iff axioms are lazily instantiated.
    pub fn is_lazy(&self) -> bool {
        self.axioms == AxiomMode::Lazy
    }
}

/// A value-order literal `(attr, lo, hi)` read as `lo ≺v_attr hi`, plus a
/// sign for deduced results.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ValuePair {
    /// The attribute whose order is constrained.
    pub attr: AttrId,
    /// The less-current value.
    pub lo: ValueId,
    /// The more-current value.
    pub hi: ValueId,
}
