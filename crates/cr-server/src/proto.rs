//! The typed request/response protocol.
//!
//! Every client-visible operation of the serving layer is a [`Request`]
//! wrapped in a versioned [`Envelope`] (`cr_types::wire`); the server
//! answers with a [`Reply`] echoing the request id and carrying either a
//! [`Response`] or a typed [`ServeError`]. Both directions travel as a
//! [`Message`] encoded with the same hand-rolled binary codec the durable
//! log uses — payload codecs are shared with `cr_store::event`
//! (`encode_input`, `encode_revision`, `encode_causal`), so a request
//! byte string is decodable by exactly the machinery that will replay it.
//!
//! # Versioning and totality
//!
//! Every encoded [`Message`] begins with [`PROTO_VERSION`]; decoders
//! accept exactly the versions they know and fail with
//! [`CodecError::UnsupportedVersion`] otherwise. Decoding is **total**:
//! any byte string yields a value or a typed [`CodecError`], never a
//! panic — the proptests assert roundtrip plus
//! truncation-at-every-byte = `CodecError::Truncated` for every record,
//! mirroring the durable-log codec suite.

use cr_core::causal::CausalRevision;
use cr_core::framework::DeductionMethod;
use cr_core::ingest::Revision;
use cr_core::spec::UserInput;
use cr_store::event::{
    decode_causal, decode_input, decode_revision, encode_causal, encode_input, encode_revision,
};
use cr_types::codec::{decode_value, encode_value, CodecError, Dec, Enc};
use cr_types::wire::{decode_envelope, encode_envelope, Envelope, RequestId};
use cr_types::{AttrId, Value};

/// Protocol format version; bumped on any incompatible encoding change.
pub const PROTO_VERSION: u8 = 1;

/// One client-visible operation on a durable session.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Is the session's current specification valid? (Fig. 4 step 1.)
    IsValid,
    /// Deduce implied currency orders (Fig. 4 step 2).
    Deduce {
        /// Deduction algorithm to run.
        method: DeductionMethod,
    },
    /// Run validity → deduction → true-value extraction (three budget
    /// phases) and return the per-attribute true values.
    TrueValues {
        /// Deduction algorithm to run.
        method: DeductionMethod,
    },
    /// Full suggestion pipeline (four budget phases): what should the
    /// user be asked, with which candidate values?
    Suggest {
        /// Deduction algorithm to run.
        method: DeductionMethod,
    },
    /// Mutation: absorb one round of user input durably.
    ApplyInput {
        /// The user's attribute → value answers.
        input: UserInput,
    },
    /// Mutation: ingest causally-stamped corrections as one atomic batch.
    IngestCausal {
        /// The stamped events, in delivery order.
        events: Vec<CausalRevision>,
    },
    /// Mutation: absorb plain (unstamped) revisions as one atomic batch.
    AbsorbBatch {
        /// The revisions, in delivery order.
        revs: Vec<Revision>,
    },
    /// Mutation: append a snapshot record at the current state.
    Snapshot,
}

impl Request {
    /// Whether the request mutates the durable log (and therefore must
    /// carry an idempotency key to be safely retried).
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            Request::ApplyInput { .. }
                | Request::IngestCausal { .. }
                | Request::AbsorbBatch { .. }
                | Request::Snapshot
        )
    }

    /// Deadline-budget phases the request spends when executed: reads
    /// spend one phase per engine step (`TrueValues` = 3, `Suggest` = 4),
    /// mutations are atomic and spend one.
    pub fn phases(&self) -> u64 {
        match self {
            Request::IsValid | Request::Deduce { .. } => 1,
            Request::TrueValues { .. } => 3,
            Request::Suggest { .. } => 4,
            _ => 1,
        }
    }

    /// Short stable name for telemetry and bench labels.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::IsValid => "is_valid",
            Request::Deduce { .. } => "deduce",
            Request::TrueValues { .. } => "true_values",
            Request::Suggest { .. } => "suggest",
            Request::ApplyInput { .. } => "apply_input",
            Request::IngestCausal { .. } => "ingest_causal",
            Request::AbsorbBatch { .. } => "absorb_batch",
            Request::Snapshot => "snapshot",
        }
    }
}

/// A successful answer to a [`Request`] (same order of variants).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::IsValid`].
    Valid(bool),
    /// Answer to [`Request::Deduce`].
    Deduced {
        /// False iff the specification was invalid (nothing deducible).
        found: bool,
        /// Number of deduced order pairs when `found`.
        order_pairs: u64,
    },
    /// Answer to [`Request::TrueValues`]: one slot per attribute, `None`
    /// = still ambiguous. Empty = the specification was invalid.
    TrueValues {
        /// Per-attribute true values.
        values: Vec<Option<Value>>,
    },
    /// Answer to [`Request::Suggest`]. Both empty = invalid or nothing
    /// to ask.
    Suggest {
        /// Attributes to ask the user about, with candidate values.
        ask: Vec<(AttrId, Vec<Value>)>,
        /// Attributes derivable from the selected conflict-free rules.
        derived: Vec<AttrId>,
    },
    /// Answer to [`Request::ApplyInput`].
    Applied {
        /// The engine's `|Ot|` extension size.
        added: u64,
    },
    /// Answer to [`Request::IngestCausal`].
    Ingested {
        /// Effective plain revisions applied (after dedup/buffering).
        effective: u64,
        /// The session epoch after the batch committed.
        epoch: u64,
    },
    /// Answer to [`Request::AbsorbBatch`].
    Absorbed {
        /// The session epoch after the batch committed.
        epoch: u64,
        /// Per-event applied flags (`false` = quarantined).
        applied: Vec<bool>,
    },
    /// Answer to [`Request::Snapshot`].
    Snapshotted {
        /// Durable log length after the snapshot landed.
        log_bytes: u64,
    },
}

/// A typed serving failure. Every variant is actionable by the client:
/// back off, retry, or give up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed the request — the tenant's token bucket is
    /// empty or its queue is full. Retry no sooner than `retry_after`
    /// ticks from now (plus client backoff/jitter).
    Overloaded {
        /// Minimum ticks until the tenant's budget can admit this
        /// request again.
        retry_after: u64,
    },
    /// The request ran past its deadline. `queued` tells where: `true` =
    /// cancelled at queue-dequeue time without touching the engine,
    /// `false` = expired between phases mid-request.
    DeadlineExceeded {
        /// The absolute deadline tick the request carried.
        deadline: u64,
        /// The tick the request had reached when it expired.
        now: u64,
        /// Whether it died in the queue (never executed).
        queued: bool,
    },
    /// The target session was never opened on this server.
    UnknownSession {
        /// The unknown session id.
        session: u64,
    },
    /// The durable store failed (I/O, corruption where not tolerable).
    Store {
        /// Human-readable store error.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { retry_after } => {
                write!(f, "overloaded: retry after {retry_after} ticks")
            }
            ServeError::DeadlineExceeded { deadline, now, queued } => write!(
                f,
                "deadline {deadline} exceeded at tick {now} ({})",
                if *queued { "cancelled in queue" } else { "expired mid-request" }
            ),
            ServeError::UnknownSession { session } => {
                write!(f, "unknown session {session}")
            }
            ServeError::Store { message } => write!(f, "store error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The server's answer to one request: the echoed request id plus either
/// a [`Response`] or a [`ServeError`].
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// The id of the request this answers.
    pub request_id: RequestId,
    /// The outcome.
    pub outcome: Result<Response, ServeError>,
}

/// A wire message: what actually travels on the (fault-injectable)
/// channel, in either direction.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Client → server: an enveloped request.
    Request {
        /// Routing + lifecycle metadata.
        env: Envelope,
        /// The operation.
        req: Request,
    },
    /// Server → client: a reply.
    Reply(Reply),
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

const REQ_IS_VALID: u8 = 0;
const REQ_DEDUCE: u8 = 1;
const REQ_TRUE_VALUES: u8 = 2;
const REQ_SUGGEST: u8 = 3;
const REQ_APPLY_INPUT: u8 = 4;
const REQ_INGEST_CAUSAL: u8 = 5;
const REQ_ABSORB_BATCH: u8 = 6;
const REQ_SNAPSHOT: u8 = 7;

const RESP_VALID: u8 = 0;
const RESP_DEDUCED: u8 = 1;
const RESP_TRUE_VALUES: u8 = 2;
const RESP_SUGGEST: u8 = 3;
const RESP_APPLIED: u8 = 4;
const RESP_INGESTED: u8 = 5;
const RESP_ABSORBED: u8 = 6;
const RESP_SNAPSHOTTED: u8 = 7;

const ERR_OVERLOADED: u8 = 0;
const ERR_DEADLINE: u8 = 1;
const ERR_UNKNOWN_SESSION: u8 = 2;
const ERR_STORE: u8 = 3;

const MSG_REQUEST: u8 = 0;
const MSG_REPLY: u8 = 1;

fn put_method(e: &mut Enc, m: DeductionMethod) {
    e.put_u8(match m {
        DeductionMethod::UnitPropagation => 0,
        DeductionMethod::NaiveSat => 1,
    });
}

fn get_method(d: &mut Dec<'_>) -> Result<DeductionMethod, CodecError> {
    match d.u8()? {
        0 => Ok(DeductionMethod::UnitPropagation),
        1 => Ok(DeductionMethod::NaiveSat),
        tag => Err(CodecError::BadTag { what: "DeductionMethod", tag }),
    }
}

fn get_usize(d: &mut Dec<'_>) -> Result<usize, CodecError> {
    usize::try_from(d.varint()?).map_err(|_| CodecError::BadVarint)
}

fn put_attr(e: &mut Enc, attr: AttrId) {
    e.put_varint(u64::from(attr.0));
}

fn get_attr(d: &mut Dec<'_>) -> Result<AttrId, CodecError> {
    u16::try_from(d.varint()?).map(AttrId).map_err(|_| CodecError::BadVarint)
}

/// Encodes a [`Request`] body.
pub fn encode_request(e: &mut Enc, req: &Request) {
    match req {
        Request::IsValid => e.put_u8(REQ_IS_VALID),
        Request::Deduce { method } => {
            e.put_u8(REQ_DEDUCE);
            put_method(e, *method);
        }
        Request::TrueValues { method } => {
            e.put_u8(REQ_TRUE_VALUES);
            put_method(e, *method);
        }
        Request::Suggest { method } => {
            e.put_u8(REQ_SUGGEST);
            put_method(e, *method);
        }
        Request::ApplyInput { input } => {
            e.put_u8(REQ_APPLY_INPUT);
            encode_input(e, input);
        }
        Request::IngestCausal { events } => {
            e.put_u8(REQ_INGEST_CAUSAL);
            e.put_varint(events.len() as u64);
            for ev in events {
                encode_causal(e, ev);
            }
        }
        Request::AbsorbBatch { revs } => {
            e.put_u8(REQ_ABSORB_BATCH);
            e.put_varint(revs.len() as u64);
            for rev in revs {
                encode_revision(e, rev);
            }
        }
        Request::Snapshot => e.put_u8(REQ_SNAPSHOT),
    }
}

/// Decodes a [`Request`] body.
pub fn decode_request(d: &mut Dec<'_>) -> Result<Request, CodecError> {
    match d.u8()? {
        REQ_IS_VALID => Ok(Request::IsValid),
        REQ_DEDUCE => Ok(Request::Deduce { method: get_method(d)? }),
        REQ_TRUE_VALUES => Ok(Request::TrueValues { method: get_method(d)? }),
        REQ_SUGGEST => Ok(Request::Suggest { method: get_method(d)? }),
        REQ_APPLY_INPUT => Ok(Request::ApplyInput { input: decode_input(d)? }),
        REQ_INGEST_CAUSAL => {
            let count = get_usize(d)?;
            let mut events = Vec::new();
            for _ in 0..count {
                events.push(decode_causal(d)?);
            }
            Ok(Request::IngestCausal { events })
        }
        REQ_ABSORB_BATCH => {
            let count = get_usize(d)?;
            let mut revs = Vec::new();
            for _ in 0..count {
                revs.push(decode_revision(d)?);
            }
            Ok(Request::AbsorbBatch { revs })
        }
        REQ_SNAPSHOT => Ok(Request::Snapshot),
        tag => Err(CodecError::BadTag { what: "Request", tag }),
    }
}

fn put_opt_value(e: &mut Enc, v: &Option<Value>) {
    match v {
        None => e.put_u8(0),
        Some(v) => {
            e.put_u8(1);
            encode_value(e, v);
        }
    }
}

fn get_opt_value(d: &mut Dec<'_>) -> Result<Option<Value>, CodecError> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(decode_value(d)?)),
        tag => Err(CodecError::BadTag { what: "Option<Value>", tag }),
    }
}

/// Encodes a [`Response`] body.
pub fn encode_response(e: &mut Enc, resp: &Response) {
    match resp {
        Response::Valid(v) => {
            e.put_u8(RESP_VALID);
            e.put_u8(u8::from(*v));
        }
        Response::Deduced { found, order_pairs } => {
            e.put_u8(RESP_DEDUCED);
            e.put_u8(u8::from(*found));
            e.put_varint(*order_pairs);
        }
        Response::TrueValues { values } => {
            e.put_u8(RESP_TRUE_VALUES);
            e.put_varint(values.len() as u64);
            for v in values {
                put_opt_value(e, v);
            }
        }
        Response::Suggest { ask, derived } => {
            e.put_u8(RESP_SUGGEST);
            e.put_varint(ask.len() as u64);
            for (attr, candidates) in ask {
                put_attr(e, *attr);
                e.put_varint(candidates.len() as u64);
                for v in candidates {
                    encode_value(e, v);
                }
            }
            e.put_varint(derived.len() as u64);
            for attr in derived {
                put_attr(e, *attr);
            }
        }
        Response::Applied { added } => {
            e.put_u8(RESP_APPLIED);
            e.put_varint(*added);
        }
        Response::Ingested { effective, epoch } => {
            e.put_u8(RESP_INGESTED);
            e.put_varint(*effective);
            e.put_varint(*epoch);
        }
        Response::Absorbed { epoch, applied } => {
            e.put_u8(RESP_ABSORBED);
            e.put_varint(*epoch);
            e.put_varint(applied.len() as u64);
            for a in applied {
                e.put_u8(u8::from(*a));
            }
        }
        Response::Snapshotted { log_bytes } => {
            e.put_u8(RESP_SNAPSHOTTED);
            e.put_varint(*log_bytes);
        }
    }
}

fn get_bool(d: &mut Dec<'_>, what: &'static str) -> Result<bool, CodecError> {
    match d.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(CodecError::BadTag { what, tag }),
    }
}

/// Decodes a [`Response`] body.
pub fn decode_response(d: &mut Dec<'_>) -> Result<Response, CodecError> {
    match d.u8()? {
        RESP_VALID => Ok(Response::Valid(get_bool(d, "Response::Valid")?)),
        RESP_DEDUCED => Ok(Response::Deduced {
            found: get_bool(d, "Response::Deduced")?,
            order_pairs: d.varint()?,
        }),
        RESP_TRUE_VALUES => {
            let count = get_usize(d)?;
            let mut values = Vec::new();
            for _ in 0..count {
                values.push(get_opt_value(d)?);
            }
            Ok(Response::TrueValues { values })
        }
        RESP_SUGGEST => {
            let ask_count = get_usize(d)?;
            let mut ask = Vec::new();
            for _ in 0..ask_count {
                let attr = get_attr(d)?;
                let candidate_count = get_usize(d)?;
                let mut candidates = Vec::new();
                for _ in 0..candidate_count {
                    candidates.push(decode_value(d)?);
                }
                ask.push((attr, candidates));
            }
            let derived_count = get_usize(d)?;
            let mut derived = Vec::new();
            for _ in 0..derived_count {
                derived.push(get_attr(d)?);
            }
            Ok(Response::Suggest { ask, derived })
        }
        RESP_APPLIED => Ok(Response::Applied { added: d.varint()? }),
        RESP_INGESTED => {
            Ok(Response::Ingested { effective: d.varint()?, epoch: d.varint()? })
        }
        RESP_ABSORBED => {
            let epoch = d.varint()?;
            let count = get_usize(d)?;
            let mut applied = Vec::new();
            for _ in 0..count {
                applied.push(get_bool(d, "Response::Absorbed")?);
            }
            Ok(Response::Absorbed { epoch, applied })
        }
        RESP_SNAPSHOTTED => Ok(Response::Snapshotted { log_bytes: d.varint()? }),
        tag => Err(CodecError::BadTag { what: "Response", tag }),
    }
}

/// Encodes a [`ServeError`] body.
pub fn encode_serve_error(e: &mut Enc, err: &ServeError) {
    match err {
        ServeError::Overloaded { retry_after } => {
            e.put_u8(ERR_OVERLOADED);
            e.put_varint(*retry_after);
        }
        ServeError::DeadlineExceeded { deadline, now, queued } => {
            e.put_u8(ERR_DEADLINE);
            e.put_varint(*deadline);
            e.put_varint(*now);
            e.put_u8(u8::from(*queued));
        }
        ServeError::UnknownSession { session } => {
            e.put_u8(ERR_UNKNOWN_SESSION);
            e.put_varint(*session);
        }
        ServeError::Store { message } => {
            e.put_u8(ERR_STORE);
            e.put_str(message);
        }
    }
}

/// Decodes a [`ServeError`] body.
pub fn decode_serve_error(d: &mut Dec<'_>) -> Result<ServeError, CodecError> {
    match d.u8()? {
        ERR_OVERLOADED => Ok(ServeError::Overloaded { retry_after: d.varint()? }),
        ERR_DEADLINE => Ok(ServeError::DeadlineExceeded {
            deadline: d.varint()?,
            now: d.varint()?,
            queued: get_bool(d, "ServeError::DeadlineExceeded")?,
        }),
        ERR_UNKNOWN_SESSION => Ok(ServeError::UnknownSession { session: d.varint()? }),
        ERR_STORE => Ok(ServeError::Store { message: d.str()?.to_string() }),
        tag => Err(CodecError::BadTag { what: "ServeError", tag }),
    }
}

/// Encodes a [`Reply`] body.
pub fn encode_reply(e: &mut Enc, reply: &Reply) {
    e.put_varint(reply.request_id.0);
    match &reply.outcome {
        Ok(resp) => {
            e.put_u8(0);
            encode_response(e, resp);
        }
        Err(err) => {
            e.put_u8(1);
            encode_serve_error(e, err);
        }
    }
}

/// Decodes a [`Reply`] body.
pub fn decode_reply(d: &mut Dec<'_>) -> Result<Reply, CodecError> {
    let request_id = RequestId(d.varint()?);
    let outcome = match d.u8()? {
        0 => Ok(decode_response(d)?),
        1 => Err(decode_serve_error(d)?),
        tag => return Err(CodecError::BadTag { what: "Reply::outcome", tag }),
    };
    Ok(Reply { request_id, outcome })
}

/// Encodes a full wire [`Message`], version byte first.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_u8(PROTO_VERSION);
    match msg {
        Message::Request { env, req } => {
            e.put_u8(MSG_REQUEST);
            encode_envelope(&mut e, env);
            encode_request(&mut e, req);
        }
        Message::Reply(reply) => {
            e.put_u8(MSG_REPLY);
            encode_reply(&mut e, reply);
        }
    }
    e.into_bytes()
}

/// Decodes a full wire [`Message`], rejecting trailing bytes and unknown
/// protocol versions. Total: any input yields `Ok` or a typed error.
pub fn decode_message(bytes: &[u8]) -> Result<Message, CodecError> {
    let mut d = Dec::new(bytes);
    let version = d.u8()?;
    if version != PROTO_VERSION {
        return Err(CodecError::UnsupportedVersion { what: "Message", version });
    }
    let msg = match d.u8()? {
        MSG_REQUEST => {
            let env = decode_envelope(&mut d)?;
            let req = decode_request(&mut d)?;
            Message::Request { env, req }
        }
        MSG_REPLY => Message::Reply(decode_reply(&mut d)?),
        tag => return Err(CodecError::BadTag { what: "Message", tag }),
    };
    d.finish()?;
    Ok(msg)
}
