//! Luby restart sequence.

/// The Luby sequence value `u(i)` scaled by `y`: 1,1,2,1,1,2,4,… times `y`.
///
/// Restart `i` (zero based) gets a conflict budget of `luby(2, i) * base`,
/// the schedule MiniSat made standard.
pub(crate) fn luby(y: f64, mut x: u64) -> f64 {
    // Find the finite subsequence containing x and its position within it.
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::luby;

    #[test]
    fn luby_prefix_matches_reference() {
        let expected = [1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 8.0];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(2.0, i as u64), e, "position {i}");
        }
    }
}
