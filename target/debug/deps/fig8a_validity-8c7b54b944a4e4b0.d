/root/repo/target/debug/deps/fig8a_validity-8c7b54b944a4e4b0.d: crates/cr-bench/src/bin/fig8a_validity.rs Cargo.toml

/root/repo/target/debug/deps/libfig8a_validity-8c7b54b944a4e4b0.rmeta: crates/cr-bench/src/bin/fig8a_validity.rs Cargo.toml

crates/cr-bench/src/bin/fig8a_validity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
