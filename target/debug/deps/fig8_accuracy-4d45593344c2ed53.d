/root/repo/target/debug/deps/fig8_accuracy-4d45593344c2ed53.d: crates/cr-bench/src/bin/fig8_accuracy.rs

/root/repo/target/debug/deps/fig8_accuracy-4d45593344c2ed53: crates/cr-bench/src/bin/fig8_accuracy.rs

crates/cr-bench/src/bin/fig8_accuracy.rs:
