//! Cross-crate integration: the SAT/MaxSAT/clique substrates driven through
//! real encoded specifications.

use conflict_resolution::core::{deduce_order, naive_deduce, EncodedSpec};
use conflict_resolution::data::{nba, person, vjday};
use conflict_resolution::sat::{dimacs, SolveResult, Solver, UnitPropagator, UpOutcome};

#[test]
fn encoded_specs_round_trip_through_dimacs() {
    let spec = vjday::edith_spec();
    let enc = EncodedSpec::encode(&spec);
    let text = dimacs::write(enc.cnf());
    let parsed = dimacs::parse(&text).expect("well-formed DIMACS");
    assert_eq!(parsed.num_vars(), enc.cnf().num_vars());
    assert_eq!(parsed.num_clauses(), enc.cnf().num_clauses());
    let mut a = Solver::from_cnf(enc.cnf());
    let mut b = Solver::from_cnf(&parsed);
    assert_eq!(a.solve(), b.solve());
}

#[test]
fn solver_models_satisfy_dataset_cnfs() {
    let ds = nba::generate(nba::NbaConfig { entities: 5, seed: 21, ..Default::default() });
    for i in 0..ds.len() {
        let enc = EncodedSpec::encode(&ds.spec(i));
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(solver.solve(), SolveResult::Sat);
        let model = solver.model();
        assert!(enc.cnf().eval(&model), "model must satisfy Φ(Se)");
    }
}

#[test]
fn unit_propagation_agrees_with_cdcl_on_implied_literals() {
    let ds = person::generate(person::PersonConfig {
        entities: 4,
        min_tuples: 4,
        max_tuples: 25,
        seed: 33,
    });
    for i in 0..ds.len() {
        let enc = EncodedSpec::encode(&ds.spec(i));
        let mut up = UnitPropagator::new(enc.cnf());
        let implied = match up.run() {
            UpOutcome::Fixpoint { implied } => implied,
            UpOutcome::Conflict => panic!("valid spec"),
        };
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(solver.solve(), SolveResult::Sat);
        for lit in implied {
            assert_eq!(
                solver.solve_with_assumptions(&[lit.negate()]),
                SolveResult::Unsat,
                "UP literal must be CDCL-implied"
            );
        }
    }
}

#[test]
fn deduction_algorithms_agree_on_real_entities() {
    let ds = nba::generate(nba::NbaConfig { entities: 8, seed: 5, ..Default::default() });
    for i in 0..ds.len() {
        let enc = EncodedSpec::encode(&ds.spec(i));
        let up = deduce_order(&enc).expect("valid");
        let naive = naive_deduce(&enc).expect("valid");
        // DeduceOrder ⊆ NaiveDeduce, and in practice they find the same
        // orders on these instances (the paper's observation in Exp-2).
        for attr in ds.schema.attr_ids() {
            for (lo, hi) in up.pairs(attr) {
                assert!(naive.contains(attr, lo, hi));
            }
        }
        assert!(naive.size() >= up.size());
    }
}

#[test]
fn solver_statistics_accumulate() {
    let spec = vjday::george_spec();
    let enc = EncodedSpec::encode(&spec);
    let mut solver = Solver::from_cnf(enc.cnf());
    assert_eq!(solver.solve(), SolveResult::Sat);
    let stats = *solver.stats();
    assert!(stats.propagations > 0);
    // Re-solving keeps the solver usable and monotonically adds stats.
    assert_eq!(solver.solve(), SolveResult::Sat);
    assert!(solver.stats().propagations >= stats.propagations);
}
