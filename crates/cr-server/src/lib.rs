//! Resolution-as-a-service: a robustness-first serving layer over durable
//! resolution sessions.
//!
//! PRs 5–8 made correction ingestion causal (`cr_core::causal`), durable
//! (`cr-store`'s write-ahead log) and batched with epoch-consistent
//! reads; this crate turns the library into a *system*: a message-based
//! front-end over [`SessionStore`](cr_store::SessionStore) built for many
//! concurrent, unreliable clients.
//!
//! * [`proto`] — the typed request/response protocol: every operation is
//!   a [`Request`] in a versioned [`Envelope`](cr_types::wire::Envelope),
//!   wire-encodable with the same total codec the durable log uses (any
//!   byte string decodes to a value or a typed error — fuzzable by
//!   construction);
//! * [`admission`] — per-tenant token buckets and bounded queues: an
//!   overloaded tenant is shed with a typed
//!   [`ServeError::Overloaded`] carrying an honest retry-after hint,
//!   never queued unboundedly;
//! * [`server`] — the deterministic tick-driven front-end: fair
//!   round-robin dispatch under a global in-flight cap (one hot tenant
//!   cannot starve others), deadlines with cancellation at queue-dequeue
//!   time and mid-request phase expiry
//!   ([`cr_core::deadline::PhaseDeadline`]), and idempotency keys so
//!   client retries of mutations are answered from the store's reply
//!   ledger instead of double-applied — with the causal frontier's
//!   `(source, hlc)` dedup as the durable backstop underneath.
//!
//! The exactly-once-under-retry contract is verified end to end by the
//! simulated client fleet in `cr-data` (drop / duplicate / delay /
//! reorder / disconnect faults with exponential-backoff-plus-jitter
//! retries) and enforced in CI by the seeded `serve_soak` binary.

pub mod admission;
pub mod proto;
pub mod server;

pub use admission::{AdmissionConfig, TokenBucket};
pub use proto::{
    decode_message, encode_message, Message, Reply, Request, Response, ServeError,
    PROTO_VERSION,
};
pub use server::{ServeTelemetry, Server};
