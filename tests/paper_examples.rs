//! Integration tests reproducing the paper's worked examples end to end.

use conflict_resolution::core::framework::{Resolver, SilentOracle};
use conflict_resolution::core::{
    deduce_order, possible_current_values, suggest, true_values_from_orders, EncodedSpec,
    PartialOrders,
};
use conflict_resolution::data::vjday;
use conflict_resolution::types::{TupleId, Value};

/// Example 2: Edith's true tuple is derived fully automatically by
/// interleaving currency and consistency inferences.
#[test]
fn example_2_edith_resolves_automatically() {
    let spec = vjday::edith_spec();
    let outcome = Resolver::default_config().resolve(&spec, &mut SilentOracle);
    assert!(outcome.valid);
    assert!(outcome.complete);
    assert_eq!(outcome.interactions, 0);
    assert_eq!(
        outcome.resolved.to_tuple().expect("complete").values(),
        vjday::edith_truth().values()
    );
}

/// Example 2's step order: (a) status from ϕ1/ϕ2, (b) kids from ϕ4,
/// (c) job/AC/zip from ϕ5–ϕ7, (d) city from ψ1, (e) county from ϕ8.
#[test]
fn example_2_inference_steps_visible_in_orders() {
    let spec = vjday::edith_spec();
    let enc = EncodedSpec::encode(&spec);
    let od = deduce_order(&enc).expect("valid");
    let s = spec.schema();
    let check = |attr: &str, lo: Value, hi: Value| {
        let a = s.attr_id(attr).expect("attr");
        let lo = enc.value_id(a, &lo).expect("value");
        let hi = enc.value_id(a, &hi).expect("value");
        assert!(od.contains(a, lo, hi), "{attr}: expected order missing");
    };
    // (a) working ≺ retired ≺ deceased.
    check("status", Value::str("working"), Value::str("retired"));
    check("status", Value::str("retired"), Value::str("deceased"));
    // (b) 0 ≺ 3 on kids.
    check("kids", Value::int(0), Value::int(3));
    // (c) 212 ≺ 213 and 415 ≺ 213 on AC.
    check("AC", Value::int(212), Value::int(213));
    check("AC", Value::int(415), Value::int(213));
    // (d) NY ≺ LA and SFC ≺ LA on city, via ψ1 after (c).
    check("city", Value::str("NY"), Value::str("LA"));
    check("city", Value::str("SFC"), Value::str("LA"));
    // (e) Manhattan/Dogtown ≺ Vermont on county, via ϕ8 after (d).
    check("county", Value::str("Manhattan"), Value::str("Vermont"));
    check("county", Value::str("Dogtown"), Value::str("Vermont"));
}

/// Example 3: for George only (name, kids) are automatically derivable.
#[test]
fn example_3_george_partial_deduction() {
    let spec = vjday::george_spec();
    let enc = EncodedSpec::encode(&spec);
    let od = deduce_order(&enc).expect("valid");
    let known = true_values_from_orders(&enc, &od);
    let s = spec.schema();
    assert_eq!(
        known.get(s.attr_id("name").unwrap()),
        Some(&Value::str("George Mendonca"))
    );
    assert_eq!(known.get(s.attr_id("kids").unwrap()), Some(&Value::int(2)));
    assert_eq!(known.known_count(), 2);
}

/// Example 4/paper text: the exact possible current tuples for George have
/// the form (George, x_status, x_job, 2, x_city, x_AC, x_zip, x_county).
#[test]
fn example_4_possible_current_values() {
    let spec = vjday::george_spec();
    let enc = EncodedSpec::encode(&spec);
    let s = spec.schema();
    // status can still be retired or unemployed (working is dominated).
    let status = s.attr_id("status").unwrap();
    let possible: Vec<&Value> = possible_current_values(&enc, status)
        .into_iter()
        .map(|v| enc.value(status, v))
        .collect();
    assert_eq!(possible.len(), 2);
    assert!(possible.contains(&&Value::str("retired")));
    assert!(possible.contains(&&Value::str("unemployed")));
    // kids is pinned to 2.
    let kids = s.attr_id("kids").unwrap();
    assert_eq!(possible_current_values(&enc, kids).len(), 1);
}

/// Example 6: supplying the order r6 ≺_status r5 as a partial temporal
/// order Ot makes George's true tuple derivable.
#[test]
fn example_6_order_extension_completes_george() {
    let spec = vjday::george_spec();
    let mut ot = PartialOrders::empty(spec.schema().arity());
    let status = spec.schema().attr_id("status").unwrap();
    // r6 is tuple index 2, r5 is index 1 in E2.
    ot.add(status, TupleId(2), TupleId(1));
    let extended = spec.extend_with_orders(&ot);
    let enc = EncodedSpec::encode(&extended);
    let od = deduce_order(&enc).expect("valid");
    let known = true_values_from_orders(&enc, &od);
    assert!(known.complete(), "Ot = {{r6 ≺status r5}} suffices");
    assert_eq!(
        known.to_tuple().expect("complete").values(),
        vjday::george_truth().values()
    );
}

/// Examples 10–12: the suggestion for George asks exactly for `status` with
/// candidates {retired, unemployed}, deriving job/AC/zip/city/county.
#[test]
fn example_12_george_suggestion() {
    let spec = vjday::george_spec();
    let enc = EncodedSpec::encode(&spec);
    let od = deduce_order(&enc).expect("valid");
    let known = true_values_from_orders(&enc, &od);
    let sug = suggest(&spec, &enc, &od, &known);
    let s = spec.schema();
    let ask: Vec<&str> = sug.ask.keys().map(|a| s.attr_name(*a)).collect();
    assert_eq!(ask, vec!["status"]);
    let candidates = &sug.ask[&s.attr_id("status").unwrap()];
    assert_eq!(candidates.len(), 2);
    for attr in ["job", "AC", "zip", "city", "county"] {
        assert!(
            sug.derived.contains(&s.attr_id(attr).unwrap()),
            "{attr} should be derivable from the suggestion"
        );
    }
}

/// The framework loop on George with a ground-truth user finishes in one
/// interaction and produces Example 6's tuple.
#[test]
fn george_full_loop_with_user() {
    use conflict_resolution::core::framework::GroundTruthOracle;
    let spec = vjday::george_spec();
    let mut oracle = GroundTruthOracle::new(vjday::george_truth());
    let outcome = Resolver::default_config().resolve(&spec, &mut oracle);
    assert!(outcome.complete);
    assert_eq!(outcome.interactions, 1);
    assert_eq!(
        outcome.resolved.to_tuple().expect("complete").values(),
        vjday::george_truth().values()
    );
}
