//! Time-boxed serving-layer soak: the simulated client fleet against the
//! fault-injected wire, across randomized shapes and fault profiles.
//!
//! Loops for `--seconds` wall-clock seconds (default 60) over seeded
//! [`FleetConfig`]s: fleet size, tenant folding, traffic mix and causal
//! timeline shape all vary with the iteration seed, and each iteration
//! cycles through a fault profile — clean wire, drop-heavy, duplicate-heavy,
//! delay/reorder, disconnect-mid-batch, everything at once, and an
//! overload profile (many clients folded onto few tenants against a tight
//! token budget and short queues). Every run is self-verifying
//! ([`run_fleet`]): all operations must be acknowledged within the retry
//! budget, every acknowledged mutation must appear in the durable log
//! **exactly once** (inputs by content, causal events by dedup key, plain
//! revisions by content), overload must shed with typed `Overloaded`
//! errors that clients absorb by honouring the retry-after hint, and the
//! final session state must equal a canonical single-client replay of the
//! surviving log.
//!
//! The soak additionally fails if, across the whole budget, the fault
//! profiles never actually struck (no drops, no duplicates, no idempotent
//! replays, no disconnects, no load-shedding): a soak that exercises
//! nothing must not pass silently.
//!
//! Exits nonzero on any violation, printing the failing **seed and
//! iteration**. Designed for CI: `--seconds 45` keeps the step well under
//! its budget. Flags: `--seconds S` (default 60), `--seed S` (base seed,
//! default 1).

use std::time::Instant;

use cr_bench::{arg_seed, arg_value};
use cr_data::fleet::{run_fleet, ChannelFaults, FleetConfig};
use cr_server::admission::AdmissionConfig;

struct Totals {
    iterations: u64,
    ops: u64,
    retries: u64,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
    disconnects: u64,
    shed: u64,
    idem_replays: u64,
    expired: u64,
    ticks: u64,
}

fn main() {
    let budget: f64 = arg_value("seconds").and_then(|v| v.parse().ok()).unwrap_or(60.0);
    let base_seed = arg_seed(1);

    let mut totals = Totals {
        iterations: 0,
        ops: 0,
        retries: 0,
        dropped: 0,
        duplicated: 0,
        delayed: 0,
        disconnects: 0,
        shed: 0,
        idem_replays: 0,
        expired: 0,
        ticks: 0,
    };
    let start = Instant::now();
    let mut iter = 0u64;
    while start.elapsed().as_secs_f64() < budget {
        // Reproduce any failure with `--seed <base_seed>` and the printed
        // iteration: the failing seed is derived, not sequential.
        let iteration = iter;
        let seed = base_seed.wrapping_add(iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        iter += 1;

        // Small fleets keep one run in the tens of milliseconds so the
        // soak covers many seeds × profiles.
        let mut cfg = FleetConfig {
            seed,
            clients: 2 + (seed % 4) as usize,
            inputs_per_client: 1 + (seed / 5 % 3) as usize,
            reads_per_client: 1 + (seed / 7 % 4) as usize,
            batches_per_client: (seed / 11 % 3) as usize,
            causal_events: 4 + (seed / 13 % 8) as usize,
            ..FleetConfig::default()
        };
        let profile = (iteration % 7) as usize;
        let label = match profile {
            0 => "clean",
            1 => {
                cfg.faults = ChannelFaults { drop: 0.15, ..ChannelFaults::clean() };
                "drop"
            }
            2 => {
                cfg.faults = ChannelFaults {
                    duplicate: 0.3,
                    max_delay: 4,
                    ..ChannelFaults::clean()
                };
                "duplicate"
            }
            3 => {
                cfg.faults =
                    ChannelFaults { delay: 0.5, max_delay: 8, ..ChannelFaults::clean() };
                "delay"
            }
            4 => {
                cfg.faults = ChannelFaults {
                    disconnect: 0.4,
                    disconnect_ticks: 10,
                    ..ChannelFaults::clean()
                };
                "disconnect"
            }
            5 => {
                cfg.faults = ChannelFaults::faulty();
                "all-faults"
            }
            _ => {
                // Overload: clients folded onto two tenants against a
                // tight budget — admission must shed, clients must
                // converge on the sustainable rate.
                cfg.clients = 6 + (seed % 4) as usize;
                cfg.tenants = 2;
                cfg.max_attempts = 40;
                cfg.max_ticks = 30_000;
                cfg.admission = AdmissionConfig {
                    refill_per_tick: 1,
                    burst: 3,
                    queue_cap: 3,
                    max_in_flight: 4,
                    ..AdmissionConfig::default()
                };
                "overload"
            }
        };

        match run_fleet(&cfg) {
            Ok(report) => {
                totals.iterations += 1;
                totals.ops += report.ops;
                totals.retries += report.retries;
                totals.dropped += report.dropped;
                totals.duplicated += report.duplicated;
                totals.delayed += report.delayed;
                totals.disconnects += report.disconnects;
                totals.shed += report.serve.shed_rate + report.serve.shed_queue;
                totals.idem_replays += report.serve.idem_hits;
                totals.expired +=
                    report.serve.expired_in_queue + report.serve.expired_mid_request;
                totals.ticks += report.ticks;
            }
            Err(e) => {
                eprintln!("FAIL: seed {seed} iteration {iteration} (profile {label}): {e}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "serve soak OK: {} fleets in {:.1}s — {} ops acknowledged exactly-once over {} \
         ticks, {} retries, wire {}/{}/{} drop/dup/delay, {} disconnects, {} shed, {} \
         idempotent replays, {} deadline expiries",
        totals.iterations,
        start.elapsed().as_secs_f64(),
        totals.ops,
        totals.ticks,
        totals.retries,
        totals.dropped,
        totals.duplicated,
        totals.delayed,
        totals.disconnects,
        totals.shed,
        totals.idem_replays,
        totals.expired,
    );
    if totals.iterations < 7 {
        eprintln!(
            "FAIL: soak budget too small to cover every fault profile \
             ({} iterations)",
            totals.iterations
        );
        std::process::exit(1);
    }
    // A soak that never exercised its faults must not pass silently.
    let dead = [
        ("drops", totals.dropped),
        ("duplicates", totals.duplicated),
        ("delays", totals.delayed),
        ("disconnects", totals.disconnects),
        ("sheds", totals.shed),
        ("idempotent replays", totals.idem_replays),
        ("retries", totals.retries),
    ];
    for (what, count) in dead {
        if count == 0 {
            eprintln!("FAIL: the soak produced zero {what} — fault injection dead?");
            std::process::exit(1);
        }
    }
}
