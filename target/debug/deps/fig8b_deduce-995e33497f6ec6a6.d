/root/repo/target/debug/deps/fig8b_deduce-995e33497f6ec6a6.d: crates/cr-bench/src/bin/fig8b_deduce.rs Cargo.toml

/root/repo/target/debug/deps/libfig8b_deduce-995e33497f6ec6a6.rmeta: crates/cr-bench/src/bin/fig8b_deduce.rs Cargo.toml

crates/cr-bench/src/bin/fig8b_deduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
