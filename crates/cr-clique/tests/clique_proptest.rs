//! Property tests: exact max clique vs brute force, greedy vs exact.

use proptest::prelude::*;

use cr_clique::{find_max_clique, CliqueStrategy, Graph};

fn build(n: usize, edges: &[(usize, usize)]) -> Graph {
    let mut g = Graph::new(n);
    for &(a, b) in edges {
        g.add_edge(a % n.max(1), b % n.max(1));
    }
    g
}

fn brute_force_max_clique(g: &Graph) -> usize {
    let n = g.len();
    let mut best = 0;
    for mask in 0u32..(1 << n) {
        let members: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        if members.len() > best && g.is_clique(&members) {
            best = members.len();
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exact_matches_brute_force(
        n in 1usize..13,
        edges in prop::collection::vec((0usize..13, 0usize..13), 0..40),
    ) {
        let g = build(n, &edges);
        let exact = find_max_clique(&g, CliqueStrategy::Exact);
        prop_assert!(g.is_clique(&exact));
        prop_assert_eq!(exact.len(), brute_force_max_clique(&g));
    }

    #[test]
    fn greedy_is_a_valid_lower_bound(
        n in 1usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..80),
    ) {
        let g = build(n, &edges);
        let greedy = find_max_clique(&g, CliqueStrategy::Greedy);
        let exact = find_max_clique(&g, CliqueStrategy::Exact);
        prop_assert!(g.is_clique(&greedy));
        prop_assert!(!greedy.is_empty() || g.is_empty());
        prop_assert!(greedy.len() <= exact.len());
        // Greedy result is maximal: no vertex extends it.
        for v in 0..n {
            if !greedy.contains(&v) {
                prop_assert!(!greedy.iter().all(|&u| g.has_edge(u, v)));
            }
        }
    }
}
