/root/repo/target/debug/deps/datasets-7955b93c81272a64.d: tests/datasets.rs

/root/repo/target/debug/deps/datasets-7955b93c81272a64: tests/datasets.rs

tests/datasets.rs:
