/root/repo/target/debug/deps/summary-4393b5b74af9d23a.d: crates/cr-bench/src/bin/summary.rs Cargo.toml

/root/repo/target/debug/deps/libsummary-4393b5b74af9d23a.rmeta: crates/cr-bench/src/bin/summary.rs Cargo.toml

crates/cr-bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
