//! Predicates appearing in the premise `ω` of a currency constraint.

use std::fmt;

use cr_types::{AttrId, Schema, Tuple, Value};

use crate::op::CompOp;

/// Which of the two universally quantified tuples a constant comparison
/// refers to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TupleRef {
    /// The first tuple, `t1`.
    T1,
    /// The second tuple, `t2`.
    T2,
}

impl TupleRef {
    /// Selects the referenced tuple from the pair.
    pub fn pick<'a>(self, t1: &'a Tuple, t2: &'a Tuple) -> &'a Tuple {
        match self {
            TupleRef::T1 => t1,
            TupleRef::T2 => t2,
        }
    }
}

/// One conjunct of a premise `ω` (Section II-A):
///
/// 1. `t1 ≺_Al t2` — an order predicate, resolved symbolically by the
///    encoder;
/// 2. `t1[Al] op t2[Al]` — a tuple comparison, evaluated directly on data;
/// 3. `ti[Al] op c` — a constant comparison, evaluated directly on data.
#[derive(Clone, PartialEq, Debug)]
pub enum Predicate {
    /// `t1 ≺_attr t2`.
    Order {
        /// The attribute whose currency order is referenced.
        attr: AttrId,
    },
    /// `t1[attr] op t2[attr]`.
    TupleCmp {
        /// Compared attribute.
        attr: AttrId,
        /// Comparison operator.
        op: CompOp,
    },
    /// `tuple[attr] op constant`.
    ConstCmp {
        /// Which tuple is compared.
        tuple: TupleRef,
        /// Compared attribute.
        attr: AttrId,
        /// Comparison operator.
        op: CompOp,
        /// The constant right-hand side.
        constant: Value,
    },
}

impl Predicate {
    /// True iff this is an order predicate (encoder-resolved).
    pub fn is_order(&self) -> bool {
        matches!(self, Predicate::Order { .. })
    }

    /// Evaluates a *comparison* predicate on a concrete tuple pair; order
    /// predicates return `None` (they are not data-evaluable — the paper's
    /// `ins(ω, s1, s2)` keeps them as `≺v` literals).
    ///
    /// Comparisons involving a null operand evaluate to **false** (SQL-style
    /// three-valued logic): a missing value asserts nothing about currency.
    /// The paper's `null < k` reading of ϕ4 (Example 2(b)) is still honoured
    /// because nulls are ranked strictly lowest by the encoder's bottom
    /// axioms; evaluating `null < k` to *true* here would instead let a
    /// user-input tuple (null on unanswered attributes, Section III) fire
    /// constraints claiming its answers are *stale* — a contradiction.
    pub fn eval_comparison(&self, t1: &Tuple, t2: &Tuple) -> Option<bool> {
        match self {
            Predicate::Order { .. } => None,
            Predicate::TupleCmp { attr, op } => {
                let (a, b) = (t1.get(*attr), t2.get(*attr));
                Some(!a.is_null() && !b.is_null() && op.eval(a, b))
            }
            Predicate::ConstCmp { tuple, attr, op, constant } => {
                let a = tuple.pick(t1, t2).get(*attr);
                Some(!a.is_null() && !constant.is_null() && op.eval(a, constant))
            }
        }
    }

    /// The attribute the predicate touches.
    pub fn attr(&self) -> AttrId {
        match self {
            Predicate::Order { attr }
            | Predicate::TupleCmp { attr, .. }
            | Predicate::ConstCmp { attr, .. } => *attr,
        }
    }

    /// Renders the predicate with attribute names from `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> PredicateDisplay<'a> {
        PredicateDisplay { pred: self, schema }
    }
}

/// Pretty-printer for a predicate in the paper's syntax.
pub struct PredicateDisplay<'a> {
    pred: &'a Predicate,
    schema: &'a Schema,
}

impl fmt::Display for PredicateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pred {
            Predicate::Order { attr } => {
                write!(f, "t1 <[{}] t2", self.schema.attr_name(*attr))
            }
            Predicate::TupleCmp { attr, op } => {
                let a = self.schema.attr_name(*attr);
                write!(f, "t1[{a}] {op} t2[{a}]")
            }
            Predicate::ConstCmp { tuple, attr, op, constant } => {
                let t = match tuple {
                    TupleRef::T1 => "t1",
                    TupleRef::T2 => "t2",
                };
                let a = self.schema.attr_name(*attr);
                write!(f, "{t}[{a}] {op} ")?;
                crate::fmt_util::write_constant(f, constant)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_types::Tuple;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::new("r", ["status", "kids"]).unwrap()
    }

    #[test]
    fn tuple_cmp_eval() {
        let s = schema();
        let kids = s.attr_id("kids").unwrap();
        let p = Predicate::TupleCmp { attr: kids, op: CompOp::Lt };
        let t1 = Tuple::of([Value::str("working"), Value::int(0)]);
        let t2 = Tuple::of([Value::str("retired"), Value::int(3)]);
        assert_eq!(p.eval_comparison(&t1, &t2), Some(true));
        assert_eq!(p.eval_comparison(&t2, &t1), Some(false));
    }

    #[test]
    fn const_cmp_eval_and_tuple_ref() {
        let s = schema();
        let status = s.attr_id("status").unwrap();
        let p = Predicate::ConstCmp {
            tuple: TupleRef::T2,
            attr: status,
            op: CompOp::Eq,
            constant: Value::str("retired"),
        };
        let t1 = Tuple::of([Value::str("working"), Value::int(0)]);
        let t2 = Tuple::of([Value::str("retired"), Value::int(3)]);
        assert_eq!(p.eval_comparison(&t1, &t2), Some(true));
        assert_eq!(p.eval_comparison(&t2, &t1), Some(false));
    }

    #[test]
    fn order_predicate_is_symbolic() {
        let s = schema();
        let status = s.attr_id("status").unwrap();
        let p = Predicate::Order { attr: status };
        let t = Tuple::of([Value::Null, Value::Null]);
        assert!(p.is_order());
        assert_eq!(p.eval_comparison(&t, &t), None);
    }

    #[test]
    fn display_matches_parser_syntax() {
        let s = schema();
        let status = s.attr_id("status").unwrap();
        let kids = s.attr_id("kids").unwrap();
        assert_eq!(
            Predicate::Order { attr: status }.display(&s).to_string(),
            "t1 <[status] t2"
        );
        assert_eq!(
            Predicate::TupleCmp { attr: kids, op: CompOp::Lt }
                .display(&s)
                .to_string(),
            "t1[kids] < t2[kids]"
        );
        assert_eq!(
            Predicate::ConstCmp {
                tuple: TupleRef::T1,
                attr: status,
                op: CompOp::Eq,
                constant: Value::str("working"),
            }
            .display(&s)
            .to_string(),
            "t1[status] = \"working\""
        );
    }
}
