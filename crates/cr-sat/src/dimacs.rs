//! DIMACS CNF import/export.
//!
//! Handy for debugging encodings against external solvers and for the test
//! suite's crafted instances.

use crate::cnf::Cnf;
use crate::lit::Lit;

/// Errors raised while parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DimacsError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader(String),
    /// A token was not an integer.
    BadToken(String),
    /// A clause was not terminated by `0`.
    UnterminatedClause,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::BadHeader(l) => write!(f, "bad DIMACS header: {l}"),
            DimacsError::BadToken(t) => write!(f, "bad DIMACS token: {t}"),
            DimacsError::UnterminatedClause => write!(f, "clause not terminated by 0"),
        }
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF text into a [`Cnf`]. Comment lines (`c …`) are skipped;
/// the header is validated but the declared counts are advisory.
pub fn parse(text: &str) -> Result<Cnf, DimacsError> {
    let mut cnf = Cnf::new();
    let mut declared_vars: Option<u32> = None;
    let mut current: Vec<Lit> = Vec::new();
    let mut saw_clause_tokens = false;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError::BadHeader(line.to_string()));
            }
            declared_vars = Some(
                parts[1]
                    .parse::<u32>()
                    .map_err(|_| DimacsError::BadHeader(line.to_string()))?,
            );
            continue;
        }
        for tok in line.split_whitespace() {
            let code: i64 = tok
                .parse()
                .map_err(|_| DimacsError::BadToken(tok.to_string()))?;
            saw_clause_tokens = true;
            match Lit::from_dimacs(code) {
                Some(lit) => current.push(lit),
                None => {
                    cnf.add_clause(std::mem::take(&mut current));
                }
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError::UnterminatedClause);
    }
    if let Some(v) = declared_vars {
        cnf.ensure_vars(v);
    }
    let _ = saw_clause_tokens;
    Ok(cnf)
}

/// Serialises a [`Cnf`] to DIMACS text.
pub fn write(cnf: &Cnf) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses()));
    for clause in cnf.clauses() {
        for lit in clause {
            out.push_str(&lit.to_dimacs().to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};

    #[test]
    fn parse_write_round_trip() {
        let text = "c example\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        let round = parse(&write(&cnf)).unwrap();
        assert_eq!(
            round.clauses().collect::<Vec<_>>(),
            cnf.clauses().collect::<Vec<_>>()
        );
    }

    #[test]
    fn parsed_formula_is_solvable() {
        let cnf = parse("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(parse("p cnf x 2\n"), Err(DimacsError::BadHeader(_))));
        assert!(matches!(parse("p cnf 1 1\n1 q 0\n"), Err(DimacsError::BadToken(_))));
        assert!(matches!(parse("p cnf 1 1\n1"), Err(DimacsError::UnterminatedClause)));
    }

    #[test]
    fn multiline_clauses_supported() {
        let cnf = parse("p cnf 3 1\n1\n2\n3 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clause(0).len(), 3);
    }
}
