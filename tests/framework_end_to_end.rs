//! End-to-end framework behaviour across datasets, oracles and failure
//! modes.

use conflict_resolution::core::framework::{
    resolved_fraction, DeductionMethod, GroundTruthOracle, ResolutionConfig, Resolver,
    SilentOracle, UserOracle,
};
use conflict_resolution::core::{Accuracy, Specification, UserInput};
use conflict_resolution::data::{career, nba, person, vjday};
use conflict_resolution::types::{Schema, Tuple, Value};

#[test]
fn more_rounds_never_hurt() {
    let ds = person::generate(person::PersonConfig {
        entities: 8,
        min_tuples: 4,
        max_tuples: 30,
        seed: 5,
    });
    let mut prev = -1.0f64;
    for k in 0..=3 {
        let resolver = Resolver::new(ResolutionConfig { max_rounds: k, ..Default::default() });
        let mut acc = Accuracy::new();
        for i in 0..ds.len() {
            let mut oracle = GroundTruthOracle::with_cap(ds.truth(i).clone(), 1);
            let outcome = resolver.resolve(&ds.spec(i), &mut oracle);
            assert!(outcome.valid, "entity {i} became invalid at k={k}");
            acc.add_entity(&ds.entities[i].0, ds.truth(i), &outcome.resolved);
        }
        let frac = acc.true_value_fraction();
        assert!(
            frac >= prev - 1e-9,
            "accuracy must be monotone in rounds: {frac} < {prev} at k={k}"
        );
        prev = frac;
    }
}

#[test]
fn naive_deduction_resolves_at_least_as_much_as_up() {
    let ds = nba::generate(nba::NbaConfig { entities: 6, seed: 9, ..Default::default() });
    for i in 0..ds.len() {
        let spec = ds.spec(i);
        let up = Resolver::new(ResolutionConfig {
            max_rounds: 0,
            deduction: DeductionMethod::UnitPropagation,
            ..Default::default()
        })
        .resolve(&spec, &mut SilentOracle);
        let naive = Resolver::new(ResolutionConfig {
            max_rounds: 0,
            deduction: DeductionMethod::NaiveSat,
            ..Default::default()
        })
        .resolve(&spec, &mut SilentOracle);
        assert!(
            naive.resolved.known_count() >= up.resolved.known_count(),
            "entity {i}: complete deduction found fewer values"
        );
        // Where both deduced, they agree.
        for attr in spec.schema().attr_ids() {
            if let (Some(a), Some(b)) = (up.resolved.get(attr), naive.resolved.get(attr)) {
                assert_eq!(a, b, "entity {i}, attr {attr:?}");
            }
        }
    }
}

#[test]
fn career_mostly_resolves_without_interaction() {
    let ds = career::generate(career::CareerConfig { entities: 30, seed: 3, ..Default::default() });
    let resolver = Resolver::default_config();
    let mut complete = 0;
    for i in 0..ds.len() {
        let outcome = resolver.resolve(&ds.spec(i), &mut SilentOracle);
        if outcome.complete {
            complete += 1;
        }
    }
    // The paper reports 78% of CAREER true values derivable automatically.
    assert!(
        complete >= ds.len() / 2,
        "only {complete}/{} researchers auto-resolved",
        ds.len()
    );
}

/// An oracle that answers with *wrong* values must still terminate (the
/// framework can become invalid, but never panics or loops).
struct AdversarialOracle;

impl UserOracle for AdversarialOracle {
    fn provide(
        &mut self,
        _schema: &Schema,
        suggestion: &conflict_resolution::core::Suggestion,
    ) -> UserInput {
        let mut input = UserInput::empty();
        if let Some((&attr, _)) = suggestion.ask.iter().next() {
            input.values.insert(attr, Value::str("utter-nonsense"));
        }
        input
    }
}

#[test]
fn adversarial_answers_terminate_cleanly() {
    let spec = vjday::george_spec();
    let outcome = Resolver::default_config().resolve(&spec, &mut AdversarialOracle);
    // "utter-nonsense" as most-current status is actually *consistent* (it
    // simply tops the order), so the run may complete; what matters is that
    // it terminates with a well-formed outcome.
    assert!(outcome.rounds.len() <= 11);
}

#[test]
fn resolved_fraction_reports_progress() {
    let spec = vjday::george_spec();
    let outcome = Resolver::new(ResolutionConfig { max_rounds: 0, ..Default::default() })
        .resolve(&spec, &mut SilentOracle);
    let frac = resolved_fraction(&outcome, spec.schema());
    assert!((frac - 2.0 / 8.0).abs() < 1e-9, "George: 2 of 8 attrs at round 0");
}

#[test]
fn user_values_outside_active_domain_are_accepted() {
    // Truth deliberately not in the instance: the oracle supplies a new
    // value, which must intern and resolve cleanly.
    let s = Schema::new("r", ["id", "v"]).unwrap();
    let e = conflict_resolution::types::EntityInstance::new(
        s.clone(),
        vec![
            Tuple::of([Value::str("x"), Value::int(1)]),
            Tuple::of([Value::str("x"), Value::int(2)]),
        ],
    )
    .unwrap();
    let spec = Specification::without_orders(e, vec![], vec![]);
    let truth = Tuple::of([Value::str("x"), Value::int(99)]);
    let mut oracle = GroundTruthOracle::new(truth.clone());
    let outcome = Resolver::default_config().resolve(&spec, &mut oracle);
    assert!(outcome.complete);
    assert_eq!(
        outcome.resolved.get(s.attr_id("v").unwrap()),
        Some(&Value::int(99))
    );
    assert!(outcome.ot_size > 0);
}

#[test]
fn per_round_reports_are_coherent() {
    let spec = vjday::george_spec();
    let mut oracle = GroundTruthOracle::with_cap(vjday::george_truth(), 1);
    let outcome = Resolver::default_config().resolve(&spec, &mut oracle);
    assert!(!outcome.rounds.is_empty());
    for (i, r) in outcome.rounds.iter().enumerate() {
        assert_eq!(r.round, i);
        assert!(r.user_answers <= r.suggestion_size.max(1));
    }
    let answered: usize = outcome.rounds.iter().map(|r| r.user_answers).sum();
    assert_eq!(answered, outcome.user_values);
}
