//! Constant conditional functional dependencies `tp[X] → tp[B]`.

use std::fmt;
use std::sync::Arc;

use cr_types::{AttrId, Schema, Tuple, Value};

use crate::error::ConstraintError;

/// A constant CFD (Section II-B): if the current tuple's `X` attributes
/// match the pattern constants, its `B` attribute must equal the pattern's
/// `B` constant.
///
/// Constant CFDs suffice here because they are interpreted on the *single*
/// current tuple `LST(Ict)` of a completion; the general two-tuple CFDs of
/// the consistency literature are not needed (see the remark after the CFD
/// semantics in the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct ConstantCfd {
    schema: Arc<Schema>,
    name: Option<String>,
    /// The pattern over `X`: `(attribute, constant)` pairs, sorted by
    /// attribute for canonical form.
    lhs: Vec<(AttrId, Value)>,
    /// The consequent `(B, tp[B])`.
    rhs: (AttrId, Value),
}

impl ConstantCfd {
    /// Builds a CFD after validating the attributes. The LHS may be empty
    /// (an unconditional assertion about the current tuple), must not repeat
    /// attributes, and must not mention the RHS attribute.
    pub fn new(
        schema: Arc<Schema>,
        name: Option<String>,
        mut lhs: Vec<(AttrId, Value)>,
        rhs: (AttrId, Value),
    ) -> Result<Self, ConstraintError> {
        let check = |attr: AttrId| -> Result<(), ConstraintError> {
            if attr.index() >= schema.arity() {
                Err(ConstraintError::AttrOutOfRange(attr.0))
            } else {
                Ok(())
            }
        };
        check(rhs.0)?;
        for (a, v) in &lhs {
            check(*a)?;
            if *a == rhs.0 {
                return Err(ConstraintError::CfdRhsInLhs(
                    schema.attr_name(rhs.0).to_string(),
                ));
            }
            if v.is_null() {
                return Err(ConstraintError::NullPatternConstant);
            }
        }
        if rhs.1.is_null() {
            return Err(ConstraintError::NullPatternConstant);
        }
        lhs.sort_by_key(|(a, _)| *a);
        for w in lhs.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ConstraintError::DuplicateCfdLhsAttr(
                    schema.attr_name(w[0].0).to_string(),
                ));
            }
        }
        Ok(ConstantCfd { schema, name, lhs, rhs })
    }

    /// The schema the CFD is defined over.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Optional name (e.g. `psi1`).
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The LHS pattern `(X, tp[X])`, sorted by attribute.
    pub fn lhs(&self) -> &[(AttrId, Value)] {
        &self.lhs
    }

    /// The consequent `(B, tp[B])`.
    pub fn rhs(&self) -> &(AttrId, Value) {
        &self.rhs
    }

    /// True iff `tuple[X] = tp[X]`.
    pub fn lhs_matches(&self, tuple: &Tuple) -> bool {
        self.lhs.iter().all(|(a, v)| tuple.get(*a) == v)
    }

    /// Checks the CFD on a single (current) tuple: `tl[X]=tp[X] → tl[B]=tp[B]`.
    pub fn satisfied_by(&self, tuple: &Tuple) -> bool {
        !self.lhs_matches(tuple) || tuple.get(self.rhs.0) == &self.rhs.1
    }
}

impl fmt::Display for ConstantCfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            write!(f, "{n}: ")?;
        }
        write!(f, "(")?;
        for (i, (a, v)) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write_pair(f, &self.schema, *a, v)?;
        }
        write!(f, " -> ")?;
        write_pair(f, &self.schema, self.rhs.0, &self.rhs.1)?;
        write!(f, ")")
    }
}

fn write_pair(
    f: &mut fmt::Formatter<'_>,
    schema: &Schema,
    attr: AttrId,
    v: &Value,
) -> fmt::Result {
    write!(f, "{} = ", schema.attr_name(attr))?;
    crate::fmt_util::write_constant(f, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::new("person", ["AC", "city", "zip"]).unwrap()
    }

    fn psi1(s: &Arc<Schema>) -> ConstantCfd {
        ConstantCfd::new(
            s.clone(),
            Some("psi1".into()),
            vec![(s.attr_id("AC").unwrap(), Value::int(213))],
            (s.attr_id("city").unwrap(), Value::str("LA")),
        )
        .unwrap()
    }

    #[test]
    fn satisfaction_on_single_tuple() {
        let s = schema();
        let cfd = psi1(&s);
        let good = Tuple::of([Value::int(213), Value::str("LA"), Value::int(90058)]);
        let bad = Tuple::of([Value::int(213), Value::str("NY"), Value::int(90058)]);
        let vacuous = Tuple::of([Value::int(212), Value::str("NY"), Value::int(10036)]);
        assert!(cfd.satisfied_by(&good));
        assert!(!cfd.satisfied_by(&bad));
        assert!(cfd.satisfied_by(&vacuous));
    }

    #[test]
    fn validation_rejects_bad_patterns() {
        let s = schema();
        let ac = s.attr_id("AC").unwrap();
        let city = s.attr_id("city").unwrap();
        // RHS attr in LHS.
        assert!(ConstantCfd::new(
            s.clone(),
            None,
            vec![(city, Value::str("LA"))],
            (city, Value::str("LA"))
        )
        .is_err());
        // Duplicate LHS attr.
        assert!(ConstantCfd::new(
            s.clone(),
            None,
            vec![(ac, Value::int(1)), (ac, Value::int(2))],
            (city, Value::str("LA"))
        )
        .is_err());
        // Null pattern constant.
        assert!(ConstantCfd::new(s.clone(), None, vec![(ac, Value::Null)], (city, Value::str("LA")))
            .is_err());
        // Out-of-range attr.
        assert!(ConstantCfd::new(s.clone(), None, vec![], (AttrId(9), Value::int(1))).is_err());
    }

    #[test]
    fn lhs_is_canonically_sorted() {
        let s = schema();
        let zip = s.attr_id("zip").unwrap();
        let ac = s.attr_id("AC").unwrap();
        let cfd = ConstantCfd::new(
            s.clone(),
            None,
            vec![(zip, Value::int(90058)), (ac, Value::int(213))],
            (s.attr_id("city").unwrap(), Value::str("LA")),
        )
        .unwrap();
        assert_eq!(cfd.lhs()[0].0, ac);
        assert_eq!(cfd.lhs()[1].0, zip);
    }

    #[test]
    fn display_is_paper_like() {
        let s = schema();
        assert_eq!(psi1(&s).to_string(), "psi1: (AC = 213 -> city = \"LA\")");
    }
}
